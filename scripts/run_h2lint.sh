#!/usr/bin/env bash
# Runs the h2lint determinism linter (tools/h2lint/h2lint.py) over the given
# paths, defaulting to src/.  Exit 0 means no findings.
#
# Usage: scripts/run_h2lint.sh [path ...] [-- extra h2lint flags]
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

PYTHON="${PYTHON:-python3}"
if ! command -v "${PYTHON}" >/dev/null 2>&1; then
  echo "error: ${PYTHON} not found; h2lint requires Python 3" >&2
  exit 2
fi

args=("$@")
if [[ ${#args[@]} -eq 0 ]]; then
  args=(src/)
fi

exec "${PYTHON}" tools/h2lint/h2lint.py "${args[@]}"
