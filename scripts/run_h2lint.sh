#!/usr/bin/env bash
# Runs the h2lint determinism + locking-contract linter
# (tools/h2lint/h2lint.py) over the given paths, defaulting to src/.
# Exit 0 means no findings.
#
# Usage: scripts/run_h2lint.sh [--hierarchy FILE] [path ...] [-- flags]
#
# The lock-order rule checks acquisition edges against a hierarchy file
# (default: tools/lock_hierarchy.txt).  Pass `--hierarchy FILE` to point
# at another one, or `--hierarchy ""` to skip the rule.
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

PYTHON="${PYTHON:-python3}"
if ! command -v "${PYTHON}" >/dev/null 2>&1; then
  echo "error: ${PYTHON} not found; h2lint requires Python 3" >&2
  exit 2
fi

hierarchy="tools/lock_hierarchy.txt"
args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --hierarchy)
      hierarchy="$2"
      shift 2
      ;;
    --hierarchy=*)
      hierarchy="${1#--hierarchy=}"
      shift
      ;;
    *)
      args+=("$1")
      shift
      ;;
  esac
done
if [[ ${#args[@]} -eq 0 ]]; then
  args=(src/)
fi

exec "${PYTHON}" tools/h2lint/h2lint.py --hierarchy "${hierarchy}"   "${args[@]}"
