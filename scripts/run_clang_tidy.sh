#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every C++
# translation unit in src/, using a compile_commands.json database.  The
# codebase is kept at zero findings; WarningsAsErrors='*' makes any finding
# a hard failure.
#
# Usage: scripts/run_clang_tidy.sh [build-dir] [file ...]
#   build-dir  directory containing compile_commands.json (default:
#              build-tidy/, configured on demand)
#   file ...   restrict to specific sources (default: all of src/)
#
# When clang-tidy is not installed (the local container ships only g++),
# the script prints a warning and exits 0 so developer builds keep working;
# CI installs clang-tidy and enforces the gate for real.
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "warning: clang-tidy not found; skipping (CI enforces this gate)" >&2
  exit 0
fi

BUILD_DIR="${1:-build-tidy}"
shift || true

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "configuring ${BUILD_DIR} for compile_commands.json ..." >&2
  cmake -S . -B "${BUILD_DIR}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
fi

if [[ $# -gt 0 ]]; then
  files=("$@")
else
  mapfile -t files < <(find src -name '*.cc' | sort)
fi

status=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "${BUILD_DIR}" "${files[@]}" || status=$?
else
  for f in "${files[@]}"; do
    clang-tidy -quiet -p "${BUILD_DIR}" "$f" || status=$?
  done
fi

if [[ ${status} -ne 0 ]]; then
  echo "clang-tidy: findings detected (config: .clang-tidy)" >&2
  exit 1
fi
echo "clang-tidy: clean"
