#!/usr/bin/env bash
# Fails if generated build artifacts are tracked by git.  Run from anywhere
# inside the repository; CI and pre-commit hooks can call it directly.
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

bad=$(git ls-files -- 'build/' 'build-*/' 'cmake-build-*/' '*.o' '*.a' '*.so' || true)
if [[ -n "${bad}" ]]; then
  echo "error: generated build artifacts are tracked by git:" >&2
  echo "${bad}" | head -20 >&2
  count=$(echo "${bad}" | wc -l)
  if [[ "${count}" -gt 20 ]]; then
    echo "... and $((count - 20)) more" >&2
  fi
  echo "Run: git rm -r --cached <paths> (they are covered by .gitignore)" >&2
  exit 1
fi
# Stray (untracked but visible) build directories mean .gitignore rot: a
# future `git add -A` would sweep them in.  `git status --porcelain` only
# lists paths .gitignore does NOT cover, so anything matching here is a
# build tree the ignore rules lost track of.
stray=$(git status --porcelain | awk '{print $NF}' \
  | grep -E '^(build|build-[^/]*|cmake-build-[^/]*)(/|$)' || true)
if [[ -n "${stray}" ]]; then
  echo "error: stray build artifacts are visible to git (not ignored):" >&2
  echo "${stray}" | head -20 >&2
  echo "Add them to .gitignore or remove them." >&2
  exit 1
fi

# Raw standard-library mutexes bypass the machine-checked locking
# contract: every lock in src/ must be an annotated wrapper type from
# src/common/mutex.h (H2Mutex / H2SharedMutex and the scoped guards), so
# Clang -Werror=thread-safety sees every acquisition.  The wrapper header
# itself is the single allowlisted exception (it owns the raw members,
# audited inline); any other use needs `// h2lint: allow(raw-mutex)` on
# the same line with a written audit.
raw=$(grep -rn --include='*.h' --include='*.cc'   -E 'std::(shared_)?mutex|std::(lock_guard|unique_lock|shared_lock|scoped_lock)'   src/   | grep -v '^src/common/mutex\.h:'   | grep -v 'h2lint: allow(raw-mutex)' || true)
if [[ -n "${raw}" ]]; then
  echo "error: raw std:: mutex/lock use outside src/common/mutex.h:" >&2
  echo "${raw}" | head -20 >&2
  echo "Use H2Mutex/H2SharedMutex + the scoped guards (common/mutex.h)"        "so the thread-safety analysis sees the acquisition, or annotate"        "an audited exception with // h2lint: allow(raw-mutex)." >&2
  exit 1
fi

echo "build hygiene OK: no tracked/stray build artifacts, no raw mutexes"
