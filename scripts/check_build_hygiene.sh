#!/usr/bin/env bash
# Fails if generated build artifacts are tracked by git.  Run from anywhere
# inside the repository; CI and pre-commit hooks can call it directly.
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

bad=$(git ls-files -- 'build/' 'build-*/' 'cmake-build-*/' '*.o' '*.a' '*.so' || true)
if [[ -n "${bad}" ]]; then
  echo "error: generated build artifacts are tracked by git:" >&2
  echo "${bad}" | head -20 >&2
  count=$(echo "${bad}" | wc -l)
  if [[ "${count}" -gt 20 ]]; then
    echo "... and $((count - 20)) more" >&2
  fi
  echo "Run: git rm -r --cached <paths> (they are covered by .gitignore)" >&2
  exit 1
fi
echo "build hygiene OK: no tracked build artifacts"
