#!/usr/bin/env bash
# Validates a BENCH_*.json artifact emitted by bench/throughput_sweep
# (and future wall-clock benches that adopt the same envelope).  The JSON
# is the machine-readable source of truth EXPERIMENTS.md cites, so CI
# regenerates it and gates on this schema: required keys present, rows
# well-formed, every row's oracle_match true, and the max-threads speedup
# over serial at least the floor (default 3.0, override via $2 -- pass 0
# to skip on hosts where scaling is not meaningful).
#
# Usage: scripts/check_bench_json.sh <bench.json> [min_speedup]
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <bench.json> [min_speedup]" >&2
  exit 2
fi

FILE="$1"
MIN_SPEEDUP="${2:-3.0}"

if [[ ! -f "$FILE" ]]; then
  echo "check_bench_json: no such file: $FILE" >&2
  exit 2
fi

python3 - "$FILE" "$MIN_SPEEDUP" <<'EOF'
import json
import sys

path, min_speedup = sys.argv[1], float(sys.argv[2])
with open(path) as f:
    doc = json.load(f)

errors = []

def require(cond, message):
    if not cond:
        errors.append(message)

require(isinstance(doc.get("bench"), str) and doc.get("bench"),
        "top-level 'bench' must be a non-empty string")
require(doc.get("unit") == "ops_per_sec",
        "top-level 'unit' must be 'ops_per_sec'")
workload = doc.get("workload")
require(isinstance(workload, dict), "'workload' must be an object")
if isinstance(workload, dict):
    for key in ("shards", "ops_per_shard", "seed"):
        require(isinstance(workload.get(key), int) and workload[key] > 0,
                f"workload.{key} must be a positive integer")

rows = doc.get("rows")
require(isinstance(rows, list) and rows, "'rows' must be a non-empty array")
seen_threads = []
if isinstance(rows, list):
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        for key, kind in (("threads", int), ("ops", int), ("failures", int)):
            require(isinstance(row.get(key), kind) and not isinstance(
                row.get(key), bool), f"{where}.{key} must be an integer")
        for key in ("wall_seconds", "ops_per_sec", "p50_ms", "p99_ms"):
            value = row.get(key)
            require(isinstance(value, (int, float)) and value >= 0,
                    f"{where}.{key} must be a non-negative number")
        require(row.get("oracle_match") is True,
                f"{where}.oracle_match must be true "
                "(threaded state diverged from the serial oracle)")
        if isinstance(row.get("p50_ms"), (int, float)) and isinstance(
                row.get("p99_ms"), (int, float)):
            require(row["p99_ms"] >= row["p50_ms"],
                    f"{where}: p99_ms must be >= p50_ms")
        if isinstance(row.get("threads"), int):
            seen_threads.append(row["threads"])

require(seen_threads == sorted(seen_threads) and len(set(seen_threads)) ==
        len(seen_threads), "rows must be sorted by strictly increasing threads")
require(1 in seen_threads, "rows must include the serial (threads=1) oracle run")

speedup = doc.get("speedup_max_threads_over_serial")
require(isinstance(speedup, (int, float)),
        "'speedup_max_threads_over_serial' must be a number")
if isinstance(speedup, (int, float)) and min_speedup > 0:
    require(speedup >= min_speedup,
            f"speedup {speedup} below the floor {min_speedup}")

if errors:
    print(f"check_bench_json: {path} FAILED:")
    for error in errors:
        print(f"  - {error}")
    sys.exit(1)
print(f"check_bench_json: {path} OK "
      f"(rows={len(rows)}, speedup={speedup})")
EOF
