#!/usr/bin/env bash
# Validates a BENCH_*.json artifact emitted by the wall-clock benches
# (bench/throughput_sweep, bench/durability_sweep).  The JSON is the
# machine-readable source of truth EXPERIMENTS.md cites, so CI
# regenerates it and gates on the schema, dispatching on the top-level
# "bench" name:
#
#   throughput_sweep -- rows well-formed, every row's oracle_match true,
#                       and the max-threads speedup over serial at least
#                       the floor (default 3.0, override via $2 -- pass 0
#                       to skip on hosts where scaling is not meaningful).
#   durability_sweep -- one in-memory row plus segment-log rows covering
#                       group-commit windows 0, 8 and 32; every row must
#                       have recovered to the pre-crash state
#                       (state_match true, divergent_after_recovery 0).
#   churn_sweep      -- add/remove/replace/zone_outage scenarios each at
#                       every rebalance rate; every row must match its
#                       rate-0 oracle (oracle_match true), end with
#                       divergent_after 0, keep p99 >= p50, and respect
#                       the rate bound (max_step_keys <= rate when
#                       rate > 0).
#
# Usage: scripts/check_bench_json.sh <bench.json> [min_speedup]
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <bench.json> [min_speedup]" >&2
  exit 2
fi

FILE="$1"
MIN_SPEEDUP="${2:-3.0}"

if [[ ! -f "$FILE" ]]; then
  echo "check_bench_json: no such file: $FILE" >&2
  exit 2
fi

python3 - "$FILE" "$MIN_SPEEDUP" <<'EOF'
import json
import sys

path, min_speedup = sys.argv[1], float(sys.argv[2])
with open(path) as f:
    doc = json.load(f)

errors = []

def require(cond, message):
    if not cond:
        errors.append(message)

def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)

def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0

require(isinstance(doc.get("bench"), str) and doc.get("bench"),
        "top-level 'bench' must be a non-empty string")
# churn_sweep reports virtual (simulated) latency; the wall-clock benches
# report real throughput.
expected_unit = ("virtual_ms" if doc.get("bench") == "churn_sweep"
                 else "ops_per_sec")
require(doc.get("unit") == expected_unit,
        f"top-level 'unit' must be '{expected_unit}'")
workload = doc.get("workload")
require(isinstance(workload, dict), "'workload' must be an object")
rows = doc.get("rows")
require(isinstance(rows, list) and rows, "'rows' must be a non-empty array")

def check_throughput():
    if isinstance(workload, dict):
        for key in ("shards", "ops_per_shard", "seed"):
            require(is_count(workload.get(key)) and workload[key] > 0,
                    f"workload.{key} must be a positive integer")
    seen_threads = []
    for i, row in enumerate(rows or []):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        for key in ("threads", "ops", "failures"):
            require(is_count(row.get(key)), f"{where}.{key} must be an integer")
        for key in ("wall_seconds", "ops_per_sec", "p50_ms", "p99_ms"):
            value = row.get(key)
            require(is_number(value) and value >= 0,
                    f"{where}.{key} must be a non-negative number")
        require(row.get("oracle_match") is True,
                f"{where}.oracle_match must be true "
                "(threaded state diverged from the serial oracle)")
        if is_number(row.get("p50_ms")) and is_number(row.get("p99_ms")):
            require(row["p99_ms"] >= row["p50_ms"],
                    f"{where}: p99_ms must be >= p50_ms")
        if is_count(row.get("threads")):
            seen_threads.append(row["threads"])
    require(seen_threads == sorted(seen_threads) and len(set(seen_threads)) ==
            len(seen_threads),
            "rows must be sorted by strictly increasing threads")
    require(1 in seen_threads,
            "rows must include the serial (threads=1) oracle run")
    speedup = doc.get("speedup_max_threads_over_serial")
    require(is_number(speedup),
            "'speedup_max_threads_over_serial' must be a number")
    if is_number(speedup) and min_speedup > 0:
        require(speedup >= min_speedup,
                f"speedup {speedup} below the floor {min_speedup}")
    return f"speedup={speedup}"

def check_durability():
    if isinstance(workload, dict):
        for key in ("objects", "overwrites", "deletes"):
            require(is_count(workload.get(key)) and workload[key] > 0,
                    f"workload.{key} must be a positive integer")
    backends = set()
    seg_windows = set()
    for i, row in enumerate(rows or []):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        require(row.get("backend") in ("memory", "segment-log"),
                f"{where}.backend must be 'memory' or 'segment-log'")
        for key in ("group_commit_window", "ops", "fsyncs", "records_logged",
                    "records_lost", "records_replayed", "scrub_pushes",
                    "divergent_after_recovery"):
            require(is_count(row.get(key)),
                    f"{where}.{key} must be a non-negative integer")
        for key in ("apply_wall_seconds", "apply_ops_per_sec",
                    "recovery_wall_seconds"):
            value = row.get(key)
            require(is_number(value) and value >= 0,
                    f"{where}.{key} must be a non-negative number")
        require(row.get("state_match") is True,
                f"{where}.state_match must be true "
                "(recovery did not restore the pre-crash state)")
        require(row.get("divergent_after_recovery") == 0,
                f"{where}.divergent_after_recovery must be 0")
        backends.add(row.get("backend"))
        if row.get("backend") == "segment-log":
            seg_windows.add(row.get("group_commit_window"))
            require(is_count(row.get("fsyncs")) and row["fsyncs"] > 0,
                    f"{where}: segment-log rows must report fsyncs > 0")
        if row.get("group_commit_window") == 0 and \
                row.get("backend") == "segment-log":
            require(row.get("records_lost") == 0,
                    f"{where}: synchronous (window=0) segment log "
                    "must lose no records")
    require("memory" in backends, "rows must include the in-memory backend")
    require({0, 8, 32} <= seg_windows,
            "segment-log rows must cover group-commit windows 0, 8 and 32 "
            f"(saw {sorted(w for w in seg_windows if w is not None)})")
    return f"windows={sorted(seg_windows)}"

def check_churn():
    if isinstance(workload, dict):
        for key in ("objects", "gets", "nodes", "zones", "replicas"):
            require(is_count(workload.get(key)) and workload[key] > 0,
                    f"workload.{key} must be a positive integer")
    scenarios = set()
    rates_by_scenario = {}
    for i, row in enumerate(rows or []):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        scenario = row.get("scenario")
        require(scenario in ("add", "remove", "replace", "zone_outage"),
                f"{where}.scenario must be one of add/remove/replace/"
                "zone_outage")
        for key in ("rate", "gets", "steps_to_converge", "keys_moved",
                    "max_step_keys", "divergent_after"):
            require(is_count(row.get(key)),
                    f"{where}.{key} must be a non-negative integer")
        for key in ("p50_ms", "p99_ms", "rebalance_ms"):
            value = row.get(key)
            require(is_number(value) and value >= 0,
                    f"{where}.{key} must be a non-negative number")
        require(row.get("oracle_match") is True,
                f"{where}.oracle_match must be true "
                "(final state diverged from the rate-0 oracle)")
        require(row.get("divergent_after") == 0,
                f"{where}.divergent_after must be 0")
        if is_number(row.get("p50_ms")) and is_number(row.get("p99_ms")):
            require(row["p99_ms"] >= row["p50_ms"],
                    f"{where}: p99_ms must be >= p50_ms")
        if is_count(row.get("rate")) and row["rate"] > 0 and \
                is_count(row.get("max_step_keys")):
            require(row["max_step_keys"] <= row["rate"],
                    f"{where}: max_step_keys {row['max_step_keys']} exceeds "
                    f"the configured rate {row['rate']}")
        if isinstance(scenario, str):
            scenarios.add(scenario)
            rates_by_scenario.setdefault(scenario, set()).add(row.get("rate"))
    require(scenarios == {"add", "remove", "replace", "zone_outage"},
            "rows must cover scenarios add, remove, replace and zone_outage "
            f"(saw {sorted(scenarios)})")
    for scenario, rates in sorted(rates_by_scenario.items()):
        require(0 in rates,
                f"scenario '{scenario}' must include the rate-0 oracle run")
        require(any(is_count(r) and r > 0 for r in rates),
                f"scenario '{scenario}' must include a bounded-rate run")
    return f"scenarios={sorted(scenarios)}"

bench = doc.get("bench")
if bench == "durability_sweep":
    detail = check_durability()
elif bench == "churn_sweep":
    detail = check_churn()
elif bench:
    # throughput_sweep and future benches adopting its envelope.
    detail = check_throughput()
else:
    detail = "unvalidated"

if errors:
    print(f"check_bench_json: {path} FAILED:")
    for error in errors:
        print(f"  - {error}")
    sys.exit(1)
print(f"check_bench_json: {path} OK (rows={len(rows)}, {detail})")
EOF
