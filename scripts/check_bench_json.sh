#!/usr/bin/env bash
# Validates a BENCH_*.json artifact emitted by the wall-clock benches
# (bench/throughput_sweep, bench/durability_sweep).  The JSON is the
# machine-readable source of truth EXPERIMENTS.md cites, so CI
# regenerates it and gates on the schema, dispatching on the top-level
# "bench" name:
#
#   throughput_sweep -- rows well-formed, every row's oracle_match true,
#                       and the max-threads speedup over serial at least
#                       the floor (default 3.0, override via $2 -- pass 0
#                       to skip on hosts where scaling is not meaningful).
#   durability_sweep -- one in-memory row plus segment-log rows covering
#                       group-commit windows 0, 8 and 32; every row must
#                       have recovered to the pre-crash state
#                       (state_match true, divergent_after_recovery 0).
#   churn_sweep      -- add/remove/replace/zone_outage scenarios each at
#                       every rebalance rate; every row must match its
#                       rate-0 oracle (oracle_match true), end with
#                       divergent_after 0, keep p99 >= p50, and respect
#                       the rate bound (max_step_keys <= rate when
#                       rate > 0).  The document must also carry the
#                       'ablation_rebalance' section appended by
#                       bench/ablation_rebalance (rates 3/16/128 plus
#                       0 = unbounded under live sharded load, each
#                       bound-respecting, divergence-free, and with all
#                       ballast keys readable afterwards).
#   snapshot_sweep   -- clone_vs_copy must show SnapshotClone >= 100x
#                       cheaper in virtual time than CopyTree with
#                       byte-identical clone reads; listat overheads
#                       non-negative; watermark_ablation must cover
#                       0s/8s/64s/keep_all with answerable versions
#                       monotone in the watermark (keep_all answers all);
#                       hot-dir rows follow the throughput envelope with
#                       every threaded run matching the serial oracle.
#
# Usage: scripts/check_bench_json.sh <bench.json> [min_speedup]
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <bench.json> [min_speedup]" >&2
  exit 2
fi

FILE="$1"
MIN_SPEEDUP="${2:-3.0}"

if [[ ! -f "$FILE" ]]; then
  echo "check_bench_json: no such file: $FILE" >&2
  exit 2
fi

python3 - "$FILE" "$MIN_SPEEDUP" <<'EOF'
import json
import sys

path, min_speedup = sys.argv[1], float(sys.argv[2])
with open(path) as f:
    doc = json.load(f)

errors = []

def require(cond, message):
    if not cond:
        errors.append(message)

def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)

def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0

require(isinstance(doc.get("bench"), str) and doc.get("bench"),
        "top-level 'bench' must be a non-empty string")
# churn_sweep and snapshot_sweep report virtual (simulated) latency; the
# wall-clock benches report real throughput.
expected_unit = ("virtual_ms"
                 if doc.get("bench") in ("churn_sweep", "snapshot_sweep")
                 else "ops_per_sec")
require(doc.get("unit") == expected_unit,
        f"top-level 'unit' must be '{expected_unit}'")
workload = doc.get("workload")
require(isinstance(workload, dict), "'workload' must be an object")
rows = doc.get("rows")
require(isinstance(rows, list) and rows, "'rows' must be a non-empty array")

def check_throughput():
    if isinstance(workload, dict):
        for key in ("shards", "ops_per_shard", "seed"):
            require(is_count(workload.get(key)) and workload[key] > 0,
                    f"workload.{key} must be a positive integer")
    seen_threads = []
    for i, row in enumerate(rows or []):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        for key in ("threads", "ops", "failures"):
            require(is_count(row.get(key)), f"{where}.{key} must be an integer")
        for key in ("wall_seconds", "ops_per_sec", "p50_ms", "p99_ms"):
            value = row.get(key)
            require(is_number(value) and value >= 0,
                    f"{where}.{key} must be a non-negative number")
        require(row.get("oracle_match") is True,
                f"{where}.oracle_match must be true "
                "(threaded state diverged from the serial oracle)")
        if is_number(row.get("p50_ms")) and is_number(row.get("p99_ms")):
            require(row["p99_ms"] >= row["p50_ms"],
                    f"{where}: p99_ms must be >= p50_ms")
        if is_count(row.get("threads")):
            seen_threads.append(row["threads"])
    require(seen_threads == sorted(seen_threads) and len(set(seen_threads)) ==
            len(seen_threads),
            "rows must be sorted by strictly increasing threads")
    require(1 in seen_threads,
            "rows must include the serial (threads=1) oracle run")
    speedup = doc.get("speedup_max_threads_over_serial")
    require(is_number(speedup),
            "'speedup_max_threads_over_serial' must be a number")
    if is_number(speedup) and min_speedup > 0:
        require(speedup >= min_speedup,
                f"speedup {speedup} below the floor {min_speedup}")
    return f"speedup={speedup}"

def check_durability():
    if isinstance(workload, dict):
        for key in ("objects", "overwrites", "deletes"):
            require(is_count(workload.get(key)) and workload[key] > 0,
                    f"workload.{key} must be a positive integer")
    backends = set()
    seg_windows = set()
    for i, row in enumerate(rows or []):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        require(row.get("backend") in ("memory", "segment-log"),
                f"{where}.backend must be 'memory' or 'segment-log'")
        for key in ("group_commit_window", "ops", "fsyncs", "records_logged",
                    "records_lost", "records_replayed", "scrub_pushes",
                    "divergent_after_recovery"):
            require(is_count(row.get(key)),
                    f"{where}.{key} must be a non-negative integer")
        for key in ("apply_wall_seconds", "apply_ops_per_sec",
                    "recovery_wall_seconds"):
            value = row.get(key)
            require(is_number(value) and value >= 0,
                    f"{where}.{key} must be a non-negative number")
        require(row.get("state_match") is True,
                f"{where}.state_match must be true "
                "(recovery did not restore the pre-crash state)")
        require(row.get("divergent_after_recovery") == 0,
                f"{where}.divergent_after_recovery must be 0")
        backends.add(row.get("backend"))
        if row.get("backend") == "segment-log":
            seg_windows.add(row.get("group_commit_window"))
            require(is_count(row.get("fsyncs")) and row["fsyncs"] > 0,
                    f"{where}: segment-log rows must report fsyncs > 0")
        if row.get("group_commit_window") == 0 and \
                row.get("backend") == "segment-log":
            require(row.get("records_lost") == 0,
                    f"{where}: synchronous (window=0) segment log "
                    "must lose no records")
    require("memory" in backends, "rows must include the in-memory backend")
    require({0, 8, 32} <= seg_windows,
            "segment-log rows must cover group-commit windows 0, 8 and 32 "
            f"(saw {sorted(w for w in seg_windows if w is not None)})")
    return f"windows={sorted(seg_windows)}"

def check_churn():
    if isinstance(workload, dict):
        for key in ("objects", "gets", "nodes", "zones", "replicas"):
            require(is_count(workload.get(key)) and workload[key] > 0,
                    f"workload.{key} must be a positive integer")
    scenarios = set()
    rates_by_scenario = {}
    for i, row in enumerate(rows or []):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        scenario = row.get("scenario")
        require(scenario in ("add", "remove", "replace", "zone_outage"),
                f"{where}.scenario must be one of add/remove/replace/"
                "zone_outage")
        for key in ("rate", "gets", "steps_to_converge", "keys_moved",
                    "max_step_keys", "divergent_after"):
            require(is_count(row.get(key)),
                    f"{where}.{key} must be a non-negative integer")
        for key in ("p50_ms", "p99_ms", "rebalance_ms"):
            value = row.get(key)
            require(is_number(value) and value >= 0,
                    f"{where}.{key} must be a non-negative number")
        require(row.get("oracle_match") is True,
                f"{where}.oracle_match must be true "
                "(final state diverged from the rate-0 oracle)")
        require(row.get("divergent_after") == 0,
                f"{where}.divergent_after must be 0")
        if is_number(row.get("p50_ms")) and is_number(row.get("p99_ms")):
            require(row["p99_ms"] >= row["p50_ms"],
                    f"{where}: p99_ms must be >= p50_ms")
        if is_count(row.get("rate")) and row["rate"] > 0 and \
                is_count(row.get("max_step_keys")):
            require(row["max_step_keys"] <= row["rate"],
                    f"{where}: max_step_keys {row['max_step_keys']} exceeds "
                    f"the configured rate {row['rate']}")
        if isinstance(scenario, str):
            scenarios.add(scenario)
            rates_by_scenario.setdefault(scenario, set()).add(row.get("rate"))
    require(scenarios == {"add", "remove", "replace", "zone_outage"},
            "rows must cover scenarios add, remove, replace and zone_outage "
            f"(saw {sorted(scenarios)})")
    for scenario, rates in sorted(rates_by_scenario.items()):
        require(0 in rates,
                f"scenario '{scenario}' must include the rate-0 oracle run")
        require(any(is_count(r) and r > 0 for r in rates),
                f"scenario '{scenario}' must include a bounded-rate run")
    ablation = doc.get("ablation_rebalance")
    require(isinstance(ablation, list) and ablation,
            "'ablation_rebalance' must be a non-empty array "
            "(run bench/ablation_rebalance after bench/churn_sweep)")
    abl_rates = set()
    for i, row in enumerate(ablation if isinstance(ablation, list) else []):
        where = f"ablation_rebalance[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        for key in ("rate", "steps", "keys_moved", "max_step_keys",
                    "foreground_ops", "foreground_failures",
                    "divergent_after"):
            require(is_count(row.get(key)),
                    f"{where}.{key} must be a non-negative integer")
        for key in ("rebalance_ms", "foreground_ops_per_sec"):
            value = row.get(key)
            require(is_number(value) and value >= 0,
                    f"{where}.{key} must be a non-negative number")
        require(row.get("divergent_after") == 0,
                f"{where}.divergent_after must be 0")
        require(row.get("keys_readable") is True,
                f"{where}.keys_readable must be true "
                "(a ballast key was lost during live rebalancing)")
        if is_count(row.get("rate")) and row["rate"] > 0 and \
                is_count(row.get("max_step_keys")):
            require(row["max_step_keys"] <= row["rate"],
                    f"{where}: max_step_keys {row['max_step_keys']} exceeds "
                    f"the configured rate {row['rate']}")
        if is_count(row.get("rate")):
            abl_rates.add(row["rate"])
    require(abl_rates == {0, 3, 16, 128},
            "ablation_rebalance must cover rates 3, 16, 128 and 0 "
            f"(unbounded); saw {sorted(abl_rates)}")
    if isinstance(ablation, list) and ablation:
        moved = {row.get("keys_moved") for row in ablation
                 if isinstance(row, dict)}
        require(len(moved) == 1,
                "every ablation_rebalance policy must migrate the same key "
                f"set (keys_moved saw {sorted(m for m in moved if is_count(m))})")
    return f"scenarios={sorted(scenarios)}, ablation_rates={sorted(abl_rates)}"

def check_snapshot():
    if isinstance(workload, dict):
        for key in ("subtree_files", "listat_files", "listat_reps",
                    "hot_dir_shards", "hot_dir_ops_per_shard"):
            require(is_count(workload.get(key)) and workload[key] > 0,
                    f"workload.{key} must be a positive integer")
        require(is_count(workload.get("subtree_dirs")),
                "workload.subtree_dirs must be a non-negative integer")
    clone = doc.get("clone_vs_copy")
    require(isinstance(clone, dict), "'clone_vs_copy' must be an object")
    if isinstance(clone, dict):
        for key in ("clone_ms", "copy_ms", "cost_ratio", "primitives_ratio",
                    "baseline_copy_ms"):
            value = clone.get(key)
            require(is_number(value) and value >= 0,
                    f"clone_vs_copy.{key} must be a non-negative number")
        for key in ("clone_primitives", "copy_primitives"):
            require(is_count(clone.get(key)) and clone[key] > 0,
                    f"clone_vs_copy.{key} must be a positive integer")
        require(clone.get("reads_identical") is True,
                "clone_vs_copy.reads_identical must be true "
                "(clone reads diverged from the source subtree)")
        if is_number(clone.get("cost_ratio")):
            require(clone["cost_ratio"] >= 100.0,
                    f"clone_vs_copy.cost_ratio {clone['cost_ratio']} below "
                    "the 100x floor")
    listat = doc.get("listat")
    require(isinstance(listat, dict), "'listat' must be an object")
    if isinstance(listat, dict):
        for key in ("live_ms", "at_current_ms", "at_past_ms"):
            value = listat.get(key)
            require(is_number(value) and value >= 0,
                    f"listat.{key} must be a non-negative number")
    ablation = doc.get("watermark_ablation")
    require(isinstance(ablation, list) and ablation,
            "'watermark_ablation' must be a non-empty array")
    labels = []
    answerable = {}
    for i, row in enumerate(ablation if isinstance(ablation, list) else []):
        where = f"watermark_ablation[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        require(isinstance(row.get("watermark"), str) and row["watermark"],
                f"{where}.watermark must be a non-empty string")
        require(is_number(row.get("watermark_s")),
                f"{where}.watermark_s must be a number (-1 = keep all)")
        for key in ("tuples_folded", "compaction_passes"):
            require(is_count(row.get(key)),
                    f"{where}.{key} must be a non-negative integer")
        value = row.get("compaction_ms")
        require(is_number(value) and value >= 0,
                f"{where}.compaction_ms must be a non-negative number")
        for key in ("versions_observed", "versions_answerable"):
            require(is_count(row.get(key)),
                    f"{where}.{key} must be a non-negative integer")
        if is_count(row.get("versions_observed")) and \
                is_count(row.get("versions_answerable")):
            require(row["versions_answerable"] <= row["versions_observed"],
                    f"{where}: versions_answerable exceeds versions_observed")
        if isinstance(row.get("watermark"), str):
            labels.append(row["watermark"])
            answerable[row["watermark"]] = row.get("versions_answerable")
    require(labels == ["0s", "8s", "64s", "keep_all"],
            "watermark_ablation must cover 0s, 8s, 64s and keep_all in "
            f"ascending order (saw {labels})")
    order = [answerable.get(k) for k in ("0s", "8s", "64s", "keep_all")]
    if all(is_count(v) for v in order):
        require(order == sorted(order),
                "versions_answerable must be monotone non-decreasing in the "
                f"watermark (saw {order})")
        keep_all_row = next((r for r in ablation if isinstance(r, dict) and
                             r.get("watermark") == "keep_all"), None)
        if keep_all_row is not None:
            require(keep_all_row["versions_answerable"] ==
                    keep_all_row["versions_observed"],
                    "keep_all must answer every observed version")
    seen_threads = []
    for i, row in enumerate(rows or []):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        for key in ("threads", "ops", "failures"):
            require(is_count(row.get(key)), f"{where}.{key} must be an integer")
        for key in ("wall_seconds", "ops_per_sec", "p50_ms", "p99_ms"):
            value = row.get(key)
            require(is_number(value) and value >= 0,
                    f"{where}.{key} must be a non-negative number")
        require(row.get("oracle_match") is True,
                f"{where}.oracle_match must be true "
                "(threaded hot-dir state diverged from the serial oracle)")
        if is_number(row.get("p50_ms")) and is_number(row.get("p99_ms")):
            require(row["p99_ms"] >= row["p50_ms"],
                    f"{where}: p99_ms must be >= p50_ms")
        if is_count(row.get("threads")):
            seen_threads.append(row["threads"])
    require(seen_threads == sorted(seen_threads) and len(set(seen_threads)) ==
            len(seen_threads),
            "rows must be sorted by strictly increasing threads")
    require(1 in seen_threads,
            "rows must include the serial (threads=1) oracle run")
    ratio = clone.get("cost_ratio") if isinstance(clone, dict) else None
    return f"cost_ratio={ratio}, watermarks={labels}"

bench = doc.get("bench")
if bench == "durability_sweep":
    detail = check_durability()
elif bench == "churn_sweep":
    detail = check_churn()
elif bench == "snapshot_sweep":
    detail = check_snapshot()
elif bench:
    # throughput_sweep and future benches adopting its envelope.
    detail = check_throughput()
else:
    detail = "unvalidated"

if errors:
    print(f"check_bench_json: {path} FAILED:")
    for error in errors:
        print(f"  - {error}")
    sys.exit(1)
print(f"check_bench_json: {path} OK (rows={len(rows)}, {detail})")
EOF
