#!/usr/bin/env bash
# Rebuilds the benches and re-runs every figure/table binary, collecting
# each one's stdout under bench/out/<name>.txt so EXPERIMENTS.md can be
# refreshed from one deterministic sweep.  The simulator is seeded and
# single-threaded, so consecutive runs produce byte-identical outputs.
#
# micro_bench (google-benchmark, wall-clock timings) is excluded: its
# numbers are host-dependent and feed no EXPERIMENTS.md row.
#
# Usage: scripts/regen_experiments.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"
build_dir="${1:-build}"

cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target \
  fig07_move_rename fig08_rmdir fig09_list_n fig10_list_m fig11_copy \
  fig12_mkdir fig13_access fig14_objects fig15_sizes headline_numbers \
  rtt_impact tab1_complexity ablation_h2 ablation_gossip ablation_ring \
  ablation_geo scalability ablation_calibration degraded_mode \
  parallelism_sweep durability_sweep churn_sweep snapshot_sweep \
  ablation_rebalance

mkdir -p bench/out
for bin in \
    fig07_move_rename fig08_rmdir fig09_list_n fig10_list_m fig11_copy \
    fig12_mkdir fig13_access fig14_objects fig15_sizes headline_numbers \
    rtt_impact tab1_complexity ablation_h2 ablation_gossip ablation_ring \
    ablation_geo scalability ablation_calibration degraded_mode \
    parallelism_sweep; do
  echo "== ${bin}"
  "${build_dir}/bench/${bin}" > "bench/out/${bin}.txt"
done

# durability_sweep additionally emits the committed BENCH_durability.json
# artifact (ops/s is host-dependent; the oracle verdicts and record
# accounting are the portable part) and is schema-gated here.
echo "== durability_sweep"
"${build_dir}/bench/durability_sweep" BENCH_durability.json \
  > bench/out/durability_sweep.txt
scripts/check_bench_json.sh BENCH_durability.json

# churn_sweep emits BENCH_churn.json and ablation_rebalance appends its
# rebalance-rate-policy section to the same artifact; the schema check
# requires the combined document.
echo "== churn_sweep"
"${build_dir}/bench/churn_sweep" BENCH_churn.json \
  > bench/out/churn_sweep.txt
echo "== ablation_rebalance"
"${build_dir}/bench/ablation_rebalance" BENCH_churn.json \
  > bench/out/ablation_rebalance.txt
scripts/check_bench_json.sh BENCH_churn.json

# snapshot_sweep emits BENCH_snapshot.json (clone-vs-copy, ListAt
# overhead, watermark ablation, hot-dir sweep) and gates on the 100x
# clone floor plus the serial differential oracle.
echo "== snapshot_sweep"
"${build_dir}/bench/snapshot_sweep" BENCH_snapshot.json \
  > bench/out/snapshot_sweep.txt
scripts/check_bench_json.sh BENCH_snapshot.json

echo "Done: outputs in bench/out/ (gitignored; paste into EXPERIMENTS.md)."
