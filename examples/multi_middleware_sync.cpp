// Multi-middleware synchronization: the NameRing maintenance protocol at
// work (§3.3).
//
// Several H2Middlewares (think: proxy servers in different racks or data
// centers) serve the same account concurrently.  Each one submits patches
// for the directories it touches, merges them asynchronously, and
// announces merges over the gossip bus; this example drives concurrent
// writers from real threads, then shows convergence and the protocol's
// bookkeeping.
//
// Run:  ./build/examples/multi_middleware_sync [middlewares] [writes]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "h2/h2cloud.h"
#include "h2/monitor.h"

using namespace h2;

int main(int argc, char** argv) {
  const int fleet = argc > 1 ? std::atoi(argv[1]) : 4;
  const int writes = argc > 2 ? std::atoi(argv[2]) : 50;

  H2CloudConfig cfg;
  cfg.middleware_count = fleet;
  H2Cloud cloud(cfg);
  if (!cloud.CreateAccount("team").ok()) return 1;

  std::vector<std::unique_ptr<H2AccountFs>> sessions;
  for (int i = 0; i < fleet; ++i) {
    sessions.push_back(std::move(cloud.OpenFilesystem("team", i)).value());
  }
  if (!sessions[0]->Mkdir("/shared").ok()) return 1;

  // The Background Merger and gossip pump run on a real thread while the
  // writers hammer one hot directory from their own threads.
  cloud.StartBackground(std::chrono::milliseconds(1));
  std::vector<std::thread> writers;
  for (int w = 0; w < fleet; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < writes; ++i) {
        const std::string path =
            "/shared/mw" + std::to_string(w) + "_file" + std::to_string(i);
        const Status st =
            sessions[static_cast<std::size_t>(w)]->WriteFile(
                path, FileBlob::FromString("from middleware " +
                                           std::to_string(w)));
        if (!st.ok()) {
          std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
        }
      }
    });
  }
  for (auto& t : writers) t.join();

  // Drain maintenance: every patch merged, every rumor delivered.
  for (int spin = 0; spin < 5000; ++spin) {
    bool idle = cloud.gossip().Idle();
    for (std::size_t i = 0; i < cloud.middleware_count(); ++i) {
      idle = idle && cloud.middleware(i).MaintenanceIdle();
    }
    if (idle) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cloud.StopBackground();
  cloud.RunMaintenanceToQuiescence();

  // Every middleware must now see the identical directory.
  std::size_t expected = static_cast<std::size_t>(fleet) *
                         static_cast<std::size_t>(writes);
  bool converged = true;
  for (int i = 0; i < fleet; ++i) {
    auto names = sessions[static_cast<std::size_t>(i)]->List(
        "/shared", ListDetail::kNamesOnly);
    if (!names.ok() || names->size() != expected) {
      converged = false;
      std::printf("middleware %d sees %zu entries (want %zu)\n", i,
                  names.ok() ? names->size() : 0, expected);
    }
  }
  std::printf("%d middlewares x %d writes -> %zu files; converged: %s\n",
              fleet, writes, expected, converged ? "YES" : "NO");

  const GossipStats gossip = cloud.gossip().stats();
  std::printf("\ngossip: %llu rumors published, %llu delivered, %llu "
              "suppressed by the timestamp rule\n",
              static_cast<unsigned long long>(gossip.published),
              static_cast<unsigned long long>(gossip.delivered),
              static_cast<unsigned long long>(gossip.suppressed));
  std::puts("");
  std::fputs(CollectSnapshot(cloud).ToText().c_str(), stdout);
  return converged ? 0 : 1;
}
