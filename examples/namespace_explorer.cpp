// Namespace explorer: what the H2 data structure actually stores.
//
// Builds a small filesystem, then dumps the raw objects in the cloud --
// namespace-decorated child keys, NameRing tuple lists, patch chains --
// exactly as the Formatter (§4.4) writes them, and demonstrates the two
// access methods of §3.2 side by side with their primitive counts.
//
// Run:  ./build/examples/namespace_explorer
#include <algorithm>
#include <cstdio>
#include <vector>

#include "h2/h2cloud.h"
#include "h2/keys.h"

using namespace h2;

int main() {
  H2Cloud cloud;
  if (!cloud.CreateAccount("alice").ok()) return 1;
  auto fs = std::move(cloud.OpenFilesystem("alice")).value();

  // Alice's Ubuntu filesystem from Fig. 4.
  for (const char* dir : {"/home", "/home/ubuntu", "/bin"}) {
    if (!fs->Mkdir(dir).ok()) return 1;
  }
  for (const char* file : {"/home/ubuntu/file1", "/bin/cat", "/bin/bash",
                           "/bin/nc"}) {
    if (!fs->WriteFile(file, FileBlob::FromString("#!")).ok()) return 1;
  }
  // One deletion so a tombstone shows up in the raw NameRing.
  if (!fs->WriteFile("/bin/tmp", FileBlob::FromString("x")).ok()) return 1;
  if (!fs->RemoveFile("/bin/tmp").ok()) return 1;
  cloud.RunMaintenanceToQuiescence();

  std::puts("== Raw objects in the cloud (keys are namespace-decorated) ==");
  OpMeter meter;
  std::vector<std::pair<std::string, std::string>> objects;
  cloud.cloud().Scan(
      [&](const std::string& key, const ObjectValue& value) {
        auto kind = value.metadata.find("kind");
        objects.emplace_back(
            key, kind == value.metadata.end() ? "?" : kind->second);
      },
      meter);
  std::sort(objects.begin(), objects.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  for (const auto& [key, kind] : objects) {
    std::printf("  %-8s %s\n", kind.c_str(), key.c_str());
  }

  std::puts("\n== The /bin NameRing, as the Formatter stringifies it ==");
  auto bin_ns = fs->Namespace("/bin");
  if (!bin_ns.ok()) return 1;
  auto ring_obj = cloud.cloud().Get(NameRingKey(*bin_ns), meter);
  if (ring_obj.ok()) {
    std::fputs(ring_obj->payload.c_str(), stdout);
    std::puts("(name | timestamp | kind | deleted-flag, alphabetical; the");
    std::puts(" #vv line is the merge version vector, X marks tombstones)");
  }

  std::puts("\n== Two access methods for /home/ubuntu/file1 (§3.2) ==");
  auto info = fs->Stat("/home/ubuntu/file1");
  if (info.ok()) {
    std::printf("regular (full path, O(d)):   %5.1f ms, %llu primitives\n",
                fs->last_op().elapsed_ms(),
                static_cast<unsigned long long>(
                    fs->last_op().object_primitives()));
  }
  auto ubuntu_ns = fs->Namespace("/home/ubuntu");
  if (ubuntu_ns.ok()) {
    auto quick = fs->StatRelative(*ubuntu_ns, "file1");
    if (quick.ok()) {
      std::printf("quick (%s::file1, O(1)):  %5.1f ms, %llu primitive\n",
                  ubuntu_ns->ToString().c_str(),
                  fs->last_op().elapsed_ms(),
                  static_cast<unsigned long long>(
                      fs->last_op().object_primitives()));
    }
  }
  return 0;
}
