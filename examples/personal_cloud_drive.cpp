// Personal cloud drive: the workload the paper's introduction motivates.
//
// A Dropbox-like service hosts a user's whole filesystem.  This example
// ingests a synthetic "heavy user" tree (thousands of directories, tens
// of thousands of files, per §5.1's workload description), replays a mix
// of POSIX-like operations against three hosting strategies -- H2Cloud,
// the OpenStack Swift pseudo-filesystem, and a Dynamic-Partition index
// service -- and prints a per-operation latency report.
//
// Run:  ./build/examples/personal_cloud_drive [files] [ops]
#include <cstdio>
#include <cstdlib>

#include "baselines/index_fs.h"
#include "baselines/swift_fs.h"
#include "h2/h2cloud.h"
#include "workload/trace.h"
#include "workload/tree_gen.h"

using namespace h2;

namespace {

struct Report {
  std::string system;
  ReplayStats stats;
  double populate_ms = 0;
};

template <typename MakeFs>
Report RunSystem(const std::string& name, const GeneratedTree& tree,
                 const std::vector<TraceOp>& trace, MakeFs&& make) {
  Report report;
  report.system = name;
  auto holder = make();
  FileSystem& fs = holder->fs();
  OpCost populate;
  const Status populated = PopulateTree(fs, tree, &populate);
  if (!populated.ok()) {
    std::fprintf(stderr, "[%s] populate failed: %s\n", name.c_str(),
                 populated.ToString().c_str());
    std::exit(1);
  }
  report.populate_ms = populate.elapsed_ms();
  report.stats = ReplayTrace(fs, trace);
  return report;
}

struct SwiftHolder {
  ObjectCloud cloud{CloudConfig{}};
  SwiftFs filesystem{cloud};
  FileSystem& fs() { return filesystem; }
};

struct DpHolder {
  ObjectCloud cloud{CloudConfig{}};
  IndexServerFs filesystem{cloud, IndexFsOptions::DynamicPartition()};
  FileSystem& fs() { return filesystem; }
};

struct H2Holder {
  H2Holder() {
    (void)cloud.CreateAccount("user");
    account = std::move(cloud.OpenFilesystem("user")).value();
  }
  H2Cloud cloud;
  std::unique_ptr<H2AccountFs> account;
  FileSystem& fs() { return *account; }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t files =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20'000;
  const std::size_t ops =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2'000;

  TreeSpec spec = TreeSpec::Heavy(/*seed=*/2018);
  spec.file_count = files;
  spec.dir_count = std::max<std::size_t>(files / 20, 10);
  const GeneratedTree tree = GenerateTree(spec);
  std::printf("synthetic heavy user: %zu dirs, %zu files, max depth %zu, "
              "%.1f GiB logical\n",
              tree.dirs.size(), tree.files.size(), tree.max_depth(),
              static_cast<double>(tree.total_bytes()) / (1ULL << 30));

  const std::vector<TraceOp> trace =
      GenerateTrace(tree, ops, TraceMix{}, /*seed=*/7);
  std::printf("replaying %zu operations on each system...\n\n",
              trace.size());

  std::vector<Report> reports;
  reports.push_back(RunSystem("H2Cloud", tree, trace, [] {
    return std::make_unique<H2Holder>();
  }));
  reports.push_back(RunSystem("Swift", tree, trace, [] {
    return std::make_unique<SwiftHolder>();
  }));
  reports.push_back(RunSystem("DP", tree, trace, [] {
    return std::make_unique<DpHolder>();
  }));

  std::printf("%-8s", "op");
  for (const Report& r : reports) std::printf(" %14s", r.system.c_str());
  std::puts("   (mean ms per op)");
  for (int k = 0; k < 10; ++k) {
    const auto kind = static_cast<TraceOpKind>(k);
    std::printf("%-8s", std::string(TraceOpName(kind)).c_str());
    for (const Report& r : reports) {
      const std::size_t count = r.stats.per_kind_count[static_cast<std::size_t>(k)];
      const double ms = r.stats.per_kind_ms[static_cast<std::size_t>(k)];
      std::printf(" %14.1f", count == 0 ? 0.0 : ms / static_cast<double>(count));
    }
    std::puts("");
  }
  std::printf("%-8s", "TOTAL");
  for (const Report& r : reports) {
    std::printf(" %14.1f", r.stats.total_cost.elapsed_ms() /
                               static_cast<double>(r.stats.ops));
  }
  std::puts("");
  for (const Report& r : reports) {
    std::printf("%s: %zu/%zu ops failed, ingest took %.1f s of simulated "
                "storage time\n",
                r.system.c_str(), r.stats.failures, r.stats.ops,
                r.populate_ms / 1000.0);
  }
  std::puts(
      "\nTakeaway: on an everyday mix of mostly-small directories all "
      "three are\ncomparable -- H2Cloud pays durable patch submission on "
      "each mutation but\nneeds no index cloud.  Its decisive wins are on "
      "large directories, where\nSwift's RMDIR/MOVE pay per file: see "
      "bench/fig07_move_rename and\nbench/fig08_rmdir (orders of magnitude "
      "at n=100k).");
  return 0;
}
