// Sync client: the Dropbox-style workflow the paper's introduction is
// about.  A device keeps a local folder; a sync engine computes the delta
// against the last-synced state and pushes it to H2Cloud -- using the
// bulk WriteFiles API so a whole folder of new photos costs one durable
// NameRing patch per directory instead of one per file (cf. the paper's
// citation [25], "efficient batched synchronization in Dropbox-like
// cloud storage services").
//
// Run:  ./build/examples/sync_client
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "fs/path.h"
#include "h2/h2cloud.h"

using namespace h2;

namespace {

/// The device's local folder: path -> content.
using LocalState = std::map<std::string, std::string>;

struct Delta {
  std::vector<std::pair<std::string, FileBlob>> upserts;
  std::vector<std::string> deletions;
};

Delta ComputeDelta(const LocalState& now, const LocalState& last_synced) {
  Delta delta;
  for (const auto& [path, content] : now) {
    auto it = last_synced.find(path);
    if (it == last_synced.end() || it->second != content) {
      delta.upserts.emplace_back(path, FileBlob::FromString(content));
    }
  }
  for (const auto& [path, content] : last_synced) {
    if (!now.contains(path)) delta.deletions.push_back(path);
  }
  return delta;
}

/// Pushes a delta; returns the simulated cost.
Result<OpCost> Push(H2AccountFs& fs, Delta delta) {
  OpCost total;
  // Ensure the directories of all upserts exist (mkdir -p).
  std::map<std::string, bool> ensured;
  for (const auto& [path, blob] : delta.upserts) {
    std::string dir = ParentPath(path);
    std::vector<std::string> chain;
    while (dir != "/" && !ensured.contains(dir)) {
      chain.push_back(dir);
      dir = ParentPath(dir);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const Status st = fs.Mkdir(*it);
      total += fs.last_op();
      if (!st.ok() && st.code() != ErrorCode::kAlreadyExists) return st;
      ensured[*it] = true;
    }
  }
  H2_RETURN_IF_ERROR(fs.WriteFiles(std::move(delta.upserts)));
  total += fs.last_op();
  for (const auto& path : delta.deletions) {
    H2_RETURN_IF_ERROR(fs.RemoveFile(path));
    total += fs.last_op();
  }
  return total;
}

}  // namespace

int main() {
  H2Cloud cloud;
  if (!cloud.CreateAccount("phone").ok()) return 1;
  auto fs = std::move(cloud.OpenFilesystem("phone")).value();

  LocalState device;
  LocalState last_synced;

  // Day 1: the user takes 200 photos.
  for (int i = 0; i < 200; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "/camera/2026-07/IMG_%04d.jpg", i);
    device[name] = "jpeg-" + std::to_string(i);
  }
  Delta delta = ComputeDelta(device, last_synced);
  std::printf("initial sync: %zu upserts, %zu deletions\n",
              delta.upserts.size(), delta.deletions.size());
  auto cost = Push(*fs, std::move(delta));
  if (!cost.ok()) return 1;
  std::printf("  pushed in %.1f s simulated (batched: one patch for the "
              "whole folder)\n",
              cost->elapsed_ms() / 1000.0);
  last_synced = device;

  // Compare: the same 200 uploads without batching.
  {
    H2Cloud naive_cloud;
    if (!naive_cloud.CreateAccount("naive").ok()) return 1;
    auto naive = std::move(naive_cloud.OpenFilesystem("naive")).value();
    if (!naive->Mkdir("/camera").ok()) return 1;
    if (!naive->Mkdir("/camera/2026-07").ok()) return 1;
    double naive_ms = 0;
    for (const auto& [path, content] : device) {
      if (!naive->WriteFile(path, FileBlob::FromString(content)).ok()) {
        return 1;
      }
      naive_ms += naive->last_op().elapsed_ms();
    }
    std::printf("  (per-file patches would have taken %.1f s)\n",
                naive_ms / 1000.0);
  }

  // Day 2: edit a few, delete a few, add a few.
  device["/camera/2026-07/IMG_0007.jpg"] = "jpeg-7-edited";
  device.erase("/camera/2026-07/IMG_0100.jpg");
  device.erase("/camera/2026-07/IMG_0101.jpg");
  device["/notes/todo.txt"] = "buy film";
  delta = ComputeDelta(device, last_synced);
  std::printf("\nincremental sync: %zu upserts, %zu deletions\n",
              delta.upserts.size(), delta.deletions.size());
  cost = Push(*fs, std::move(delta));
  if (!cost.ok()) return 1;
  std::printf("  pushed in %.2f s simulated\n",
              cost->elapsed_ms() / 1000.0);
  last_synced = device;

  // Verify the cloud mirror matches the device exactly.
  cloud.RunMaintenanceToQuiescence();
  std::size_t verified = 0;
  for (const auto& [path, content] : device) {
    auto blob = fs->ReadFile(path);
    if (!blob.ok() || blob->data != content) {
      std::printf("MISMATCH at %s\n", path.c_str());
      return 1;
    }
    ++verified;
  }
  auto gone = fs->Stat("/camera/2026-07/IMG_0100.jpg");
  std::printf("\ncloud mirror verified: %zu files match, deletions "
              "propagated: %s\n",
              verified, gone.code() == ErrorCode::kNotFound ? "yes" : "NO");
  return 0;
}
