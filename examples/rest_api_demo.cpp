// REST API demo: H2Cloud served "in the form of web services" (§4.1).
//
// Starts the Inbound API on a loopback port, then drives it the way a
// browser/native client would -- raw HTTP requests -- creating an
// account, uploading files, listing, moving, and reading back.  Every
// response carries x-op-ms / x-op-primitives headers with the simulated
// operation cost.
//
// Run:  ./build/examples/rest_api_demo
#include <cstdio>

#include "h2/web_api.h"

using namespace h2;

namespace {

void Show(const char* what, const Result<HttpResponse>& response) {
  if (!response.ok()) {
    std::printf("%-46s TRANSPORT ERROR: %s\n", what,
                response.status().ToString().c_str());
    return;
  }
  auto ms = response->headers.find("x-op-ms");
  std::printf("%-46s -> %d  (%s ms)\n", what, response->status,
              ms == response->headers.end() ? "-" : ms->second.c_str());
}

}  // namespace

int main() {
  H2Cloud cloud;
  H2WebApi api(cloud);
  if (!api.StartServer().ok()) {
    std::fprintf(stderr, "could not start the Inbound API server\n");
    return 1;
  }
  std::printf("H2Cloud Inbound API listening on 127.0.0.1:%u\n\n",
              api.port());
  HttpClient client(api.port());

  Show("PUT /v1/accounts/alice",
       client.Put("/v1/accounts/alice", ""));
  Show("POST /v1/alice/fs/photos  x-op:mkdir",
       client.Post("/v1/alice/fs/photos", {{"x-op", "mkdir"}}));
  Show("PUT /v1/alice/fs/photos/beach.jpg",
       client.Put("/v1/alice/fs/photos/beach.jpg", "\xFF\xD8 jpeg bytes"));

  // A 2 GiB camera video: tiny sample body + declared logical size.
  HttpRequest video;
  video.method = "PUT";
  video.target = "/v1/alice/fs/photos/trip.mp4";
  video.body = "mp4-sample";
  video.headers["x-logical-size"] = std::to_string(2ULL << 30);
  Show("PUT /v1/alice/fs/photos/trip.mp4 (2 GiB)", client.Send(video));

  Show("GET /v1/alice/fs/photos?list=detail",
       client.Get("/v1/alice/fs/photos?list=detail"));
  auto listing = client.Get("/v1/alice/fs/photos?list=detail");
  if (listing.ok()) {
    std::printf("\nlisting body (Formatter tuples):\n%s\n",
                listing->body.c_str());
  }

  Show("POST move photos -> albums",
       client.Post("/v1/alice/fs/photos",
                   {{"x-op", "move"}, {"x-dest", "/albums"}}));
  auto beach = client.Get("/v1/alice/fs/albums/beach.jpg");
  Show("GET /v1/alice/fs/albums/beach.jpg", beach);
  if (beach.ok()) {
    std::printf("\nread back %zu bytes after the move\n",
                beach->body.size());
  }
  Show("GET /v1/alice/fs/albums/trip.mp4?stat=1",
       client.Get("/v1/alice/fs/albums/trip.mp4?stat=1"));
  auto stat = client.Get("/v1/alice/fs/albums/trip.mp4?stat=1");
  if (stat.ok()) std::printf("\nstat body:\n%s\n", stat->body.c_str());

  api.StopServer();
  std::puts("server stopped.");
  return 0;
}
