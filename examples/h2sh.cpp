// h2sh: an interactive shell over an H2Cloud filesystem.
//
// A tangible way to poke at the system: POSIX-ish commands are translated
// to H2 operations and each one reports its simulated storage cost.
//
// Usage:
//   ./build/examples/h2sh                 # interactive (reads stdin)
//   ./build/examples/h2sh -c 'mkdir /a; put /a/f hello; ls /a; cat /a/f'
//
// Commands:
//   mkdir <dir>            ls [-l] <dir>        put <file> <text...>
//   cat <file>             stat <path>          rm <file>
//   rmdir <dir>            mv <from> <to>       cp <from> <to>
//   rename <path> <name>   ns <dir>             objects
//   dirver <dir>           lsat <dir> <ver>     clone <from> <to>
//   maint                  help                 exit
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "h2/h2cloud.h"
#include "h2/monitor.h"

using namespace h2;

namespace {

struct Shell {
  H2Cloud cloud;
  std::unique_ptr<H2AccountFs> fs;

  Shell() {
    (void)cloud.CreateAccount("me");
    fs = std::move(cloud.OpenFilesystem("me")).value();
  }

  void ReportCost() {
    const OpCost& cost = fs->last_op();
    std::printf("  (%.1f ms, %llu primitives)\n", cost.elapsed_ms(),
                static_cast<unsigned long long>(cost.object_primitives()));
  }

  void Run(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return;

    auto arg = [&in]() {
      std::string a;
      in >> a;
      return a;
    };
    auto rest = [&in]() {
      std::string r;
      std::getline(in, r);
      while (!r.empty() && r.front() == ' ') r.erase(r.begin());
      return r;
    };
    auto show = [this](const Status& st) {
      if (!st.ok()) {
        std::printf("  error: %s\n", st.ToString().c_str());
      } else {
        ReportCost();
      }
    };

    if (cmd == "help") {
      std::puts(
          "  mkdir ls put cat stat rm rmdir mv cp rename ns objects "
          "dirver lsat clone monitor maint exit");
    } else if (cmd == "mkdir") {
      show(fs->Mkdir(arg()));
    } else if (cmd == "ls") {
      std::string a = arg();
      bool detailed = a == "-l";
      std::string dir = detailed ? arg() : a;
      if (dir.empty()) dir = std::string{"/"};
      auto entries = fs->List(
          dir, detailed ? ListDetail::kDetailed : ListDetail::kNamesOnly);
      if (!entries.ok()) {
        std::printf("  error: %s\n", entries.status().ToString().c_str());
        return;
      }
      for (const auto& e : *entries) {
        if (detailed) {
          std::printf("  %c %10llu  %s\n",
                      e.kind == EntryKind::kDirectory ? 'd' : '-',
                      static_cast<unsigned long long>(e.size),
                      e.name.c_str());
        } else {
          std::printf("  %s%s\n", e.name.c_str(),
                      e.kind == EntryKind::kDirectory ? "/" : "");
        }
      }
      ReportCost();
    } else if (cmd == "put") {
      const std::string path = arg();
      show(fs->WriteFile(path, FileBlob::FromString(rest())));
    } else if (cmd == "cat") {
      auto blob = fs->ReadFile(arg());
      if (!blob.ok()) {
        std::printf("  error: %s\n", blob.status().ToString().c_str());
        return;
      }
      std::printf("  %s\n", blob->data.c_str());
      ReportCost();
    } else if (cmd == "stat") {
      auto info = fs->Stat(arg());
      if (!info.ok()) {
        std::printf("  error: %s\n", info.status().ToString().c_str());
        return;
      }
      std::printf("  kind=%s size=%llu\n",
                  info->kind == EntryKind::kDirectory ? "dir" : "file",
                  static_cast<unsigned long long>(info->size));
      ReportCost();
    } else if (cmd == "rm") {
      show(fs->RemoveFile(arg()));
    } else if (cmd == "rmdir") {
      show(fs->Rmdir(arg()));
    } else if (cmd == "mv") {
      const std::string f = arg();
      show(fs->Move(f, arg()));
    } else if (cmd == "cp") {
      const std::string f = arg();
      show(fs->Copy(f, arg()));
    } else if (cmd == "rename") {
      const std::string p = arg();
      show(fs->Rename(p, arg()));
    } else if (cmd == "ns") {
      auto ns = fs->Namespace(arg());
      if (ns.ok()) {
        std::printf("  namespace %s\n", ns->ToString().c_str());
        ReportCost();
      } else {
        std::printf("  error: %s\n", ns.status().ToString().c_str());
      }
    } else if (cmd == "dirver") {
      auto version = fs->DirVersion(arg());
      if (!version.ok()) {
        std::printf("  error: %s\n", version.status().ToString().c_str());
        return;
      }
      std::printf("  version=%lld\n", static_cast<long long>(*version));
      ReportCost();
    } else if (cmd == "lsat") {
      const std::string dir = arg();
      const VirtualNanos version = std::strtoll(arg().c_str(), nullptr, 10);
      auto entries = fs->ListAt(dir, version, ListDetail::kNamesOnly);
      if (!entries.ok()) {
        std::printf("  error: %s\n", entries.status().ToString().c_str());
        return;
      }
      for (const auto& e : *entries) {
        std::printf("  %s%s\n", e.name.c_str(),
                    e.kind == EntryKind::kDirectory ? "/" : "");
      }
      ReportCost();
    } else if (cmd == "clone") {
      const std::string f = arg();
      show(fs->SnapshotClone(f, arg()));
    } else if (cmd == "objects") {
      std::printf("  %llu logical objects, %llu raw replicas, %s\n",
                  static_cast<unsigned long long>(
                      cloud.cloud().LogicalObjectCount()),
                  static_cast<unsigned long long>(
                      cloud.cloud().RawObjectCount()),
                  HumanBytes(cloud.cloud().LogicalBytes()).c_str());
    } else if (cmd == "monitor") {
      std::fputs(CollectSnapshot(cloud).ToText().c_str(), stdout);
    } else if (cmd == "maint") {
      const std::size_t steps = cloud.RunMaintenanceToQuiescence();
      const H2Counters counters = cloud.middleware(0).counters();
      std::printf("  quiescent after %zu steps; %llu patches merged\n",
                  steps,
                  static_cast<unsigned long long>(counters.patches_merged));
    } else if (cmd == "exit" || cmd == "quit") {
      std::exit(0);
    } else {
      std::printf("  unknown command '%s' (try help)\n", cmd.c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc >= 3 && std::string(argv[1]) == "-c") {
    for (auto part : Split(argv[2], ';')) {
      std::string cmd(part);
      std::printf("h2sh> %s\n", cmd.c_str());
      shell.Run(cmd);
    }
    return 0;
  }
  std::puts("h2sh -- type 'help' for commands, 'exit' to quit");
  std::string line;
  while (std::printf("h2sh> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    shell.Run(line);
  }
  return 0;
}
