// Backup & restore: H2Cloud as the live filesystem, Cumulus as the backup
// target -- the exact pairing the paper's related work motivates (§2:
// "Cumulus is able to backup a filesystem but is not competent to
// maintain a 'real' filesystem that frequently changes").
//
// A user's live H2Cloud drive is mirrored into a Cumulus compressed
// snapshot (cheap: appends + shared segments).  Disaster strikes -- the
// live tree is deleted -- and the snapshot restores it.  The run prints
// the simulated cost of each phase, showing why each system sits where it
// does: Cumulus ingests fast and restores whole trees fine, but random
// access to the backup is O(N).
//
// Run:  ./build/examples/backup_restore
#include <cstdio>

#include "baselines/snapshot_fs.h"
#include "h2/h2cloud.h"
#include "workload/mirror.h"
#include "workload/tree_gen.h"

using namespace h2;

int main() {
  // The live system.
  H2Cloud live_cloud;
  if (!live_cloud.CreateAccount("alice").ok()) return 1;
  auto live = std::move(live_cloud.OpenFilesystem("alice")).value();

  // Populate a mid-sized user's drive (large enough that the backup's
  // O(N) metadata-log scans are visible).
  TreeSpec spec = TreeSpec::Light(2024);
  spec.file_count = 8'000;
  spec.dir_count = 200;
  spec.max_depth = 6;
  const GeneratedTree tree = GenerateTree(spec);
  if (!PopulateTree(*live, tree).ok()) return 1;
  live_cloud.RunMaintenanceToQuiescence();
  std::printf("live H2Cloud drive: %zu dirs, %zu files, %.1f MiB logical\n",
              tree.dirs.size(), tree.files.size(),
              static_cast<double>(tree.total_bytes()) / (1 << 20));

  // The backup target: a Cumulus snapshot store in its own cloud.
  CloudConfig backup_cfg;
  ObjectCloud backup_cloud(backup_cfg);
  SnapshotFs backup(backup_cloud);

  auto up = MirrorTree(*live, backup);
  if (!up.ok()) {
    std::fprintf(stderr, "backup failed: %s\n",
                 up.status().ToString().c_str());
    return 1;
  }
  std::printf("\nbackup -> Cumulus: %zu files in %.1f s simulated write "
              "time\n",
              up->files, up->dest_cost.elapsed_ms() / 1000.0);
  std::printf("snapshot store: %zu metadata-log entries across %zu chunk "
              "objects\n",
              backup.log_entry_count(), backup.chunk_count());

  // Random access against the backup is the paper's O(N) pain point.
  if (!tree.files.empty()) {
    (void)backup.Stat(tree.files[tree.files.size() / 2].path);
    std::printf("random stat against the backup: %.1f ms (log scan)\n",
                backup.last_op().elapsed_ms());
    (void)live->Stat(tree.files[tree.files.size() / 2].path);
    std::printf("same stat against live H2Cloud:  %.1f ms\n",
                live->last_op().elapsed_ms());
  }

  // Disaster: the live tree is wiped.
  {
    auto top = live->List("/", ListDetail::kNamesOnly);
    if (!top.ok()) return 1;
    for (const auto& e : *top) {
      const std::string path = "/" + e.name;
      const Status st = e.kind == EntryKind::kDirectory
                            ? live->Rmdir(path)
                            : live->RemoveFile(path);
      if (!st.ok()) return 1;
    }
    live_cloud.RunMaintenanceToQuiescence();
  }
  auto after_wipe = live->List("/", ListDetail::kNamesOnly);
  std::printf("\ndisaster: live drive wiped (%zu entries remain)\n",
              after_wipe.ok() ? after_wipe->size() : 0);

  // Restore.
  auto down = MirrorTree(backup, *live);
  if (!down.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 down.status().ToString().c_str());
    return 1;
  }
  live_cloud.RunMaintenanceToQuiescence();
  std::printf("restore <- Cumulus: %zu files in %.1f s simulated time\n",
              down->files, down->dest_cost.elapsed_ms() / 1000.0);

  auto equal = TreesEqual(*live, backup);
  std::printf("restored tree identical to snapshot: %s\n",
              equal.ok() && *equal ? "YES" : "NO");
  // Spot-check content integrity.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < tree.files.size(); i += 29) {
    auto info = live->Stat(tree.files[i].path);
    if (!info.ok() || info->size != tree.files[i].size) {
      std::printf("MISMATCH at %s\n", tree.files[i].path.c_str());
      return 1;
    }
    ++checked;
  }
  std::printf("%zu spot checks passed.\n", checked);
  return equal.ok() && *equal ? 0 : 1;
}
