// Quickstart: stand up an H2Cloud, host a user's filesystem in the
// (simulated) object storage cloud, and watch what each POSIX-like
// operation costs in flat object primitives.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "h2/h2cloud.h"

using namespace h2;

namespace {

void Report(const char* op, const OpCost& cost) {
  std::printf("%-28s %7.1f ms   [GET=%llu PUT=%llu DEL=%llu HEAD=%llu "
              "COPY=%llu]\n",
              op, cost.elapsed_ms(),
              static_cast<unsigned long long>(cost.gets),
              static_cast<unsigned long long>(cost.puts),
              static_cast<unsigned long long>(cost.deletes),
              static_cast<unsigned long long>(cost.heads),
              static_cast<unsigned long long>(cost.copies));
}

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::h2::Status s_ = (expr);                                       \
    if (!s_.ok()) {                                                 \
      std::fprintf(stderr, "%s failed: %s\n", #expr,                \
                   s_.ToString().c_str());                          \
      return 1;                                                     \
    }                                                               \
  } while (0)

}  // namespace

int main() {
  // An 8-node object cloud with 3-way replication (the paper's rack) and
  // one H2 middleware on top.
  H2Cloud cloud;
  CHECK_OK(cloud.CreateAccount("alice"));
  auto fs_or = cloud.OpenFilesystem("alice");
  if (!fs_or.ok()) return 1;
  std::unique_ptr<H2AccountFs> fs = std::move(fs_or).value();

  std::puts("-- Building /home/ubuntu, the paper's running example --");
  CHECK_OK(fs->Mkdir("/home"));
  Report("MKDIR /home", fs->last_op());
  CHECK_OK(fs->Mkdir("/home/ubuntu"));
  Report("MKDIR /home/ubuntu", fs->last_op());
  CHECK_OK(fs->WriteFile("/home/ubuntu/file1",
                         FileBlob::FromString("hello, hierarchical hash")));
  Report("WRITE /home/ubuntu/file1", fs->last_op());

  // Every directory got a namespace UUID like "06.01.1469346604539".
  auto ns = fs->Namespace("/home/ubuntu");
  if (ns.ok()) {
    std::printf("\n/home/ubuntu lives in namespace %s\n",
                ns->ToString().c_str());
    // The quick method (§3.2): O(1) access via the decorated relative
    // path -- one HEAD, no directory walk.
    auto info = fs->StatRelative(*ns, "file1");
    if (info.ok()) {
      Report("STAT (quick, relative)", fs->last_op());
    }
  }
  auto info = fs->Stat("/home/ubuntu/file1");
  if (info.ok()) Report("STAT (regular, full path)", fs->last_op());

  std::puts("\n-- Directory operations are NameRing updates --");
  for (int i = 0; i < 5; ++i) {
    CHECK_OK(fs->WriteFile("/home/ubuntu/doc" + std::to_string(i),
                           FileBlob::FromString("x")));
  }
  auto names = fs->List("/home/ubuntu", ListDetail::kNamesOnly);
  if (names.ok()) {
    Report("LIST (names only, O(1))", fs->last_op());
    std::printf("   children:");
    for (const auto& e : *names) std::printf(" %s", e.name.c_str());
    std::puts("");
  }
  CHECK_OK(fs->Move("/home/ubuntu", "/home/renamed"));
  Report("MOVE directory (O(1))", fs->last_op());
  CHECK_OK(fs->Copy("/home/renamed", "/home/backup"));
  Report("COPY directory (O(n))", fs->last_op());

  // Background maintenance merges the submitted NameRing patches.
  cloud.RunMaintenanceToQuiescence();
  const H2Counters counters = cloud.middleware(0).counters();
  std::printf(
      "\nmaintenance: %llu patches submitted, %llu merged, background "
      "cost %.1f ms\n",
      static_cast<unsigned long long>(counters.patches_submitted),
      static_cast<unsigned long long>(counters.patches_merged),
      cloud.TotalMaintenanceCost().elapsed_ms());
  std::printf("cloud now holds %llu objects (files + directory records + "
              "NameRings)\n",
              static_cast<unsigned long long>(
                  cloud.cloud().LogicalObjectCount()));
  return 0;
}
