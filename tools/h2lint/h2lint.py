#!/usr/bin/env python3
"""h2lint: H2Cloud's determinism & hygiene linter.

The repository's evaluation rests on an invariant the compiler never
checks: the virtual-time cost model must be bit-deterministic from run to
run (every figure in PAPER.md is regenerated from it).  h2lint enforces
the determinism contract over src/ (see docs/STATIC_ANALYSIS.md):

  wall-clock        no reads of real time (std::chrono::*_clock, time(),
                    gettimeofday, ...).  Virtual time comes from SimClock
                    (src/common/clock.h) only.
  nondet-random     no nondeterministic randomness (std::random_device,
                    rand(), /dev/urandom).  Seeded generators live in
                    src/common/rng.*.
  unordered-iter    no iteration over std::unordered_{map,set} unless the
                    site is annotated `// h2lint: ordered` (meaning: the
                    loop has been audited -- its effects are order
                    insensitive, or it sorts before anything order
                    sensitive).  Unaudited unordered iteration is how
                    serialized output, NameRing merge order and OpMeter
                    charges go nondeterministic.
  discarded-status  no cloud primitive (Put/Get/Head/Delete/Copy/
                    ExecuteBatch) called as a bare statement: Status /
                    Result / BatchResults must be consumed, or the
                    discard made explicit with `(void)`.
  lock-order        the acquisition edges extracted from src/ (nested
                    scoped-guard scans + REQUIRES annotations), merged
                    with the declared order in tools/lock_hierarchy.txt,
                    must form a DAG; an extracted edge between two
                    declared locks must follow the declared order.
  seqlock-discipline  SeqLock readers must run inside a retry loop
                    (ReadBegin paired with ReadRetry) and must not chase
                    pointers inside the read section; writers must hold
                    the writer mutex around WriteBegin/WriteEnd.
  atomics-order     every explicit memory_order_* use-site carries a
                    single-line `// h2lint: mo(<why>)` justification on
                    the line or within the three lines above (wrapped
                    statements included); relaxed operations on
                    counter-named atomics are auto-allowed.

Modes:
  --mode=regex   (default) plain text scan; zero dependencies.
  --mode=clang   libclang AST scan where python-clang is installed;
                 falls back to regex with a note otherwise, so the tool
                 always runs (the contract the CI gate relies on).

Suppression:
  // h2lint: ordered            acknowledges an audited unordered-iter site
  // h2lint: allow(<rule>)      suppresses <rule> on that line (or a loop
                                whose header starts on the next line)
Both forms may sit on the flagged line or on the line directly above it.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = ("wall-clock", "nondet-random", "unordered-iter", "discarded-status",
         "lock-order", "seqlock-discipline", "atomics-order")

CXX_EXTENSIONS = (".cc", ".cpp", ".cxx", ".h", ".hpp")

# Files allowed to touch time/randomness primitives: the virtual clock and
# the seeded RNG are where the contract is *implemented*, and the sharded
# engine's wall timer (src/engine/wall_timer.h) is the single sanctioned
# real-clock read -- it measures throughput *around* operations and must
# never leak wall time into simulated state.  Everything else in src/
# keeps the contract.
ALLOWLIST = {
    "wall-clock": ("src/common/clock.h", "src/common/rng.h",
                   "src/common/rng.cc", "src/engine/wall_timer.h"),
    "nondet-random": ("src/common/clock.h", "src/common/rng.h",
                      "src/common/rng.cc"),
    # The SeqLock implementation is where the discipline is *implemented*.
    "seqlock-discipline": ("src/common/seqlock.h",),
}

WALL_CLOCK_PATTERNS = [
    re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
    re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&|\))"),
    re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get|ftime)\s*\("),
    re.compile(r"\b(?:localtime|gmtime|mktime)(?:_r)?\s*\("),
]

RANDOM_PATTERNS = [
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"\brandom_device\b"),
    re.compile(r"(?<![\w:.>])s?rand\s*\("),
    re.compile(r"(?<![\w:.>])random\s*\(\s*\)"),
    re.compile(r"/dev/u?random"),
]

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>\s*"
    r"[&*]?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)")

# Cloud primitives whose Status/Result/BatchResults must not be silently
# dropped when called as a bare statement.
PRIMITIVES = ("Put", "Get", "Head", "Delete", "Copy", "ExecuteBatch",
              "PutIfNewer", "ReplicaScrub", "AddStorageNode",
              "DecommissionNode")
DISCARD_CALL = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))+(?:" + "|".join(PRIMITIVES) +
    r")\s*\(")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# --- locking-contract patterns (docs/STATIC_ANALYSIS.md "Locking contract")

# Scoped guards from src/common/mutex.h.  Group 3 is the capability
# expression; the lock member is its last path component.
GUARD_RE = re.compile(
    r"\b(H2MutexLock|H2ReleasableMutexLock|H2WriterMutexLock|"
    r"H2ReaderMutexLock)\s+\w+\s*[({]\s*(\*?(?:this->)?)"
    r"([A-Za-z_][\w>.\-]*)\s*[)}]")

REQUIRES_RE = re.compile(r"\bREQUIRES(?:_SHARED)?\s*\(([^)]*)\)")

SEQ_READBEGIN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*ReadBegin\s*\(")
SEQ_WRITEBEGIN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*WriteBegin\s*\(")
LOOP_HEADER_RE = re.compile(
    r"\bfor\s*\(\s*;\s*;\s*\)|\bwhile\s*\(\s*(?:true|1)\s*\)|\bdo\s*\{")
POINTER_CHASE_RE = re.compile(r"(?<!this)->")

MEMORY_ORDER_RE = re.compile(
    r"\bmemory_order_(relaxed|consume|acquire|release|acq_rel|seq_cst)\b")
MO_JUSTIFY_RE = re.compile(r"h2lint:\s*mo\(")
# Counter-named atomics may use relaxed without a justification: a name
# that reads as a statistic implies commutative accumulation.
COUNTER_ATOMIC_RE = re.compile(
    r"\b[A-Za-z_]\w*(?:count|counter|total|hits|misses|overflow|round|"
    r"tick|ops|nanos|bytes|merges|errors)s?_?\s*"
    r"(?:\.|->)\s*(?:load|store|fetch_add|fetch_sub|exchange)\b",
    re.IGNORECASE)

ANNOTATION_RE = re.compile(r"//\s*h2lint:\s*([a-z()\-, ]+)")


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def starts_statement(stripped_lines, idx):
    """True when stripped_lines[idx] begins a new statement: the previous
    non-blank stripped line ends in `;`, `{`, `}` or a label `:`.  Filters
    out continuation lines (`x =` / `H2_RETURN_IF_ERROR(` spilling onto
    the next line), which are consumed expressions, not bare discards."""
    for j in range(idx - 1, -1, -1):
        prev = stripped_lines[j].rstrip()
        if not prev.strip():
            continue
        return prev.endswith((";", "{", "}", ":", ")"))
    return True


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments so patterns do not
    match inside them.  Keeps `h2lint:` annotations visible to the
    annotation matcher (which runs on the raw line)."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


def annotations_for(lines, idx):
    """Suppression annotations applying to lines[idx]: on the line itself
    or on the directly preceding line."""
    found = set()
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            m = ANNOTATION_RE.search(lines[j])
            if m:
                text = m.group(1)
                if "ordered" in text:
                    found.add("unordered-iter")
                for allow in re.findall(r"allow\(([a-z\-]+)\)", text):
                    found.add(allow)
    return found


def is_allowlisted(path, rule):
    norm = path.replace(os.sep, "/")
    return any(norm.endswith(suffix) for suffix in ALLOWLIST.get(rule, ()))


def sibling_header_paths(path, src_text, search_roots):
    """Paths whose unordered declarations are visible from `path`: its own
    quoted includes (resolved against the repo's include roots) and the
    header sharing its stem."""
    out = []
    stem, ext = os.path.splitext(path)
    if ext != ".h":
        for header_ext in (".h", ".hpp"):
            candidate = stem + header_ext
            if os.path.isfile(candidate):
                out.append(candidate)
    for m in INCLUDE_RE.finditer(src_text):
        for root in search_roots:
            candidate = os.path.join(root, m.group(1))
            if os.path.isfile(candidate):
                out.append(candidate)
                break
    return out


def unordered_names_in(text):
    names = set()
    for raw in text.splitlines():
        line = strip_comments_and_strings(raw)
        for m in UNORDERED_DECL.finditer(line):
            names.add(m.group(1))
    return names


def iter_sites(lines, names):
    """Yields (idx, name) for loop headers iterating an unordered
    container: range-for over `name`, or explicit `name.begin()`."""
    if not names:
        return
    union = "|".join(sorted(re.escape(n) for n in names))
    range_for = re.compile(r"for\s*\([^;()]*:\s*\*?(?:this->)?(" + union +
                           r")\s*\)")
    begin_iter = re.compile(r"\b(" + union + r")\s*\.\s*(?:c?begin)\s*\(")
    for idx, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        m = range_for.search(line) or begin_iter.search(line)
        if m:
            yield idx, m.group(1)


def lock_member_name(expr):
    """Last path component of a capability expression: `node->fault_mu_`,
    `cloud_.mu_` and plain `mu_` all reduce to the member name."""
    return re.split(r"\.|->", expr)[-1]


def component_of(path):
    stem = os.path.splitext(os.path.basename(path))[0]
    return stem


def enclosing_function_start(stripped, idx, max_scan=400):
    """Index of the line starting the function enclosing stripped[idx]:
    the nearest preceding column-0 line that opens a declarator.  Used by
    the seqlock and lock-order scans; headers with indented inline
    methods simply bound the scan at `max_scan` lines."""
    for j in range(idx, max(-1, idx - max_scan), -1):
        line = stripped[j]
        if line and not line[0].isspace() and line[0] not in "}#/":
            return j
    return max(0, idx - max_scan)


def enclosing_requires(stripped, idx):
    """Lock members named by REQUIRES/REQUIRES_SHARED clauses on the
    enclosing function's signature (definition-site annotations only;
    declaration-site annotations live in headers the scan also visits)."""
    start = enclosing_function_start(stripped, idx)
    names = []
    for j in range(start, min(idx + 1, start + 8)):
        for m in REQUIRES_RE.finditer(stripped[j]):
            for arg in m.group(1).split(","):
                arg = arg.strip()
                if arg:
                    names.append(lock_member_name(arg))
        if "{" in stripped[j]:
            break
    return names


def scan_lock_edges(path, lines, stripped):
    """Acquisition edges observed in one file: `held -> acquired` for
    every scoped-guard construction while another guard (or a REQUIRES
    capability) is live in an enclosing scope.  Lock names are qualified
    `<component>.<member>` to match tools/lock_hierarchy.txt."""
    comp = component_of(path)
    edges = []
    guards = []  # (brace_depth, qualified_name)
    depth = 0
    for idx, line in enumerate(stripped):
        m = GUARD_RE.search(line)
        if m:
            qual = f"{comp}.{lock_member_name(m.group(3))}"
            held = [q for _, q in guards]
            held += [f"{comp}.{name}"
                     for name in enclosing_requires(stripped, idx)]
            for h in held:
                if h != qual:
                    edges.append((h, qual, path, idx + 1))
            guards.append((depth, qual))
        depth += line.count("{") - line.count("}")
        if depth <= 0:
            depth = 0
            guards = []
        else:
            guards = [(d, q) for d, q in guards if d <= depth]
    return edges


def parse_hierarchy(path):
    """Declared `A -> B` edges from tools/lock_hierarchy.txt.  Returns
    (edges, findings): malformed lines are findings, not crashes, so the
    gate never silently passes on a broken hierarchy file."""
    edges = []
    findings = []
    try:
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [], [Finding(path, 0, "lock-order", str(e))]
    for lineno, raw in enumerate(raw_lines, 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = re.fullmatch(r"([\w.]+)\s*->\s*([\w.]+)", line)
        if not m:
            findings.append(Finding(
                path, lineno, "lock-order",
                f"malformed hierarchy line `{line}` "
                "(expected `component.lock -> component.lock`)"))
            continue
        edges.append((m.group(1), m.group(2)))
    return edges, findings


def find_cycle(adjacency):
    """One cycle in the digraph as a node list [a, b, ..., a], or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in adjacency}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for nxt in adjacency.get(node, ()):
            if color.get(nxt, WHITE) == GRAY:
                return stack[stack.index(nxt):] + [nxt]
            if color.get(nxt, WHITE) == WHITE:
                cycle = visit(nxt)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(adjacency):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return None


def reachable(adjacency, src):
    seen = set()
    frontier = [src]
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def lint_lock_order(files, hierarchy_path):
    """Global pass: merge declared and observed acquisition edges, fail
    on cycles and on observed edges that contradict or bypass the
    declared order."""
    declared, findings = parse_hierarchy(hierarchy_path)
    observed = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
        except OSError:
            continue
        stripped = [strip_comments_and_strings(raw) for raw in lines]
        for edge in scan_lock_edges(path, lines, stripped):
            src, dst, epath, eline = edge
            if "lock-order" in annotations_for(lines, eline - 1):
                continue
            observed.append(edge)

    adjacency = {}
    for src, dst in declared:
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())
    declared_nodes = set(adjacency)
    declared_reach = {n: reachable(adjacency, n) for n in declared_nodes}

    # Observed edges between two declared locks must follow the declared
    # (transitive) order; edges that invert it are reported here and any
    # cycle they introduce is reported below.
    for src, dst, path, lineno in observed:
        if src in declared_nodes and dst in declared_nodes and                 dst not in declared_reach[src]:
            findings.append(Finding(
                path, lineno, "lock-order",
                f"acquisition `{src}` -> `{dst}` is not covered by "
                f"{os.path.basename(hierarchy_path)}: declare the edge "
                "or restructure the nesting"))
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())

    cycle = find_cycle(adjacency)
    if cycle:
        where = next(((p, l) for s, d, p, l in observed
                      if s in cycle and d in cycle),
                     (hierarchy_path, 0))
        findings.append(Finding(
            where[0], where[1], "lock-order",
            "lock acquisition cycle: " + " -> ".join(cycle)))
    return findings


def function_end(stripped, idx, max_scan=400):
    """Index just past the enclosing function: the next column-0 `}`.
    Bounds the seqlock pairing scans so a ReadBegin cannot borrow a
    ReadRetry from the next function."""
    for j in range(idx, min(len(stripped), idx + max_scan)):
        if stripped[j].startswith("}"):
            return j + 1
    return min(len(stripped), idx + max_scan)


def lint_seqlock(path, lines, stripped):
    """Per-file seqlock discipline: reader retry loops, no pointer
    chasing inside read sections, writer mutex around WriteBegin."""
    findings = []
    if is_allowlisted(path, "seqlock-discipline"):
        return findings
    for idx, line in enumerate(stripped):
        if "seqlock-discipline" in annotations_for(lines, idx):
            continue
        m = SEQ_READBEGIN_RE.search(line)
        if m:
            obj = m.group(1)
            retry_re = re.compile(
                r"\b" + re.escape(obj) + r"\s*\.\s*ReadRetry\s*\(")
            retry_idx = next(
                (j for j in range(idx, function_end(stripped, idx))
                 if retry_re.search(stripped[j])), None)
            if retry_idx is None:
                findings.append(Finding(
                    path, idx + 1, "seqlock-discipline",
                    f"`{obj}.ReadBegin()` without a matching "
                    f"`{obj}.ReadRetry()`: seqlock reads must validate "
                    "the sequence"))
                continue
            window = stripped[max(0, idx - 4):idx + 1]
            in_loop = any(LOOP_HEADER_RE.search(w) for w in window) or                 re.search(r"while\s*\(", stripped[retry_idx])
            if not in_loop:
                findings.append(Finding(
                    path, idx + 1, "seqlock-discipline",
                    f"`{obj}.ReadBegin()` is not inside a retry loop: "
                    "a failed ReadRetry must restart the read section"))
            for j in range(idx + 1, retry_idx):
                if POINTER_CHASE_RE.search(stripped[j]) and                         "seqlock-discipline" not in                         annotations_for(lines, j):
                    findings.append(Finding(
                        path, j + 1, "seqlock-discipline",
                        "pointer chase inside a seqlock read section: "
                        "a torn pointer may be dereferenced before "
                        "ReadRetry rejects the read"))
        m = SEQ_WRITEBEGIN_RE.search(line)
        if m:
            obj = m.group(1)
            start = enclosing_function_start(stripped, idx)
            prologue = stripped[start:idx]
            holds = any(GUARD_RE.search(w) or REQUIRES_RE.search(w)
                        for w in prologue)
            if not holds:
                findings.append(Finding(
                    path, idx + 1, "seqlock-discipline",
                    f"`{obj}.WriteBegin()` without the writer mutex: no "
                    "scoped guard or REQUIRES clause precedes it in the "
                    "enclosing function"))
            end_re = re.compile(
                r"\b" + re.escape(obj) + r"\s*\.\s*WriteEnd\s*\(")
            if not any(end_re.search(stripped[j])
                       for j in range(idx, function_end(stripped, idx))):
                findings.append(Finding(
                    path, idx + 1, "seqlock-discipline",
                    f"`{obj}.WriteBegin()` without a matching "
                    f"`{obj}.WriteEnd()`: readers would spin forever on "
                    "an odd sequence"))
    return findings


def mo_justified(lines, idx):
    """True when a `// h2lint: mo(<why>)` justification covers
    lines[idx]: on the line itself or within the three lines above (the
    window absorbs wrapped statements and wrapped comments)."""
    for j in range(idx, max(-1, idx - 4), -1):
        if MO_JUSTIFY_RE.search(lines[j]):
            return True
    return False


def lint_atomics(path, lines, stripped):
    """Per-file atomics audit: explicit memory orders need a mo()
    justification; relaxed traffic on counter-named atomics passes."""
    findings = []
    for idx, line in enumerate(stripped):
        m = MEMORY_ORDER_RE.search(line)
        if not m:
            continue
        if "atomics-order" in annotations_for(lines, idx):
            continue
        if m.group(1) == "relaxed" and COUNTER_ATOMIC_RE.search(line):
            continue
        if not mo_justified(lines, idx):
            findings.append(Finding(
                path, idx + 1, "atomics-order",
                f"`memory_order_{m.group(1)}` without a "
                "`// h2lint: mo(<why>)` justification (line or the three "
                "lines above): state what the ordering pairs with, or "
                "why relaxed is safe"))
    return findings


def lint_file_regex(path, search_roots):
    findings = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(path, 0, "io", str(e))]
    lines = text.splitlines()
    stripped = [strip_comments_and_strings(raw) for raw in lines]

    names = unordered_names_in(text)
    for header in sibling_header_paths(path, text, search_roots):
        try:
            with open(header, encoding="utf-8", errors="replace") as f:
                names |= unordered_names_in(f.read())
        except OSError:
            pass

    unordered_hits = {idx: name for idx, name in iter_sites(lines, names)}

    for idx, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        suppressed = annotations_for(lines, idx)

        if not is_allowlisted(path, "wall-clock") and \
                "wall-clock" not in suppressed:
            for pat in WALL_CLOCK_PATTERNS:
                m = pat.search(line)
                if m:
                    findings.append(Finding(
                        path, idx + 1, "wall-clock",
                        f"wall-clock read `{m.group(0).strip()}`: virtual "
                        "time must come from SimClock (src/common/clock.h)"))
                    break

        if not is_allowlisted(path, "nondet-random") and \
                "nondet-random" not in suppressed:
            for pat in RANDOM_PATTERNS:
                m = pat.search(line)
                if m:
                    findings.append(Finding(
                        path, idx + 1, "nondet-random",
                        f"nondeterministic randomness `{m.group(0).strip()}`:"
                        " use the seeded generators in src/common/rng.h"))
                    break

        if idx in unordered_hits and "unordered-iter" not in suppressed:
            findings.append(Finding(
                path, idx + 1, "unordered-iter",
                f"iteration over unordered container `{unordered_hits[idx]}`"
                " without `// h2lint: ordered` audit annotation: sort "
                "first if anything order-sensitive consumes this loop"))

        if "discarded-status" not in suppressed and \
                DISCARD_CALL.match(line) and starts_statement(stripped, idx):
            findings.append(Finding(
                path, idx + 1, "discarded-status",
                "cloud primitive called as a bare statement: consume the "
                "Status/Result/BatchResults or discard explicitly with "
                "`(void)`"))

    findings.extend(lint_seqlock(path, lines, stripped))
    findings.extend(lint_atomics(path, lines, stripped))
    return findings


# ---------------------------------------------------------------------------
# libclang mode (optional).  AST-accurate for call-based rules; falls back
# to the regex scan when python-clang is unavailable so the gate always
# runs.
# ---------------------------------------------------------------------------

BANNED_CALLS = {
    "time", "gettimeofday", "clock_gettime", "timespec_get", "localtime",
    "gmtime", "mktime", "clock", "rand", "srand", "random",
}
BANNED_TYPES = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "random_device",
}


def lint_file_clang(path, search_roots, cindex):
    findings = []
    index = cindex.Index.create()
    args = ["-std=c++20"] + [f"-I{root}" for root in search_roots]
    tu = index.parse(path, args=args)
    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()

    def suppressed(line_no, rule):
        return rule in annotations_for(lines, line_no - 1)

    for cursor in tu.cursor.walk_preorder():
        if cursor.location.file is None or \
                cursor.location.file.name != path:
            continue
        line_no = cursor.location.line
        kind = cursor.kind
        if kind == cindex.CursorKind.CALL_EXPR and \
                cursor.spelling in BANNED_CALLS:
            rule = ("nondet-random"
                    if cursor.spelling in ("rand", "srand", "random")
                    else "wall-clock")
            if not is_allowlisted(path, rule) and \
                    not suppressed(line_no, rule):
                findings.append(Finding(
                    path, line_no, rule,
                    f"call to banned function `{cursor.spelling}`"))
        elif kind in (cindex.CursorKind.TYPE_REF,
                      cindex.CursorKind.DECL_REF_EXPR) and \
                cursor.spelling in BANNED_TYPES:
            rule = ("nondet-random" if cursor.spelling == "random_device"
                    else "wall-clock")
            if not is_allowlisted(path, rule) and \
                    not suppressed(line_no, rule):
                findings.append(Finding(
                    path, line_no, rule,
                    f"reference to banned type `{cursor.spelling}`"))
    # Text-based rules stay regex-driven even under clang mode: the
    # annotation contract is line-oriented.
    for f in lint_file_regex(path, search_roots):
        if f.rule in ("unordered-iter", "discarded-status",
                      "seqlock-discipline", "atomics-order"):
            findings.append(f)
    return findings


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("build", ".git", "testdata"))
                for name in sorted(filenames):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"h2lint: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="h2lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--mode", choices=("regex", "clang"),
                        default="regex",
                        help="analysis backend (clang falls back to regex "
                             "when python-clang is unavailable)")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="restrict to specific rule(s)")
    parser.add_argument("-I", "--include-root", action="append",
                        default=[],
                        help="include roots for header resolution "
                             "(default: src/ under the repo root)")
    parser.add_argument("--hierarchy", default=None,
                        help="lock hierarchy file for the lock-order rule "
                             "(default: tools/lock_hierarchy.txt under the "
                             "repo root; pass an empty string to skip)")
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    search_roots = args.include_root or [os.path.join(repo_root, "src")]
    hierarchy = args.hierarchy
    if hierarchy is None:
        hierarchy = os.path.join(repo_root, "tools", "lock_hierarchy.txt")

    lint_one = lint_file_regex
    if args.mode == "clang":
        try:
            from clang import cindex  # noqa: PLC0415
            lint_one = lambda p, roots: lint_file_clang(p, roots, cindex)
        except ImportError:
            print("h2lint: python-clang not available; "
                  "falling back to regex mode", file=sys.stderr)

    findings = []
    files = collect_files(args.paths)
    for path in files:
        findings.extend(lint_one(path, search_roots))
    if hierarchy and (not args.rule or "lock-order" in args.rule):
        findings.extend(lint_lock_order(files, hierarchy))
    if args.rule:
        findings = [f for f in findings if f.rule in args.rule]

    for f in findings:
        print(f)
    if findings:
        print(f"h2lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
