#!/usr/bin/env python3
"""h2lint: H2Cloud's determinism & hygiene linter.

The repository's evaluation rests on an invariant the compiler never
checks: the virtual-time cost model must be bit-deterministic from run to
run (every figure in PAPER.md is regenerated from it).  h2lint enforces
the determinism contract over src/ (see docs/STATIC_ANALYSIS.md):

  wall-clock        no reads of real time (std::chrono::*_clock, time(),
                    gettimeofday, ...).  Virtual time comes from SimClock
                    (src/common/clock.h) only.
  nondet-random     no nondeterministic randomness (std::random_device,
                    rand(), /dev/urandom).  Seeded generators live in
                    src/common/rng.*.
  unordered-iter    no iteration over std::unordered_{map,set} unless the
                    site is annotated `// h2lint: ordered` (meaning: the
                    loop has been audited -- its effects are order
                    insensitive, or it sorts before anything order
                    sensitive).  Unaudited unordered iteration is how
                    serialized output, NameRing merge order and OpMeter
                    charges go nondeterministic.
  discarded-status  no cloud primitive (Put/Get/Head/Delete/Copy/
                    ExecuteBatch) called as a bare statement: Status /
                    Result / BatchResults must be consumed, or the
                    discard made explicit with `(void)`.

Modes:
  --mode=regex   (default) plain text scan; zero dependencies.
  --mode=clang   libclang AST scan where python-clang is installed;
                 falls back to regex with a note otherwise, so the tool
                 always runs (the contract the CI gate relies on).

Suppression:
  // h2lint: ordered            acknowledges an audited unordered-iter site
  // h2lint: allow(<rule>)      suppresses <rule> on that line (or a loop
                                whose header starts on the next line)
Both forms may sit on the flagged line or on the line directly above it.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = ("wall-clock", "nondet-random", "unordered-iter", "discarded-status")

CXX_EXTENSIONS = (".cc", ".cpp", ".cxx", ".h", ".hpp")

# Files allowed to touch time/randomness primitives: the virtual clock and
# the seeded RNG are where the contract is *implemented*, and the sharded
# engine's wall timer (src/engine/wall_timer.h) is the single sanctioned
# real-clock read -- it measures throughput *around* operations and must
# never leak wall time into simulated state.  Everything else in src/
# keeps the contract.
ALLOWLIST = {
    "wall-clock": ("src/common/clock.h", "src/common/rng.h",
                   "src/common/rng.cc", "src/engine/wall_timer.h"),
    "nondet-random": ("src/common/clock.h", "src/common/rng.h",
                      "src/common/rng.cc"),
}

WALL_CLOCK_PATTERNS = [
    re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
    re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&|\))"),
    re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get|ftime)\s*\("),
    re.compile(r"\b(?:localtime|gmtime|mktime)(?:_r)?\s*\("),
]

RANDOM_PATTERNS = [
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"\brandom_device\b"),
    re.compile(r"(?<![\w:.>])s?rand\s*\("),
    re.compile(r"(?<![\w:.>])random\s*\(\s*\)"),
    re.compile(r"/dev/u?random"),
]

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>\s*"
    r"[&*]?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)")

# Cloud primitives whose Status/Result/BatchResults must not be silently
# dropped when called as a bare statement.
PRIMITIVES = ("Put", "Get", "Head", "Delete", "Copy", "ExecuteBatch",
              "PutIfNewer", "ReplicaScrub", "AddStorageNode",
              "DecommissionNode")
DISCARD_CALL = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))+(?:" + "|".join(PRIMITIVES) +
    r")\s*\(")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

ANNOTATION_RE = re.compile(r"//\s*h2lint:\s*([a-z()\-, ]+)")


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def starts_statement(stripped_lines, idx):
    """True when stripped_lines[idx] begins a new statement: the previous
    non-blank stripped line ends in `;`, `{`, `}` or a label `:`.  Filters
    out continuation lines (`x =` / `H2_RETURN_IF_ERROR(` spilling onto
    the next line), which are consumed expressions, not bare discards."""
    for j in range(idx - 1, -1, -1):
        prev = stripped_lines[j].rstrip()
        if not prev.strip():
            continue
        return prev.endswith((";", "{", "}", ":", ")"))
    return True


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments so patterns do not
    match inside them.  Keeps `h2lint:` annotations visible to the
    annotation matcher (which runs on the raw line)."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


def annotations_for(lines, idx):
    """Suppression annotations applying to lines[idx]: on the line itself
    or on the directly preceding line."""
    found = set()
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            m = ANNOTATION_RE.search(lines[j])
            if m:
                text = m.group(1)
                if "ordered" in text:
                    found.add("unordered-iter")
                for allow in re.findall(r"allow\(([a-z\-]+)\)", text):
                    found.add(allow)
    return found


def is_allowlisted(path, rule):
    norm = path.replace(os.sep, "/")
    return any(norm.endswith(suffix) for suffix in ALLOWLIST.get(rule, ()))


def sibling_header_paths(path, src_text, search_roots):
    """Paths whose unordered declarations are visible from `path`: its own
    quoted includes (resolved against the repo's include roots) and the
    header sharing its stem."""
    out = []
    stem, ext = os.path.splitext(path)
    if ext != ".h":
        for header_ext in (".h", ".hpp"):
            candidate = stem + header_ext
            if os.path.isfile(candidate):
                out.append(candidate)
    for m in INCLUDE_RE.finditer(src_text):
        for root in search_roots:
            candidate = os.path.join(root, m.group(1))
            if os.path.isfile(candidate):
                out.append(candidate)
                break
    return out


def unordered_names_in(text):
    names = set()
    for raw in text.splitlines():
        line = strip_comments_and_strings(raw)
        for m in UNORDERED_DECL.finditer(line):
            names.add(m.group(1))
    return names


def iter_sites(lines, names):
    """Yields (idx, name) for loop headers iterating an unordered
    container: range-for over `name`, or explicit `name.begin()`."""
    if not names:
        return
    union = "|".join(sorted(re.escape(n) for n in names))
    range_for = re.compile(r"for\s*\([^;()]*:\s*\*?(?:this->)?(" + union +
                           r")\s*\)")
    begin_iter = re.compile(r"\b(" + union + r")\s*\.\s*(?:c?begin)\s*\(")
    for idx, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        m = range_for.search(line) or begin_iter.search(line)
        if m:
            yield idx, m.group(1)


def lint_file_regex(path, search_roots):
    findings = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(path, 0, "io", str(e))]
    lines = text.splitlines()
    stripped = [strip_comments_and_strings(raw) for raw in lines]

    names = unordered_names_in(text)
    for header in sibling_header_paths(path, text, search_roots):
        try:
            with open(header, encoding="utf-8", errors="replace") as f:
                names |= unordered_names_in(f.read())
        except OSError:
            pass

    unordered_hits = {idx: name for idx, name in iter_sites(lines, names)}

    for idx, raw in enumerate(lines):
        line = strip_comments_and_strings(raw)
        suppressed = annotations_for(lines, idx)

        if not is_allowlisted(path, "wall-clock") and \
                "wall-clock" not in suppressed:
            for pat in WALL_CLOCK_PATTERNS:
                m = pat.search(line)
                if m:
                    findings.append(Finding(
                        path, idx + 1, "wall-clock",
                        f"wall-clock read `{m.group(0).strip()}`: virtual "
                        "time must come from SimClock (src/common/clock.h)"))
                    break

        if not is_allowlisted(path, "nondet-random") and \
                "nondet-random" not in suppressed:
            for pat in RANDOM_PATTERNS:
                m = pat.search(line)
                if m:
                    findings.append(Finding(
                        path, idx + 1, "nondet-random",
                        f"nondeterministic randomness `{m.group(0).strip()}`:"
                        " use the seeded generators in src/common/rng.h"))
                    break

        if idx in unordered_hits and "unordered-iter" not in suppressed:
            findings.append(Finding(
                path, idx + 1, "unordered-iter",
                f"iteration over unordered container `{unordered_hits[idx]}`"
                " without `// h2lint: ordered` audit annotation: sort "
                "first if anything order-sensitive consumes this loop"))

        if "discarded-status" not in suppressed and \
                DISCARD_CALL.match(line) and starts_statement(stripped, idx):
            findings.append(Finding(
                path, idx + 1, "discarded-status",
                "cloud primitive called as a bare statement: consume the "
                "Status/Result/BatchResults or discard explicitly with "
                "`(void)`"))
    return findings


# ---------------------------------------------------------------------------
# libclang mode (optional).  AST-accurate for call-based rules; falls back
# to the regex scan when python-clang is unavailable so the gate always
# runs.
# ---------------------------------------------------------------------------

BANNED_CALLS = {
    "time", "gettimeofday", "clock_gettime", "timespec_get", "localtime",
    "gmtime", "mktime", "clock", "rand", "srand", "random",
}
BANNED_TYPES = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "random_device",
}


def lint_file_clang(path, search_roots, cindex):
    findings = []
    index = cindex.Index.create()
    args = ["-std=c++20"] + [f"-I{root}" for root in search_roots]
    tu = index.parse(path, args=args)
    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()

    def suppressed(line_no, rule):
        return rule in annotations_for(lines, line_no - 1)

    for cursor in tu.cursor.walk_preorder():
        if cursor.location.file is None or \
                cursor.location.file.name != path:
            continue
        line_no = cursor.location.line
        kind = cursor.kind
        if kind == cindex.CursorKind.CALL_EXPR and \
                cursor.spelling in BANNED_CALLS:
            rule = ("nondet-random"
                    if cursor.spelling in ("rand", "srand", "random")
                    else "wall-clock")
            if not is_allowlisted(path, rule) and \
                    not suppressed(line_no, rule):
                findings.append(Finding(
                    path, line_no, rule,
                    f"call to banned function `{cursor.spelling}`"))
        elif kind in (cindex.CursorKind.TYPE_REF,
                      cindex.CursorKind.DECL_REF_EXPR) and \
                cursor.spelling in BANNED_TYPES:
            rule = ("nondet-random" if cursor.spelling == "random_device"
                    else "wall-clock")
            if not is_allowlisted(path, rule) and \
                    not suppressed(line_no, rule):
                findings.append(Finding(
                    path, line_no, rule,
                    f"reference to banned type `{cursor.spelling}`"))
    # Text-based rules stay regex-driven even under clang mode: the
    # annotation contract is line-oriented.
    for f in lint_file_regex(path, search_roots):
        if f.rule in ("unordered-iter", "discarded-status"):
            findings.append(f)
    return findings


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("build", ".git", "testdata"))
                for name in sorted(filenames):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"h2lint: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="h2lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--mode", choices=("regex", "clang"),
                        default="regex",
                        help="analysis backend (clang falls back to regex "
                             "when python-clang is unavailable)")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="restrict to specific rule(s)")
    parser.add_argument("-I", "--include-root", action="append",
                        default=[],
                        help="include roots for header resolution "
                             "(default: src/ under the repo root)")
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    search_roots = args.include_root or [os.path.join(repo_root, "src")]

    lint_one = lint_file_regex
    if args.mode == "clang":
        try:
            from clang import cindex  # noqa: PLC0415
            lint_one = lambda p, roots: lint_file_clang(p, roots, cindex)
        except ImportError:
            print("h2lint: python-clang not available; "
                  "falling back to regex mode", file=sys.stderr)

    findings = []
    for path in collect_files(args.paths):
        findings.extend(lint_one(path, search_roots))
    if args.rule:
        findings = [f for f in findings if f.rule in args.rule]

    for f in findings:
        print(f)
    if findings:
        print(f"h2lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
