// h2lint fixture: MUST FAIL [lock-order].
//
// Two functions nest the same pair of locks in opposite orders.  The
// extracted acquisition edges (bad_lock_order.a_mu_ -> .b_mu_ and the
// inverse) form a cycle no hierarchy file can legalize: two threads
// running First and Second concurrently deadlock.

struct Widget {
  H2Mutex a_mu_;
  H2Mutex b_mu_;
};

void First(Widget& w) {
  H2MutexLock a(w.a_mu_);
  H2MutexLock b(w.b_mu_);  // a_mu_ held: edge a_mu_ -> b_mu_
}

void Second(Widget& w) {
  H2MutexLock b(w.b_mu_);
  H2MutexLock a(w.a_mu_);  // b_mu_ held: edge b_mu_ -> a_mu_ (cycle!)
}
