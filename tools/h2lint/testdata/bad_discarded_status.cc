// h2lint fixture: cloud primitives called as bare statements, silently
// dropping Status / BatchResults.  Expected: [discarded-status] findings
// on every marked line.
namespace fixture {

struct Status {
  bool ok() const { return true; }
};

struct Cloud {
  Status Put(int key) { return key ? Status{} : Status{}; }
  Status Delete(int key) { return key ? Status{} : Status{}; }
  Status ExecuteBatch(int n) { return n ? Status{} : Status{}; }
};

void Bad(Cloud& cloud) {
  cloud.Put(1);                                         // flagged
  cloud.Delete(2);                                      // flagged
  cloud.ExecuteBatch(3);                                // flagged
}

}  // namespace fixture
