// h2lint fixture: the compliant shapes of everything the other fixtures
// get flagged for.  Expected: clean.
#include <map>
#include <string>

namespace fixture {

struct Status {
  bool ok() const { return true; }
};

struct Cloud {
  Status Put(int key) { return key ? Status{} : Status{}; }
  Status Delete(int key) { return key ? Status{} : Status{}; }
};

// Consumed, propagated, or explicitly discarded primitive results.
Status Good(Cloud& cloud) {
  Status put = cloud.Put(1);
  if (!put.ok()) return put;
  (void)cloud.Delete(2);  // explicit discard: best-effort cleanup
  return cloud.Put(3);
}

// Ordered containers serialize deterministically without annotations.
std::string Serialize(const std::map<std::string, std::string>& fields) {
  std::string out;
  for (const auto& [key, value] : fields) {
    out += key + "=" + value + "\n";
  }
  return out;
}

}  // namespace fixture
