// h2lint fixture: wall-clock reads the determinism contract forbids.
// Expected: [wall-clock] findings on every marked line.
#include <chrono>
#include <ctime>

namespace fixture {

long Bad() {
  auto a = std::chrono::system_clock::now();            // flagged
  auto b = std::chrono::steady_clock::now();            // flagged
  const std::time_t c = time(nullptr);                  // flagged
  struct timespec ts;
  clock_gettime(0, &ts);                                // flagged
  return static_cast<long>(c) + ts.tv_sec +
         a.time_since_epoch().count() + b.time_since_epoch().count();
}

}  // namespace fixture
