// h2lint fixture: MUST FAIL [seqlock-discipline] (all three shapes).

struct Row {
  Row* next;
  unsigned long id;
};

struct Table {
  SeqLock seq_;
  unsigned long rows_[4];
  Row* head_;
};

// 1. ReadBegin with no ReadRetry at all: the read never validates the
// sequence, so it happily returns a torn row.
unsigned long BrokenRead(const Table& t) {
  const unsigned before = t.seq_.ReadBegin();
  (void)before;
  return t.rows_[0];
}

// 2. ReadRetry present but no retry loop (a failed validation has
// nowhere to go), plus a pointer chase inside the read section: the
// torn pointer is dereferenced before ReadRetry can reject it.
unsigned long ChasingRead(const Table& t) {
  const unsigned before = t.seq_.ReadBegin();
  Row* row = t.head_->next;
  if (t.seq_.ReadRetry(before)) return 0;
  return row->id;
}

// 3. WriteBegin without the writer mutex: concurrent writers interleave
// their sequence bumps and the seqlock stops meaning anything.
void UnlockedPublish(Table& t) {
  t.seq_.WriteBegin();
  t.rows_[0] = 1;
  t.seq_.WriteEnd();
}
