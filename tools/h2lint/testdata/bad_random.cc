// h2lint fixture: nondeterministic randomness outside src/common/rng.*.
// Expected: [nondet-random] findings on every marked line.
#include <cstdlib>
#include <random>

namespace fixture {

int Bad() {
  std::random_device rd;                                // flagged
  std::mt19937 gen(rd());
  srand(42);                                            // flagged
  return rand() + static_cast<int>(gen());              // flagged
}

}  // namespace fixture
