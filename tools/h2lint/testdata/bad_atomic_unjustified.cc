// h2lint fixture: MUST FAIL [atomics-order].
//
// Explicit memory orders with no `// h2lint: mo(<why>)` justification.
// The names are deliberately not counter-shaped, so the relaxed
// auto-allowlist does not apply either.

#include <atomic>

struct State {
  std::atomic<bool> flag_{false};
  std::atomic<int> value_{0};
};

bool Ready(const State& s) {
  return s.flag_.load(std::memory_order_acquire);
}

void Publish(State& s) {
  s.value_.store(1, std::memory_order_release);
  s.flag_.store(true, std::memory_order_release);
}

int SneakyRelaxedRead(const State& s) {
  return s.value_.load(std::memory_order_relaxed);
}
