// h2lint fixture: unaudited iteration over unordered containers feeding
// serialized output.  Expected: [unordered-iter] findings on both loops.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

std::string Serialize(
    const std::unordered_map<std::string, std::string>& fields,
    const std::unordered_set<std::string>& tags) {
  std::string out;
  for (const auto& [key, value] : fields) {             // flagged
    out += key + "=" + value + "\n";
  }
  for (auto it = tags.begin(); it != tags.end(); ++it) {  // flagged
    out += *it;
  }
  return out;
}

}  // namespace fixture
