// h2lint fixture: audited unordered iteration.  The first loop only
// accumulates a commutative sum (order insensitive); the second sorts
// before serializing.  Expected: clean.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

std::string Serialize(
    const std::unordered_map<std::string, std::string>& fields) {
  std::size_t total = 0;
  // h2lint: ordered -- commutative accumulation, order insensitive
  for (const auto& [key, value] : fields) {
    total += key.size() + value.size();
  }

  std::vector<std::string> lines;
  lines.reserve(fields.size());
  for (const auto& [key, value] : fields) {  // h2lint: ordered (sorted below)
    lines.push_back(key + "=" + value);
  }
  std::sort(lines.begin(), lines.end());

  std::string out = std::to_string(total) + "\n";
  for (const auto& line : lines) out += line + "\n";
  return out;
}

}  // namespace fixture
