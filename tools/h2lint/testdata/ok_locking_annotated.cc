// h2lint fixture: MUST PASS.
//
// The compliant side of the locking-contract rules: consistent nesting
// order, an audited inversion suppressed with `allow(lock-order)`, a
// well-formed seqlock retry loop, justified memory orders and the
// counters-only relaxed auto-allowlist.

#include <atomic>

struct Widget {
  H2Mutex a_mu_;
  H2Mutex b_mu_;
};

struct Table {
  SeqLock seq_;
  unsigned long rows_[4];
};

struct Meter {
  std::atomic<bool> flag_{false};
  std::atomic<unsigned long> hint_overflows_{0};
};

void Consistent(Widget& w) {
  H2MutexLock a(w.a_mu_);
  H2MutexLock b(w.b_mu_);
}

void AlsoConsistent(Widget& w) {
  H2MutexLock a(w.a_mu_);
  { H2MutexLock b(w.b_mu_); }
}

void AuditedTeardown(Widget& w) {
  H2MutexLock b(w.b_mu_);
  // h2lint: allow(lock-order) -- teardown: a_mu_'s owner already joined
  H2MutexLock a(w.a_mu_);
}

unsigned long GoodRead(const Table& t) {
  for (;;) {
    const unsigned before = t.seq_.ReadBegin();
    const unsigned long row = t.rows_[0];
    if (!t.seq_.ReadRetry(before)) return row;
  }
}

void GoodPublish(Widget& w, Table& t) {
  H2MutexLock writer(w.a_mu_);
  t.seq_.WriteBegin();
  t.rows_[0] = 1;
  t.seq_.WriteEnd();
}

bool JustifiedAcquire(const Meter& m) {
  // h2lint: mo(acquire pairs with SetReady's release store)
  return m.flag_.load(std::memory_order_acquire);
}

void SetReady(Meter& m) {
  // h2lint: mo(release publishes everything written before the flag)
  m.flag_.store(true, std::memory_order_release);
}

void CountOverflow(Meter& m) {
  // Counter-named relaxed traffic needs no mo(): auto-allowed.
  m.hint_overflows_.fetch_add(1, std::memory_order_relaxed);
}

int AllowedOddball(const Meter& m) {
  // h2lint: allow(atomics-order) -- fixture for the suppression path
  return m.flag_.load(std::memory_order_seq_cst) ? 1 : 0;
}
