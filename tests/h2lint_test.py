#!/usr/bin/env python3
"""Self-test for tools/h2lint: every rule must have a failing fixture, the
annotated/compliant fixtures must pass, and src/ must lint clean.

Run directly (`python3 tests/h2lint_test.py`) or via ctest (registered as
`h2lint_test` when Python3 is found at configure time).
"""

import os
import subprocess
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
H2LINT = os.path.join(REPO_ROOT, "tools", "h2lint", "h2lint.py")
TESTDATA = os.path.join(REPO_ROOT, "tools", "h2lint", "testdata")


def run_h2lint(*args):
    proc = subprocess.run(
        [sys.executable, H2LINT, *args],
        capture_output=True, text=True, cwd=REPO_ROOT, check=False)
    return proc.returncode, proc.stdout, proc.stderr


class FixtureTest(unittest.TestCase):
    """Known-bad fixtures must fail with the expected rule; compliant
    fixtures must pass."""

    def assert_flags(self, fixture, rule, min_findings=1):
        code, out, _ = run_h2lint(os.path.join(TESTDATA, fixture))
        self.assertEqual(code, 1, f"{fixture} should fail\noutput: {out}")
        hits = [l for l in out.splitlines() if f"[{rule}]" in l]
        self.assertGreaterEqual(
            len(hits), min_findings,
            f"{fixture} should produce >= {min_findings} [{rule}] "
            f"finding(s)\noutput: {out}")

    def assert_clean(self, fixture):
        code, out, _ = run_h2lint(os.path.join(TESTDATA, fixture))
        self.assertEqual(code, 0, f"{fixture} should pass\noutput: {out}")

    def test_wall_clock_fixture_fails(self):
        self.assert_flags("bad_wall_clock.cc", "wall-clock", min_findings=3)

    def test_random_fixture_fails(self):
        self.assert_flags("bad_random.cc", "nondet-random", min_findings=2)

    def test_unordered_iter_fixture_fails(self):
        self.assert_flags("bad_unordered_iter.cc", "unordered-iter",
                          min_findings=2)

    def test_discarded_status_fixture_fails(self):
        self.assert_flags("bad_discarded_status.cc", "discarded-status",
                          min_findings=2)

    def test_lock_order_fixture_fails(self):
        # Inverted nesting between two locks is a cycle regardless of
        # what tools/lock_hierarchy.txt declares.
        self.assert_flags("bad_lock_order.cc", "lock-order")

    def test_seqlock_fixture_fails(self):
        # All three discipline shapes: missing ReadRetry, read section
        # outside a retry loop + pointer chase, unlocked WriteBegin.
        self.assert_flags("bad_seqlock.cc", "seqlock-discipline",
                          min_findings=4)

    def test_atomics_fixture_fails(self):
        self.assert_flags("bad_atomic_unjustified.cc", "atomics-order",
                          min_findings=4)

    def test_locking_annotated_fixture_passes(self):
        # Compliant nesting, an allow(lock-order) audited inversion, a
        # well-formed seqlock loop, mo() justifications and the
        # counters-only relaxed auto-allowlist.
        self.assert_clean("ok_locking_annotated.cc")

    def test_hierarchy_covers_extracted_edges(self):
        # An extracted edge between locks the hierarchy names must follow
        # the declared order: flipping the hierarchy direction makes the
        # real sources fail, proving the file is load-bearing.
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write("storage_node.fault_mu_ -> storage_node.mu_\n")
            inverted = f.name
        try:
            code, out, _ = run_h2lint(
                "--rule", "lock-order", "--hierarchy", inverted,
                os.path.join(REPO_ROOT, "src", "cluster"))
            self.assertEqual(
                code, 1,
                f"inverted hierarchy must flag storage_node\n{out}")
            self.assertIn("[lock-order]", out)
        finally:
            os.unlink(inverted)

    def test_annotated_unordered_fixture_passes(self):
        self.assert_clean("ok_unordered_annotated.cc")

    def test_clean_fixture_passes(self):
        self.assert_clean("ok_clean.cc")

    def test_rule_filter(self):
        # --rule restricts output: the wall-clock fixture has no
        # discarded-status findings, so filtering to that rule passes.
        code, out, _ = run_h2lint("--rule", "discarded-status",
                                  os.path.join(TESTDATA, "bad_wall_clock.cc"))
        self.assertEqual(code, 0, out)

    def test_clang_mode_falls_back(self):
        # --mode=clang must still produce findings (via libclang when
        # python-clang is installed, via the regex fallback otherwise).
        code, out, err = run_h2lint(
            "--mode=clang", os.path.join(TESTDATA, "bad_wall_clock.cc"))
        self.assertEqual(code, 1, f"stdout: {out}\nstderr: {err}")
        self.assertIn("[wall-clock]", out)


class SourceTreeTest(unittest.TestCase):
    """The determinism contract holds over the real sources."""

    def test_src_lints_clean(self):
        code, out, _ = run_h2lint(os.path.join(REPO_ROOT, "src"))
        self.assertEqual(code, 0, f"src/ must lint clean\noutput: {out}")

    def test_wall_timer_is_the_sanctioned_wall_clock(self):
        # The sharded engine's wall timer reads steady_clock by design
        # (real throughput measurement) and is allowlisted by path ...
        timer = os.path.join(REPO_ROOT, "src", "engine", "wall_timer.h")
        code, out, _ = run_h2lint(timer)
        self.assertEqual(code, 0, f"wall_timer.h is allowlisted\n{out}")
        # ... but the allowlist is the file, not the pattern: the same
        # tokens anywhere else keep failing (bad_wall_clock.cc covers the
        # fixture side; this guards against an over-broad allowlist).
        engine_cc = os.path.join(REPO_ROOT, "src", "engine",
                                 "sharded_engine.cc")
        code, out, _ = run_h2lint(engine_cc)
        self.assertEqual(
            code, 0, f"sharded_engine.cc must not read clocks itself\n{out}")

    def test_missing_path_is_usage_error(self):
        code, _, _ = run_h2lint(os.path.join(TESTDATA, "no_such_file.cc"))
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()
