// Concurrency tests: real threads driving H2Cloud while the background
// merger and gossip pump run.  These exercise the locking described in
// h2/middleware.h (run them under -DH2_TSAN=ON for race checking).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "h2/h2cloud.h"

namespace h2 {
namespace {

TEST(ConcurrencyTest, ParallelWritersOnOneMiddleware) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 25;
  std::atomic<int> failures{0};
  {
    // Each thread gets its own session (its own meter); they share the
    // middleware and hammer the same directory.
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cloud, &failures, t] {
        auto fs = std::move(cloud.OpenFilesystem("u")).value();
        for (int i = 0; i < kWritesPerThread; ++i) {
          const std::string path =
              "/t" + std::to_string(t) + "_" + std::to_string(i);
          if (!fs->WriteFile(path, FileBlob::FromString("x")).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  cloud.RunMaintenanceToQuiescence();
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  auto names = fs->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(),
            static_cast<std::size_t>(kThreads * kWritesPerThread));
}

TEST(ConcurrencyTest, WritersRaceBackgroundMerger) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.middleware_count = 2;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs0 = std::move(cloud.OpenFilesystem("u", 0)).value();
  auto fs1 = std::move(cloud.OpenFilesystem("u", 1)).value();
  ASSERT_TRUE(fs0->Mkdir("/hot").ok());

  cloud.StartBackground(std::chrono::milliseconds(1));
  std::thread w0([&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(fs0->WriteFile("/hot/a" + std::to_string(i),
                                 FileBlob::FromString("x"))
                      .ok());
    }
  });
  std::thread w1([&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(fs1->WriteFile("/hot/b" + std::to_string(i),
                                 FileBlob::FromString("x"))
                      .ok());
    }
  });
  w0.join();
  w1.join();
  for (int spin = 0; spin < 5000; ++spin) {
    if (cloud.middleware(0).MaintenanceIdle() &&
        cloud.middleware(1).MaintenanceIdle() && cloud.gossip().Idle()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cloud.StopBackground();
  cloud.RunMaintenanceToQuiescence();

  auto names0 = fs0->List("/hot", ListDetail::kNamesOnly);
  auto names1 = fs1->List("/hot", ListDetail::kNamesOnly);
  ASSERT_TRUE(names0.ok());
  ASSERT_TRUE(names1.ok());
  EXPECT_EQ(names0->size(), 80u);
  EXPECT_EQ(names1->size(), 80u);
}

TEST(ConcurrencyTest, ConcurrentDirectoryOperations) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto setup = std::move(cloud.OpenFilesystem("u")).value();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(setup->Mkdir("/dir" + std::to_string(i)).ok());
  }
  cloud.StartBackground(std::chrono::milliseconds(1));

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cloud, &errors, t] {
      auto fs = std::move(cloud.OpenFilesystem("u")).value();
      const std::string mine = "/dir" + std::to_string(t);
      const std::string other = "/dir" + std::to_string(t + 4);
      for (int i = 0; i < 10; ++i) {
        const std::string f = mine + "/f" + std::to_string(i);
        if (!fs->WriteFile(f, FileBlob::FromString("x")).ok()) ++errors;
        if (!fs->Copy(f, other + "/c" + std::to_string(t) + "_" +
                             std::to_string(i))
                 .ok()) {
          ++errors;
        }
        if (!fs->List(mine, ListDetail::kDetailed).ok()) ++errors;
      }
      if (!fs->Rmdir(mine).ok()) ++errors;
    });
  }
  for (auto& t : threads) t.join();
  cloud.StopBackground();
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(errors.load(), 0);

  auto names = setup->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 4u);  // dirs 4..7 remain, each with 10 copies
  for (int t = 4; t < 8; ++t) {
    auto sub = setup->List("/dir" + std::to_string(t),
                           ListDetail::kNamesOnly);
    ASSERT_TRUE(sub.ok());
    EXPECT_EQ(sub->size(), 10u);
  }
}

TEST(ConcurrencyTest, StartStopBackgroundIsIdempotent) {
  H2Cloud cloud;
  cloud.StartBackground(std::chrono::milliseconds(1));
  cloud.StartBackground(std::chrono::milliseconds(1));  // no double threads
  cloud.StopBackground();
  cloud.StopBackground();  // no crash
  cloud.StartBackground(std::chrono::milliseconds(1));
  cloud.StopBackground();
}

TEST(ConcurrencyTest, NodeFailureDuringWrites) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();

  // One storage node goes down mid-run; 3-way replication with majority
  // quorum must ride through it.
  cloud.cloud().node(2).SetDown(true);
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    if (!fs->WriteFile("/f" + std::to_string(i), FileBlob::FromString("x"))
             .ok()) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 0);
  cloud.cloud().node(2).SetDown(false);
  cloud.RunMaintenanceToQuiescence();
  auto names = fs->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 50u);
}

}  // namespace
}  // namespace h2
