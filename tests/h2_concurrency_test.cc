// Concurrency tests: real threads driving H2Cloud while the background
// merger and gossip pump run.  These exercise the locking described in
// h2/middleware.h (run them under -DH2_TSAN=ON for race checking).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/object_cloud.h"
#include "h2/h2cloud.h"
#include "ring/partition_ring.h"

namespace h2 {
namespace {

TEST(ConcurrencyTest, ParallelWritersOnOneMiddleware) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 25;
  std::atomic<int> failures{0};
  {
    // Each thread gets its own session (its own meter); they share the
    // middleware and hammer the same directory.
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cloud, &failures, t] {
        auto fs = std::move(cloud.OpenFilesystem("u")).value();
        for (int i = 0; i < kWritesPerThread; ++i) {
          const std::string path =
              "/t" + std::to_string(t) + "_" + std::to_string(i);
          if (!fs->WriteFile(path, FileBlob::FromString("x")).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  cloud.RunMaintenanceToQuiescence();
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  auto names = fs->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(),
            static_cast<std::size_t>(kThreads * kWritesPerThread));
}

TEST(ConcurrencyTest, WritersRaceBackgroundMerger) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.middleware_count = 2;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs0 = std::move(cloud.OpenFilesystem("u", 0)).value();
  auto fs1 = std::move(cloud.OpenFilesystem("u", 1)).value();
  ASSERT_TRUE(fs0->Mkdir("/hot").ok());

  cloud.StartBackground(std::chrono::milliseconds(1));
  std::thread w0([&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(fs0->WriteFile("/hot/a" + std::to_string(i),
                                 FileBlob::FromString("x"))
                      .ok());
    }
  });
  std::thread w1([&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(fs1->WriteFile("/hot/b" + std::to_string(i),
                                 FileBlob::FromString("x"))
                      .ok());
    }
  });
  w0.join();
  w1.join();
  for (int spin = 0; spin < 5000; ++spin) {
    if (cloud.middleware(0).MaintenanceIdle() &&
        cloud.middleware(1).MaintenanceIdle() && cloud.gossip().Idle()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cloud.StopBackground();
  cloud.RunMaintenanceToQuiescence();

  auto names0 = fs0->List("/hot", ListDetail::kNamesOnly);
  auto names1 = fs1->List("/hot", ListDetail::kNamesOnly);
  ASSERT_TRUE(names0.ok());
  ASSERT_TRUE(names1.ok());
  EXPECT_EQ(names0->size(), 80u);
  EXPECT_EQ(names1->size(), 80u);
}

TEST(ConcurrencyTest, ConcurrentDirectoryOperations) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto setup = std::move(cloud.OpenFilesystem("u")).value();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(setup->Mkdir("/dir" + std::to_string(i)).ok());
  }
  cloud.StartBackground(std::chrono::milliseconds(1));

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cloud, &errors, t] {
      auto fs = std::move(cloud.OpenFilesystem("u")).value();
      const std::string mine = "/dir" + std::to_string(t);
      const std::string other = "/dir" + std::to_string(t + 4);
      for (int i = 0; i < 10; ++i) {
        const std::string f = mine + "/f" + std::to_string(i);
        if (!fs->WriteFile(f, FileBlob::FromString("x")).ok()) ++errors;
        if (!fs->Copy(f, other + "/c" + std::to_string(t) + "_" +
                             std::to_string(i))
                 .ok()) {
          ++errors;
        }
        if (!fs->List(mine, ListDetail::kDetailed).ok()) ++errors;
      }
      if (!fs->Rmdir(mine).ok()) ++errors;
    });
  }
  for (auto& t : threads) t.join();
  cloud.StopBackground();
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(errors.load(), 0);

  auto names = setup->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 4u);  // dirs 4..7 remain, each with 10 copies
  for (int t = 4; t < 8; ++t) {
    auto sub = setup->List("/dir" + std::to_string(t),
                           ListDetail::kNamesOnly);
    ASSERT_TRUE(sub.ok());
    EXPECT_EQ(sub->size(), 10u);
  }
}

TEST(ConcurrencyTest, StartStopBackgroundIsIdempotent) {
  H2Cloud cloud;
  cloud.StartBackground(std::chrono::milliseconds(1));
  cloud.StartBackground(std::chrono::milliseconds(1));  // no double threads
  cloud.StopBackground();
  cloud.StopBackground();  // no crash
  cloud.StartBackground(std::chrono::milliseconds(1));
  cloud.StopBackground();
}

TEST(ConcurrencyTest, NodeFailureDuringWrites) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();

  // One storage node goes down mid-run; 3-way replication with majority
  // quorum must ride through it.
  cloud.cloud().node(2).SetDown(true);
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    if (!fs->WriteFile("/f" + std::to_string(i), FileBlob::FromString("x"))
             .ok()) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 0);
  cloud.cloud().node(2).SetDown(false);
  cloud.RunMaintenanceToQuiescence();
  auto names = fs->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 50u);
}

// Regression: PartitionRing's device table used to be "externally
// serialized" prose -- readers (devices(), active_device_count(),
// SlotCounts()) walked the vector while AddDevice/SetWeight/Rebalance
// mutated it, a race TSan catches the moment real threads mix them.
// The ring now guards the table with its own admin_mu_ (GUARDED_BY) and
// publishes assignments through the SeqLock, so arbitrary reader threads
// may race membership mutations.  Run under -DH2_TSAN=ON.
TEST(ConcurrencyTest, RingReadersRaceMembershipMutations) {
  PartitionRing ring(8, 3);
  for (DeviceId i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.AddDevice(RingDevice{i, "d" + std::to_string(i), 1.0,
                                          static_cast<std::uint32_t>(i % 2)})
                    .ok());
  }
  ASSERT_TRUE(ring.Rebalance().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&ring, &stop, &torn_reads] {
      while (!stop.load()) {
        // Each read must see a complete, self-consistent table.
        const std::vector<RingDevice> devices = ring.devices();
        if (devices.size() < 4) torn_reads.fetch_add(1);
        if (ring.active_device_count() < 3) torn_reads.fetch_add(1);
        const std::vector<DeviceId> replicas = ring.ReplicasOfPartition(5);
        if (replicas.size() != 3) torn_reads.fetch_add(1);
      }
    });
  }
  for (DeviceId next = 4; next < 12; ++next) {
    ASSERT_TRUE(
        ring.AddDevice(RingDevice{next, "d" + std::to_string(next), 1.0,
                                  static_cast<std::uint32_t>(next % 2)})
            .ok());
    ASSERT_TRUE(ring.SetWeight(next, 2.0).ok());
    ASSERT_TRUE(ring.Rebalance().ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn_reads.load(), 0);
}

// Regression: the cloud's accounting sweeps (Scan, LogicalObjectCount,
// NodeObjectCounts) used to walk nodes_ without the membership epoch
// pin, racing AddStorageNodeDeferred's push_back, and StageAddNode
// minted the new device id from nodes_.size() before taking the
// exclusive lock.  All of them now run under membership_mu_, so
// accounting readers may race scale-out.  Run under -DH2_TSAN=ON.
TEST(ConcurrencyTest, AccountingReadersRaceScaleOut) {
  CloudConfig cfg;
  cfg.node_count = 4;
  cfg.replica_count = 3;
  cfg.part_power = 6;
  cfg.zone_count = 2;
  cfg.max_rebalance_keys_per_step = 8;
  ObjectCloud cloud(cfg);
  OpMeter meter;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj/k" + std::to_string(i),
                         ObjectValue::FromString("x", i + 1), meter)
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> bad_counts{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&cloud, &stop, &bad_counts] {
      while (!stop.load()) {
        if (cloud.LogicalObjectCount() != 64) bad_counts.fetch_add(1);
        const std::vector<std::uint64_t> counts = cloud.NodeObjectCounts();
        if (counts.size() < 4) bad_counts.fetch_add(1);
        std::size_t seen = 0;
        OpMeter scan_meter;
        cloud.Scan([&seen](const std::string&, const ObjectValue&) {
          ++seen;
        }, scan_meter);
      }
    });
  }
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(cloud.AddStorageNodeDeferred().ok());
    while (cloud.RunRebalanceStep() > 0) {
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad_counts.load(), 0);
  EXPECT_EQ(cloud.node_count(), 8u);
  EXPECT_EQ(cloud.LogicalObjectCount(), 64u);
}

#ifdef H2_TS_NEGATIVE_TEST
// Deliberately broken: proves the -Werror=thread-safety gate fires.
// Compile with Clang and -DH2_TS_NEGATIVE_TEST and the build MUST fail
// with [-Werror,-Wthread-safety-analysis] (reading a GUARDED_BY member
// without its mutex).  Never enabled in a normal build; CI's lint job
// asserts the failure.
std::uint64_t TsNegativeUnlockedRead(PartitionRing& ring) {
  return ring.active_device_count() +
         [] {
           static H2Mutex mu;
           static std::uint64_t counter GUARDED_BY(mu) = 0;
           return ++counter;  // no lock held: must not compile
         }();
}
#endif  // H2_TS_NEGATIVE_TEST

}  // namespace
}  // namespace h2
