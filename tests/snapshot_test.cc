// Versioned NameRings end to end (DESIGN.md §13): DirVersion tokens,
// ListAt/StatAt time-travel, history retention under the watermark, and
// O(1) snapshot clones (pin + reference record + COW materialization)
// differentially checked against the eager CopyTree equivalent.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "h2/h2cloud.h"
#include "h2/monitor.h"

namespace h2 {
namespace {

H2CloudConfig TestConfig(VirtualNanos watermark) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.h2.history_watermark = watermark;
  return cfg;
}

constexpr VirtualNanos kKeepEverything = 1'000'000 * kSecond;

std::vector<std::string> Names(const std::vector<DirEntry>& entries) {
  std::vector<std::string> out;
  out.reserve(entries.size());
  for (const DirEntry& e : entries) out.push_back(e.name);
  return out;
}

// Recursively reads every file under `dir`, keyed by relative path --
// the bit-identical comparison used by the clone differential.
std::map<std::string, std::string> TreeContents(H2AccountFs& fs,
                                                const std::string& dir) {
  std::map<std::string, std::string> out;
  auto entries = fs.List(dir, ListDetail::kNamesOnly);
  EXPECT_TRUE(entries.ok()) << dir;
  if (!entries.ok()) return out;
  for (const DirEntry& e : *entries) {
    const std::string path = dir + "/" + e.name;
    if (e.kind == EntryKind::kDirectory) {
      for (auto& [sub, data] : TreeContents(fs, path)) {
        out[e.name + "/" + sub] = data;
      }
    } else {
      auto blob = fs.ReadFile(path);
      EXPECT_TRUE(blob.ok()) << path;
      if (blob.ok()) out[e.name] = blob->data;
    }
  }
  return out;
}

// ---- DirVersion & time travel ----------------------------------------------

TEST(VersionedRingTest, DirVersionAdvancesWithMutations) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();

  ASSERT_TRUE(fs->Mkdir("/d").ok());
  auto v1 = fs->DirVersion("/d");
  ASSERT_TRUE(v1.ok());

  ASSERT_TRUE(fs->WriteFile("/d/a", FileBlob::FromString("a")).ok());
  auto v2 = fs->DirVersion("/d");
  ASSERT_TRUE(v2.ok());
  EXPECT_GT(*v2, *v1);

  // The merge tick advances the version too (stored version == announced).
  cloud.RunMaintenanceToQuiescence();
  auto v3 = fs->DirVersion("/d");
  ASSERT_TRUE(v3.ok());
  EXPECT_GE(*v3, *v2);
}

TEST(VersionedRingTest, ListAtSeesHistoricState) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();

  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->WriteFile("/d/a", FileBlob::FromString("1")).ok());
  ASSERT_TRUE(fs->WriteFile("/d/b", FileBlob::FromString("2")).ok());
  const VirtualNanos v1 = fs->DirVersion("/d").value();

  ASSERT_TRUE(fs->WriteFile("/d/c", FileBlob::FromString("3")).ok());
  ASSERT_TRUE(fs->RemoveFile("/d/a").ok());
  const VirtualNanos v2 = fs->DirVersion("/d").value();

  // Live view and the v2 view agree; the v1 view is the past.
  auto at_v1 = fs->ListAt("/d", v1, ListDetail::kNamesOnly);
  ASSERT_TRUE(at_v1.ok());
  EXPECT_EQ(Names(*at_v1), (std::vector<std::string>{"a", "b"}));
  auto at_v2 = fs->ListAt("/d", v2, ListDetail::kNamesOnly);
  ASSERT_TRUE(at_v2.ok());
  EXPECT_EQ(Names(*at_v2), (std::vector<std::string>{"b", "c"}));

  // StatAt: the deleted child exists at v1, is gone at v2.
  EXPECT_TRUE(fs->StatAt("/d/a", v1).ok());
  EXPECT_EQ(fs->StatAt("/d/a", v2).code(), ErrorCode::kNotFound);
  // A child born after v1 does not exist there yet.
  EXPECT_EQ(fs->StatAt("/d/c", v1).code(), ErrorCode::kNotFound);

  // Time travel survives merge + gossip (history rides the stored ring).
  cloud.RunMaintenanceToQuiescence();
  at_v1 = fs->ListAt("/d", v1, ListDetail::kNamesOnly);
  ASSERT_TRUE(at_v1.ok());
  EXPECT_EQ(Names(*at_v1), (std::vector<std::string>{"a", "b"}));
}

TEST(VersionedRingTest, FoldedHistoryIsInvalidArgument) {
  // Watermark 0: every merge folds the whole history, so pre-merge
  // versions become unanswerable -- by a crisp error, not a wrong answer.
  H2Cloud cloud(TestConfig(0));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();

  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->WriteFile("/d/a", FileBlob::FromString("1")).ok());
  const VirtualNanos v1 = fs->DirVersion("/d").value();
  ASSERT_TRUE(fs->WriteFile("/d/b", FileBlob::FromString("2")).ok());
  cloud.RunMaintenanceToQuiescence();

  EXPECT_EQ(fs->ListAt("/d", v1, ListDetail::kNamesOnly).code(),
            ErrorCode::kInvalidArgument);
  // The current version keeps answering.
  const VirtualNanos now = fs->DirVersion("/d").value();
  auto live = fs->ListAt("/d", now, ListDetail::kNamesOnly);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(Names(*live), (std::vector<std::string>{"a", "b"}));
}

TEST(VersionedRingTest, CompactionNeverChangesVisibleHistory) {
  // Retention sweep: under every watermark, a version the floor still
  // admits answers exactly what it answered before maintenance folded
  // history -- compaction may only turn answers into kInvalidArgument.
  for (const VirtualNanos watermark : {VirtualNanos{0}, 8 * kSecond,
                                       64 * kSecond}) {
    H2Cloud cloud(TestConfig(watermark));
    ASSERT_TRUE(cloud.CreateAccount("u").ok());
    auto fs = std::move(cloud.OpenFilesystem("u")).value();

    ASSERT_TRUE(fs->Mkdir("/d").ok());
    std::vector<VirtualNanos> versions;
    std::map<VirtualNanos, std::vector<std::string>> expected;
    for (int i = 0; i < 6; ++i) {
      const std::string name = "f" + std::to_string(i);
      ASSERT_TRUE(
          fs->WriteFile("/d/" + name, FileBlob::FromString(name)).ok());
      if (i == 2) {
        ASSERT_TRUE(fs->RemoveFile("/d/f0").ok());
      }
      const VirtualNanos v = fs->DirVersion("/d").value();
      versions.push_back(v);
      auto listing = fs->ListAt("/d", v, ListDetail::kNamesOnly);
      ASSERT_TRUE(listing.ok()) << "watermark " << watermark;
      expected[v] = Names(*listing);
    }

    cloud.RunMaintenanceToQuiescence();
    for (const VirtualNanos v : versions) {
      auto listing = fs->ListAt("/d", v, ListDetail::kNamesOnly);
      if (listing.ok()) {
        EXPECT_EQ(Names(*listing), expected[v])
            << "watermark " << watermark << " version " << v;
      } else {
        EXPECT_EQ(listing.code(), ErrorCode::kInvalidArgument)
            << "watermark " << watermark << " version " << v;
      }
    }
  }
}

// ---- snapshot clones --------------------------------------------------------

void BuildTree(H2AccountFs& fs, const std::string& root) {
  ASSERT_TRUE(fs.Mkdir(root).ok());
  ASSERT_TRUE(fs.Mkdir(root + "/sub").ok());
  ASSERT_TRUE(fs.Mkdir(root + "/sub/deep").ok());
  ASSERT_TRUE(fs.WriteFile(root + "/top", FileBlob::FromString("t")).ok());
  ASSERT_TRUE(
      fs.WriteFile(root + "/sub/mid", FileBlob::FromString("m")).ok());
  ASSERT_TRUE(
      fs.WriteFile(root + "/sub/deep/leaf", FileBlob::FromString("l")).ok());
}

TEST(SnapshotCloneTest, CloneReadsBitIdenticalToSource) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  BuildTree(*fs, "/src");
  cloud.RunMaintenanceToQuiescence();

  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());
  const auto src = TreeContents(*fs, "/src");
  const auto snap = TreeContents(*fs, "/snap");
  EXPECT_EQ(src, snap);
  EXPECT_EQ(snap.size(), 3u);

  // Stat through the reference works at every level.
  EXPECT_TRUE(fs->Stat("/snap").ok());
  EXPECT_TRUE(fs->Stat("/snap/sub/deep/leaf").ok());
  EXPECT_EQ(fs->Stat("/snap/sub/nope").code(), ErrorCode::kNotFound);
  EXPECT_GT(cloud.middleware(0).counters().snapshot_clones, 0u);
  EXPECT_GT(cloud.middleware(0).counters().rings_pinned, 0u);
}

TEST(SnapshotCloneTest, CloneIsFrozenWhileSourceMovesOn) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  BuildTree(*fs, "/src");
  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());

  // New children in the source are invisible through the pinned clone.
  ASSERT_TRUE(fs->WriteFile("/src/later", FileBlob::FromString("x")).ok());
  ASSERT_TRUE(fs->Mkdir("/src/sub/newdir").ok());
  auto snap_top = fs->List("/snap", ListDetail::kNamesOnly);
  ASSERT_TRUE(snap_top.ok());
  EXPECT_EQ(Names(*snap_top), (std::vector<std::string>{"sub", "top"}));
  auto snap_sub = fs->List("/snap/sub", ListDetail::kNamesOnly);
  ASSERT_TRUE(snap_sub.ok());
  EXPECT_EQ(Names(*snap_sub), (std::vector<std::string>{"deep", "mid"}));
  EXPECT_EQ(fs->Stat("/snap/later").code(), ErrorCode::kNotFound);

  // ... and stays that way across maintenance (pins survive merges).
  cloud.RunMaintenanceToQuiescence();
  snap_top = fs->List("/snap", ListDetail::kNamesOnly);
  ASSERT_TRUE(snap_top.ok());
  EXPECT_EQ(Names(*snap_top), (std::vector<std::string>{"sub", "top"}));
}

TEST(SnapshotCloneTest, WritingIntoCloneMaterializesCopyOnWrite) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  BuildTree(*fs, "/src");
  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());

  // First mutation inside the clone materializes the touched directory.
  ASSERT_TRUE(
      fs->WriteFile("/snap/sub/extra", FileBlob::FromString("e")).ok());
  EXPECT_GT(cloud.middleware(0).counters().snapshot_cow_materializations,
            0u);

  // The clone diverged; the source did not.
  EXPECT_TRUE(fs->Stat("/snap/sub/extra").ok());
  EXPECT_EQ(fs->Stat("/src/sub/extra").code(), ErrorCode::kNotFound);

  // Untouched parts still read through; touched parts read the copy.
  EXPECT_EQ(fs->ReadFile("/snap/sub/mid").value().data, "m");
  EXPECT_EQ(fs->ReadFile("/snap/top").value().data, "t");
  EXPECT_EQ(fs->ReadFile("/snap/sub/deep/leaf").value().data, "l");

  // Overwrites inside the clone do not leak into the source.
  ASSERT_TRUE(
      fs->WriteFile("/snap/sub/mid", FileBlob::FromString("M2")).ok());
  EXPECT_EQ(fs->ReadFile("/snap/sub/mid").value().data, "M2");
  EXPECT_EQ(fs->ReadFile("/src/sub/mid").value().data, "m");

  // And the whole system converges cleanly afterwards.
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(fs->ReadFile("/snap/sub/mid").value().data, "M2");
  EXPECT_EQ(fs->ReadFile("/src/sub/mid").value().data, "m");
}

TEST(SnapshotCloneTest, RemovedSourceIsParkedUntilCloneReleasesIt) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  BuildTree(*fs, "/src");
  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());

  // Deleting the source parks its pinned namespaces instead of tearing
  // them down: the clone keeps reading the shared tree.
  ASSERT_TRUE(fs->Rmdir("/src").ok());
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(fs->Stat("/src").code(), ErrorCode::kNotFound);
  const auto snap = TreeContents(*fs, "/snap");
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.at("sub/deep/leaf"), "l");

  // Dropping the clone releases the pins; cleanup then reclaims every
  // parked namespace and the account converges to empty.
  ASSERT_TRUE(fs->Rmdir("/snap").ok());
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(fs->Stat("/snap").code(), ErrorCode::kNotFound);
  EXPECT_GT(cloud.middleware(0).counters().rings_unpinned, 0u);
  auto rootlist = fs->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(rootlist.ok());
  EXPECT_TRUE(rootlist->empty());
}

TEST(SnapshotCloneTest, CloneOfCloneSharesTheSamePinnedView) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  BuildTree(*fs, "/src");
  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap1").ok());
  ASSERT_TRUE(fs->WriteFile("/src/later", FileBlob::FromString("x")).ok());
  ASSERT_TRUE(fs->SnapshotClone("/snap1", "/snap2").ok());

  // snap2 clones snap1's pinned version, not the live source.
  const auto a = TreeContents(*fs, "/snap1");
  const auto b = TreeContents(*fs, "/snap2");
  EXPECT_EQ(a, b);
  EXPECT_EQ(fs->Stat("/snap2/later").code(), ErrorCode::kNotFound);

  // Dropping the middle clone must not strand the grandchild's pins.
  ASSERT_TRUE(fs->Rmdir("/snap1").ok());
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(TreeContents(*fs, "/snap2"), b);
}

TEST(SnapshotCloneTest, CloneGuardsMirrorCopy) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  BuildTree(*fs, "/src");
  ASSERT_TRUE(fs->WriteFile("/file", FileBlob::FromString("f")).ok());

  EXPECT_EQ(fs->SnapshotClone("/missing", "/snap").code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(fs->SnapshotClone("/file", "/snap").code(),
            ErrorCode::kNotADirectory);
  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());
  EXPECT_EQ(fs->SnapshotClone("/src", "/snap").code(),
            ErrorCode::kAlreadyExists);
  // Cloning a directory into its own subtree must fail, not recurse.
  EXPECT_EQ(fs->SnapshotClone("/src", "/src/sub/self").code(),
            ErrorCode::kInvalidArgument);
}

TEST(SnapshotCloneTest, CloneIsMetadataOnlyCheapVersusCopyTree) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/big").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs->WriteFile("/big/f" + std::to_string(i),
                              FileBlob::FromString("x"))
                    .ok());
  }
  cloud.RunMaintenanceToQuiescence();

  ASSERT_TRUE(fs->SnapshotClone("/big", "/snap").ok());
  const std::uint64_t clone_ops = fs->last_op().object_primitives();

  // The eager equivalent: per-file COPYs into a fresh directory.
  ASSERT_TRUE(fs->Mkdir("/copy").ok());
  std::uint64_t copy_ops = fs->last_op().object_primitives();
  for (int i = 0; i < 64; ++i) {
    const std::string name = "/f" + std::to_string(i);
    ASSERT_TRUE(fs->Copy("/big" + name, "/copy" + name).ok());
    copy_ops += fs->last_op().object_primitives();
  }

  // O(1) metadata vs O(n) fan-out: an order of magnitude on 64 files.
  EXPECT_LT(10 * clone_ops, copy_ops)
      << "clone " << clone_ops << " vs copytree " << copy_ops;
}

// ---- preserve-on-write: content freezing under source mutation -------------

TEST(SnapshotCloneTest, CloneContentSurvivesSourceOverwriteAndDelete) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/src").ok());
  ASSERT_TRUE(fs->WriteFile("/src/a", FileBlob::FromString("one")).ok());
  ASSERT_TRUE(fs->WriteFile("/src/b", FileBlob::FromString("two")).ok());
  cloud.RunMaintenanceToQuiescence();
  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());

  // Overwrite, delete, and create in the source after the clone.
  ASSERT_TRUE(fs->WriteFile("/src/a", FileBlob::FromString("NEW")).ok());
  ASSERT_TRUE(fs->RemoveFile("/src/b").ok());
  ASSERT_TRUE(fs->WriteFile("/src/c", FileBlob::FromString("three")).ok());
  cloud.RunMaintenanceToQuiescence();

  // The clone keeps serving the frozen bytes...
  EXPECT_EQ(fs->ReadFile("/snap/a").value().data, "one");
  EXPECT_EQ(fs->ReadFile("/snap/b").value().data, "two");
  // ... the post-clone file is invisible even to a direct open...
  EXPECT_EQ(fs->ReadFile("/snap/c").code(), ErrorCode::kNotFound);
  // ... and versioned stats answer from the preserved generation.
  EXPECT_EQ(fs->Stat("/snap/a").value().size, 3u);
  EXPECT_EQ(fs->Stat("/snap/b").value().size, 3u);
  // The live side moved on.
  EXPECT_EQ(fs->ReadFile("/src/a").value().data, "NEW");
  EXPECT_EQ(fs->ReadFile("/src/b").code(), ErrorCode::kNotFound);
  EXPECT_GT(cloud.middleware(0).counters().snapshot_content_preserved, 0u);
}

TEST(SnapshotCloneTest, TwoClonesAtDifferentVersionsEachKeepTheirEpoch) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/src").ok());
  ASSERT_TRUE(fs->WriteFile("/src/f", FileBlob::FromString("v1")).ok());
  cloud.RunMaintenanceToQuiescence();
  ASSERT_TRUE(fs->SnapshotClone("/src", "/old").ok());

  ASSERT_TRUE(fs->WriteFile("/src/f", FileBlob::FromString("v2")).ok());
  cloud.RunMaintenanceToQuiescence();
  ASSERT_TRUE(fs->SnapshotClone("/src", "/mid").ok());

  ASSERT_TRUE(fs->WriteFile("/src/f", FileBlob::FromString("v3")).ok());
  cloud.RunMaintenanceToQuiescence();

  EXPECT_EQ(fs->ReadFile("/old/f").value().data, "v1");
  EXPECT_EQ(fs->ReadFile("/mid/f").value().data, "v2");
  EXPECT_EQ(fs->ReadFile("/src/f").value().data, "v3");
}

TEST(SnapshotCloneTest, CowMaterializationCopiesPreservedContent) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/src").ok());
  ASSERT_TRUE(fs->WriteFile("/src/a", FileBlob::FromString("one")).ok());
  cloud.RunMaintenanceToQuiescence();
  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());
  ASSERT_TRUE(fs->WriteFile("/src/a", FileBlob::FromString("NEW")).ok());

  // COW must materialize from the preserved copy, not the live object.
  ASSERT_TRUE(fs->WriteFile("/snap/extra", FileBlob::FromString("e")).ok());
  EXPECT_GT(cloud.middleware(0).counters().snapshot_cow_materializations, 0u);
  EXPECT_EQ(fs->ReadFile("/snap/a").value().data, "one");
  // Materialized content is independent: further source writes are moot.
  ASSERT_TRUE(fs->WriteFile("/src/a", FileBlob::FromString("NEWER")).ok());
  EXPECT_EQ(fs->ReadFile("/snap/a").value().data, "one");
}

TEST(SnapshotCloneTest, CopyOfCloneMaterializesTheFrozenView) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/src").ok());
  ASSERT_TRUE(fs->Mkdir("/src/sub").ok());
  ASSERT_TRUE(fs->WriteFile("/src/a", FileBlob::FromString("one")).ok());
  ASSERT_TRUE(fs->WriteFile("/src/sub/m", FileBlob::FromString("mid")).ok());
  cloud.RunMaintenanceToQuiescence();
  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());
  ASSERT_TRUE(fs->WriteFile("/src/a", FileBlob::FromString("NEW")).ok());
  ASSERT_TRUE(fs->WriteFile("/src/later", FileBlob::FromString("x")).ok());
  cloud.RunMaintenanceToQuiescence();

  // COPY of the clone is a real tree holding the frozen view.
  ASSERT_TRUE(fs->Copy("/snap", "/copy").ok());
  const auto copy = TreeContents(*fs, "/copy");
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.at("a"), "one");
  EXPECT_EQ(copy.at("sub/m"), "mid");
  // And copying a single file out of the clone picks the frozen bytes.
  ASSERT_TRUE(fs->Copy("/snap/a", "/a_then").ok());
  EXPECT_EQ(fs->ReadFile("/a_then").value().data, "one");
  EXPECT_EQ(fs->Copy("/snap/later", "/nope").code(), ErrorCode::kNotFound);
}

TEST(SnapshotCloneTest, LastUnpinReclaimsPreservedCopies) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/src").ok());
  ASSERT_TRUE(fs->WriteFile("/src/a", FileBlob::FromString("one")).ok());
  cloud.RunMaintenanceToQuiescence();
  const std::uint64_t baseline = cloud.cloud().LogicalObjectCount();

  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());
  ASSERT_TRUE(fs->WriteFile("/src/a", FileBlob::FromString("NEW")).ok());
  EXPECT_GT(cloud.middleware(0).counters().snapshot_content_preserved, 0u);
  cloud.RunMaintenanceToQuiescence();
  EXPECT_GT(cloud.cloud().LogicalObjectCount(), baseline);

  // Removing the clone releases the pin; maintenance reclaims both the
  // reference record and the preserved generation.
  ASSERT_TRUE(fs->Rmdir("/snap").ok());
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(cloud.cloud().LogicalObjectCount(), baseline);
  EXPECT_EQ(fs->ReadFile("/src/a").value().data, "NEW");
}

TEST(SnapshotCloneTest, MonitorReportsVersioningCounters) {
  H2Cloud cloud(TestConfig(kKeepEverything));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  BuildTree(*fs, "/src");
  ASSERT_TRUE(fs->SnapshotClone("/src", "/snap").ok());
  const VirtualNanos v = fs->DirVersion("/src").value();
  ASSERT_TRUE(fs->ListAt("/src", v, ListDetail::kNamesOnly).ok());
  cloud.RunMaintenanceToQuiescence();

  const MonitorSnapshot snap = CollectSnapshot(cloud);
  EXPECT_GT(snap.TotalSnapshotClones(), 0u);
  EXPECT_NE(snap.ToText().find("versioning & snapshots"), std::string::npos);
}

}  // namespace
}  // namespace h2
