#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"

#include "hash/md5.h"
#include "ring/partition_ring.h"

namespace h2 {
namespace {

PartitionRing MakeRing(int devices, int part_power = 10, int replicas = 3) {
  PartitionRing ring(part_power, replicas);
  for (int i = 0; i < devices; ++i) {
    EXPECT_TRUE(
        ring.AddDevice(RingDevice{static_cast<DeviceId>(i),
                                  "dev" + std::to_string(i), 1.0})
            .ok());
  }
  EXPECT_TRUE(ring.Rebalance().ok());
  return ring;
}

TEST(RingTest, LookupBeforeRebalanceIsEmpty) {
  PartitionRing ring(8, 3);
  ASSERT_TRUE(ring.AddDevice(RingDevice{0, "d0", 1.0}).ok());
  EXPECT_TRUE(ring.ReplicasOfPartition(0).empty());
}

TEST(RingTest, EveryPartitionFullyAssigned) {
  auto ring = MakeRing(8);
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    auto replicas = ring.ReplicasOfPartition(p);
    ASSERT_EQ(replicas.size(), 3u);
    for (DeviceId d : replicas) EXPECT_LT(d, 8u);
  }
}

TEST(RingTest, ReplicasAreDistinctDevices) {
  auto ring = MakeRing(8);
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    auto replicas = ring.ReplicasOfPartition(p);
    std::set<DeviceId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), replicas.size()) << "partition " << p;
  }
}

TEST(RingTest, EqualWeightsBalanceEvenly) {
  auto ring = MakeRing(8);
  const auto counts = ring.SlotCounts();
  const double expected =
      3.0 * ring.partition_count() / 8.0;  // replicas * parts / devices
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(counts[i], expected, expected * 0.02) << "device " << i;
  }
}

TEST(RingTest, WeightsAreProportional) {
  PartitionRing ring(10, 3);
  ASSERT_TRUE(ring.AddDevice(RingDevice{0, "small", 1.0}).ok());
  ASSERT_TRUE(ring.AddDevice(RingDevice{1, "big", 3.0}).ok());
  ASSERT_TRUE(ring.AddDevice(RingDevice{2, "mid", 2.0}).ok());
  ASSERT_TRUE(ring.Rebalance().ok());
  const auto counts = ring.SlotCounts();
  const double total = 3.0 * ring.partition_count();
  EXPECT_NEAR(counts[0], total * 1 / 6, total * 0.01);
  EXPECT_NEAR(counts[1], total * 3 / 6, total * 0.01);
  EXPECT_NEAR(counts[2], total * 2 / 6, total * 0.01);
}

TEST(RingTest, AddingDeviceMovesMinimalData) {
  auto ring = MakeRing(8);
  // Snapshot assignments.
  std::vector<std::vector<DeviceId>> before;
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    before.push_back(ring.ReplicasOfPartition(p));
  }
  ASSERT_TRUE(ring.AddDevice(RingDevice{8, "dev8", 1.0}).ok());
  ASSERT_TRUE(ring.Rebalance().ok());

  std::size_t moved = 0;
  const std::size_t total = 3u * ring.partition_count();
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    const auto after = ring.ReplicasOfPartition(p);
    for (int r = 0; r < 3; ++r) {
      if (after[r] != before[p][r]) ++moved;
    }
  }
  // The new device takes ~1/9 of slots; movement should be near that, and
  // certainly nowhere near a full reshuffle.
  EXPECT_LT(moved, total / 4);
  EXPECT_GT(moved, total / 20);
}

TEST(RingTest, RemovedDeviceHoldsNothing) {
  auto ring = MakeRing(8);
  ASSERT_TRUE(ring.RemoveDevice(3).ok());
  ASSERT_TRUE(ring.Rebalance().ok());
  EXPECT_EQ(ring.SlotCounts()[3], 0u);
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    for (DeviceId d : ring.ReplicasOfPartition(p)) EXPECT_NE(d, 3u);
  }
}

TEST(RingTest, FewerDevicesThanReplicasStillAssigns) {
  auto ring = MakeRing(2);  // 2 devices, 3 replicas
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    EXPECT_EQ(ring.ReplicasOfPartition(p).size(), 3u);
  }
}

TEST(RingTest, KeysSpreadAcrossPartitions) {
  auto ring = MakeRing(8, 8);
  std::map<std::uint32_t, int> hits;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t h = Md5::Hash64("object-" + std::to_string(i));
    hits[ring.PartitionOfHash(h)]++;
  }
  // With 256 partitions and 10k keys, essentially all partitions hit.
  EXPECT_GT(hits.size(), 250u);
}

TEST(RingTest, RejectsBadConfig) {
  PartitionRing ring(8, 3);
  EXPECT_EQ(ring.AddDevice(RingDevice{0, "d", -1.0}).code(),
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(ring.AddDevice(RingDevice{0, "d", 1.0}).ok());
  EXPECT_EQ(ring.AddDevice(RingDevice{0, "dup", 1.0}).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(ring.RemoveDevice(42).code(), ErrorCode::kNotFound);
  EXPECT_EQ(ring.SetWeight(42, 2.0).code(), ErrorCode::kNotFound);
}

TEST(RingTest, EmptyRingCannotRebalance) {
  PartitionRing ring(8, 3);
  EXPECT_EQ(ring.Rebalance().code(), ErrorCode::kInvalidArgument);
}

TEST(RingTest, RebalanceIsIdempotent) {
  auto ring = MakeRing(5);
  std::vector<std::vector<DeviceId>> before;
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    before.push_back(ring.ReplicasOfPartition(p));
  }
  ASSERT_TRUE(ring.Rebalance().ok());
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    EXPECT_EQ(ring.ReplicasOfPartition(p), before[p]);
  }
}

// Property sweep: balance and distinctness hold across ring shapes.
class RingPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RingPropertyTest, BalancedAndDistinct) {
  const auto [devices, part_power, replicas] = GetParam();
  PartitionRing ring(part_power, replicas);
  for (int i = 0; i < devices; ++i) {
    ASSERT_TRUE(ring.AddDevice(RingDevice{static_cast<DeviceId>(i),
                                          "d" + std::to_string(i), 1.0})
                    .ok());
  }
  ASSERT_TRUE(ring.Rebalance().ok());

  const auto counts = ring.SlotCounts();
  const double expected =
      static_cast<double>(replicas) * ring.partition_count() / devices;
  for (int i = 0; i < devices; ++i) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(i)], expected,
                expected * 0.05 + 1.0);
  }
  if (devices >= replicas) {
    for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
      const auto reps = ring.ReplicasOfPartition(p);
      std::set<DeviceId> unique(reps.begin(), reps.end());
      EXPECT_EQ(unique.size(), reps.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RingPropertyTest,
    ::testing::Values(std::tuple{3, 8, 3}, std::tuple{8, 10, 3},
                      std::tuple{9, 12, 3}, std::tuple{16, 10, 2},
                      std::tuple{5, 6, 1}, std::tuple{32, 12, 3},
                      std::tuple{7, 10, 5}));


TEST(RingTest, IncrementalRebalanceKeepsReplicasDistinct) {
  // Regression: after removing a node, refilled slots must not collide
  // with assignments *kept* in later replica rows (found by
  // MigrationTest.DecommissionDrainsNode).
  auto ring = MakeRing(8);
  ASSERT_TRUE(ring.RemoveDevice(3).ok());
  ASSERT_TRUE(ring.Rebalance().ok());
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    const auto reps = ring.ReplicasOfPartition(p);
    std::set<DeviceId> unique(reps.begin(), reps.end());
    EXPECT_EQ(unique.size(), reps.size()) << "partition " << p;
  }
  // And again after growing back.
  ASSERT_TRUE(ring.AddDevice(RingDevice{9, "dev9", 1.0}).ok());
  ASSERT_TRUE(ring.Rebalance().ok());
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    const auto reps = ring.ReplicasOfPartition(p);
    std::set<DeviceId> unique(reps.begin(), reps.end());
    EXPECT_EQ(unique.size(), reps.size()) << "partition " << p;
  }
}

TEST(RingTest, ChurnSequenceStaysConsistent) {
  auto ring = MakeRing(5);
  Rng rng(31);
  DeviceId next_id = 5;
  for (int step = 0; step < 20; ++step) {
    if (rng.Chance(0.5) && ring.active_device_count() > 3) {
      // Remove a random active device.
      std::vector<DeviceId> active;
      for (const auto& d : ring.devices()) {
        if (d.active) active.push_back(d.id);
      }
      ASSERT_TRUE(ring.RemoveDevice(active[rng.Below(active.size())]).ok());
    } else {
      ASSERT_TRUE(
          ring.AddDevice(RingDevice{next_id, "d" + std::to_string(next_id),
                                    1.0 + rng.NextDouble()})
              .ok());
      ++next_id;
    }
    ASSERT_TRUE(ring.Rebalance().ok());
    for (std::uint32_t p = 0; p < ring.partition_count(); p += 37) {
      const auto reps = ring.ReplicasOfPartition(p);
      ASSERT_EQ(reps.size(), 3u);
      if (ring.active_device_count() >= 3) {
        std::set<DeviceId> unique(reps.begin(), reps.end());
        EXPECT_EQ(unique.size(), reps.size());
      }
    }
  }
}

}  // namespace
}  // namespace h2
