#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"

#include "hash/md5.h"
#include "ring/partition_ring.h"

namespace h2 {
namespace {

PartitionRing MakeRing(int devices, int part_power = 10, int replicas = 3) {
  PartitionRing ring(part_power, replicas);
  for (int i = 0; i < devices; ++i) {
    EXPECT_TRUE(
        ring.AddDevice(RingDevice{static_cast<DeviceId>(i),
                                  "dev" + std::to_string(i), 1.0})
            .ok());
  }
  EXPECT_TRUE(ring.Rebalance().ok());
  return ring;
}

TEST(RingTest, LookupBeforeRebalanceIsEmpty) {
  PartitionRing ring(8, 3);
  ASSERT_TRUE(ring.AddDevice(RingDevice{0, "d0", 1.0}).ok());
  EXPECT_TRUE(ring.ReplicasOfPartition(0).empty());
}

TEST(RingTest, EveryPartitionFullyAssigned) {
  auto ring = MakeRing(8);
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    auto replicas = ring.ReplicasOfPartition(p);
    ASSERT_EQ(replicas.size(), 3u);
    for (DeviceId d : replicas) EXPECT_LT(d, 8u);
  }
}

TEST(RingTest, ReplicasAreDistinctDevices) {
  auto ring = MakeRing(8);
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    auto replicas = ring.ReplicasOfPartition(p);
    std::set<DeviceId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), replicas.size()) << "partition " << p;
  }
}

TEST(RingTest, EqualWeightsBalanceEvenly) {
  auto ring = MakeRing(8);
  const auto counts = ring.SlotCounts();
  const double expected =
      3.0 * ring.partition_count() / 8.0;  // replicas * parts / devices
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(counts[i], expected, expected * 0.02) << "device " << i;
  }
}

TEST(RingTest, WeightsAreProportional) {
  PartitionRing ring(10, 3);
  ASSERT_TRUE(ring.AddDevice(RingDevice{0, "small", 1.0}).ok());
  ASSERT_TRUE(ring.AddDevice(RingDevice{1, "big", 3.0}).ok());
  ASSERT_TRUE(ring.AddDevice(RingDevice{2, "mid", 2.0}).ok());
  ASSERT_TRUE(ring.Rebalance().ok());
  const auto counts = ring.SlotCounts();
  const double total = 3.0 * ring.partition_count();
  EXPECT_NEAR(counts[0], total * 1 / 6, total * 0.01);
  EXPECT_NEAR(counts[1], total * 3 / 6, total * 0.01);
  EXPECT_NEAR(counts[2], total * 2 / 6, total * 0.01);
}

TEST(RingTest, AddingDeviceMovesMinimalData) {
  auto ring = MakeRing(8);
  // Snapshot assignments.
  std::vector<std::vector<DeviceId>> before;
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    before.push_back(ring.ReplicasOfPartition(p));
  }
  ASSERT_TRUE(ring.AddDevice(RingDevice{8, "dev8", 1.0}).ok());
  ASSERT_TRUE(ring.Rebalance().ok());

  std::size_t moved = 0;
  const std::size_t total = 3u * ring.partition_count();
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    const auto after = ring.ReplicasOfPartition(p);
    for (int r = 0; r < 3; ++r) {
      if (after[r] != before[p][r]) ++moved;
    }
  }
  // The new device takes ~1/9 of slots; movement should be near that, and
  // certainly nowhere near a full reshuffle.
  EXPECT_LT(moved, total / 4);
  EXPECT_GT(moved, total / 20);
}

TEST(RingTest, RemovedDeviceHoldsNothing) {
  auto ring = MakeRing(8);
  ASSERT_TRUE(ring.RemoveDevice(3).ok());
  ASSERT_TRUE(ring.Rebalance().ok());
  EXPECT_EQ(ring.SlotCounts()[3], 0u);
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    for (DeviceId d : ring.ReplicasOfPartition(p)) EXPECT_NE(d, 3u);
  }
}

TEST(RingTest, FewerDevicesThanReplicasStillAssigns) {
  auto ring = MakeRing(2);  // 2 devices, 3 replicas
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    EXPECT_EQ(ring.ReplicasOfPartition(p).size(), 3u);
  }
}

TEST(RingTest, KeysSpreadAcrossPartitions) {
  auto ring = MakeRing(8, 8);
  std::map<std::uint32_t, int> hits;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t h = Md5::Hash64("object-" + std::to_string(i));
    hits[ring.PartitionOfHash(h)]++;
  }
  // With 256 partitions and 10k keys, essentially all partitions hit.
  EXPECT_GT(hits.size(), 250u);
}

TEST(RingTest, RejectsBadConfig) {
  PartitionRing ring(8, 3);
  EXPECT_EQ(ring.AddDevice(RingDevice{0, "d", -1.0}).code(),
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(ring.AddDevice(RingDevice{0, "d", 1.0}).ok());
  EXPECT_EQ(ring.AddDevice(RingDevice{0, "dup", 1.0}).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(ring.RemoveDevice(42).code(), ErrorCode::kNotFound);
  EXPECT_EQ(ring.SetWeight(42, 2.0).code(), ErrorCode::kNotFound);
}

TEST(RingTest, EmptyRingCannotRebalance) {
  PartitionRing ring(8, 3);
  EXPECT_EQ(ring.Rebalance().code(), ErrorCode::kInvalidArgument);
}

TEST(RingTest, RebalanceIsIdempotent) {
  auto ring = MakeRing(5);
  std::vector<std::vector<DeviceId>> before;
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    before.push_back(ring.ReplicasOfPartition(p));
  }
  ASSERT_TRUE(ring.Rebalance().ok());
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    EXPECT_EQ(ring.ReplicasOfPartition(p), before[p]);
  }
}

// Property sweep: balance and distinctness hold across ring shapes.
class RingPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RingPropertyTest, BalancedAndDistinct) {
  const auto [devices, part_power, replicas] = GetParam();
  PartitionRing ring(part_power, replicas);
  for (int i = 0; i < devices; ++i) {
    ASSERT_TRUE(ring.AddDevice(RingDevice{static_cast<DeviceId>(i),
                                          "d" + std::to_string(i), 1.0})
                    .ok());
  }
  ASSERT_TRUE(ring.Rebalance().ok());

  const auto counts = ring.SlotCounts();
  const double expected =
      static_cast<double>(replicas) * ring.partition_count() / devices;
  for (int i = 0; i < devices; ++i) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(i)], expected,
                expected * 0.05 + 1.0);
  }
  if (devices >= replicas) {
    for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
      const auto reps = ring.ReplicasOfPartition(p);
      std::set<DeviceId> unique(reps.begin(), reps.end());
      EXPECT_EQ(unique.size(), reps.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RingPropertyTest,
    ::testing::Values(std::tuple{3, 8, 3}, std::tuple{8, 10, 3},
                      std::tuple{9, 12, 3}, std::tuple{16, 10, 2},
                      std::tuple{5, 6, 1}, std::tuple{32, 12, 3},
                      std::tuple{7, 10, 5}));


TEST(RingTest, IncrementalRebalanceKeepsReplicasDistinct) {
  // Regression: after removing a node, refilled slots must not collide
  // with assignments *kept* in later replica rows (found by
  // MigrationTest.DecommissionDrainsNode).
  auto ring = MakeRing(8);
  ASSERT_TRUE(ring.RemoveDevice(3).ok());
  ASSERT_TRUE(ring.Rebalance().ok());
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    const auto reps = ring.ReplicasOfPartition(p);
    std::set<DeviceId> unique(reps.begin(), reps.end());
    EXPECT_EQ(unique.size(), reps.size()) << "partition " << p;
  }
  // And again after growing back.
  ASSERT_TRUE(ring.AddDevice(RingDevice{9, "dev9", 1.0}).ok());
  ASSERT_TRUE(ring.Rebalance().ok());
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    const auto reps = ring.ReplicasOfPartition(p);
    std::set<DeviceId> unique(reps.begin(), reps.end());
    EXPECT_EQ(unique.size(), reps.size()) << "partition " << p;
  }
}

TEST(RingTest, EpochBumpsOncePerPublish) {
  PartitionRing ring(8, 3);
  EXPECT_EQ(ring.epoch(), 0u);  // nothing published yet
  ASSERT_TRUE(ring.AddDevice(RingDevice{0, "d0", 1.0}).ok());
  EXPECT_EQ(ring.epoch(), 0u);  // registration alone publishes nothing
  ASSERT_TRUE(ring.Rebalance().ok());
  EXPECT_EQ(ring.epoch(), 1u);
  ASSERT_TRUE(ring.AddDevice(RingDevice{1, "d1", 1.0}).ok());
  ASSERT_TRUE(ring.Rebalance().ok());
  EXPECT_EQ(ring.epoch(), 2u);
  // Idempotent re-publish still announces a (identical) new table.
  ASSERT_TRUE(ring.Rebalance().ok());
  EXPECT_EQ(ring.epoch(), 3u);
}

TEST(RingTest, ReplaceDeviceMovesNothingAmongSurvivors) {
  auto ring = MakeRing(8);
  const std::uint64_t epoch_before = ring.epoch();
  std::vector<std::vector<DeviceId>> before;
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    before.push_back(ring.ReplicasOfPartition(p));
  }
  const std::uint32_t inherited = ring.VnodeCount(3);
  ASSERT_GT(inherited, 0u);
  ASSERT_TRUE(ring.ReplaceDevice(3, RingDevice{8, "dev8", 1.0}).ok());
  EXPECT_EQ(ring.epoch(), epoch_before + 1);
  // The replacement holds exactly the slots the old device held; every
  // other assignment is byte-for-byte untouched.
  EXPECT_EQ(ring.VnodeCount(8), inherited);
  EXPECT_EQ(ring.VnodeCount(3), 0u);
  for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
    const auto after = ring.ReplicasOfPartition(p);
    for (std::size_t r = 0; r < after.size(); ++r) {
      const DeviceId expected = before[p][r] == 3 ? 8 : before[p][r];
      EXPECT_EQ(after[r], expected) << "partition " << p << " row " << r;
    }
  }
}

TEST(RingTest, ReplaceDeviceRejectsBadArguments) {
  auto ring = MakeRing(4);
  EXPECT_EQ(ring.ReplaceDevice(42, RingDevice{9, "d9", 1.0}).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(ring.ReplaceDevice(1, RingDevice{1, "d1b", 1.0}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ring.ReplaceDevice(1, RingDevice{2, "dup", 1.0}).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(ring.ReplaceDevice(1, RingDevice{9, "d9", -1.0}).code(),
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(ring.ReplaceDevice(1, RingDevice{9, "d9", 1.0}).ok());
  // The retired id is gone for good.
  EXPECT_EQ(ring.ReplaceDevice(1, RingDevice{10, "d10", 1.0}).code(),
            ErrorCode::kNotFound);
}

// Property: across random weighted topologies under random add/remove
// churn, (a) per-device vnode share tracks weight within tolerance and
// (b) each step moves no more slots than the quota deltas require.
TEST(RingTest, WeightedChurnTracksWeightWithMinimalMovement) {
  for (std::uint64_t seed : {7u, 19u, 83u}) {
    Rng rng(seed);
    PartitionRing ring(10, 3);
    DeviceId next_id = 0;
    std::map<DeviceId, double> weights;
    for (int i = 0; i < 4 + static_cast<int>(rng.Below(4)); ++i) {
      const double w = 0.5 + 3.5 * rng.NextDouble();
      ASSERT_TRUE(ring.AddDevice(RingDevice{next_id,
                                            "d" + std::to_string(next_id), w})
                      .ok());
      weights[next_id] = w;
      ++next_id;
    }
    ASSERT_TRUE(ring.Rebalance().ok());
    const std::size_t total_slots = 3u * ring.partition_count();
    for (int step = 0; step < 12; ++step) {
      std::vector<std::uint32_t> before_counts = ring.SlotCounts();
      std::vector<std::vector<DeviceId>> before;
      for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
        before.push_back(ring.ReplicasOfPartition(p));
      }
      if (rng.Chance(0.4) && weights.size() > 3) {
        auto it = weights.begin();
        std::advance(it, rng.Below(weights.size()));
        ASSERT_TRUE(ring.RemoveDevice(it->first).ok());
        weights.erase(it);
      } else {
        const double w = 0.5 + 3.5 * rng.NextDouble();
        ASSERT_TRUE(
            ring.AddDevice(
                    RingDevice{next_id, "d" + std::to_string(next_id), w})
                .ok());
        weights[next_id] = w;
        ++next_id;
      }
      ASSERT_TRUE(ring.Rebalance().ok());

      // (a) proportionality: share tracks weight / total weight.
      double total_weight = 0;
      for (const auto& [id, w] : weights) total_weight += w;
      const auto counts = ring.SlotCounts();
      for (const auto& [id, w] : weights) {
        const double want = total_slots * w / total_weight;
        EXPECT_NEAR(counts[id], want, want * 0.05 + 3.0)
            << "seed " << seed << " step " << step << " device " << id;
      }

      // (b) minimal movement: replicas that changed *device* are bounded
      // by the sum of per-device quota shrinkage (slots the old owners
      // could not keep), plus slack for zone-collision avoidance.  Row
      // order within a partition is ignored -- data lives on devices,
      // so a row swap moves nothing.
      std::size_t moved = 0;
      for (std::uint32_t p = 0; p < ring.partition_count(); ++p) {
        std::multiset<DeviceId> was(before[p].begin(), before[p].end());
        for (DeviceId d : ring.ReplicasOfPartition(p)) {
          auto it = was.find(d);
          if (it != was.end()) {
            was.erase(it);
          } else {
            ++moved;
          }
        }
      }
      std::size_t shrinkage = 0;
      for (DeviceId id = 0; id < next_id; ++id) {
        const std::uint32_t now = counts[id];
        const std::uint32_t was =
            id < before_counts.size() ? before_counts[id] : 0;
        if (was > now) shrinkage += was - now;
      }
      // 1.5x covers the extra swaps zone-aware filling makes on top of
      // the pure quota delta; a full reshuffle would be ~total_slots.
      EXPECT_LE(moved, shrinkage + shrinkage / 2 + 16)
          << "seed " << seed << " step " << step;
      EXPECT_LT(moved, total_slots / 2)
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(RingTest, ChurnSequenceStaysConsistent) {
  auto ring = MakeRing(5);
  Rng rng(31);
  DeviceId next_id = 5;
  for (int step = 0; step < 20; ++step) {
    if (rng.Chance(0.5) && ring.active_device_count() > 3) {
      // Remove a random active device.
      std::vector<DeviceId> active;
      for (const auto& d : ring.devices()) {
        if (d.active) active.push_back(d.id);
      }
      ASSERT_TRUE(ring.RemoveDevice(active[rng.Below(active.size())]).ok());
    } else {
      ASSERT_TRUE(
          ring.AddDevice(RingDevice{next_id, "d" + std::to_string(next_id),
                                    1.0 + rng.NextDouble()})
              .ok());
      ++next_id;
    }
    ASSERT_TRUE(ring.Rebalance().ok());
    for (std::uint32_t p = 0; p < ring.partition_count(); p += 37) {
      const auto reps = ring.ReplicasOfPartition(p);
      ASSERT_EQ(reps.size(), 3u);
      if (ring.active_device_count() >= 3) {
        std::set<DeviceId> unique(reps.begin(), reps.end());
        EXPECT_EQ(unique.size(), reps.size());
      }
    }
  }
}

}  // namespace
}  // namespace h2
