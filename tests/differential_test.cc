// Differential (model-based) testing: a long random operation sequence is
// applied simultaneously to a trivially correct in-memory reference model
// and to each real system; after every batch the full observable state
// (recursive listings, stat of every path, content of every file) must
// match.  This is the strongest correctness net in the repository: any
// divergence in visibility, tombstone handling, move/copy semantics or
// lazy cleanup shows up as a tree diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "baselines/cas_fs.h"
#include "baselines/index_fs.h"
#include "baselines/snapshot_fs.h"
#include "baselines/swift_fs.h"
#include "common/rng.h"
#include "common/strings.h"
#include "fs/path.h"
#include "h2/h2cloud.h"

namespace h2 {
namespace {

/// The reference model: a sorted map from normalized path to content
/// (directories map to nullopt-like marker).
class ModelFs {
 public:
  ModelFs() { entries_["/"] = Entry{true, ""}; }

  struct Entry {
    bool is_dir;
    std::string content;
  };

  Status WriteFile(const std::string& p, std::string content) {
    auto parent = entries_.find(ParentPath(p));
    if (parent == entries_.end()) return Status::NotFound("parent");
    if (!parent->second.is_dir) return Status::NotADirectory("parent");
    auto it = entries_.find(p);
    if (it != entries_.end() && it->second.is_dir) {
      return Status::IsADirectory(p);
    }
    entries_[p] = Entry{false, std::move(content)};
    return Status::Ok();
  }

  Status Mkdir(const std::string& p) {
    if (p == "/") return Status::AlreadyExists(p);
    auto parent = entries_.find(ParentPath(p));
    if (parent == entries_.end()) return Status::NotFound("parent");
    if (!parent->second.is_dir) return Status::NotADirectory("parent");
    if (entries_.contains(p)) return Status::AlreadyExists(p);
    entries_[p] = Entry{true, ""};
    return Status::Ok();
  }

  Status RemoveFile(const std::string& p) {
    auto it = entries_.find(p);
    if (it == entries_.end()) return Status::NotFound(p);
    if (it->second.is_dir) return Status::IsADirectory(p);
    entries_.erase(it);
    return Status::Ok();
  }

  Status Rmdir(const std::string& p) {
    if (p == "/") return Status::InvalidArgument(p);
    auto it = entries_.find(p);
    if (it == entries_.end()) return Status::NotFound(p);
    if (!it->second.is_dir) return Status::NotADirectory(p);
    EraseSubtree(p);
    return Status::Ok();
  }

  Status Move(const std::string& f, const std::string& t) {
    if (f == "/") return Status::InvalidArgument(f);
    if (t == "/") return Status::AlreadyExists(t);
    if (f == t) return Status::Ok();
    if (IsWithin(t, f)) return Status::InvalidArgument("into itself");
    auto src = entries_.find(f);
    if (src == entries_.end()) return Status::NotFound(f);
    auto tparent = entries_.find(ParentPath(t));
    if (tparent == entries_.end()) return Status::NotFound("dest parent");
    if (!tparent->second.is_dir) return Status::NotADirectory("dest parent");
    if (entries_.contains(t)) return Status::AlreadyExists(t);

    std::vector<std::pair<std::string, Entry>> moved;
    moved.emplace_back(t, src->second);
    if (src->second.is_dir) {
      CollectSubtree(f, t, &moved);
    }
    EraseSubtree(f);
    for (auto& [path, entry] : moved) entries_[path] = std::move(entry);
    return Status::Ok();
  }

  Status Copy(const std::string& f, const std::string& t) {
    if (f == "/") return Status::InvalidArgument(f);
    if (t == "/") return Status::AlreadyExists(t);
    if (f == t || IsWithin(t, f)) return Status::InvalidArgument("overlap");
    auto src = entries_.find(f);
    if (src == entries_.end()) return Status::NotFound(f);
    auto tparent = entries_.find(ParentPath(t));
    if (tparent == entries_.end()) return Status::NotFound("dest parent");
    if (!tparent->second.is_dir) return Status::NotADirectory("dest parent");
    if (entries_.contains(t)) return Status::AlreadyExists(t);

    std::vector<std::pair<std::string, Entry>> copies;
    copies.emplace_back(t, src->second);
    if (src->second.is_dir) CollectSubtree(f, t, &copies);
    for (auto& [path, entry] : copies) entries_[path] = std::move(entry);
    return Status::Ok();
  }

  /// Full observable state: "path|D" or "path|F|content" lines.
  std::string Dump() const {
    std::string out;
    for (const auto& [path, entry] : entries_) {
      if (path == "/") continue;
      out += path;
      out += entry.is_dir ? "|D" : "|F|" + entry.content;
      out.push_back('\n');
    }
    return out;
  }

  std::vector<std::string> AllDirs() const {
    std::vector<std::string> dirs;
    for (const auto& [path, entry] : entries_) {
      if (entry.is_dir) dirs.push_back(path);
    }
    return dirs;
  }
  std::vector<std::string> AllFiles() const {
    std::vector<std::string> files;
    for (const auto& [path, entry] : entries_) {
      if (!entry.is_dir) files.push_back(path);
    }
    return files;
  }

 private:
  void EraseSubtree(const std::string& p) {
    auto it = entries_.lower_bound(p);
    while (it != entries_.end() &&
           (it->first == p || IsWithin(it->first, p))) {
      it = entries_.erase(it);
    }
  }
  void CollectSubtree(const std::string& f, const std::string& t,
                      std::vector<std::pair<std::string, Entry>>* out) {
    for (auto it = entries_.upper_bound(f);
         it != entries_.end() && IsWithin(it->first, f); ++it) {
      out->emplace_back(t + it->first.substr(f.size()), it->second);
    }
  }

  std::map<std::string, Entry> entries_;
};

/// Recursively dumps a real filesystem in the model's format.
std::string DumpFs(FileSystem& fs, const std::string& dir = "/") {
  std::string out;
  auto entries = fs.List(dir, ListDetail::kNamesOnly);
  if (!entries.ok()) return "<list failed: " + entries.status().ToString() + ">";
  for (const auto& e : *entries) {
    const std::string path = JoinPath(dir, e.name);
    if (e.kind == EntryKind::kDirectory) {
      out += path + "|D\n";
      out += DumpFs(fs, path);
    } else {
      auto blob = fs.ReadFile(path);
      out += path + "|F|" + (blob.ok() ? blob->data : "<read failed>") + "\n";
    }
  }
  return out;
}

std::string SortedLines(std::string dump) {
  auto views = Split(dump, '\n');
  std::vector<std::string> lines;
  for (auto v : views) {
    if (!v.empty()) lines.emplace_back(v);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (auto& l : lines) {
    out += l;
    out.push_back('\n');
  }
  return out;
}

/// Applies `steps` random operations, mirroring each into the model, and
/// compares dumps every `check_every` steps.
void RunDifferential(FileSystem& fs, std::uint64_t seed, int steps,
                     int check_every,
                     const std::function<void()>& quiesce = [] {}) {
  ModelFs model;
  Rng rng(seed);
  int counter = 0;

  for (int step = 0; step < steps; ++step) {
    const auto dirs = model.AllDirs();
    const auto files = model.AllFiles();
    auto random_dir = [&]() -> std::string {
      return dirs[rng.Below(dirs.size())];
    };
    auto fresh_path = [&]() {
      return JoinPath(random_dir(), "n" + std::to_string(counter++));
    };
    auto random_file = [&]() -> std::string {
      return files.empty() ? fresh_path() : files[rng.Below(files.size())];
    };
    auto random_entry = [&]() -> std::string {
      // Any existing path, or occasionally a bogus one.
      if (rng.Chance(0.1)) return "/bogus" + std::to_string(counter++);
      if (!files.empty() && rng.Chance(0.5)) return random_file();
      return random_dir();
    };

    Status model_status, fs_status;
    const double dice = rng.NextDouble();
    if (dice < 0.30) {
      const std::string p = rng.Chance(0.7) ? fresh_path() : random_file();
      const std::string content = "c" + std::to_string(rng.Below(1000));
      model_status = model.WriteFile(p, content);
      fs_status = fs.WriteFile(p, FileBlob::FromString(content));
    } else if (dice < 0.50) {
      const std::string p = rng.Chance(0.8) ? fresh_path() : random_entry();
      model_status = model.Mkdir(p);
      fs_status = fs.Mkdir(p);
    } else if (dice < 0.62) {
      const std::string p = random_entry();
      model_status = model.RemoveFile(p);
      fs_status = fs.RemoveFile(p);
    } else if (dice < 0.72) {
      const std::string p = random_entry();
      model_status = model.Rmdir(p);
      fs_status = fs.Rmdir(p);
    } else if (dice < 0.86) {
      const std::string f = random_entry();
      const std::string t = rng.Chance(0.8) ? fresh_path() : random_entry();
      model_status = model.Move(f, t);
      fs_status = fs.Move(f, t);
    } else {
      const std::string f = random_entry();
      const std::string t = rng.Chance(0.8) ? fresh_path() : random_entry();
      model_status = model.Copy(f, t);
      fs_status = fs.Copy(f, t);
    }

    // Both sides must agree on success/failure class.
    ASSERT_EQ(model_status.code(), fs_status.code())
        << "step " << step << ": model=" << model_status.ToString()
        << " fs=" << fs_status.ToString();

    if ((step + 1) % check_every == 0) {
      quiesce();
      ASSERT_EQ(SortedLines(model.Dump()), SortedLines(DumpFs(fs)))
          << "divergence after step " << step;
    }
  }
  quiesce();
  ASSERT_EQ(SortedLines(model.Dump()), SortedLines(DumpFs(fs)));
}

CloudConfig SmallCloud() {
  CloudConfig cfg;
  cfg.part_power = 8;
  return cfg;
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, H2CloudMatchesModel) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  RunDifferential(*fs, GetParam(), 300, 50,
                  [&cloud] { cloud.RunMaintenanceToQuiescence(); });
}

TEST_P(DifferentialTest, SwiftMatchesModel) {
  ObjectCloud cloud(SmallCloud());
  SwiftFs fs(cloud);
  RunDifferential(fs, GetParam(), 300, 50);
}

TEST_P(DifferentialTest, DpMatchesModel) {
  ObjectCloud cloud(SmallCloud());
  IndexServerFs fs(cloud, IndexFsOptions::DynamicPartition());
  RunDifferential(fs, GetParam(), 300, 50,
                  [&fs] { fs.RunLazyCleanup(); });
}

TEST_P(DifferentialTest, CasMatchesModel) {
  ObjectCloud cloud(SmallCloud());
  CasFs fs(cloud);
  RunDifferential(fs, GetParam(), 150, 50);  // CAS rebuilds are O(N)
}

TEST_P(DifferentialTest, CumulusMatchesModel) {
  ObjectCloud cloud(SmallCloud());
  SnapshotFs fs(cloud);
  RunDifferential(fs, GetParam(), 150, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(101, 202, 303, 404));

// The resolve cache must be semantically invisible: the same operation
// trace against a cache-on and a cache-off deployment must yield identical
// status codes op-by-op and bit-identical trees.  A twin facade mirrors
// every call into both clouds and fails on the first divergence.
TEST(DifferentialCacheTest, CachedMatchesUncachedTrace) {
  H2CloudConfig cache_on;
  cache_on.cloud.part_power = 8;
  cache_on.h2.resolve_cache = true;
  H2CloudConfig cache_off = cache_on;
  cache_off.h2.resolve_cache = false;
  H2Cloud on_cloud(cache_on);
  H2Cloud off_cloud(cache_off);
  ASSERT_TRUE(on_cloud.CreateAccount("u").ok());
  ASSERT_TRUE(off_cloud.CreateAccount("u").ok());
  auto on_fs = std::move(on_cloud.OpenFilesystem("u")).value();
  auto off_fs = std::move(off_cloud.OpenFilesystem("u")).value();

  class TwinFs final : public FileSystem {
   public:
    TwinFs(FileSystem& on, FileSystem& off) : on_(on), off_(off) {}
    std::string_view system_name() const override { return "H2-twin"; }

    Status WriteFile(std::string_view p, FileBlob b) override {
      const Status off = off_.WriteFile(p, b);
      return Check(p, on_.WriteFile(p, std::move(b)), off);
    }
    Result<FileBlob> ReadFile(std::string_view p) override {
      auto off = off_.ReadFile(p);
      auto on = on_.ReadFile(p);
      EXPECT_EQ(on.status().code(), off.status().code()) << p;
      if (on.ok() && off.ok()) {
        EXPECT_EQ(on->data, off->data) << p;
      }
      return on;
    }
    Result<FileInfo> Stat(std::string_view p) override {
      auto off = off_.Stat(p);
      auto on = on_.Stat(p);
      EXPECT_EQ(on.status().code(), off.status().code()) << p;
      return on;
    }
    Status RemoveFile(std::string_view p) override {
      return Check(p, on_.RemoveFile(p), off_.RemoveFile(p));
    }
    Status Mkdir(std::string_view p) override {
      return Check(p, on_.Mkdir(p), off_.Mkdir(p));
    }
    Status Rmdir(std::string_view p) override {
      return Check(p, on_.Rmdir(p), off_.Rmdir(p));
    }
    Status Move(std::string_view f, std::string_view t) override {
      return Check(f, on_.Move(f, t), off_.Move(f, t));
    }
    Status Copy(std::string_view f, std::string_view t) override {
      return Check(f, on_.Copy(f, t), off_.Copy(f, t));
    }
    Result<std::vector<DirEntry>> List(std::string_view p,
                                       ListDetail d) override {
      auto off = off_.List(p, d);
      auto on = on_.List(p, d);
      EXPECT_EQ(on.status().code(), off.status().code()) << p;
      if (on.ok() && off.ok()) {
        EXPECT_EQ(on->size(), off->size()) << p;
        for (std::size_t i = 0; i < on->size() && i < off->size(); ++i) {
          EXPECT_EQ((*on)[i].name, (*off)[i].name) << p;
          EXPECT_EQ((*on)[i].kind, (*off)[i].kind) << p;
        }
      }
      return on;
    }

   private:
    Status Check(std::string_view p, Status on, const Status& off) {
      EXPECT_EQ(on.code(), off.code())
          << p << ": cached=" << on.ToString()
          << " uncached=" << off.ToString();
      return on;
    }
    FileSystem& on_;
    FileSystem& off_;
  };

  TwinFs twin(*on_fs, *off_fs);
  RunDifferential(twin, 9090, 300, 50, [&] {
    on_cloud.RunMaintenanceToQuiescence();
    off_cloud.RunMaintenanceToQuiescence();
  });
  // Final states are bit-identical dumps, and the cached side actually
  // exercised its cache rather than trivially matching with it idle.
  ASSERT_EQ(SortedLines(DumpFs(*on_fs)), SortedLines(DumpFs(*off_fs)));
  EXPECT_GT(on_cloud.middleware(0).counters().resolve_cache_hits, 0u);
  EXPECT_EQ(off_cloud.middleware(0).counters().resolve_cache_hits, 0u);
}

// H2 with multiple middlewares: operations round-robin across them with
// maintenance in between (sequential consistency per step is preserved
// because each step quiesces before the next middleware acts).
TEST(DifferentialMultiMwTest, RoundRobinMiddlewares) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.middleware_count = 3;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  std::vector<std::unique_ptr<H2AccountFs>> sessions;
  for (int i = 0; i < 3; ++i) {
    sessions.push_back(std::move(cloud.OpenFilesystem("u", i)).value());
  }

  // A round-robin facade over the three sessions.
  class RoundRobinFs final : public FileSystem {
   public:
    RoundRobinFs(std::vector<std::unique_ptr<H2AccountFs>>& s, H2Cloud& c)
        : sessions_(s), cloud_(c) {}
    std::string_view system_name() const override { return "H2-RR"; }

#define RR_DISPATCH(expr)                         \
  auto& fs = *sessions_[next_++ % sessions_.size()]; \
  cloud_.RunMaintenanceToQuiescence();            \
  auto result = (expr);                           \
  meter_.Reset();                                 \
  meter_.Merge(fs.last_op());                     \
  return result

    Status WriteFile(std::string_view p, FileBlob b) override {
      RR_DISPATCH(fs.WriteFile(p, std::move(b)));
    }
    Result<FileBlob> ReadFile(std::string_view p) override {
      RR_DISPATCH(fs.ReadFile(p));
    }
    Result<FileInfo> Stat(std::string_view p) override {
      RR_DISPATCH(fs.Stat(p));
    }
    Status RemoveFile(std::string_view p) override {
      RR_DISPATCH(fs.RemoveFile(p));
    }
    Status Mkdir(std::string_view p) override { RR_DISPATCH(fs.Mkdir(p)); }
    Status Rmdir(std::string_view p) override { RR_DISPATCH(fs.Rmdir(p)); }
    Status Move(std::string_view f, std::string_view t) override {
      RR_DISPATCH(fs.Move(f, t));
    }
    Result<std::vector<DirEntry>> List(std::string_view p,
                                       ListDetail d) override {
      RR_DISPATCH(fs.List(p, d));
    }
    Status Copy(std::string_view f, std::string_view t) override {
      RR_DISPATCH(fs.Copy(f, t));
    }
#undef RR_DISPATCH

   private:
    std::vector<std::unique_ptr<H2AccountFs>>& sessions_;
    H2Cloud& cloud_;
    std::size_t next_ = 0;
  };

  RoundRobinFs rr(sessions, cloud);
  RunDifferential(rr, 777, 200, 40,
                  [&cloud] { cloud.RunMaintenanceToQuiescence(); });
}

}  // namespace
}  // namespace h2
