// Storage-backend durability tests (ISSUE 7): segment-log crash-recovery
// replay, group-commit loss windows, torn-tail vs corruption handling,
// the bounded hint queue, the timed-delete return-code fix, and the
// memory-vs-segment-log differential over the engine's trace families.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/backend/memory_backend.h"
#include "cluster/backend/segment_log_backend.h"
#include "cluster/object_cloud.h"
#include "cluster/storage_node.h"
#include "engine/sharded_engine.h"
#include "hash/md5.h"
#include "workload/loadgen.h"
#include "workload/trace.h"
#include "workload/tree_gen.h"

namespace h2 {
namespace {

ObjectValue MakeValue(const std::string& payload, VirtualNanos ts) {
  ObjectValue v = ObjectValue::FromString(payload, ts);
  v.metadata["content-type"] = "text/plain";
  return v;
}

/// Byte-level dump of a backend's index: objects in sorted order with
/// every field, then tombstones for the probed keys.  Two backends with
/// equal dumps hold bit-identical state.
std::string DumpBackend(const StorageBackend& backend,
                        const std::vector<std::string>& tombstone_probes) {
  std::string out;
  backend.ForEachSorted([&](const std::string& key, const ObjectValue& v) {
    out += key;
    out += '=';
    out += v.payload;
    out += '/';
    out += std::to_string(v.logical_size);
    out += '/';
    out += std::to_string(v.created);
    out += '/';
    out += std::to_string(v.modified);
    for (const auto& [mk, mv] : v.metadata) {
      out += '/';
      out += mk;
      out += ':';
      out += mv;
    }
    out += '\n';
  });
  for (const std::string& key : tombstone_probes) {
    out += "tomb:" + key + "=" + std::to_string(backend.TombstoneTime(key));
    out += '\n';
  }
  return out;
}

TEST(SegmentLogBackendTest, SynchronousCrashLosesNothing) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSegmentLog;
  cfg.group_commit_window = 0;  // fsync every record
  SegmentLogBackend backend(cfg);

  for (int i = 0; i < 10; ++i) {
    backend.ApplyPut("k" + std::to_string(i),
                     MakeValue("v" + std::to_string(i), 100 + i));
  }
  backend.ApplyDelete("k3", /*tombstone=*/500);
  backend.ApplyDelete("k4", /*tombstone=*/0);  // administrative erase

  const std::vector<std::string> probes = {"k3", "k4", "k5"};
  const std::string before = DumpBackend(backend, probes);

  backend.Crash();
  EXPECT_EQ(backend.object_count(), 0u);  // index gone until replay
  ASSERT_TRUE(backend.Recover().ok());

  EXPECT_EQ(DumpBackend(backend, probes), before);
  const BackendStats stats = backend.stats();
  EXPECT_EQ(stats.records_lost, 0u);
  EXPECT_EQ(stats.records_replayed, 12u);  // 10 puts + 2 deletes
  EXPECT_EQ(stats.torn_records_dropped, 0u);
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(backend.TombstoneTime("k3"), 500);
  EXPECT_EQ(backend.TombstoneTime("k4"), 0);  // untimed: no tombstone
}

TEST(SegmentLogBackendTest, MidBatchCrashKeepsExactlyTheDurablePrefix) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSegmentLog;
  cfg.group_commit_window = 8;
  SegmentLogBackend backend(cfg);

  // A reference backend sees only the writes the crash will preserve.
  BackendConfig ref_cfg = cfg;
  ref_cfg.group_commit_window = 0;
  SegmentLogBackend reference(ref_cfg);

  std::vector<std::string> probes;
  for (int i = 0; i < 20; ++i) {
    const std::string key = "key-" + std::to_string(i);
    probes.push_back(key);
    const ObjectValue value = MakeValue("payload-" + std::to_string(i), i + 1);
    backend.ApplyPut(key, value);
    // Fsyncs fire after records 8 and 16: the first 16 records survive.
    if (i < 16) reference.ApplyPut(key, value);
  }

  backend.Crash();
  ASSERT_TRUE(backend.Recover().ok());

  // Byte-identical rebuild of exactly the fsynced prefix.
  EXPECT_EQ(DumpBackend(backend, probes), DumpBackend(reference, probes));
  const BackendStats stats = backend.stats();
  EXPECT_EQ(stats.records_lost, 4u);      // the open batch: records 17-20
  EXPECT_EQ(stats.records_replayed, 16u);
  EXPECT_EQ(backend.object_count(), 16u);
}

TEST(SegmentLogBackendTest, FlushClosesTheOpenBatch) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSegmentLog;
  cfg.group_commit_window = 64;  // wider than the write count
  SegmentLogBackend backend(cfg);
  for (int i = 0; i < 5; ++i) {
    backend.ApplyPut("k" + std::to_string(i), MakeValue("v", i + 1));
  }
  backend.Flush();  // explicit barrier
  backend.Crash();
  ASSERT_TRUE(backend.Recover().ok());
  EXPECT_EQ(backend.object_count(), 5u);
  EXPECT_EQ(backend.stats().records_lost, 0u);
}

TEST(SegmentLogBackendTest, SegmentsRotateAndReplayAcrossRotation) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSegmentLog;
  cfg.group_commit_window = 0;
  cfg.segment_max_bytes = 256;  // force frequent rotation
  SegmentLogBackend backend(cfg);
  std::vector<std::string> probes;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "rotate-" + std::to_string(i);
    probes.push_back(key);
    backend.ApplyPut(key, MakeValue(std::string(32, 'x'), i + 1));
  }
  EXPECT_GT(backend.stats().segments, 1u);

  const std::string before = DumpBackend(backend, probes);
  backend.Crash();
  ASSERT_TRUE(backend.Recover().ok());
  EXPECT_EQ(DumpBackend(backend, probes), before);
  EXPECT_EQ(backend.stats().records_lost, 0u);
}

TEST(SegmentLogBackendTest, TornTailIsDroppedNotFatal) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSegmentLog;
  cfg.group_commit_window = 0;
  SegmentLogBackend backend(cfg);
  backend.ApplyPut("a", MakeValue("first", 1));
  backend.ApplyPut("b", MakeValue("second", 2));
  backend.ApplyPut("c", MakeValue("third", 3));

  // A device that acked the fsync but tore the final record mid-sector.
  backend.TearDurableTailForTest(4);
  ASSERT_TRUE(backend.Recover().ok());
  EXPECT_EQ(backend.stats().torn_records_dropped, 1u);
  EXPECT_TRUE(backend.Contains("a"));
  EXPECT_TRUE(backend.Contains("b"));
  EXPECT_FALSE(backend.Contains("c"));  // the torn record
}

TEST(SegmentLogBackendTest, InteriorCorruptionFailsRecovery) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSegmentLog;
  cfg.group_commit_window = 0;
  SegmentLogBackend backend(cfg);
  backend.ApplyPut("a", MakeValue("first", 1));
  backend.ApplyPut("b", MakeValue("second", 2));
  backend.ApplyPut("c", MakeValue("third", 3));

  // Flip a byte inside the *first* record: valid records follow it, so
  // this is media corruption, not a torn tail, and must not be dropped
  // silently.
  backend.CorruptByteForTest(2);
  const Status st = backend.Recover();
  EXPECT_EQ(st.code(), ErrorCode::kCorruption) << st.ToString();
}

TEST(SegmentLogBackendTest, FsyncCostStaysOffTheForegroundClock) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSegmentLog;
  cfg.group_commit_window = 0;
  SegmentLogBackend backend(cfg);
  for (int i = 0; i < 7; ++i) {
    backend.ApplyPut("k" + std::to_string(i), MakeValue("v", i + 1));
  }
  const BackendStats stats = backend.stats();
  EXPECT_EQ(stats.fsyncs, 7u);
  // The cost is real but private: it accrues on the backend's durability
  // meter, never on any foreground OpMeter or the cloud clock (the
  // differential test below is the end-to-end pin of that claim).
  EXPECT_EQ(stats.fsync_nanos, 7 * cfg.fsync_cost);
}

TEST(MemoryBackendTest, CrashLosesEverythingAndRecoversEmpty) {
  MemoryBackend backend;
  backend.ApplyPut("a", MakeValue("v", 1));
  backend.ApplyDelete("gone", /*tombstone=*/7);
  backend.Crash();
  ASSERT_TRUE(backend.Recover().ok());
  EXPECT_EQ(backend.object_count(), 0u);
  EXPECT_EQ(backend.TombstoneTime("gone"), 0);
  EXPECT_GT(backend.stats().records_lost, 0u);
}

// --- the timed-delete return-code fix (satellite 1) ------------------------

TEST(StorageNodeDurabilityTest, TimedDeleteOnAbsentKeyCommitsAndReturnsOk) {
  StorageNode node(0, "n0", 1);
  // Before the fix this returned NotFound while still recording the
  // tombstone, so hint replay and repair accounting treated a committed
  // delete as a failure.
  EXPECT_TRUE(node.Delete("never-written", /*ts=*/300).ok());
  EXPECT_EQ(node.TombstoneTime("never-written"), 300);
  // Untimed (administrative) deletes keep their NotFound contract.
  EXPECT_EQ(node.Delete("also-never-written").code(), ErrorCode::kNotFound);
}

TEST(StorageNodeDurabilityTest, NodeCrashRestartReplaysSegmentLog) {
  BackendConfig backend;
  backend.kind = BackendKind::kSegmentLog;
  backend.group_commit_window = 4;
  StorageNode node(0, "n0", 1, /*zone=*/0, backend);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        node.Put("k" + std::to_string(i), MakeValue("v", 100 + i)).ok());
  }
  ASSERT_TRUE(node.QueueHint(ReplicaHint{"k0", MakeValue("h", 1), 0, 3}).ok());

  node.Crash();
  EXPECT_TRUE(node.IsDown());
  EXPECT_EQ(node.hint_count(), 0u);  // hints are volatile
  EXPECT_EQ(node.Get("k0").code(), ErrorCode::kUnavailable);

  ASSERT_TRUE(node.Restart().ok());
  EXPECT_FALSE(node.IsDown());
  // Two records (9, 10 mod 4) were in the open batch and died; the
  // durable eight replayed.
  EXPECT_EQ(node.object_count(), 8u);
  EXPECT_EQ(node.backend_stats().records_lost, 2u);
  EXPECT_TRUE(node.Contains("k7"));
  EXPECT_FALSE(node.Contains("k8"));
}

// --- bounded hint queue (satellite 2) --------------------------------------

TEST(HintCapTest, OverflowDegradesToScrubRepairNotUnboundedGrowth) {
  CloudConfig cfg;
  cfg.node_count = 8;
  cfg.replica_count = 3;
  cfg.part_power = 8;
  cfg.max_hints_per_node = 4;
  ObjectCloud cloud(cfg);
  cloud.SetReadRepair(false);  // isolate the hint path
  OpMeter meter;
  const std::string key = "capped";
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v0", 0), meter).ok());

  std::size_t down = 0;
  for (DeviceId dev : cloud.ring().ReplicasOfHash(Md5::Hash64(key))) {
    down = static_cast<std::size_t>(dev);  // last replica in ring order
  }
  cloud.node(down).SetDown(true);
  // Every overwrite parks a hint on the same surviving holder; past the
  // cap of 4 the holder refuses instead of growing without bound.
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(
        cloud.Put(key, ObjectValue::FromString("v" + std::to_string(i), 0),
                  meter)
            .ok());
  }
  std::uint64_t overflows = 0;
  std::size_t parked = 0;
  for (std::size_t n = 0; n < cloud.node_count(); ++n) {
    overflows += cloud.node(n).hint_overflow_count();
    parked += cloud.node(n).hint_count();
    EXPECT_LE(cloud.node(n).hint_count(), 4u) << "node " << n;
  }
  EXPECT_EQ(overflows, 16u);  // 20 hints attempted, 4 parked
  EXPECT_EQ(parked, 4u);

  // Replayed hints alone cannot converge (the parked four are the oldest
  // versions); the anti-entropy scrub closes the gap.
  cloud.node(down).SetDown(false);
  while (cloud.ReplayHints() > 0) {
  }
  (void)cloud.ReplicaScrub();
  EXPECT_EQ(cloud.DivergentKeyCount(), 0u);
  auto healed = cloud.node(down).Get(key);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->payload, "v20");
}

// --- memory vs segment-log differential (tentpole acceptance) --------------

H2CloudConfig BackendConfigFor(BackendKind kind, std::uint32_t window,
                               std::size_t middlewares) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.cloud.backend.kind = kind;
  cfg.cloud.backend.group_commit_window = window;
  cfg.middleware_count = static_cast<int>(middlewares);
  return cfg;
}

constexpr std::size_t kShards = 3;

struct FamilyPlans {
  std::vector<ShardPlan> setup;
  std::vector<ShardPlan> ops;
};

FamilyPlans BuildFamily(const TraceMix& mix, std::size_t ops_per_shard) {
  FamilyPlans plans;
  for (std::size_t s = 0; s < kShards; ++s) {
    TreeSpec spec;
    spec.file_count = 18;
    spec.dir_count = 5;
    spec.max_depth = 4;
    spec.seed = 300 + s;
    const GeneratedTree tree = GenerateTree(spec);

    ShardPlan setup;
    setup.account = "u" + std::to_string(s);
    for (const std::string& dir : tree.dirs) {
      setup.ops.push_back(TraceOp{TraceOpKind::kMkdir, dir, "", 0});
    }
    for (const FileSpec& file : tree.files) {
      setup.ops.push_back(
          TraceOp{TraceOpKind::kWrite, file.path, "", file.size});
    }

    ShardPlan ops;
    ops.account = setup.account;
    ops.ops = GenerateTrace(tree, ops_per_shard, mix, 7100 + s);
    plans.setup.push_back(std::move(setup));
    plans.ops.push_back(std::move(ops));
  }
  return plans;
}

std::string RunCycle(const FamilyPlans& plans, const H2CloudConfig& cfg) {
  H2Cloud cloud(cfg);
  EngineOptions opts;
  opts.threads = 1;
  opts.collect_latencies = false;
  Result<EngineReport> setup = RunSharded(cloud, plans.setup, opts);
  EXPECT_TRUE(setup.ok()) << setup.status().ToString();
  cloud.RunMaintenanceToQuiescence();
  Result<EngineReport> replay = RunSharded(cloud, plans.ops, opts);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  cloud.RunMaintenanceToQuiescence();
  return cloud.cloud().DebugDump();
}

void ExpectBackendsBitIdentical(const TraceMix& mix, const char* family) {
  const FamilyPlans plans = BuildFamily(mix, 40);
  const std::string oracle =
      RunCycle(plans, BackendConfigFor(BackendKind::kMemory, 0, kShards));
  ASSERT_FALSE(oracle.empty());
  // Any group-commit window must match: durability batching may only
  // change what a crash would lose, never live foreground state.
  for (const std::uint32_t window : {0u, 8u, 32u}) {
    const std::string dump = RunCycle(
        plans, BackendConfigFor(BackendKind::kSegmentLog, window, kShards));
    EXPECT_TRUE(dump == oracle)
        << family << ": segment-log(window=" << window
        << ") diverged from the in-memory backend (dump sizes "
        << dump.size() << " vs " << oracle.size() << ")";
  }
}

TEST(BackendDifferentialTest, DefaultMixBitIdentical) {
  ExpectBackendsBitIdentical(TraceMix{}, "default-mix");
}

TEST(BackendDifferentialTest, ReadHeavyFamilyBitIdentical) {
  TraceMix mix;
  mix.stat = 45;
  mix.read = 35;
  mix.list = 12;
  mix.write = 5;
  mix.mkdir = 1;
  mix.move = 1;
  mix.rename = 0.5;
  mix.copy = 0.5;
  mix.remove = 0;
  mix.rmdir = 0;
  ExpectBackendsBitIdentical(mix, "read-heavy");
}

TEST(BackendDifferentialTest, StructuralChurnFamilyBitIdentical) {
  TraceMix mix;
  mix.stat = 5;
  mix.read = 5;
  mix.list = 5;
  mix.write = 25;
  mix.mkdir = 15;
  mix.move = 15;
  mix.rename = 10;
  mix.copy = 10;
  mix.remove = 8;
  mix.rmdir = 2;
  ExpectBackendsBitIdentical(mix, "structural-churn");
}

}  // namespace
}  // namespace h2
