// Tests for the HTTP substrate (net/http): framing, encoding, the
// loopback server/client pair, and concurrent requests.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/http.h"

namespace h2 {
namespace {

TEST(UrlCodecTest, EncodesSpacesAndSpecials) {
  EXPECT_EQ(UrlEncode("/a b/c"), "/a%20b/c");
  EXPECT_EQ(UrlEncode("/plain/path-1._~"), "/plain/path-1._~");
  EXPECT_EQ(UrlEncode("%"), "%25");
}

TEST(UrlCodecTest, RoundTrip) {
  const std::string nasty = "/dir with spaces/na|me%\xF0\x9F\x92\xBE?&=";
  auto decoded = UrlDecode(UrlEncode(nasty));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, nasty);
}

TEST(UrlCodecTest, RejectsBadEscapes) {
  EXPECT_FALSE(UrlDecode("%").ok());
  EXPECT_FALSE(UrlDecode("%2").ok());
  EXPECT_FALSE(UrlDecode("%zz").ok());
}

TEST(HttpMessageTest, RequestHelpers) {
  HttpRequest r;
  r.target = "/v1/alice/fs/docs?list=detail&stat=1";
  r.headers["x-op"] = "mkdir";
  EXPECT_EQ(r.Path(), "/v1/alice/fs/docs");
  EXPECT_EQ(r.Query("list"), "detail");
  EXPECT_EQ(r.Query("stat"), "1");
  EXPECT_EQ(r.Query("absent"), "");
  EXPECT_EQ(r.Header("X-Op"), "mkdir");
  EXPECT_EQ(r.Header("missing"), "");
}

TEST(HttpMessageTest, StatusMapping) {
  EXPECT_EQ(HttpStatusFor(Status::Ok()), 200);
  EXPECT_EQ(HttpStatusFor(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpStatusFor(Status::AlreadyExists("x")), 409);
  EXPECT_EQ(HttpStatusFor(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpStatusFor(Status::Unavailable("x")), 503);
  EXPECT_EQ(HttpStatusFor(Status::Internal("x")), 500);
}

TEST(HttpMessageTest, SerializationContainsFraming) {
  HttpRequest r;
  r.method = "PUT";
  r.target = "/x";
  r.body = "hello";
  const std::string wire = SerializeRequest(r);
  EXPECT_NE(wire.find("PUT /x HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nhello"), std::string::npos);

  HttpResponse resp = HttpResponse::Text(404, "nope");
  const std::string wire2 = SerializeResponse(resp);
  EXPECT_NE(wire2.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire2.find("content-length: 4\r\n"), std::string::npos);
}

TEST(HttpServerTest, EchoRoundTrip) {
  HttpServer server([](const HttpRequest& request) {
    HttpResponse response = HttpResponse::Text(
        200, request.method + " " + request.target + " " + request.body);
    response.headers["x-echo"] = request.Header("x-probe");
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  HttpClient client(server.port());
  HttpRequest request;
  request.method = "PUT";
  request.target = "/echo";
  request.body = "payload-bytes";
  request.headers["x-probe"] = "42";
  auto response = client.Send(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "PUT /echo payload-bytes");
  EXPECT_EQ(response->headers.at("x-echo"), "42");
  server.Stop();
}

TEST(HttpServerTest, LargeBodyRoundTrip) {
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse::Text(200, request.body);
  });
  ASSERT_TRUE(server.Start().ok());
  HttpClient client(server.port());
  std::string big(512 * 1024, 'x');
  big += "tail";
  auto response = client.Put("/big", big);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body.size(), big.size());
  EXPECT_EQ(response->body, big);
  server.Stop();
}

TEST(HttpServerTest, ConcurrentClients) {
  std::atomic<int> served{0};
  HttpServer server([&served](const HttpRequest& request) {
    served.fetch_add(1);
    return HttpResponse::Text(200, request.target);
  });
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client(server.port());
      for (int i = 0; i < 10; ++i) {
        const std::string target =
            "/t" + std::to_string(t) + "/" + std::to_string(i);
        auto response = client.Get(target);
        if (!response.ok() || response->body != target) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(served.load(), 80);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server(
      [](const HttpRequest&) { return HttpResponse::Text(200, "ok"); });
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  server.Stop();
  server.Stop();  // no crash
  // The port is released: a new server can bind it.
  HttpServer second(
      [](const HttpRequest&) { return HttpResponse::Text(200, "ok2"); });
  ASSERT_TRUE(second.Start(port).ok());
  HttpClient client(port);
  auto response = client.Get("/");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "ok2");
  second.Stop();
}

TEST(HttpClientTest, ConnectFailureIsUnavailable) {
  HttpClient client(1);  // nothing listens on port 1
  auto response = client.Get("/");
  EXPECT_EQ(response.code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace h2
