#include <gtest/gtest.h>

#include <string>

#include "codec/formatter.h"
#include "common/rng.h"

namespace h2 {
namespace {

TEST(EscapeTest, PassesPlainText) {
  EXPECT_EQ(EscapeField("hello world"), "hello world");
}

TEST(EscapeTest, EscapesSpecials) {
  EXPECT_EQ(EscapeField("a|b"), "a%7Cb");
  EXPECT_EQ(EscapeField("a\nb"), "a%0Ab");
  EXPECT_EQ(EscapeField("100%"), "100%25");
}

TEST(EscapeTest, RoundTripsEverything) {
  std::string nasty;
  for (int c = 1; c < 256; ++c) nasty.push_back(static_cast<char>(c));
  auto back = UnescapeField(EscapeField(nasty));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, nasty);
}

TEST(EscapeTest, FuzzRoundTrip) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    std::string s;
    const std::size_t len = rng.Below(64);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.Between(1, 255)));
    }
    auto back = UnescapeField(EscapeField(s));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, s);
  }
}

TEST(EscapeTest, RejectsBadEscapes) {
  EXPECT_FALSE(UnescapeField("%").ok());
  EXPECT_FALSE(UnescapeField("%2").ok());
  EXPECT_FALSE(UnescapeField("%zz").ok());
}

TEST(TupleLineTest, RoundTrip) {
  const std::string line = MakeTupleLine({"name|with|pipes", "12345", "F", ""});
  auto fields = ParseTupleLine(line);
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[0], "name|with|pipes");
  EXPECT_EQ((*fields)[1], "12345");
  EXPECT_EQ((*fields)[2], "F");
  EXPECT_EQ((*fields)[3], "");
}

TEST(KvRecordTest, SetGet) {
  KvRecord r;
  r.Set("name", "value");
  r.SetInt("neg", -42);
  r.SetUint("big", ~0ULL);
  EXPECT_TRUE(r.Has("name"));
  EXPECT_FALSE(r.Has("other"));
  EXPECT_EQ(r.Get("name"), "value");
  EXPECT_EQ(*r.GetInt("neg"), -42);
  EXPECT_EQ(*r.GetUint("big"), ~0ULL);
}

TEST(KvRecordTest, SerializeIsSortedAndStable) {
  KvRecord r;
  r.Set("zebra", "1");
  r.Set("alpha", "2");
  const std::string s = r.Serialize();
  EXPECT_LT(s.find("alpha"), s.find("zebra"));
  // Serializing twice gives identical bytes (deterministic objects).
  EXPECT_EQ(s, r.Serialize());
}

TEST(KvRecordTest, ParseRoundTripWithSpecials) {
  KvRecord r;
  r.Set("key=with=equals", "value\nwith\nnewlines|and|pipes");
  r.Set("empty", "");
  auto parsed = KvRecord::Parse(r.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("key=with=equals"), "value\nwith\nnewlines|and|pipes");
  EXPECT_TRUE(parsed->Has("empty"));
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(KvRecordTest, ParseRejectsMalformed) {
  EXPECT_FALSE(KvRecord::Parse("no-equals-sign\n").ok());
}

TEST(KvRecordTest, MissingFieldsError) {
  KvRecord r;
  EXPECT_EQ(r.GetInt("absent").code(), ErrorCode::kCorruption);
  EXPECT_EQ(r.GetUint("absent").code(), ErrorCode::kCorruption);
  r.Set("notnum", "12x");
  EXPECT_EQ(r.GetInt("notnum").code(), ErrorCode::kCorruption);
}

}  // namespace
}  // namespace h2
