// Sharded-engine differential tests: the serial oracle.
//
// The engine's contract (engine/sharded_engine.h) is that a threaded
// replay leaves the cloud bit-identical -- every key, payload, metadata
// byte and virtual timestamp -- to the serial replay of the same plans.
// These tests enforce it the blunt way: replay each workload trace
// family at T = 2, 4, 8 worker threads and byte-compare the full
// ObjectCloud::DebugDump() against the T = 1 run.  Run under
// -DH2_TSAN=ON the same tests double as the engine's data-race net.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "workload/loadgen.h"
#include "workload/tree_gen.h"
#include "workload/trace.h"

namespace h2 {
namespace {

constexpr std::size_t kShards = 5;  // odd: uneven round-robin at T=2,4,8

H2CloudConfig SmallConfig(std::size_t middlewares) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.middleware_count = static_cast<int>(middlewares);
  return cfg;
}

/// Per-shard plans for one trace family: setup ops materialize a small
/// generated tree, measured ops come from GenerateTrace over it.
struct FamilyPlans {
  std::vector<ShardPlan> setup;
  std::vector<ShardPlan> ops;
};

FamilyPlans BuildFamily(const TraceMix& mix, std::size_t ops_per_shard) {
  FamilyPlans plans;
  for (std::size_t s = 0; s < kShards; ++s) {
    TreeSpec spec;
    spec.file_count = 24;
    spec.dir_count = 6;
    spec.max_depth = 4;
    spec.seed = 100 + s;
    const GeneratedTree tree = GenerateTree(spec);

    ShardPlan setup;
    setup.account = "u" + std::to_string(s);
    for (const std::string& dir : tree.dirs) {
      setup.ops.push_back(TraceOp{TraceOpKind::kMkdir, dir, "", 0});
    }
    for (const FileSpec& file : tree.files) {
      setup.ops.push_back(
          TraceOp{TraceOpKind::kWrite, file.path, "", file.size});
    }

    ShardPlan ops;
    ops.account = setup.account;
    ops.ops = GenerateTrace(tree, ops_per_shard, mix, 9000 + s);
    plans.setup.push_back(std::move(setup));
    plans.ops.push_back(std::move(ops));
  }
  return plans;
}

/// Full populate + replay + maintenance cycle on a fresh cloud; returns
/// the post-quiescence state dump.
std::string RunCycle(const FamilyPlans& plans, int threads,
                     EngineReport* report_out = nullptr) {
  H2Cloud cloud(SmallConfig(plans.setup.size()));
  EngineOptions opts;
  opts.threads = threads;
  opts.collect_latencies = false;

  Result<EngineReport> setup = RunSharded(cloud, plans.setup, opts);
  EXPECT_TRUE(setup.ok()) << setup.status().ToString();
  cloud.RunMaintenanceToQuiescence();

  Result<EngineReport> replay = RunSharded(cloud, plans.ops, opts);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  cloud.RunMaintenanceToQuiescence();

  if (report_out != nullptr && replay.ok()) *report_out = *replay;
  return cloud.cloud().DebugDump();
}

void ExpectFamilyBitIdentical(const TraceMix& mix, const char* family) {
  const FamilyPlans plans = BuildFamily(mix, 60);
  const std::string oracle = RunCycle(plans, 1);
  ASSERT_FALSE(oracle.empty());
  for (const int threads : {2, 4, 8}) {
    const std::string dump = RunCycle(plans, threads);
    // EXPECT_EQ on multi-MB dumps prints unusable diffs; compare first,
    // report compactly.
    EXPECT_TRUE(dump == oracle)
        << family << " diverged from the serial oracle at " << threads
        << " threads (dump sizes " << dump.size() << " vs "
        << oracle.size() << ")";
  }
}

TEST(ShardedEngine, DefaultMixBitIdenticalAcrossThreadCounts) {
  ExpectFamilyBitIdentical(TraceMix{}, "default-mix");
}

TEST(ShardedEngine, ReadHeavyFamilyBitIdentical) {
  TraceMix mix;
  mix.stat = 45;
  mix.read = 35;
  mix.list = 12;
  mix.write = 5;
  mix.mkdir = 1;
  mix.move = 1;
  mix.rename = 0.5;
  mix.copy = 0.5;
  mix.remove = 0;
  mix.rmdir = 0;
  ExpectFamilyBitIdentical(mix, "read-heavy");
}

TEST(ShardedEngine, StructuralChurnFamilyBitIdentical) {
  TraceMix mix;
  mix.stat = 5;
  mix.read = 5;
  mix.list = 5;
  mix.write = 25;
  mix.mkdir = 15;
  mix.move = 15;
  mix.rename = 10;
  mix.copy = 10;
  mix.remove = 8;
  mix.rmdir = 2;
  ExpectFamilyBitIdentical(mix, "structural-churn");
}

// Versioned reads, snapshot clones, copy-on-write materializations and
// the rmdir-driven unpin path all ride the same per-shard key families,
// so they must hold the byte-identity contract like every other op.
// This is the race net for the pin/park machinery when run under TSAN.
TEST(ShardedEngine, VersioningSnapshotFamilyBitIdentical) {
  TraceMix mix;
  mix.stat = 10;
  mix.read = 10;
  mix.list = 5;
  mix.write = 25;
  mix.mkdir = 10;
  mix.move = 5;
  mix.rename = 3;
  mix.copy = 3;
  mix.remove = 5;
  mix.rmdir = 4;  // high enough to reclaim clones (and park live ones)
  mix.list_at = 10;
  mix.snapshot_clone = 10;
  ExpectFamilyBitIdentical(mix, "versioning-snapshot");
}

TEST(ShardedEngine, ZipfLoadgenBitIdenticalAndReportSane) {
  LoadgenSpec spec;
  spec.shards = kShards;
  spec.dirs_per_shard = 3;
  spec.files_per_dir = 12;
  spec.ops_per_shard = 80;
  const std::vector<ShardLoad> loads = BuildZipfLoad(spec);

  FamilyPlans plans;
  for (const ShardLoad& load : loads) {
    plans.setup.push_back(ShardPlan{load.account, load.setup});
    plans.ops.push_back(ShardPlan{load.account, load.ops});
  }

  EngineReport serial_report;
  const std::string oracle = RunCycle(plans, 1, &serial_report);
  EXPECT_EQ(serial_report.ops, spec.shards * spec.ops_per_shard);
  // The Zipf stream is structure-stable: every op targets a setup path.
  EXPECT_EQ(serial_report.failures, 0u);
  EXPECT_GT(serial_report.virtual_cost.elapsed, 0);

  for (const int threads : {2, 4, 8}) {
    EngineReport report;
    const std::string dump = RunCycle(plans, threads, &report);
    EXPECT_TRUE(dump == oracle)
        << "zipf loadgen diverged at " << threads << " threads";
    EXPECT_EQ(report.failures, 0u);
    // The virtual cost is schedule-independent too: the same per-shard
    // sums in a deterministic merge order.
    EXPECT_EQ(report.virtual_cost.elapsed, serial_report.virtual_cost.elapsed);
    EXPECT_EQ(report.virtual_cost.gets, serial_report.virtual_cost.gets);
    EXPECT_EQ(report.virtual_cost.puts, serial_report.virtual_cost.puts);
  }
}

TEST(ShardedEngine, RepeatedThreadedRunsAreDeterministic) {
  // Same plans, same thread count, two fresh clouds: per-shard jitter
  // streams and clock domains must make the runs bit-identical to each
  // other (not just to the serial run) regardless of real scheduling.
  const FamilyPlans plans = BuildFamily(TraceMix{}, 40);
  const std::string first = RunCycle(plans, 4);
  const std::string second = RunCycle(plans, 4);
  EXPECT_TRUE(first == second);
}

TEST(ShardedEngine, PacingDoesNotPerturbState) {
  LoadgenSpec spec;
  spec.shards = 3;
  spec.dirs_per_shard = 2;
  spec.files_per_dir = 6;
  spec.ops_per_shard = 20;
  const std::vector<ShardLoad> loads = BuildZipfLoad(spec);
  FamilyPlans plans;
  for (const ShardLoad& load : loads) {
    plans.setup.push_back(ShardPlan{load.account, load.setup});
    plans.ops.push_back(ShardPlan{load.account, load.ops});
  }

  const std::string unpaced = RunCycle(plans, 2);

  H2Cloud cloud(SmallConfig(spec.shards));
  EngineOptions opts;
  opts.threads = 2;
  opts.collect_latencies = false;
  ASSERT_TRUE(RunSharded(cloud, plans.setup, opts).ok());
  cloud.RunMaintenanceToQuiescence();
  opts.pacing = 0.001;  // tiny real sleeps; state must not notice
  opts.collect_latencies = true;
  Result<EngineReport> paced = RunSharded(cloud, plans.ops, opts);
  ASSERT_TRUE(paced.ok());
  cloud.RunMaintenanceToQuiescence();
  EXPECT_TRUE(cloud.cloud().DebugDump() == unpaced);
  EXPECT_GE(paced->p99_ms, paced->p50_ms);
}

TEST(ShardedEngine, RejectsInvalidShardings) {
  // More shards than middlewares.
  {
    H2Cloud cloud(SmallConfig(2));
    std::vector<ShardPlan> plans(3);
    plans[0].account = "a";
    plans[1].account = "b";
    plans[2].account = "c";
    const auto result = RunSharded(cloud, plans, {});
    EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
  }
  // Duplicate accounts share namespaces: determinism contract violation.
  {
    H2Cloud cloud(SmallConfig(2));
    std::vector<ShardPlan> plans(2);
    plans[0].account = "same";
    plans[1].account = "same";
    const auto result = RunSharded(cloud, plans, {});
    EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
  }
  // Synchronous maintenance merges (and gossips) on foreground threads.
  {
    H2CloudConfig cfg = SmallConfig(1);
    cfg.h2.synchronous_maintenance = true;
    H2Cloud cloud(cfg);
    std::vector<ShardPlan> plans(1);
    plans[0].account = "a";
    const auto result = RunSharded(cloud, plans, {});
    EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
  }
  // A live background merger would interleave with the replay.
  {
    H2Cloud cloud(SmallConfig(1));
    cloud.StartBackground();
    std::vector<ShardPlan> plans(1);
    plans[0].account = "a";
    const auto result = RunSharded(cloud, plans, {});
    EXPECT_FALSE(result.ok());
    cloud.StopBackground();
  }
}

TEST(ShardedEngine, EmptyPlansAreANoOp) {
  H2Cloud cloud(SmallConfig(1));
  const auto result = RunSharded(cloud, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ops, 0u);
  EXPECT_EQ(result->failures, 0u);
}

}  // namespace
}  // namespace h2
