// Cluster elasticity tests: ring expansion, decommissioning and replica
// repair -- the "automatic reliability and scalability" of the object
// cloud that H2Cloud inherits by keeping directories inside it (§1).
#include <gtest/gtest.h>

#include <set>

#include "h2/h2cloud.h"
#include "workload/tree_gen.h"

namespace h2 {
namespace {

CloudConfig SmallCloud() {
  CloudConfig cfg;
  cfg.part_power = 8;
  return cfg;
}

int ReplicaCountOf(ObjectCloud& cloud, const std::string& key) {
  int holders = 0;
  for (std::size_t i = 0; i < cloud.node_count(); ++i) {
    if (cloud.node(i).Contains(key)) ++holders;
  }
  return holders;
}

TEST(MigrationTest, AddNodeMovesBoundedFraction) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  const std::uint64_t logical_before = cloud.LogicalObjectCount();
  auto report = cloud.AddStorageNode();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Consistent hashing: the 9th node takes ~1/9 of the 3x2000 replica
  // placements; movement must be near that, nowhere near a reshuffle.
  EXPECT_GT(report->objects_copied, 400u);
  EXPECT_LT(report->objects_copied, 1100u);
  EXPECT_EQ(cloud.LogicalObjectCount(), logical_before);
  EXPECT_EQ(cloud.RawObjectCount(), 3 * logical_before);
  EXPECT_GT(cloud.node(8).object_count(), 0u);

  // Every object still fully replicated and readable.
  for (int i = 0; i < 2000; i += 97) {
    const std::string key = "obj" + std::to_string(i);
    EXPECT_EQ(ReplicaCountOf(cloud, key), 3) << key;
    EXPECT_TRUE(cloud.Get(key, meter).ok());
  }
}

TEST(MigrationTest, DecommissionDrainsNode) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  const std::uint64_t before = cloud.LogicalObjectCount();
  auto report = cloud.DecommissionNode(3);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(cloud.node(3).object_count(), 0u);
  EXPECT_EQ(cloud.LogicalObjectCount(), before);
  EXPECT_EQ(cloud.RawObjectCount(), 3 * before);  // re-replicated elsewhere
  for (int i = 0; i < 1000; i += 83) {
    EXPECT_TRUE(cloud.Get("obj" + std::to_string(i), meter).ok());
  }
}

TEST(MigrationTest, RepairHealsWipedNode) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  // Simulate a disk loss: delete everything on node 5.
  std::vector<std::string> lost;
  cloud.node(5).ForEach(
      [&](const std::string& key, const ObjectValue&) { lost.push_back(key); });
  for (const auto& key : lost) {
    ASSERT_TRUE(cloud.node(5).Delete(key).ok());
  }
  ASSERT_GT(lost.size(), 0u);
  EXPECT_LT(cloud.RawObjectCount(), 3 * cloud.LogicalObjectCount());

  const auto report = cloud.RepairReplicas();
  EXPECT_EQ(report.objects_copied, lost.size());
  EXPECT_EQ(cloud.RawObjectCount(), 3 * cloud.LogicalObjectCount());
  EXPECT_EQ(cloud.node(5).object_count(), lost.size());
}

TEST(MigrationTest, RepairIsIdempotent) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  const auto report = cloud.RepairReplicas();
  EXPECT_EQ(report.objects_copied, 0u);
  EXPECT_EQ(report.objects_dropped, 0u);
}

TEST(MigrationTest, H2FilesystemSurvivesRingExpansion) {
  // The headline scenario: a whole user filesystem -- directories,
  // NameRings, patches and content -- lives in the cloud; the operator
  // grows the cluster; nothing observable changes.
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  auto fs = std::move(cloud.OpenFilesystem("alice")).value();
  const GeneratedTree tree = GenerateTree(TreeSpec::Light(77));
  ASSERT_TRUE(PopulateTree(*fs, tree).ok());
  cloud.RunMaintenanceToQuiescence();

  auto report = cloud.cloud().AddStorageNode();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->objects_copied, 0u);

  // Every file still present, readable, with the right size.
  for (const auto& file : tree.files) {
    auto info = fs->Stat(file.path);
    ASSERT_TRUE(info.ok()) << file.path;
    EXPECT_EQ(info->size, file.size);
  }
  // And the filesystem remains fully operational.
  ASSERT_TRUE(fs->Mkdir("/after-expansion").ok());
  ASSERT_TRUE(
      fs->WriteFile("/after-expansion/f", FileBlob::FromString("ok")).ok());
  EXPECT_EQ(fs->ReadFile("/after-expansion/f")->data, "ok");
  cloud.RunMaintenanceToQuiescence();
}

TEST(MigrationTest, LoadRebalancesOntoNewNodes) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  ASSERT_TRUE(cloud.AddStorageNode().ok());
  ASSERT_TRUE(cloud.AddStorageNode().ok());
  const auto counts = cloud.NodeObjectCounts();
  const double expected = 4000.0 * 3 / 10;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, expected * 0.3)
        << "node " << i;
  }
}

}  // namespace
}  // namespace h2
