#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace h2 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  H2_ASSIGN_OR_RETURN(int h, Half(x));
  H2_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).code(), ErrorCode::kInvalidArgument);
}

TEST(ClockTest, TickIsStrictlyIncreasing) {
  SimClock clock;
  VirtualNanos prev = clock.Tick();
  for (int i = 0; i < 1000; ++i) {
    VirtualNanos next = clock.Tick();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(ClockTest, AdvanceMovesTime) {
  SimClock clock(0);
  clock.Advance(5 * kMillisecond);
  EXPECT_EQ(clock.Now(), 5 * kMillisecond);
  EXPECT_EQ(clock.NowUnixMillis(), 5);
}

TEST(ClockTest, DefaultEpochMatchesPaperExample) {
  SimClock clock;
  EXPECT_EQ(clock.NowUnixMillis(), 1469346604539LL);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.Between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Rng rng(5);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 20);  // rank 0 well above uniform share
}

TEST(ZipfTest, UniformWhenSZero) {
  Rng rng(5);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSkipEmpty) {
  const auto parts = SplitSkipEmpty("/a//b/", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join(std::vector<std::string>{}, "/"), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(StringsTest, ParseUint64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, ~0ULL);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
}

}  // namespace
}  // namespace h2
