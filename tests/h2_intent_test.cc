// Crash-safe MOVE: the write-ahead intent log (h2/intent_log.h) and
// H2Middleware::RecoverIntents().
#include <gtest/gtest.h>

#include "h2/h2cloud.h"
#include "h2/intent_log.h"
#include "h2/keys.h"

namespace h2 {
namespace {

CloudConfig SmallCloud() {
  CloudConfig cfg;
  cfg.part_power = 8;
  return cfg;
}

TEST(IntentLogTest, BeginCommitRoundTrip) {
  ObjectCloud cloud(SmallCloud());
  IntentLog log(cloud, 1);
  OpMeter meter;

  KvRecord record;
  record.Set("op", "move");
  record.Set("detail", "x");
  auto id = log.Begin(record, meter);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(log.pending(), 1u);
  // The intent is a real durable object.
  EXPECT_TRUE(cloud.Get(log.IntentKey(*id), meter).ok());

  auto open = log.Open(meter);
  ASSERT_TRUE(open.ok());
  ASSERT_EQ(open->size(), 1u);
  EXPECT_EQ((*open)[0].second.Get("op"), "move");

  ASSERT_TRUE(log.Commit(*id, meter).ok());
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_EQ(cloud.Get(log.IntentKey(*id), meter).code(),
            ErrorCode::kNotFound);
}

TEST(IntentLogTest, SurvivesRestart) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  std::uint64_t left_open = 0;
  {
    IntentLog log(cloud, 2);
    KvRecord a, b;
    a.Set("op", "move");
    b.Set("op", "move");
    ASSERT_TRUE(log.Begin(a, meter).ok());
    auto id_b = log.Begin(b, meter);
    ASSERT_TRUE(id_b.ok());
    left_open = *id_b;
    // Commit only the first; "crash" with the second open.
    ASSERT_TRUE(log.Commit(left_open - 1, meter).ok());
  }
  IntentLog recovered(cloud, 2);
  auto open = recovered.Open(meter);
  ASSERT_TRUE(open.ok());
  ASSERT_EQ(open->size(), 1u);
  EXPECT_EQ((*open)[0].first, left_open);
  // Fresh ids never collide with the crashed instance's.
  KvRecord c;
  c.Set("op", "move");
  auto id_c = recovered.Begin(c, meter);
  ASSERT_TRUE(id_c.ok());
  EXPECT_GT(*id_c, left_open);
}

class IntentRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cloud_ = std::make_unique<ObjectCloud>(SmallCloud());
    mw_ = std::make_unique<H2Middleware>(*cloud_, 1);
    OpMeter meter;
    ASSERT_TRUE(mw_->CreateAccount("u", meter).ok());
    root_ = *mw_->AccountRoot("u", meter);
    ASSERT_TRUE(mw_->Mkdir(root_, "/dir", meter).ok());
    ASSERT_TRUE(mw_->Mkdir(root_, "/dst", meter).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(mw_->WriteFile(root_, "/dir/f" + std::to_string(i),
                                 FileBlob::FromString("v"), meter)
                      .ok());
    }
    mw_->MergePending();
  }

  /// Journals the intent a dir-move of /dir -> /dst/moved would write,
  /// optionally performing the first mutation (the new dir record), then
  /// "crashes" (no further steps).
  void SimulateCrashedMove(bool first_step_done) {
    OpMeter meter;
    from_parent_ = *mw_->ResolvePath(root_, "/", meter);
    to_parent_ = *mw_->ResolvePath(root_, "/dst", meter);
    const VirtualNanos delete_ts = cloud_->clock().Tick();
    const VirtualNanos insert_ts = cloud_->clock().Tick();
    KvRecord intent;
    intent.Set("op", "move");
    intent.Set("kind", "dir");
    intent.Set("from_parent", from_parent_.ToString());
    intent.Set("to_parent", to_parent_.ToString());
    intent.Set("from_name", "dir");
    intent.Set("to_name", "moved");
    intent.SetInt("delete_ts", delete_ts);
    intent.SetInt("insert_ts", insert_ts);
    ASSERT_TRUE(mw_->intent_log().Begin(intent, meter).ok());

    if (first_step_done) {
      auto source = cloud_->Get(ChildKey(from_parent_, "dir"), meter);
      ASSERT_TRUE(source.ok());
      auto record = DirRecord::Parse(source->payload);
      ASSERT_TRUE(record.ok());
      record->parent_ns = to_parent_;
      record->name = "moved";
      ObjectValue value = ObjectValue::FromString(record->Serialize(),
                                                  cloud_->clock().Tick());
      value.metadata["kind"] = "dir";
      ASSERT_TRUE(cloud_->Put(ChildKey(to_parent_, "moved"),
                              std::move(value), meter)
                      .ok());
    }
  }

  void VerifyMoveCompleted(H2Middleware& mw) {
    OpMeter meter;
    mw.MergePending();
    // Old path gone, new path present with all five files.
    EXPECT_EQ(mw.Stat(root_, "/dir", meter).code(), ErrorCode::kNotFound);
    auto entries = mw.List(root_, "/dst/moved", ListDetail::kNamesOnly,
                           meter);
    ASSERT_TRUE(entries.ok()) << entries.status().ToString();
    EXPECT_EQ(entries->size(), 5u);
    auto root_list = mw.List(root_, "/", ListDetail::kNamesOnly, meter);
    ASSERT_TRUE(root_list.ok());
    ASSERT_EQ(root_list->size(), 1u);  // only /dst remains at the root
    EXPECT_EQ((*root_list)[0].name, "dst");
  }

  std::unique_ptr<ObjectCloud> cloud_;
  std::unique_ptr<H2Middleware> mw_;
  NamespaceId root_;
  NamespaceId from_parent_, to_parent_;
};

TEST_F(IntentRecoveryTest, CrashBeforeAnyStep) {
  SimulateCrashedMove(/*first_step_done=*/false);
  // A fresh middleware with the same node id picks the intent up and
  // performs the whole move.
  H2Middleware recovered(*cloud_, 1);
  EXPECT_EQ(recovered.RecoverIntents(), 1u);
  VerifyMoveCompleted(recovered);
  EXPECT_EQ(recovered.intent_log().pending(), 0u);
}

TEST_F(IntentRecoveryTest, CrashAfterFirstStep) {
  SimulateCrashedMove(/*first_step_done=*/true);
  // Without recovery, the directory is reachable under BOTH names -- the
  // inconsistency the intent log exists to fix.
  {
    OpMeter meter;
    EXPECT_TRUE(cloud_->Exists(ChildKey(from_parent_, "dir"), meter));
    EXPECT_TRUE(cloud_->Exists(ChildKey(to_parent_, "moved"), meter));
  }
  H2Middleware recovered(*cloud_, 1);
  EXPECT_EQ(recovered.RecoverIntents(), 1u);
  VerifyMoveCompleted(recovered);
}

TEST_F(IntentRecoveryTest, RecoveryIsIdempotent) {
  SimulateCrashedMove(/*first_step_done=*/true);
  H2Middleware recovered(*cloud_, 1);
  EXPECT_EQ(recovered.RecoverIntents(), 1u);
  EXPECT_EQ(recovered.RecoverIntents(), 0u);  // nothing left
  VerifyMoveCompleted(recovered);
}

TEST(IntentMoveTest, CleanMoveLeavesNoIntent) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/a").ok());
  ASSERT_TRUE(fs->Mkdir("/b").ok());
  ASSERT_TRUE(fs->WriteFile("/a/f", FileBlob::FromString("x")).ok());
  ASSERT_TRUE(fs->Move("/a/f", "/b/g").ok());
  ASSERT_TRUE(fs->Move("/a", "/b/sub").ok());
  EXPECT_EQ(cloud.middleware(0).intent_log().pending(), 0u);
  EXPECT_EQ(cloud.middleware(0).RecoverIntents(), 0u);
}

TEST(IntentMoveTest, DisabledByConfig) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.h2.move_intent_log = false;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/a").ok());
  ASSERT_TRUE(fs->Mkdir("/b").ok());
  ASSERT_TRUE(fs->Move("/a", "/b/moved").ok());
  // No intent objects were ever written.
  OpMeter meter;
  EXPECT_EQ(cloud.cloud()
                .Get(cloud.middleware(0).intent_log().ChainKey(), meter)
                .code(),
            ErrorCode::kNotFound);
}

}  // namespace
}  // namespace h2
