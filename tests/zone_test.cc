// Multi-zone (geo-distributed) deployment tests: zone-aware replica
// placement, read affinity, inter-zone latency, and whole-zone outage
// survival -- the deployment §4.1 sketches ("the object storage cloud is
// geographically distributed across several data centers").
#include <gtest/gtest.h>

#include <set>

#include "cluster/object_cloud.h"
#include "h2/h2cloud.h"

namespace h2 {
namespace {

CloudConfig GeoCloud(int zones = 3, VirtualNanos inter_zone =
                                        FromMillis(20.0)) {
  CloudConfig cfg;
  cfg.node_count = 9;  // 3 per zone
  cfg.zone_count = zones;
  cfg.part_power = 8;
  cfg.latency.inter_zone_hop = inter_zone;
  return cfg;
}

TEST(ZoneTest, ReplicasSpanDistinctZones) {
  ObjectCloud cloud(GeoCloud());
  OpMeter meter;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  // Every object's replicas live in three different zones.
  for (int i = 0; i < 200; ++i) {
    const std::string key = "obj" + std::to_string(i);
    std::set<std::uint32_t> zones;
    for (std::size_t n = 0; n < cloud.node_count(); ++n) {
      if (cloud.node(n).Contains(key)) zones.insert(cloud.node(n).zone());
    }
    EXPECT_EQ(zones.size(), 3u) << key;
  }
}

TEST(ZoneTest, LocalReadsAreCheaperThanRemote) {
  ObjectCloud cloud(GeoCloud());
  OpMeter local, remote;
  local.SetZone(0);
  ASSERT_TRUE(
      cloud.Put("key", ObjectValue::FromString("v", 0), local).ok());

  // With a replica in every zone, a zone-0 reader always finds one local.
  local.Reset();
  ASSERT_TRUE(cloud.Get("key", local).ok());

  // A reader from a zone that holds no replica... every zone holds one
  // (3 zones, 3 replicas), so make the read remote by taking the local
  // replica's node down.
  for (std::size_t n = 0; n < cloud.node_count(); ++n) {
    if (cloud.node(n).zone() == 0 && cloud.node(n).Contains("key")) {
      cloud.node(n).SetDown(true);
    }
  }
  remote.SetZone(0);
  ASSERT_TRUE(cloud.Get("key", remote).ok());
  EXPECT_GT(remote.cost().elapsed,
            local.cost().elapsed + FromMillis(15.0));
}

TEST(ZoneTest, WholeZoneOutageSurvivable) {
  ObjectCloud cloud(GeoCloud());
  OpMeter meter;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  // Zone 1 goes dark entirely.
  for (std::size_t n = 0; n < cloud.node_count(); ++n) {
    if (cloud.node(n).zone() == 1) cloud.node(n).SetDown(true);
  }
  // Reads and writes keep working: replicas span zones and quorum = 2.
  for (int i = 0; i < 100; i += 7) {
    EXPECT_TRUE(cloud.Get("obj" + std::to_string(i), meter).ok());
  }
  for (int i = 100; i < 120; ++i) {
    EXPECT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
}

TEST(ZoneTest, SingleZoneBehavesAsBefore) {
  CloudConfig cfg;
  cfg.part_power = 8;
  ObjectCloud cloud(cfg);  // zone_count = 1
  OpMeter meter;
  ASSERT_TRUE(cloud.Put("k", ObjectValue::FromString("v", 0), meter).ok());
  meter.Reset();
  ASSERT_TRUE(cloud.Get("k", meter).ok());
  EXPECT_LT(meter.cost().elapsed_ms(), 12.0);  // no surcharge anywhere
}

TEST(ZoneTest, H2MiddlewaresInDifferentZones) {
  // Two middlewares in two data centers over one geo cloud: both see the
  // same filesystem; the remote one pays inter-zone latency on reads that
  // miss its zone.
  H2CloudConfig cfg;
  cfg.cloud = GeoCloud(3, FromMillis(30.0));
  cfg.middleware_count = 2;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("geo").ok());
  auto fs0 = std::move(cloud.OpenFilesystem("geo", 0)).value();
  auto fs1 = std::move(cloud.OpenFilesystem("geo", 1)).value();

  ASSERT_TRUE(fs0->Mkdir("/shared").ok());
  ASSERT_TRUE(
      fs0->WriteFile("/shared/doc", FileBlob::FromString("geo")).ok());
  cloud.RunMaintenanceToQuiescence();

  EXPECT_EQ(fs1->ReadFile("/shared/doc")->data, "geo");
  // Cross-zone maintenance still converges.
  ASSERT_TRUE(fs1->WriteFile("/shared/reply", FileBlob::FromString("ok"))
                  .ok());
  cloud.RunMaintenanceToQuiescence();
  auto names = fs0->List("/shared", ListDetail::kNamesOnly);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
}

TEST(ZoneTest, AddedNodesJoinZonesRoundRobin) {
  ObjectCloud cloud(GeoCloud());  // 9 nodes, 3 zones, 3 per zone
  OpMeter meter;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  // Scale out by a full rack row: the new nodes continue the
  // constructor's round-robin zone assignment instead of all landing in
  // zone 0.
  ASSERT_TRUE(cloud.AddStorageNode().ok());
  ASSERT_TRUE(cloud.AddStorageNode().ok());
  ASSERT_TRUE(cloud.AddStorageNode().ok());
  EXPECT_EQ(cloud.node(9).zone(), 0u);
  EXPECT_EQ(cloud.node(10).zone(), 1u);
  EXPECT_EQ(cloud.node(11).zone(), 2u);

  // Zone distinctness holds for data that migrated onto the new nodes
  // and for fresh writes alike.
  for (int i = 100; i < 150; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  for (int i = 0; i < 150; ++i) {
    const std::string key = "obj" + std::to_string(i);
    std::set<std::uint32_t> zones;
    for (std::size_t n = 0; n < cloud.node_count(); ++n) {
      if (cloud.node(n).Contains(key)) zones.insert(cloud.node(n).zone());
    }
    EXPECT_EQ(zones.size(), 3u) << key;
  }
}

TEST(ZoneTest, FewZonesFallsBackToDeviceDistinctness) {
  // 2 zones < 3 replicas: zone distinctness is impossible; device
  // distinctness must still hold.
  CloudConfig cfg;
  cfg.node_count = 8;
  cfg.zone_count = 2;
  cfg.part_power = 8;
  ObjectCloud cloud(cfg);
  OpMeter meter;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), meter)
                    .ok());
  }
  EXPECT_EQ(cloud.RawObjectCount(), 300u);  // 3 distinct devices each
}

}  // namespace
}  // namespace h2
