// Replica repair subsystem tests: newest-wins reads, hinted handoff,
// read-repair, anti-entropy scrubbing, and the failure accounting around
// them.  These exercise the ObjectCloud directly -- the degraded-mode
// semantics documented in docs/PROTOCOL.md.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/object_cloud.h"
#include "hash/md5.h"

namespace h2 {
namespace {

CloudConfig SmallCloud() {
  CloudConfig cfg;
  cfg.node_count = 8;
  cfg.replica_count = 3;
  cfg.part_power = 8;
  return cfg;
}

/// Node indices holding replicas of `key`, in ring order.
std::vector<std::size_t> ReplicaIndices(const ObjectCloud& cloud,
                                        const std::string& key) {
  std::vector<std::size_t> out;
  for (DeviceId dev : cloud.ring().ReplicasOfHash(Md5::Hash64(key))) {
    out.push_back(static_cast<std::size_t>(dev));
  }
  return out;
}

TEST(ReplicaRepairTest, NewestWinsAcrossZones) {
  // Down one replica holder, overwrite, revive: every zone's reader must
  // see the overwrite even when its zone-affine probe order reaches the
  // stale replica first.
  CloudConfig cfg = SmallCloud();
  cfg.node_count = 9;
  cfg.zone_count = 3;
  ObjectCloud cloud(cfg);
  OpMeter meter;
  const std::string key = "stale-read-victim";
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v1", 10), meter).ok());

  const auto replicas = ReplicaIndices(cloud, key);
  ASSERT_EQ(replicas.size(), 3u);
  for (std::size_t stale : replicas) {
    cloud.node(stale).SetDown(true);
    ASSERT_TRUE(
        cloud.Put(key, ObjectValue::FromString("v2", 10), meter).ok());
    cloud.node(stale).SetDown(false);

    for (std::uint32_t zone = 0; zone < 3; ++zone) {
      OpMeter reader;
      reader.SetZone(zone);
      auto got = cloud.Get(key, reader);
      ASSERT_TRUE(got.ok()) << "zone " << zone;
      EXPECT_EQ(got->payload, "v2") << "zone " << zone;
    }
    // Reset for the next iteration (read-repair healed the laggard).
    ASSERT_TRUE(
        cloud.Put(key, ObjectValue::FromString("v1", 10), meter).ok());
  }
}

TEST(ReplicaRepairTest, HintedHandoffHealsMissedWrite) {
  ObjectCloud cloud(SmallCloud());
  cloud.SetReadRepair(false);  // isolate the hint path
  OpMeter meter;
  const std::string key = "hinted";
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v1", 10), meter).ok());

  const auto replicas = ReplicaIndices(cloud, key);
  const std::size_t down = replicas.back();
  cloud.node(down).SetDown(true);
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v2", 10), meter).ok());
  EXPECT_GE(cloud.repair_stats().hints_queued, 1u);

  // Undeliverable while the target is down: replay is a no-op.
  EXPECT_EQ(cloud.ReplayHints(), 0u);

  cloud.node(down).SetDown(false);
  EXPECT_GE(cloud.ReplayHints(), 1u);
  EXPECT_GE(cloud.repair_stats().hints_replayed, 1u);
  auto healed = cloud.node(down).Get(key);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->payload, "v2");
  // Hint replay is maintenance work: it advances virtual time and lands
  // on the out-of-band repair meter.
  EXPECT_GT(cloud.repair_cost().elapsed, 0);
}

TEST(ReplicaRepairTest, HintedHandoffDeliversTombstones) {
  ObjectCloud cloud(SmallCloud());
  cloud.SetReadRepair(false);
  OpMeter meter;
  const std::string key = "hinted-delete";
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v1", 10), meter).ok());

  const auto replicas = ReplicaIndices(cloud, key);
  const std::size_t down = replicas.back();
  cloud.node(down).SetDown(true);
  ASSERT_TRUE(cloud.Delete(key, meter).ok());
  cloud.node(down).SetDown(false);
  ASSERT_TRUE(cloud.node(down).Contains(key));  // missed the tombstone

  EXPECT_GE(cloud.ReplayHints(), 1u);
  EXPECT_FALSE(cloud.node(down).Contains(key));
  EXPECT_EQ(cloud.Get(key, meter).code(), ErrorCode::kNotFound);
}

TEST(ReplicaRepairTest, TimedDeleteCommitsOnReplicaThatMissedTheWrite) {
  // Regression for the timed-delete return-code fix: a replica that never
  // held the object still commits the tombstone, reports Ok, and must not
  // be charged as a failed delete or an undelivered hint.
  ObjectCloud cloud(SmallCloud());
  cloud.SetReadRepair(false);
  OpMeter meter;
  const std::string key = "delete-on-laggard";

  const auto replicas = ReplicaIndices(cloud, key);
  const std::size_t laggard = replicas.back();
  cloud.node(laggard).SetDown(true);
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v1", 10), meter).ok());
  cloud.node(laggard).SetDown(false);
  ASSERT_FALSE(cloud.node(laggard).Contains(key));  // missed the write

  // The laggard's node-level delete lands on an absent key: previously
  // NotFound (counted as mere idempotency), now a committed tombstone.
  ASSERT_TRUE(cloud.Delete(key, meter).ok());
  EXPECT_GT(cloud.node(laggard).TombstoneTime(key), 0);
  EXPECT_EQ(cloud.repair_stats().failed_deletes, 0u);

  // The parked put hint replays superseded by the tombstone; nothing can
  // resurrect the key and the divergence oracle stays empty.
  while (cloud.ReplayHints() > 0) {
  }
  EXPECT_EQ(cloud.Get(key, meter).code(), ErrorCode::kNotFound);
  EXPECT_EQ(cloud.DivergentKeyCount(), 0u);
}

TEST(ReplicaRepairTest, ReadRepairConvergesLaggards) {
  ObjectCloud cloud(SmallCloud());
  cloud.SetHintedHandoff(false);  // isolate the read-repair path
  OpMeter meter;
  const std::string key = "read-repaired";
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v1", 10), meter).ok());

  const auto replicas = ReplicaIndices(cloud, key);
  const std::size_t stale = replicas.back();
  cloud.node(stale).SetDown(true);
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v2", 10), meter).ok());
  cloud.node(stale).SetDown(false);

  OpMeter reader;
  auto got = cloud.Get(key, reader);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "v2");
  // The read observed the stale replica and pushed the newest copy back.
  EXPECT_GE(cloud.repair_stats().read_repairs_pushed, 1u);
  auto healed = cloud.node(stale).Get(key);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->payload, "v2");
  // The push was charged out-of-band, never on the reader's meter: the
  // reader paid a healthy-read price (one GET, no repair traffic).
  EXPECT_GT(cloud.repair_cost().elapsed, 0);
  EXPECT_LT(reader.cost().elapsed_ms(), 13.0);
}

TEST(ReplicaRepairTest, ReadRepairPropagatesTombstones) {
  ObjectCloud cloud(SmallCloud());
  cloud.SetHintedHandoff(false);
  OpMeter meter;
  const std::string key = "tombstoned";
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v1", 10), meter).ok());

  const auto replicas = ReplicaIndices(cloud, key);
  const std::size_t stale = replicas.front();
  cloud.node(stale).SetDown(true);
  ASSERT_TRUE(cloud.Delete(key, meter).ok());
  cloud.node(stale).SetDown(false);
  ASSERT_TRUE(cloud.node(stale).Contains(key));

  // Newest-wins already hides the resurrected copy; read-repair drops it.
  OpMeter reader;
  EXPECT_EQ(cloud.Get(key, reader).code(), ErrorCode::kNotFound);
  EXPECT_FALSE(cloud.node(stale).Contains(key));
}

TEST(ReplicaRepairTest, ReplicaScrubFindsAndFixesDivergence) {
  ObjectCloud cloud(SmallCloud());
  cloud.SetReadRepair(false);
  cloud.SetHintedHandoff(false);
  OpMeter meter;
  // Seed a population, then make one node miss overwrites and a delete.
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(
        cloud.Put(key, ObjectValue::FromString("v1-" + key, 10), meter).ok());
  }
  cloud.node(0).SetDown(true);
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (i % 5 == 0) {
      ASSERT_TRUE(cloud.Delete(key, meter).ok());
    } else {
      ASSERT_TRUE(
          cloud.Put(key, ObjectValue::FromString("v2-" + key, 10), meter)
              .ok());
    }
  }
  cloud.node(0).SetDown(false);

  const std::uint64_t divergent_before = cloud.DivergentKeyCount();
  ASSERT_GT(divergent_before, 0u);
  // The audit itself must neither repair nor charge anything.
  EXPECT_EQ(cloud.DivergentKeyCount(), divergent_before);
  EXPECT_EQ(cloud.repair_cost().elapsed, 0);

  const auto report = cloud.ReplicaScrub();
  EXPECT_EQ(report.divergent_keys, divergent_before);
  EXPECT_GT(report.copies_pushed + report.tombstones_pushed, 0u);
  EXPECT_GT(cloud.repair_cost().elapsed, 0);

  EXPECT_EQ(cloud.DivergentKeyCount(), 0u);
  const auto second = cloud.ReplicaScrub();
  EXPECT_EQ(second.divergent_keys, 0u);
  EXPECT_EQ(second.copies_pushed + second.tombstones_pushed, 0u);

  // Converged state serves the expected values everywhere.
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(i);
    auto got = cloud.Get(key, meter);
    if (i % 5 == 0) {
      EXPECT_EQ(got.code(), ErrorCode::kNotFound) << key;
    } else {
      ASSERT_TRUE(got.ok()) << key;
      EXPECT_EQ(got->payload, "v2-" + key);
    }
  }
}

TEST(ReplicaRepairTest, EffectiveQuorumSmallCluster) {
  // A cluster with fewer nodes than the replica count must still have a
  // reachable quorum (clamped to the actual replica-set size) -- and must
  // not charge the inter-zone surcharge against phantom replicas.
  CloudConfig cfg = SmallCloud();
  cfg.node_count = 1;
  cfg.latency.inter_zone_hop = FromMillis(5.0);
  ObjectCloud solo(cfg);
  OpMeter meter;
  ASSERT_TRUE(solo.Put("k", ObjectValue::FromString("v", 10), meter).ok());
  EXPECT_TRUE(solo.Get("k", meter).ok());
  // One local replica, quorum 1: no inter-zone ack can be on the path.
  OpMeter put_meter;
  ASSERT_TRUE(
      solo.Put("k2", ObjectValue::FromString("v", 10), put_meter).ok());
  EXPECT_LT(put_meter.cost().elapsed_ms(), 14.0);

  cfg.node_count = 2;
  ObjectCloud duo(cfg);
  ASSERT_TRUE(duo.Put("k", ObjectValue::FromString("v", 10), meter).ok());
  // Both replicas form the (clamped) quorum of 2; losing one node makes
  // writes fail loudly instead of acking below quorum.
  duo.node(0).SetDown(true);
  OpMeter failed;
  const Status st = duo.Put("k", ObjectValue::FromString("v2", 10), failed);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(failed.cost().failed_ops, 1u);
  EXPECT_GE(duo.repair_stats().failed_puts, 1u);
}

TEST(ReplicaRepairTest, FailedOpsAreCounted) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;

  // Injected proxy-level fault.
  cloud.FailPutsMatching("doomed");
  EXPECT_FALSE(
      cloud.Put("doomed-key", ObjectValue::FromString("v", 10), meter).ok());
  EXPECT_EQ(meter.cost().failed_ops, 1u);
  EXPECT_EQ(cloud.repair_stats().failed_puts, 1u);
  cloud.FailPutsMatching("");

  // Quorum failure: all replica holders of the key down.
  const std::string key = "quorumless";
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v", 10), meter).ok());
  for (std::size_t n : ReplicaIndices(cloud, key)) {
    cloud.node(n).SetDown(true);
  }
  OpMeter put_meter, del_meter;
  EXPECT_FALSE(
      cloud.Put(key, ObjectValue::FromString("v2", 10), put_meter).ok());
  EXPECT_EQ(put_meter.cost().failed_ops, 1u);
  EXPECT_FALSE(cloud.Delete(key, del_meter).ok());
  EXPECT_EQ(del_meter.cost().failed_ops, 1u);
  const auto stats = cloud.repair_stats();
  EXPECT_GE(stats.failed_puts, 2u);
  EXPECT_GE(stats.failed_deletes, 1u);

  // Successful ops never count as failed.
  OpMeter ok_meter;
  ASSERT_TRUE(
      cloud.Put("fine", ObjectValue::FromString("v", 10), ok_meter).ok());
  EXPECT_TRUE(cloud.Get("fine", ok_meter).ok());
  EXPECT_EQ(ok_meter.cost().failed_ops, 0u);
}

TEST(ReplicaRepairTest, RepairStaysOffForegroundMeters) {
  // End to end: a degraded overwrite plus the reads that heal it must
  // never leak repair charges into foreground meters, and repair pricing
  // must be jitter-free (deterministic across identical runs).
  OpCost first_repair;
  OpCost first_read;
  for (int run = 0; run < 2; ++run) {
    ObjectCloud cloud(SmallCloud());
    OpMeter meter;
    const std::string key = "deterministic";
    ASSERT_TRUE(
        cloud.Put(key, ObjectValue::FromString("v1", 10), meter).ok());
    const auto replicas = ReplicaIndices(cloud, key);
    cloud.node(replicas.back()).SetDown(true);
    ASSERT_TRUE(
        cloud.Put(key, ObjectValue::FromString("v2", 10), meter).ok());
    cloud.node(replicas.back()).SetDown(false);
    cloud.ReplayHints();
    OpMeter reader;
    ASSERT_TRUE(cloud.Get(key, reader).ok());
    if (run == 0) {
      first_repair = cloud.repair_cost();
      first_read = reader.cost();
    } else {
      EXPECT_EQ(cloud.repair_cost().elapsed, first_repair.elapsed);
      EXPECT_EQ(reader.cost().elapsed, first_read.elapsed);
    }
  }
  EXPECT_GT(first_repair.elapsed, 0);
}

}  // namespace
}  // namespace h2
