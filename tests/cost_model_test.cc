// Cost-model regression tests: miniature versions of the figure benches
// that pin the *shapes* of the paper's evaluation (who scales how), so a
// refactor of the middleware or a baseline cannot silently break the
// reproduction.
#include <gtest/gtest.h>

#include "baselines/index_fs.h"
#include "baselines/swift_fs.h"
#include "cluster/object_cloud.h"
#include "h2/h2cloud.h"
#include "hash/md5.h"
#include "metrics/stats.h"
#include "workload/tree_gen.h"

namespace h2 {
namespace {

CloudConfig SmallCloud(LatencyProfile profile = LatencyProfile::RackLan()) {
  CloudConfig cfg;
  cfg.part_power = 8;
  cfg.latency = profile;
  return cfg;
}

struct H2Box {
  explicit H2Box(std::uint64_t io_concurrency = 0) {
    H2CloudConfig cfg;
    cfg.cloud.part_power = 8;
    cfg.cloud.io_concurrency = io_concurrency;
    // Cost-shape assertions reproduce the paper's O(d) access curves;
    // the resolve cache would flatten them, so it is pinned off.
    cfg.h2.resolve_cache = false;
    cloud = std::make_unique<H2Cloud>(cfg);
    EXPECT_TRUE(cloud->CreateAccount("u").ok());
    fs = std::move(cloud->OpenFilesystem("u")).value();
  }
  std::unique_ptr<H2Cloud> cloud;
  std::unique_ptr<H2AccountFs> fs;
};

// ---- Figure 7/8 shape: MOVE and RMDIR ------------------------------------

TEST(CostShapeTest, SwiftMoveScalesLinearlyH2Flat) {
  // Fig. 7 measures a proxy that re-keys serially, so pin the batch
  // width to 1 on both sides; at wider W the Swift line keeps its slope
  // but shifts down ~W-fold (bench/parallelism_sweep shows the sweep).
  std::vector<double> ns = {10, 40, 160};
  std::vector<double> swift_ms, h2_ms;
  for (double n : ns) {
    CloudConfig serial_cfg = SmallCloud();
    serial_cfg.io_concurrency = 1;
    ObjectCloud cloud(serial_cfg);
    SwiftFs swift(cloud);
    ASSERT_TRUE(swift.Mkdir("/dst").ok());
    ASSERT_TRUE(FillDirectory(swift, "/dir", static_cast<std::size_t>(n))
                    .ok());
    ASSERT_TRUE(swift.Move("/dir", "/dst/m").ok());
    swift_ms.push_back(swift.last_op().elapsed_ms());

    H2Box box(1);
    ASSERT_TRUE(box.fs->Mkdir("/dst").ok());
    ASSERT_TRUE(
        FillDirectory(*box.fs, "/dir", static_cast<std::size_t>(n)).ok());
    box.cloud->RunMaintenanceToQuiescence();
    ASSERT_TRUE(box.fs->Move("/dir", "/dst/m").ok());
    h2_ms.push_back(box.fs->last_op().elapsed_ms());
  }
  EXPECT_GT(LogLogSlope(ns, swift_ms), 0.7);   // ~linear
  EXPECT_LT(LogLogSlope(ns, h2_ms), 0.15);     // flat
  // And at the largest n, H2 wins by a wide margin.
  EXPECT_GT(swift_ms.back(), 5 * h2_ms.back());
}

TEST(CostShapeTest, RmdirShapes) {
  std::vector<double> ns = {10, 40, 160};
  std::vector<double> swift_ms, h2_ms, dp_ms;
  for (double n : ns) {
    ObjectCloud cloud(SmallCloud());
    SwiftFs swift(cloud);
    ASSERT_TRUE(FillDirectory(swift, "/dir", static_cast<std::size_t>(n))
                    .ok());
    ASSERT_TRUE(swift.Rmdir("/dir").ok());
    swift_ms.push_back(swift.last_op().elapsed_ms());

    H2Box box;
    ASSERT_TRUE(
        FillDirectory(*box.fs, "/dir", static_cast<std::size_t>(n)).ok());
    box.cloud->RunMaintenanceToQuiescence();
    ASSERT_TRUE(box.fs->Rmdir("/dir").ok());
    h2_ms.push_back(box.fs->last_op().elapsed_ms());

    ObjectCloud dp_cloud(SmallCloud());
    IndexServerFs dp(dp_cloud, IndexFsOptions::DynamicPartition());
    ASSERT_TRUE(
        FillDirectory(dp, "/dir", static_cast<std::size_t>(n)).ok());
    ASSERT_TRUE(dp.Rmdir("/dir").ok());
    dp_ms.push_back(dp.last_op().elapsed_ms());
  }
  EXPECT_GT(LogLogSlope(ns, swift_ms), 0.7);
  EXPECT_LT(LogLogSlope(ns, h2_ms), 0.15);
  EXPECT_LT(LogLogSlope(ns, dp_ms), 0.15);
}

// ---- Figure 10 shape: LIST ------------------------------------------------

// Local helper (FillDirectory creates the dir; here we append).
::testing::AssertionResult AddFilesForTest(FileSystem& fs, std::size_t from,
                                           std::size_t to) {
  char buf[64];
  for (std::size_t i = from; i < to; ++i) {
    std::snprintf(buf, sizeof(buf), "/dir/f%06zu", i);
    const Status st = fs.WriteFile(buf, FileBlob::FromString("x"));
    if (!st.ok()) {
      return ::testing::AssertionFailure() << st.ToString();
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(CostShapeTest, DetailedListLinearInM) {
  H2Box box;
  std::vector<double> ms_values;
  std::vector<double> m_values = {32, 128, 512};
  std::size_t populated = 0;
  ASSERT_TRUE(box.fs->Mkdir("/dir").ok());
  for (double m : m_values) {
    ASSERT_TRUE(AddFilesForTest(*box.fs, populated,
                                static_cast<std::size_t>(m)));
    populated = static_cast<std::size_t>(m);
    box.cloud->RunMaintenanceToQuiescence();
    ASSERT_TRUE(box.fs->List("/dir", ListDetail::kDetailed).ok());
    ms_values.push_back(box.fs->last_op().elapsed_ms());
  }
  EXPECT_GT(LogLogSlope(m_values, ms_values), 0.6);

  // Names-only stays O(1): one ring read regardless of m.
  ASSERT_TRUE(box.fs->List("/dir", ListDetail::kNamesOnly).ok());
  EXPECT_LE(box.fs->last_op().object_primitives(), 2u);
}

// ---- Figure 13 shape: access depth -----------------------------------------

TEST(CostShapeTest, H2AccessLinearInDepthSwiftFlat) {
  H2Box box;
  ObjectCloud cloud(SmallCloud());
  SwiftFs swift(cloud);

  std::vector<double> depths = {2, 4, 8, 16};
  std::vector<double> h2_ms, swift_ms;
  for (FileSystem* fs : {static_cast<FileSystem*>(box.fs.get()),
                         static_cast<FileSystem*>(&swift)}) {
    std::string dir;
    for (int d = 1; d < 16; ++d) {
      dir += "/d" + std::to_string(d);
      ASSERT_TRUE(fs->Mkdir(dir).ok());
    }
    ASSERT_TRUE(fs->WriteFile(dir + "/leaf", FileBlob::FromString("x")).ok());
  }
  box.cloud->RunMaintenanceToQuiescence();
  for (double d : depths) {
    std::string path;
    for (int i = 1; i < static_cast<int>(d); ++i) {
      path += "/d" + std::to_string(i);
    }
    path += d == 16 ? "/leaf" : "/d" + std::to_string(static_cast<int>(d));
    ASSERT_TRUE(box.fs->Stat(path).ok());
    h2_ms.push_back(box.fs->last_op().elapsed_ms());
    ASSERT_TRUE(swift.Stat(path).ok());
    swift_ms.push_back(swift.last_op().elapsed_ms());
  }
  EXPECT_GT(LogLogSlope(depths, h2_ms), 0.7);
  EXPECT_LT(LogLogSlope(depths, swift_ms), 0.15);
}

// ---- Figures 14/15 shape: storage overhead ----------------------------------

TEST(CostShapeTest, ObjectCountUpBytesNegligible) {
  TreeSpec spec;
  spec.file_count = 300;
  spec.dir_count = 30;
  spec.seed = 3;
  const GeneratedTree tree = GenerateTree(spec);

  H2Box box;
  ASSERT_TRUE(PopulateTree(*box.fs, tree).ok());
  box.cloud->RunMaintenanceToQuiescence();
  const std::uint64_t h2_objects = box.cloud->cloud().LogicalObjectCount();
  const std::uint64_t h2_bytes = box.cloud->cloud().LogicalBytes();

  ObjectCloud swift_cloud(SmallCloud());
  SwiftFs swift(swift_cloud);
  ASSERT_TRUE(PopulateTree(swift, tree).ok());
  const std::uint64_t swift_objects = swift_cloud.LogicalObjectCount();
  const std::uint64_t swift_bytes = swift_cloud.LogicalBytes();

  EXPECT_GT(h2_objects, swift_objects);                  // Fig. 14
  EXPECT_LT(h2_objects, swift_objects * 2);              // but bounded
  const double byte_overhead =
      static_cast<double>(h2_bytes) / static_cast<double>(swift_bytes) - 1.0;
  EXPECT_LT(byte_overhead, 0.01);                        // Fig. 15: <1%
}

// ---- Tombstone-superseded reads ---------------------------------------------

TEST(CostShapeTest, SupersededCopyChargesHeadPricedProbe) {
  // A replica that missed a delete still holds the object; a read that
  // sees a newer tombstone first must price that stale copy like the 404
  // probes around it (HEAD round trip, no byte transfer), so reading a
  // deleted key costs the same replica sweep as a key that never existed.
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  const std::string big(1 << 20, 'x');  // a wrongly priced GET would dwarf HEADs

  OpMeter deleted_read;
  bool superseded_read_found = false;
  for (int attempt = 0; attempt < 3 && !superseded_read_found; ++attempt) {
    const std::string key = "victim" + std::to_string(attempt);
    ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString(big, 1), meter).ok());
    // Take down the attempt-th replica holder during the delete, so it
    // keeps a stale copy while the others gain tombstones.
    std::size_t stale = cloud.node_count();
    int seen = 0;
    for (std::size_t n = 0; n < cloud.node_count(); ++n) {
      if (cloud.node(n).Contains(key) && seen++ == attempt) {
        stale = n;
        break;
      }
    }
    ASSERT_LT(stale, cloud.node_count());
    cloud.node(stale).SetDown(true);
    ASSERT_TRUE(cloud.Delete(key, meter).ok());
    cloud.node(stale).SetDown(false);

    // If the stale replica happens to be probed before any tombstone, the
    // eventually-consistent read legitimately returns the old value; some
    // attempt places it later in probe order and yields NotFound.
    deleted_read.Reset();
    const auto read = cloud.Get(key, deleted_read);
    if (read.code() == ErrorCode::kNotFound) superseded_read_found = true;
  }
  ASSERT_TRUE(superseded_read_found);

  OpMeter missing_read;
  EXPECT_EQ(cloud.Get("never-existed", missing_read).code(),
            ErrorCode::kNotFound);
  OpMeter live_read;
  ASSERT_TRUE(cloud.Put("live", ObjectValue::FromString(big, 1), meter).ok());
  ASSERT_TRUE(cloud.Get("live", live_read).ok());

  const double deleted_ms = deleted_read.cost().elapsed_ms();
  const double missing_ms = missing_read.cost().elapsed_ms();
  // Tight enough to catch both failure modes: a free (uncharged) probe
  // would land near 2/3 of missing_ms, a GET-priced one far above it.
  EXPECT_GT(deleted_ms, 0.8 * missing_ms);
  EXPECT_LT(deleted_ms, 1.25 * missing_ms);
  // The stale copy's payload was never transferred or priced, unlike the
  // live read's.
  EXPECT_EQ(deleted_read.cost().bytes_moved, 0u);
  EXPECT_EQ(live_read.cost().bytes_moved, big.size());
}

// ---- Degraded reads ---------------------------------------------------------

TEST(CostShapeTest, DegradedReadPricePinned) {
  // A read whose first-probed replica is down pays one LAN hop for the
  // failed probe plus the normal GET -- and the charge advances virtual
  // time in lockstep with the meter.  (The kUnavailable probe branch used
  // to charge the meter without advancing the clock, so degraded reads
  // drifted the two timelines apart.)
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  const std::string key = "degraded";
  ASSERT_TRUE(cloud.Put(key, ObjectValue::FromString("v", 1), meter).ok());
  const auto replicas = cloud.ring().ReplicasOfHash(Md5::Hash64(key));
  ASSERT_FALSE(replicas.empty());
  cloud.node(replicas.front()).SetDown(true);

  OpMeter reader;
  const VirtualNanos before = cloud.clock().Now();
  ASSERT_TRUE(cloud.Get(key, reader).ok());
  const VirtualNanos after = cloud.clock().Now();
  EXPECT_EQ(after - before, reader.cost().elapsed);

  // Absolute price: lan_hop (~0.5 ms) + GetBase (~10 ms), within jitter.
  // Repair traffic (the digest probe of the third replica) must not leak
  // into this number.
  const double ms = reader.cost().elapsed_ms();
  EXPECT_GT(ms, 8.4);
  EXPECT_LT(ms, 13.2);
}

// ---- Headline absolute numbers ----------------------------------------------

TEST(CostShapeTest, HeadlineNumbersInPaperBallpark) {
  H2Box box;
  ASSERT_TRUE(FillDirectory(*box.fs, "/dir", 1000).ok());
  box.cloud->RunMaintenanceToQuiescence();

  ASSERT_TRUE(box.fs->List("/dir", ListDetail::kDetailed).ok());
  const double list_s = box.fs->last_op().elapsed_ms() / 1000.0;
  EXPECT_GT(list_s, 0.2);   // paper: 0.35 s
  EXPECT_LT(list_s, 0.6);

  // At the default width the per-file COPY waves pipeline ~32-wide, so
  // the paper's ~10 s serial figure shrinks accordingly.
  ASSERT_TRUE(box.fs->Copy("/dir", "/copy").ok());
  const double copy_s = box.fs->last_op().elapsed_ms() / 1000.0;
  EXPECT_GT(copy_s, 0.3);
  EXPECT_LT(copy_s, 1.0);

  ASSERT_TRUE(box.fs->Mkdir("/newdir").ok());
  const double mkdir_ms = box.fs->last_op().elapsed_ms();
  EXPECT_GT(mkdir_ms, 60.0);   // paper: 150-200 ms
  EXPECT_LT(mkdir_ms, 250.0);

  // The paper's COPY-1000 ~ 10 s is the serial (W = 1) number: re-check
  // it with the batch width pinned so the calibration anchor survives.
  H2Box serial_box(1);
  ASSERT_TRUE(FillDirectory(*serial_box.fs, "/dir", 1000).ok());
  serial_box.cloud->RunMaintenanceToQuiescence();
  ASSERT_TRUE(serial_box.fs->Copy("/dir", "/copy").ok());
  const double serial_copy_s = serial_box.fs->last_op().elapsed_ms() / 1000.0;
  EXPECT_GT(serial_copy_s, 6.0);   // paper: ~10 s
  EXPECT_LT(serial_copy_s, 16.0);
}

}  // namespace
}  // namespace h2
