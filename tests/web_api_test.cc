// End-to-end tests of the H2Cloud web APIs (§4.3) over real sockets:
// account lifecycle, the three route families, error mapping, and the
// cost headers.
#include <gtest/gtest.h>

#include <memory>

#include "codec/formatter.h"
#include "h2/web_api.h"

namespace h2 {
namespace {

class WebApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    H2CloudConfig cfg;
    cfg.cloud.part_power = 8;
    cloud_ = std::make_unique<H2Cloud>(cfg);
    api_ = std::make_unique<H2WebApi>(*cloud_);
    ASSERT_TRUE(api_->StartServer().ok());
    client_ = std::make_unique<HttpClient>(api_->port());
    ASSERT_EQ(client_->Put("/v1/accounts/alice", "")->status, 201);
  }

  void TearDown() override { api_->StopServer(); }

  HttpClient& client() { return *client_; }

  std::unique_ptr<H2Cloud> cloud_;
  std::unique_ptr<H2WebApi> api_;
  std::unique_ptr<HttpClient> client_;
};

TEST_F(WebApiTest, AccountLifecycle) {
  EXPECT_EQ(client().Put("/v1/accounts/alice", "")->status, 409);
  EXPECT_EQ(client().Put("/v1/accounts/bob", "")->status, 201);
  EXPECT_EQ(client().Delete("/v1/accounts/bob")->status, 200);
  EXPECT_EQ(client().Delete("/v1/accounts/bob")->status, 404);
  EXPECT_EQ(client().Put("/v1/accounts/", "")->status, 400);
}

TEST_F(WebApiTest, WriteReadRoundTrip) {
  auto mk = client().Post("/v1/alice/fs/docs", {{"x-op", "mkdir"}});
  ASSERT_TRUE(mk.ok());
  EXPECT_EQ(mk->status, 200);
  auto put = client().Put("/v1/alice/fs/docs/note.txt", "hello over http");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->status, 200);
  auto get = client().Get("/v1/alice/fs/docs/note.txt");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->status, 200);
  EXPECT_EQ(get->body, "hello over http");
  EXPECT_EQ(get->headers.at("x-logical-size"), "15");
}

TEST_F(WebApiTest, CostHeadersPresent) {
  auto put = client().Put("/v1/alice/fs/f", "x");
  ASSERT_TRUE(put.ok());
  ASSERT_TRUE(put->headers.contains("x-op-ms"));
  EXPECT_GT(std::stod(put->headers.at("x-op-ms")), 1.0);
  EXPECT_GE(std::stoull(put->headers.at("x-op-primitives")), 2ull);
}

TEST_F(WebApiTest, StatAndList) {
  ASSERT_EQ(client().Post("/v1/alice/fs/d", {{"x-op", "mkdir"}})->status,
            200);
  ASSERT_EQ(client().Put("/v1/alice/fs/d/a", "AA")->status, 200);
  ASSERT_EQ(client().Put("/v1/alice/fs/d/b", "BBB")->status, 200);

  auto stat = client().Get("/v1/alice/fs/d/b?stat=1");
  ASSERT_TRUE(stat.ok());
  ASSERT_EQ(stat->status, 200);
  auto record = KvRecord::Parse(stat->body);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->Get("kind"), "file");
  EXPECT_EQ(*record->GetUint("size"), 3u);

  auto names = client().Get("/v1/alice/fs/d?list=names");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->body, "a|F\nb|F\n");

  auto detail = client().Get("/v1/alice/fs/d?list=detail");
  ASSERT_TRUE(detail.ok());
  auto first_line = detail->body.substr(0, detail->body.find('\n'));
  auto fields = ParseTupleLine(first_line);
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[0], "a");
  EXPECT_EQ((*fields)[2], "2");  // size of "AA"
}

TEST_F(WebApiTest, MoveRenameCopy) {
  ASSERT_EQ(client().Post("/v1/alice/fs/a", {{"x-op", "mkdir"}})->status,
            200);
  ASSERT_EQ(client().Post("/v1/alice/fs/b", {{"x-op", "mkdir"}})->status,
            200);
  ASSERT_EQ(client().Put("/v1/alice/fs/a/f", "data")->status, 200);

  ASSERT_EQ(client()
                .Post("/v1/alice/fs/a/f",
                      {{"x-op", "move"}, {"x-dest", "/b/g"}})
                ->status,
            200);
  EXPECT_EQ(client().Get("/v1/alice/fs/a/f")->status, 404);
  EXPECT_EQ(client().Get("/v1/alice/fs/b/g")->body, "data");

  ASSERT_EQ(client()
                .Post("/v1/alice/fs/b/g",
                      {{"x-op", "rename"}, {"x-name", "h"}})
                ->status,
            200);
  EXPECT_EQ(client().Get("/v1/alice/fs/b/h")->body, "data");

  ASSERT_EQ(client()
                .Post("/v1/alice/fs/b",
                      {{"x-op", "copy"}, {"x-dest", "/b2"}})
                ->status,
            200);
  EXPECT_EQ(client().Get("/v1/alice/fs/b2/h")->body, "data");
}

TEST_F(WebApiTest, DeleteFileAndRmdir) {
  ASSERT_EQ(client().Post("/v1/alice/fs/d", {{"x-op", "mkdir"}})->status,
            200);
  ASSERT_EQ(client().Put("/v1/alice/fs/d/f", "x")->status, 200);
  // Plain DELETE refuses a directory...
  EXPECT_EQ(client().Delete("/v1/alice/fs/d")->status, 409);
  // ...file delete and recursive rmdir work.
  EXPECT_EQ(client().Delete("/v1/alice/fs/d/f")->status, 200);
  ASSERT_EQ(client().Put("/v1/alice/fs/d/g", "y")->status, 200);
  EXPECT_EQ(client().Delete("/v1/alice/fs/d?dir=1")->status, 200);
  EXPECT_EQ(client().Get("/v1/alice/fs/d?stat=1")->status, 404);
}

TEST_F(WebApiTest, SyntheticLargeFileViaHeader) {
  HttpRequest request;
  request.method = "PUT";
  request.target = "/v1/alice/fs/video.mp4";
  request.body = "sample";
  request.headers["x-logical-size"] = std::to_string(1ULL << 30);
  ASSERT_EQ(client().Send(request)->status, 200);
  auto stat = client().Get("/v1/alice/fs/video.mp4?stat=1");
  auto record = KvRecord::Parse(stat->body);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record->GetUint("size"), 1ULL << 30);
}

TEST_F(WebApiTest, EncodedPathsRoundTrip) {
  const std::string dir = "/dir with spaces";
  ASSERT_EQ(client()
                .Post("/v1/alice/fs" + UrlEncode(dir), {{"x-op", "mkdir"}})
                ->status,
            200);
  const std::string file = dir + "/100% weird|name";
  ASSERT_EQ(client().Put("/v1/alice/fs" + UrlEncode(file), "w")->status,
            200);
  EXPECT_EQ(client().Get("/v1/alice/fs" + UrlEncode(file))->body, "w");
}

TEST_F(WebApiTest, ErrorMapping) {
  EXPECT_EQ(client().Get("/v1/alice/fs/missing")->status, 404);
  EXPECT_EQ(client().Get("/v1/nobody/fs/x")->status, 404);
  EXPECT_EQ(client().Get("/v2/alice/fs/x")->status, 404);
  EXPECT_EQ(client()
                .Post("/v1/alice/fs/x", {{"x-op", "frobnicate"}})
                ->status,
            400);
  EXPECT_EQ(client().Post("/v1/alice/fs/x", {{"x-op", "move"}})->status,
            400);  // missing x-dest
  auto conflict = client().Post("/v1/alice/fs/c", {{"x-op", "mkdir"}});
  ASSERT_EQ(conflict->status, 200);
  EXPECT_EQ(client().Post("/v1/alice/fs/c", {{"x-op", "mkdir"}})->status,
            409);
}

TEST_F(WebApiTest, ListRootOfFreshAccount) {
  auto names = client().Get("/v1/alice/fs?list=names");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->status, 200);
  EXPECT_EQ(names->body, "");
}

TEST_F(WebApiTest, ConcurrentHttpWriters) {
  ASSERT_EQ(client().Post("/v1/alice/fs/hot", {{"x-op", "mkdir"}})->status,
            200);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      HttpClient local(api_->port());
      for (int i = 0; i < 10; ++i) {
        auto response = local.Put("/v1/alice/fs/hot/t" + std::to_string(t) +
                                      "_" + std::to_string(i),
                                  "x");
        if (!response.ok() || response->status != 200) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  cloud_->RunMaintenanceToQuiescence();
  auto names = client().Get("/v1/alice/fs/hot?list=names");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(std::count(names->body.begin(), names->body.end(), '\n'), 40);
}


TEST_F(WebApiTest, PagedListWithMarkers) {
  ASSERT_EQ(client().Post("/v1/alice/fs/d", {{"x-op", "mkdir"}})->status,
            200);
  for (int i = 0; i < 25; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/v1/alice/fs/d/f%02d", i);
    ASSERT_EQ(client().Put(buf, "x")->status, 200);
  }
  std::string marker;
  int collected = 0, pages = 0;
  for (;;) {
    std::string target = "/v1/alice/fs/d?list=names&limit=10";
    if (!marker.empty()) target += "&marker=" + marker;
    auto page = client().Get(target);
    ASSERT_TRUE(page.ok());
    ASSERT_EQ(page->status, 200);
    collected += static_cast<int>(
        std::count(page->body.begin(), page->body.end(), '\n'));
    ++pages;
    auto next = page->headers.find("x-next-marker");
    if (next == page->headers.end()) break;
    marker = next->second;
  }
  EXPECT_EQ(collected, 25);
  EXPECT_EQ(pages, 3);
  EXPECT_EQ(client().Get("/v1/alice/fs/d?list=names&limit=abc")->status,
            400);
}

}  // namespace
}  // namespace h2
