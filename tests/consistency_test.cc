// Replica-consistency semantics of the object cloud: Swift-style 404
// fall-through, delete tombstones, and tombstone-aware repair.
//
// These are the storage-level guarantees H2Cloud's eventual consistency
// sits on: a replica that missed a write must not shadow the object, and
// a replica that missed a *delete* must not resurrect it.
#include <gtest/gtest.h>

#include "cluster/object_cloud.h"

namespace h2 {
namespace {

CloudConfig SmallCloud() {
  CloudConfig cfg;
  cfg.part_power = 8;
  return cfg;
}

/// The nodes currently holding `key`.
std::vector<std::size_t> Holders(ObjectCloud& cloud,
                                 const std::string& key) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cloud.node_count(); ++i) {
    if (cloud.node(i).Contains(key)) out.push_back(i);
  }
  return out;
}

TEST(ConsistencyTest, ReadFallsThroughReplicaThatMissedTheWrite) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  ASSERT_TRUE(cloud.Put("key", ObjectValue::FromString("v", 0), meter).ok());
  // Simulate a replica that missed the write: wipe it from one holder
  // (without a tombstone -- the write simply never arrived there).
  const auto holders = Holders(cloud, "key");
  ASSERT_EQ(holders.size(), 3u);
  ASSERT_TRUE(cloud.node(holders[0]).Delete("key", 0).ok());

  // The read must find the object on another replica.
  auto got = cloud.Get("key", meter);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->payload, "v");
  EXPECT_TRUE(cloud.Head("key", meter).ok());
}

TEST(ConsistencyTest, DeleteWithMissedReplicaIsEventuallyConsistent) {
  // Swift semantics, which the paper leans on explicitly ("OpenStack
  // Swift only provides eventual consistency to its customers", §3.3.1):
  // if a replica misses a delete, a read during the inconsistency window
  // may return either NotFound or the stale copy -- whichever replica
  // answers first -- but once the replicator runs, the delete wins
  // everywhere (the tombstone is newer than the surviving copy).
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  ASSERT_TRUE(cloud.Put("key", ObjectValue::FromString("v", 0), meter).ok());

  const auto holders = Holders(cloud, "key");
  ASSERT_EQ(holders.size(), 3u);
  cloud.node(holders[0]).SetDown(true);
  ASSERT_TRUE(cloud.Delete("key", meter).ok());
  cloud.node(holders[0]).SetDown(false);

  // The stale copy still exists on the node that missed the delete.
  EXPECT_TRUE(cloud.node(holders[0]).Contains("key"));
  // During the window the read is eventual: stale value or NotFound,
  // never an error or a corrupted result.
  auto during = cloud.Get("key", meter);
  if (during.ok()) {
    EXPECT_EQ(during->payload, "v");
  } else {
    EXPECT_EQ(during.code(), ErrorCode::kNotFound);
  }

  // Anti-entropy converges on the delete (tombstone beats the copy).
  cloud.RepairReplicas();
  EXPECT_FALSE(cloud.node(holders[0]).Contains("key"));
  EXPECT_EQ(cloud.Get("key", meter).code(), ErrorCode::kNotFound);
}

TEST(ConsistencyTest, RepairPropagatesDeletesNotResurrections) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  ASSERT_TRUE(cloud.Put("key", ObjectValue::FromString("v", 0), meter).ok());
  const auto holders = Holders(cloud, "key");
  cloud.node(holders[0]).SetDown(true);
  ASSERT_TRUE(cloud.Delete("key", meter).ok());
  cloud.node(holders[0]).SetDown(false);
  ASSERT_TRUE(cloud.node(holders[0]).Contains("key"));

  // Anti-entropy must finish the delete, not copy the stale object back.
  const auto report = cloud.RepairReplicas();
  EXPECT_GE(report.objects_dropped, 1u);
  EXPECT_FALSE(cloud.node(holders[0]).Contains("key"));
  EXPECT_EQ(cloud.Get("key", meter).code(), ErrorCode::kNotFound);
}

TEST(ConsistencyTest, RewriteAfterDeleteWins) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  ASSERT_TRUE(cloud.Put("key", ObjectValue::FromString("v1", 0), meter).ok());
  ASSERT_TRUE(cloud.Delete("key", meter).ok());
  EXPECT_EQ(cloud.Get("key", meter).code(), ErrorCode::kNotFound);
  // A new write after the delete must be visible (its timestamp exceeds
  // the tombstone's).
  ASSERT_TRUE(cloud.Put("key", ObjectValue::FromString("v2", 0), meter).ok());
  auto got = cloud.Get("key", meter);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "v2");
}

TEST(ConsistencyTest, StaleWriteAfterDeleteIsSuppressedAtTheNode) {
  // Node-level LWW: a replica that receives an old write after a newer
  // tombstone must drop it.
  StorageNode node(0, "n0", 1);
  ObjectValue old_value = ObjectValue::FromString("old", 100);
  // A timed delete on an absent key commits its tombstone and reports Ok:
  // the replica durably applied the delete even without a copy to remove.
  ASSERT_TRUE(node.Delete("key", /*ts=*/500).ok());
  EXPECT_EQ(node.TombstoneTime("key"), 500);
  ASSERT_TRUE(node.Put("key", old_value).ok());  // accepted but superseded
  EXPECT_FALSE(node.Contains("key"));

  ObjectValue new_value = ObjectValue::FromString("new", 900);
  ASSERT_TRUE(node.Put("key", new_value).ok());
  EXPECT_TRUE(node.Contains("key"));
  EXPECT_EQ(node.TombstoneTime("key"), 0);  // cleared by the newer write
}

TEST(ConsistencyTest, MissingObjectProbesAllReplicas) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  EXPECT_EQ(cloud.Get("never-written", meter).code(),
            ErrorCode::kNotFound);
  // A definitive miss costs ~3 probes, not 1 -- the price of not letting
  // one lagging replica shadow the object.
  EXPECT_GT(meter.cost().elapsed_ms(), 20.0);
}

TEST(ConsistencyTest, AllReplicasDownIsUnavailableNotNotFound) {
  CloudConfig cfg = SmallCloud();
  cfg.node_count = 3;
  ObjectCloud cloud(cfg);
  OpMeter meter;
  ASSERT_TRUE(cloud.Put("key", ObjectValue::FromString("v", 0), meter).ok());
  for (std::size_t i = 0; i < cloud.node_count(); ++i) {
    cloud.node(i).SetDown(true);
  }
  EXPECT_EQ(cloud.Get("key", meter).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(cloud.Head("key", meter).code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace h2
