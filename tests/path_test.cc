#include <gtest/gtest.h>

#include "fs/path.h"

namespace h2 {
namespace {

TEST(PathTest, NormalizeBasics) {
  EXPECT_EQ(*NormalizePath("/"), "/");
  EXPECT_EQ(*NormalizePath("/a/b/c"), "/a/b/c");
  EXPECT_EQ(*NormalizePath("/a//b///c/"), "/a/b/c");
  EXPECT_EQ(*NormalizePath("//"), "/");
}

TEST(PathTest, NormalizeRejectsBadInput) {
  EXPECT_FALSE(NormalizePath("").ok());
  EXPECT_FALSE(NormalizePath("relative/path").ok());
  EXPECT_FALSE(NormalizePath("/a/./b").ok());
  EXPECT_FALSE(NormalizePath("/a/../b").ok());
  EXPECT_FALSE(NormalizePath(std::string("/a/b\0c", 6)).ok());
}

TEST(PathTest, IsValidName) {
  EXPECT_TRUE(IsValidName("file.txt"));
  EXPECT_TRUE(IsValidName("name with spaces"));
  EXPECT_TRUE(IsValidName("文件"));
  EXPECT_FALSE(IsValidName(""));
  EXPECT_FALSE(IsValidName("."));
  EXPECT_FALSE(IsValidName(".."));
  EXPECT_FALSE(IsValidName("a/b"));
}

TEST(PathTest, Components) {
  EXPECT_TRUE(PathComponents("/").empty());
  const auto parts = PathComponents("/home/ubuntu/file1");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "home");
  EXPECT_EQ(parts[2], "file1");
}

TEST(PathTest, ParentAndBase) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
  EXPECT_EQ(BaseName("/a/b/c"), "c");
  EXPECT_EQ(BaseName("/a"), "a");
  EXPECT_EQ(BaseName("/"), "");
}

TEST(PathTest, Join) {
  EXPECT_EQ(JoinPath("/", "a"), "/a");
  EXPECT_EQ(JoinPath("/a/b", "c"), "/a/b/c");
}

TEST(PathTest, DepthMatchesPaperDefinition) {
  // §3.2: /home/ubuntu/file1 has d = 3.
  EXPECT_EQ(PathDepth("/home/ubuntu/file1"), 3u);
  EXPECT_EQ(PathDepth("/"), 0u);
  EXPECT_EQ(PathDepth("/a"), 1u);
}

TEST(PathTest, IsWithin) {
  EXPECT_TRUE(IsWithin("/a/b/c", "/a/b"));
  EXPECT_TRUE(IsWithin("/a/b", "/a/b"));
  EXPECT_TRUE(IsWithin("/anything", "/"));
  EXPECT_FALSE(IsWithin("/a/bc", "/a/b"));  // prefix but not a component
  EXPECT_FALSE(IsWithin("/a", "/a/b"));
}

}  // namespace
}  // namespace h2
