#include <gtest/gtest.h>

#include <set>
#include <string>

#include "hash/fast_hash.h"
#include "hash/md5.h"
#include "hash/uuid.h"

namespace h2 {
namespace {

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::HexDigest(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::HexDigest("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::HexDigest("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::HexDigest("message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::HexDigest("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(Md5::HexDigest("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuv"
                           "wxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::HexDigest("1234567890123456789012345678901234567890123456789"
                           "0123456789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  const std::string data(1000, 'x');
  Md5 md5;
  // Feed in ragged chunk sizes to cross block boundaries.
  std::size_t pos = 0;
  const std::size_t chunks[] = {1, 63, 64, 65, 100, 707};
  for (std::size_t c : chunks) {
    md5.Update(data.data() + pos, std::min(c, data.size() - pos));
    pos += std::min(c, data.size() - pos);
  }
  md5.Update(data.data() + pos, data.size() - pos);
  EXPECT_EQ(md5.Finish(), Md5::Hash(data));
}

TEST(Md5Test, Hash64IsBigEndianPrefix) {
  // "abc" digest starts 90 01 50 98 3c d2 4f b0.
  EXPECT_EQ(Md5::Hash64("abc"), 0x900150983cd24fb0ULL);
}

TEST(Md5Test, LongInputCrossesManyBlocks) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data += "block-of-text-";
  // Self-consistency under different chunkings.
  Md5 a;
  a.Update(data);
  Md5 b;
  for (char c : data) b.Update(&c, 1);
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(XxHashTest, KnownVectors) {
  EXPECT_EQ(XxHash64("", 0), 0xef46db3751d8e999ULL);
  EXPECT_EQ(XxHash64("abc", 0), 0x44bc2cf5ad770999ULL);
}

TEST(XxHashTest, SeedChangesHash) {
  EXPECT_NE(XxHash64("hello", 0), XxHash64("hello", 1));
}

TEST(XxHashTest, AllLengthPathsConsistent) {
  // Exercise the <4, <8, <32 and >=32 byte code paths; hashes must be
  // distinct and stable.
  std::set<std::uint64_t> seen;
  std::string s;
  for (int len = 0; len <= 100; ++len) {
    EXPECT_TRUE(seen.insert(XxHash64(s, 7)).second) << "len=" << len;
    s.push_back(static_cast<char>('a' + len % 26));
  }
}

TEST(Fnv1aTest, ConstexprAndKnownValue) {
  // FNV-1a 64 of empty string is the offset basis.
  static_assert(Fnv1a64("") == 0xcbf29ce484222325ULL);
  // Well-known: "a" -> 0xaf63dc4c8601ec8c.
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(UuidTest, FormatMatchesPaperExample) {
  // §3.1: "/home/ is the 6th directory created by the 1st storage node at
  // UNIX timestamp 1469346604539" -> "06.01.1469346604539".
  NamespaceId id{6, 1, 1469346604539LL};
  EXPECT_EQ(id.ToString(), "06.01.1469346604539");
}

TEST(UuidTest, ParseRoundTrip) {
  NamespaceId id{123456, 42, 1700000000123LL};
  auto parsed = NamespaceId::Parse(id.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, id);
}

TEST(UuidTest, ParseRejectsGarbage) {
  EXPECT_FALSE(NamespaceId::Parse("").ok());
  EXPECT_FALSE(NamespaceId::Parse("1.2").ok());
  EXPECT_FALSE(NamespaceId::Parse("1.2.3.4").ok());
  EXPECT_FALSE(NamespaceId::Parse("a.b.c").ok());
  EXPECT_FALSE(NamespaceId::Parse("1.99999999999.3").ok());  // node overflow
}

TEST(UuidTest, MinterProducesUniqueIds) {
  NamespaceMinter minter(3);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(minter.Mint(1469346604539LL).ToString()).second);
  }
}

TEST(UuidTest, MintersOnDifferentNodesNeverCollide) {
  NamespaceMinter a(1), b(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(a.Mint(1000), b.Mint(1000));
  }
}

TEST(UuidTest, Ordering) {
  NamespaceId a{1, 1, 100}, b{2, 1, 100};
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<NamespaceId>{}(a), std::hash<NamespaceId>{}(b));
}

}  // namespace
}  // namespace h2
