// End-to-end behaviour of H2Cloud through the public FileSystem API.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "h2/h2cloud.h"

namespace h2 {
namespace {

class H2CloudTest : public ::testing::Test {
 protected:
  void SetUp() override {
    H2CloudConfig cfg;
    cfg.cloud.part_power = 8;
    // These tests assert the paper's exact per-op GET counts (O(d)
    // level-by-level resolution), so the resolve cache stays off here;
    // cache-on behaviour is covered by tests/resolve_cache_test.cc.
    cfg.h2.resolve_cache = false;
    cloud_ = std::make_unique<H2Cloud>(cfg);
    ASSERT_TRUE(cloud_->CreateAccount("alice").ok());
    auto fs = cloud_->OpenFilesystem("alice");
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }

  std::vector<std::string> ListNames(std::string_view path) {
    auto entries = fs_->List(path, ListDetail::kNamesOnly);
    EXPECT_TRUE(entries.ok()) << entries.status().ToString();
    std::vector<std::string> names;
    if (entries.ok()) {
      for (const auto& e : *entries) names.push_back(e.name);
    }
    return names;
  }

  std::unique_ptr<H2Cloud> cloud_;
  std::unique_ptr<H2AccountFs> fs_;
};

TEST_F(H2CloudTest, AccountLifecycle) {
  EXPECT_EQ(cloud_->CreateAccount("alice").code(),
            ErrorCode::kAlreadyExists);
  EXPECT_TRUE(cloud_->CreateAccount("bob").ok());
  EXPECT_TRUE(cloud_->OpenFilesystem("bob").ok());
  EXPECT_TRUE(cloud_->DeleteAccount("bob").ok());
  EXPECT_EQ(cloud_->OpenFilesystem("bob").code(), ErrorCode::kNotFound);
  EXPECT_EQ(cloud_->OpenFilesystem("nobody").code(), ErrorCode::kNotFound);
}

TEST_F(H2CloudTest, WriteReadRoundTrip) {
  ASSERT_TRUE(fs_->Mkdir("/docs").ok());
  ASSERT_TRUE(
      fs_->WriteFile("/docs/note.txt", FileBlob::FromString("hello h2"))
          .ok());
  auto blob = fs_->ReadFile("/docs/note.txt");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->data, "hello h2");
  EXPECT_EQ(blob->logical_size, 8u);
}

TEST_F(H2CloudTest, StatReportsKindAndSize) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->WriteFile("/d/f", FileBlob::FromString("12345")).ok());
  auto file_info = fs_->Stat("/d/f");
  ASSERT_TRUE(file_info.ok());
  EXPECT_EQ(file_info->kind, EntryKind::kFile);
  EXPECT_EQ(file_info->size, 5u);
  auto dir_info = fs_->Stat("/d");
  ASSERT_TRUE(dir_info.ok());
  EXPECT_EQ(dir_info->kind, EntryKind::kDirectory);
  auto root_info = fs_->Stat("/");
  ASSERT_TRUE(root_info.ok());
  EXPECT_EQ(root_info->kind, EntryKind::kDirectory);
}

TEST_F(H2CloudTest, DeepPathsResolveLevelByLevel) {
  ASSERT_TRUE(fs_->Mkdir("/home").ok());
  ASSERT_TRUE(fs_->Mkdir("/home/ubuntu").ok());
  ASSERT_TRUE(
      fs_->WriteFile("/home/ubuntu/file1", FileBlob::FromString("f1")).ok());
  auto info = fs_->Stat("/home/ubuntu/file1");
  ASSERT_TRUE(info.ok());
  // d = 3: two directory-record GETs on the way down plus a final HEAD.
  EXPECT_EQ(fs_->last_op().gets, 2u);
  EXPECT_EQ(fs_->last_op().heads, 1u);
}

TEST_F(H2CloudTest, QuickMethodIsOneHead) {
  ASSERT_TRUE(fs_->Mkdir("/deep").ok());
  ASSERT_TRUE(fs_->Mkdir("/deep/deeper").ok());
  ASSERT_TRUE(
      fs_->WriteFile("/deep/deeper/f", FileBlob::FromString("x")).ok());
  auto ns = fs_->Namespace("/deep/deeper");
  ASSERT_TRUE(ns.ok());
  auto info = fs_->StatRelative(*ns, "f");
  ASSERT_TRUE(info.ok());
  // §3.2: the namespace-decorated relative path hits the object directly.
  EXPECT_EQ(fs_->last_op().object_primitives(), 1u);
  EXPECT_EQ(fs_->last_op().heads, 1u);
}

TEST_F(H2CloudTest, ListNamesOnlyIsOneGet) {
  ASSERT_TRUE(fs_->Mkdir("/bin").ok());
  for (const char* f : {"cat", "bash", "nc"}) {
    ASSERT_TRUE(
        fs_->WriteFile(std::string("/bin/") + f, FileBlob::FromString("#!"))
            .ok());
  }
  const auto names = ListNames("/bin");
  EXPECT_EQ(names, (std::vector<std::string>{"bash", "cat", "nc"}));
  // One GET for the directory record, one for the NameRing.
  EXPECT_EQ(fs_->last_op().gets, 2u);
  EXPECT_EQ(fs_->last_op().heads, 0u);
}

TEST_F(H2CloudTest, ListDetailedFetchesChildren) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs_->WriteFile("/d/f" + std::to_string(i),
                               FileBlob::FromString("abc"))
                    .ok());
  }
  auto entries = fs_->List("/d", ListDetail::kDetailed);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 10u);
  EXPECT_EQ(fs_->last_op().heads, 10u);
  for (const auto& e : *entries) {
    EXPECT_EQ(e.kind, EntryKind::kFile);
    EXPECT_EQ(e.size, 3u);
  }
}

TEST_F(H2CloudTest, MkdirErrors) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_EQ(fs_->Mkdir("/d").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fs_->Mkdir("/").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fs_->Mkdir("/missing/sub").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs_->WriteFile("/f", FileBlob::FromString("x")).ok());
  EXPECT_EQ(fs_->Mkdir("/f").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fs_->Mkdir("/f/sub").code(), ErrorCode::kNotADirectory);
}

TEST_F(H2CloudTest, RmdirIsConstantCost) {
  ASSERT_TRUE(fs_->Mkdir("/big").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs_->WriteFile("/big/f" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
  }
  ASSERT_TRUE(fs_->Rmdir("/big").ok());
  // O(1): the foreground cost must not scale with the 50 children.
  EXPECT_LT(fs_->last_op().object_primitives(), 10u);
  EXPECT_EQ(fs_->Stat("/big").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(ListNames("/").empty());
}

TEST_F(H2CloudTest, RmdirErrors) {
  EXPECT_EQ(fs_->Rmdir("/").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs_->Rmdir("/absent").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs_->WriteFile("/f", FileBlob::FromString("x")).ok());
  EXPECT_EQ(fs_->Rmdir("/f").code(), ErrorCode::kNotADirectory);
}

TEST_F(H2CloudTest, LazyCleanupReclaimsSubtreeObjects) {
  ASSERT_TRUE(fs_->Mkdir("/big").ok());
  ASSERT_TRUE(fs_->Mkdir("/big/sub").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs_->WriteFile("/big/f" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
    ASSERT_TRUE(fs_->WriteFile("/big/sub/g" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
  }
  const std::uint64_t before = cloud_->cloud().LogicalObjectCount();
  ASSERT_TRUE(fs_->Rmdir("/big").ok());
  cloud_->RunMaintenanceToQuiescence();
  const std::uint64_t after = cloud_->cloud().LogicalObjectCount();
  // 20 files + 2 dir records + 2 NameRings (+ patch/chain bookkeeping)
  // must be gone.
  EXPECT_LT(after + 20, before);
  EXPECT_TRUE(cloud_->middleware(0).MaintenanceIdle());
}

TEST_F(H2CloudTest, MoveDirectoryIsConstantCost) {
  ASSERT_TRUE(fs_->Mkdir("/src").ok());
  ASSERT_TRUE(fs_->Mkdir("/dst").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(fs_->WriteFile("/src/f" + std::to_string(i),
                               FileBlob::FromString("data"))
                    .ok());
  }
  ASSERT_TRUE(fs_->Move("/src", "/dst/moved").ok());
  // O(1) in n=40: record rewrite + two patches + the move intent journal.
  EXPECT_LT(fs_->last_op().object_primitives(), 18u);

  EXPECT_EQ(fs_->Stat("/src").code(), ErrorCode::kNotFound);
  auto blob = fs_->ReadFile("/dst/moved/f7");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->data, "data");
  EXPECT_EQ(ListNames("/dst/moved").size(), 40u);
}

TEST_F(H2CloudTest, MoveFile) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/b").ok());
  ASSERT_TRUE(fs_->WriteFile("/a/f", FileBlob::FromString("payload")).ok());
  ASSERT_TRUE(fs_->Move("/a/f", "/b/g").ok());
  EXPECT_EQ(fs_->Stat("/a/f").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs_->ReadFile("/b/g")->data, "payload");
  EXPECT_TRUE(ListNames("/a").empty());
  EXPECT_EQ(ListNames("/b"), std::vector<std::string>{"g"});
}

TEST_F(H2CloudTest, MoveErrors) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/b").ok());
  EXPECT_EQ(fs_->Move("/a", "/a/inside").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs_->Move("/", "/b/root").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs_->Move("/absent", "/b/x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs_->Move("/a", "/b").code(), ErrorCode::kAlreadyExists);
  EXPECT_TRUE(fs_->Move("/a", "/a").ok());  // no-op
}

TEST_F(H2CloudTest, RenameIsMoveWithinParent) {
  ASSERT_TRUE(fs_->Mkdir("/dir").ok());
  ASSERT_TRUE(fs_->WriteFile("/dir/old", FileBlob::FromString("v")).ok());
  ASSERT_TRUE(fs_->Rename("/dir/old", "new").ok());
  EXPECT_EQ(fs_->ReadFile("/dir/new")->data, "v");
  EXPECT_EQ(fs_->Stat("/dir/old").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs_->Rename("/dir/new", "bad/name").code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(H2CloudTest, CopyFileAndTree) {
  ASSERT_TRUE(fs_->Mkdir("/src").ok());
  ASSERT_TRUE(fs_->Mkdir("/src/sub").ok());
  ASSERT_TRUE(fs_->WriteFile("/src/a", FileBlob::FromString("A")).ok());
  ASSERT_TRUE(fs_->WriteFile("/src/sub/b", FileBlob::FromString("B")).ok());

  ASSERT_TRUE(fs_->Copy("/src", "/dst").ok());
  EXPECT_EQ(fs_->ReadFile("/dst/a")->data, "A");
  EXPECT_EQ(fs_->ReadFile("/dst/sub/b")->data, "B");
  // Source intact.
  EXPECT_EQ(fs_->ReadFile("/src/a")->data, "A");

  // The copy is deep: mutating the copy leaves the source alone.
  ASSERT_TRUE(fs_->WriteFile("/dst/a", FileBlob::FromString("A2")).ok());
  EXPECT_EQ(fs_->ReadFile("/src/a")->data, "A");

  EXPECT_EQ(fs_->Copy("/src", "/src/inside").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs_->Copy("/src", "/dst").code(), ErrorCode::kAlreadyExists);
}

TEST_F(H2CloudTest, CopyCostScalesWithFileCount) {
  ASSERT_TRUE(fs_->Mkdir("/many").ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(fs_->WriteFile("/many/f" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
  }
  ASSERT_TRUE(fs_->Copy("/many", "/many2").ok());
  EXPECT_GE(fs_->last_op().copies, 30u);  // one server-side copy per file
}

TEST_F(H2CloudTest, RemoveFile) {
  ASSERT_TRUE(fs_->WriteFile("/f", FileBlob::FromString("x")).ok());
  ASSERT_TRUE(fs_->RemoveFile("/f").ok());
  EXPECT_EQ(fs_->Stat("/f").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(ListNames("/").empty());
  EXPECT_EQ(fs_->RemoveFile("/f").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_EQ(fs_->RemoveFile("/d").code(), ErrorCode::kIsADirectory);
}

TEST_F(H2CloudTest, OverwriteDoesNotDuplicateListing) {
  ASSERT_TRUE(fs_->WriteFile("/f", FileBlob::FromString("v1")).ok());
  ASSERT_TRUE(fs_->WriteFile("/f", FileBlob::FromString("v2")).ok());
  EXPECT_EQ(fs_->ReadFile("/f")->data, "v2");
  EXPECT_EQ(ListNames("/").size(), 1u);
}

TEST_F(H2CloudTest, WriteReadErrors) {
  EXPECT_EQ(fs_->WriteFile("/", FileBlob::FromString("x")).code(),
            ErrorCode::kIsADirectory);
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_EQ(fs_->WriteFile("/d", FileBlob::FromString("x")).code(),
            ErrorCode::kIsADirectory);
  EXPECT_EQ(fs_->ReadFile("/d").code(), ErrorCode::kIsADirectory);
  EXPECT_EQ(fs_->ReadFile("/absent").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs_->WriteFile("/no/parent", FileBlob::FromString("x")).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(fs_->List("/d/nothere", ListDetail::kNamesOnly).code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(fs_->WriteFile("/file", FileBlob::FromString("x")).ok());
  EXPECT_EQ(fs_->List("/file", ListDetail::kNamesOnly).code(),
            ErrorCode::kNotADirectory);
}

TEST_F(H2CloudTest, InvalidPathsRejected) {
  EXPECT_EQ(fs_->Stat("relative").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs_->Mkdir("/a/../b").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs_->WriteFile("", FileBlob::FromString("x")).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(H2CloudTest, NamespaceUuidsFollowPaperFormat) {
  ASSERT_TRUE(fs_->Mkdir("/home").ok());
  auto ns = fs_->Namespace("/home");
  ASSERT_TRUE(ns.ok());
  // "seq.node.timestamp": middleware node 1 minted this namespace.
  EXPECT_EQ(ns->node, 1u);
  EXPECT_GT(ns->ts_millis, 1469346604000LL);
  auto reparsed = NamespaceId::Parse(ns->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, *ns);
}

TEST_F(H2CloudTest, PatchesMergeAndAreReclaimed) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs_->WriteFile("/d/f" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
  }
  H2Middleware& mw = cloud_->middleware(0);
  EXPECT_GT(mw.counters().patches_submitted, 5u);
  cloud_->RunMaintenanceToQuiescence();
  EXPECT_EQ(mw.counters().patches_merged, mw.counters().patches_submitted);
  // After merging, listing still sees everything (now from the ring itself).
  EXPECT_EQ(ListNames("/d").size(), 5u);
  EXPECT_TRUE(mw.MaintenanceIdle());
}

TEST_F(H2CloudTest, ObjectInventoryMatchesStructure) {
  ASSERT_TRUE(fs_->Mkdir("/d1").ok());
  ASSERT_TRUE(fs_->Mkdir("/d1/d2").ok());
  ASSERT_TRUE(fs_->WriteFile("/d1/f", FileBlob::FromString("x")).ok());
  cloud_->RunMaintenanceToQuiescence();
  // Fig. 14's point: every directory adds a record + a NameRing object.
  // account + root ring + 2 dir records + 2 dir rings + 1 file (+ chains).
  const std::uint64_t count = cloud_->cloud().LogicalObjectCount();
  EXPECT_GE(count, 7u);
}

}  // namespace
}  // namespace h2
