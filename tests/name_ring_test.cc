#include <gtest/gtest.h>

#include <string>

#include "codec/formatter.h"
#include "h2/keys.h"
#include "h2/name_ring.h"
#include "h2/records.h"

namespace h2 {
namespace {

RingTuple File(std::string name, VirtualNanos ts, bool deleted = false) {
  return RingTuple{std::move(name), ts, EntryKind::kFile, deleted};
}
RingTuple Dir(std::string name, VirtualNanos ts, bool deleted = false) {
  return RingTuple{std::move(name), ts, EntryKind::kDirectory, deleted};
}

TEST(NameRingTest, ApplyInsertsNewChild) {
  NameRing ring;
  EXPECT_TRUE(ring.Apply(File("cat", 10)));
  EXPECT_EQ(ring.tuple_count(), 1u);
  EXPECT_TRUE(ring.HasLive("cat"));
}

TEST(NameRingTest, LargerTimestampOverrides) {
  NameRing ring;
  ring.Apply(File("cat", 10));
  EXPECT_TRUE(ring.Apply(File("cat", 20, /*deleted=*/true)));
  EXPECT_FALSE(ring.HasLive("cat"));
  EXPECT_EQ(ring.tuple_count(), 1u);
  EXPECT_EQ(ring.tombstone_count(), 1u);
}

TEST(NameRingTest, SmallerTimestampDoesNotOverride) {
  NameRing ring;
  ring.Apply(File("cat", 20, true));
  EXPECT_FALSE(ring.Apply(File("cat", 10)));  // late old creation loses
  EXPECT_FALSE(ring.HasLive("cat"));
}

TEST(NameRingTest, EqualTimestampTieBreaksDeterministically) {
  // Same-tick collisions resolve identically regardless of arrival
  // order: deletion beats creation, directory beats file, and an exact
  // duplicate keeps the incumbent (idempotence).
  NameRing ring;
  ring.Apply(File("cat", 10));
  EXPECT_TRUE(ring.Apply(File("cat", 10, /*deleted=*/true)));
  EXPECT_FALSE(ring.HasLive("cat"));
  // The reverse order converges to the same winner.
  NameRing reversed;
  reversed.Apply(File("cat", 10, /*deleted=*/true));
  EXPECT_FALSE(reversed.Apply(File("cat", 10)));
  EXPECT_FALSE(reversed.HasLive("cat"));
  EXPECT_EQ(ring.Serialize(), reversed.Serialize());

  NameRing kinds;
  kinds.Apply(File("pet", 10));
  EXPECT_TRUE(kinds.Apply(Dir("pet", 10)));
  EXPECT_EQ(kinds.Find("pet")->kind, EntryKind::kDirectory);
  EXPECT_FALSE(kinds.Apply(File("pet", 10)));  // file loses the tie

  NameRing dup;
  dup.Apply(File("dog", 10));
  EXPECT_FALSE(dup.Apply(File("dog", 10)));  // idempotent re-apply
  EXPECT_TRUE(dup.HasLive("dog"));
}

TEST(NameRingTest, LiveChildrenAreAlphabetical) {
  NameRing ring;
  ring.Apply(File("nc", 1));
  ring.Apply(File("bash", 2));
  ring.Apply(File("cat", 3));
  ring.Apply(File("awk", 4, true));  // tombstone excluded
  const auto live = ring.LiveChildren();
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0].name, "bash");
  EXPECT_EQ(live[1].name, "cat");
  EXPECT_EQ(live[2].name, "nc");
}

TEST(NameRingTest, FindIncludesTombstones) {
  NameRing ring;
  ring.Apply(File("x", 5, true));
  ASSERT_NE(ring.Find("x"), nullptr);
  EXPECT_TRUE(ring.Find("x")->deleted);
  EXPECT_EQ(ring.Find("absent"), nullptr);
}

TEST(NameRingTest, CompactDropsOnlyTombstones) {
  NameRing ring;
  ring.Apply(File("a", 1));
  ring.Apply(File("b", 2, true));
  ring.Apply(Dir("c", 3));
  ring.Apply(File("d", 4, true));
  EXPECT_EQ(ring.Compact(), 2u);
  EXPECT_EQ(ring.tuple_count(), 2u);
  EXPECT_EQ(ring.tombstone_count(), 0u);
}

TEST(NameRingTest, PruneTombstonesRespectsCutoff) {
  NameRing ring;
  ring.Apply(File("old", 10, true));
  ring.Apply(File("new", 100, true));
  ring.Apply(File("live", 5));
  EXPECT_EQ(ring.PruneTombstones(50), 1u);  // only "old" expired
  EXPECT_NE(ring.Find("new"), nullptr);
  EXPECT_EQ(ring.Find("old"), nullptr);
  EXPECT_TRUE(ring.HasLive("live"));
}

TEST(NameRingTest, MergeAppliesPatchRules) {
  // §3.3.2: child in both -> larger timestamp wins; child only in patch ->
  // inserted; nothing is physically removed.
  NameRing ring;
  ring.Apply(File("keep", 10));
  ring.Apply(File("update", 10));
  NameRing patch;
  patch.Apply(File("update", 20, true));
  patch.Apply(File("insert", 15));

  EXPECT_EQ(ring.Merge(patch), 2u);
  EXPECT_TRUE(ring.HasLive("keep"));
  EXPECT_TRUE(ring.HasLive("insert"));
  EXPECT_FALSE(ring.HasLive("update"));
  EXPECT_EQ(ring.tuple_count(), 3u);  // tombstone retained
}

TEST(NameRingTest, VersionVectorMergesByMax) {
  NameRing a, b;
  a.NoteMerged(1, 5);
  a.NoteMerged(2, 3);
  b.NoteMerged(1, 2);
  b.NoteMerged(3, 7);
  a.Merge(b);
  EXPECT_EQ(a.MergedUpTo(1), 5u);
  EXPECT_EQ(a.MergedUpTo(2), 3u);
  EXPECT_EQ(a.MergedUpTo(3), 7u);
  EXPECT_EQ(a.MergedUpTo(99), 0u);
}

TEST(NameRingTest, SerializeParseRoundTrip) {
  NameRing ring;
  ring.Apply(File("plain.txt", 123456789));
  ring.Apply(Dir("dir with spaces", 987654321));
  ring.Apply(File("weird|name\nwith%escapes", 42, true));
  ring.NoteMerged(1, 9);
  ring.NoteMerged(7, 2);

  auto parsed = NameRing::Parse(ring.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ring);
}

TEST(NameRingTest, EmptyRingSerializesEmpty) {
  NameRing ring;
  EXPECT_EQ(ring.Serialize(), "");
  auto parsed = NameRing::Parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->tuple_count(), 0u);
}

TEST(NameRingTest, SerializationIsAlphabetical) {
  // §4.4: tuples alphabetically sorted by name.
  NameRing ring;
  ring.Apply(File("zeta", 1));
  ring.Apply(File("alpha", 2));
  const std::string s = ring.Serialize();
  EXPECT_LT(s.find("alpha"), s.find("zeta"));
}

TEST(NameRingTest, ParseRejectsCorruption) {
  EXPECT_FALSE(NameRing::Parse("onlyonefield\n").ok());
  EXPECT_FALSE(NameRing::Parse("name|notanumber|F|\n").ok());
  EXPECT_FALSE(NameRing::Parse("name|12|Q|\n").ok());
  EXPECT_FALSE(NameRing::Parse("name|12|F|weird\n").ok());
  EXPECT_FALSE(NameRing::Parse("#vv|1\n").ok());
  EXPECT_FALSE(NameRing::Parse("#vv|x|2\n").ok());
}

TEST(NameRingTest, AllTuplesIncludesTombstones) {
  NameRing ring;
  ring.Apply(File("a", 1));
  ring.Apply(File("b", 2, true));
  EXPECT_EQ(ring.AllTuples().size(), 2u);
  EXPECT_EQ(ring.LiveChildren().size(), 1u);
}

TEST(RecordsTest, DirRecordRoundTrip) {
  DirRecord dir{NamespaceId{6, 1, 1469346604539LL},
                NamespaceId{1, 1, 1469346604000LL}, "home", 42};
  auto parsed = DirRecord::Parse(dir.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ns, dir.ns);
  EXPECT_EQ(parsed->parent_ns, dir.parent_ns);
  EXPECT_EQ(parsed->name, "home");
  EXPECT_EQ(parsed->created, 42);
}

TEST(RecordsTest, DirRecordRejectsFilePayload) {
  KvRecord r;
  r.Set("kind", "file");
  EXPECT_EQ(DirRecord::Parse(r.Serialize()).code(), ErrorCode::kCorruption);
}

TEST(RecordsTest, AccountRecordRoundTrip) {
  AccountRecord acct{"alice", NamespaceId{1, 2, 170000}, 7};
  auto parsed = AccountRecord::Parse(acct.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->user, "alice");
  EXPECT_EQ(parsed->root_ns, acct.root_ns);
}

TEST(RecordsTest, PatchChainRoundTripAndPending) {
  PatchChain chain{.next_patch = 7, .merged_through = 3};
  EXPECT_EQ(chain.pending(), 3u);
  auto parsed = PatchChain::Parse(chain.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->next_patch, 7u);
  EXPECT_EQ(parsed->merged_through, 3u);

  PatchChain fresh;
  EXPECT_EQ(fresh.pending(), 0u);
  PatchChain odd{.next_patch = 2, .merged_through = 5};
  EXPECT_EQ(odd.pending(), 0u);  // inconsistent state degrades safely
}

TEST(KeysTest, MatchPaperFormats) {
  const NamespaceId ns{6, 1, 1469346604539LL};
  EXPECT_EQ(ChildKey(ns, "ubuntu"), "06.01.1469346604539::ubuntu");
  EXPECT_EQ(NameRingKey(ns), "06.01.1469346604539::/NameRing/");
  // §3.3.2's example: N97::/NameRing/.Node01.Patch03.
  EXPECT_EQ(PatchKey(ns, 1, 3),
            "06.01.1469346604539::/NameRing/.Node01.Patch03");
  EXPECT_EQ(PatchChainKey(ns, 1),
            "06.01.1469346604539::/NameRing/.Node01.Chain");
  EXPECT_EQ(AccountKey("alice"), "account::alice");
}

TEST(KeysTest, NameRingKeyCannotCollideWithChild) {
  // '/' is not a legal child name character, so "<ns>::/NameRing/" is
  // outside the child key space.
  const NamespaceId ns{1, 1, 1};
  EXPECT_NE(ChildKey(ns, "NameRing"), NameRingKey(ns));
}

// ---- versioned rings (DESIGN.md §13) ----------------------------------------

TEST(VersionedNameRingTest, FindAtWalksHistory) {
  NameRing ring;
  ring.Apply(RingTuple{"a", 10, EntryKind::kFile, false});
  ring.Apply(RingTuple{"a", 20, EntryKind::kFile, true});   // deleted
  ring.Apply(RingTuple{"a", 30, EntryKind::kFile, false});  // recreated
  EXPECT_EQ(ring.dir_version(), 30u);
  EXPECT_EQ(ring.history_count(), 2u);

  auto at5 = ring.FindAt("a", 5);
  ASSERT_TRUE(at5.ok());
  EXPECT_FALSE(at5->has_value());  // not born yet
  auto at15 = ring.FindAt("a", 15);
  ASSERT_TRUE(at15.ok());
  ASSERT_TRUE(at15->has_value());
  EXPECT_EQ((*at15)->timestamp, 10u);
  auto at25 = ring.FindAt("a", 25);
  ASSERT_TRUE(at25.ok());
  ASSERT_TRUE(at25->has_value());
  EXPECT_TRUE((*at25)->deleted);
  auto at30 = ring.FindAt("a", 30);
  ASSERT_TRUE(at30.ok());
  EXPECT_EQ((*at30)->timestamp, 30u);

  auto live15 = ring.LiveChildrenAt(15);
  ASSERT_TRUE(live15.ok());
  EXPECT_EQ(live15->size(), 1u);
  auto live25 = ring.LiveChildrenAt(25);
  ASSERT_TRUE(live25.ok());
  EXPECT_TRUE(live25->empty());
}

TEST(VersionedNameRingTest, CompactHistoryRaisesFloorAndKeepsBase) {
  NameRing ring;
  ring.Apply(RingTuple{"a", 10, EntryKind::kFile, false});
  ring.Apply(RingTuple{"a", 20, EntryKind::kFile, false});
  ring.Apply(RingTuple{"a", 30, EntryKind::kFile, false});
  // Cutoff 20: the tuple visible AT 20 (ts=20) stays as the floor base;
  // only the ts=10 tuple folds.
  EXPECT_EQ(ring.CompactHistory(20), 1u);
  EXPECT_EQ(ring.history_floor(), 20u);
  EXPECT_EQ(ring.FindAt("a", 15).code(), ErrorCode::kInvalidArgument);
  auto at20 = ring.FindAt("a", 20);
  ASSERT_TRUE(at20.ok());
  EXPECT_EQ((*at20)->timestamp, 20u);
  // Folding everything leaves only the current tuple; the floor is capped
  // at dir_version so the present always answers.
  ring.CompactHistory(1000);
  EXPECT_EQ(ring.history_count(), 0u);
  EXPECT_EQ(ring.history_floor(), 30u);
  ASSERT_TRUE(ring.FindAt("a", 30).ok());
}

TEST(VersionedNameRingTest, PinsClampCompactionAndGc) {
  NameRing ring;
  ring.Apply(RingTuple{"a", 10, EntryKind::kFile, false});
  ring.Apply(RingTuple{"a", 20, EntryKind::kFile, true});
  ring.Apply(RingTuple{"b", 25, EntryKind::kFile, false});
  ring.Pin(12);

  // History at the pinned version survives a fold past it ...
  EXPECT_EQ(ring.CompactHistory(1000), 0u);
  auto at12 = ring.FindAt("a", 12);
  ASSERT_TRUE(at12.ok());
  EXPECT_EQ((*at12)->timestamp, 10u);
  // ... and the tombstone GC cannot cross the pin either: pruning "a"
  // would raise the floor past 12 and break the pinned view.
  EXPECT_EQ(ring.PruneTombstones(1000), 0u);

  // Releasing the pin re-arms both.
  EXPECT_TRUE(ring.Unpin(12));
  EXPECT_FALSE(ring.Unpin(12));  // no double release
  EXPECT_EQ(ring.PruneTombstones(1000), 1u);
  EXPECT_EQ(ring.FindAt("a", 12).code(), ErrorCode::kInvalidArgument);
}

TEST(VersionedNameRingTest, SerializationCarriesVersionHistoryAndPins) {
  NameRing ring;
  ring.Apply(RingTuple{"a", 10, EntryKind::kFile, false});
  ring.Apply(RingTuple{"a", 20, EntryKind::kDirectory, false});
  ring.BumpVersion(50);
  ring.Pin(15);
  ring.Pin(15);
  ring.Pin(40);
  ring.NoteMerged(3, 7);

  auto parsed = NameRing::Parse(ring.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ring);
  EXPECT_EQ(parsed->dir_version(), 50u);
  EXPECT_EQ(parsed->pin_count(), 3u);
  EXPECT_EQ(parsed->history_count(), 1u);
}

TEST(VersionedNameRingTest, MergeIgnoresPatchSidePins) {
  // Pins are stored-ring bookkeeping, not replicated state: a stale local
  // view carrying an already-released pin must not resurrect it.
  NameRing stored;
  stored.Apply(RingTuple{"a", 10, EntryKind::kFile, false});
  NameRing stale = stored;
  stale.Pin(5);
  stored.Merge(stale);
  EXPECT_EQ(stored.pin_count(), 0u);
}

TEST(VersionedNameRingTest, MergeRenormalizesFoldedHistory) {
  // Replica A folded its history; replica B still carries it.  Their
  // merge must converge regardless of direction: the merged floor governs.
  NameRing a;
  a.Apply(RingTuple{"a", 10, EntryKind::kFile, false});
  a.Apply(RingTuple{"a", 20, EntryKind::kFile, false});
  NameRing b = a;  // b keeps history
  a.CompactHistory(1000);

  NameRing ab = a;
  ab.Merge(b);
  NameRing ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.history_count(), 0u);  // the fold wins; no re-import
}

}  // namespace
}  // namespace h2
