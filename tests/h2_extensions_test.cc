// Tests for the H2 extensions beyond the paper's core: paged LIST
// (Swift-style marker/limit) and the versioned resolve cache (deeper
// cache coverage lives in tests/resolve_cache_test.cc).
#include <gtest/gtest.h>

#include <set>

#include "h2/h2cloud.h"

namespace h2 {
namespace {

struct H2Box {
  explicit H2Box(H2Config h2_config = {}) {
    H2CloudConfig cfg;
    cfg.cloud.part_power = 8;
    cfg.h2 = h2_config;
    cloud = std::make_unique<H2Cloud>(cfg);
    EXPECT_TRUE(cloud->CreateAccount("u").ok());
    fs = std::move(cloud->OpenFilesystem("u")).value();
  }
  std::unique_ptr<H2Cloud> cloud;
  std::unique_ptr<H2AccountFs> fs;
};

TEST(ListPagedTest, PagesCoverAllChildrenInOrder) {
  H2Box box;
  ASSERT_TRUE(box.fs->Mkdir("/dir").ok());
  for (int i = 0; i < 57; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/dir/f%03d", i);
    ASSERT_TRUE(box.fs->WriteFile(buf, FileBlob::FromString("x")).ok());
  }
  box.cloud->RunMaintenanceToQuiescence();

  std::vector<std::string> collected;
  std::string marker;
  int pages = 0;
  for (;;) {
    auto page =
        box.fs->ListPaged("/dir", ListDetail::kNamesOnly, marker, 10);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    for (const auto& e : page->entries) collected.push_back(e.name);
    ++pages;
    if (!page->truncated) break;
    marker = page->next_marker;
  }
  EXPECT_EQ(pages, 6);  // 5 full pages + 7 leftover
  ASSERT_EQ(collected.size(), 57u);
  EXPECT_TRUE(std::is_sorted(collected.begin(), collected.end()));
  std::set<std::string> unique(collected.begin(), collected.end());
  EXPECT_EQ(unique.size(), 57u);
}

TEST(ListPagedTest, DetailCostIsPerPageNotPerDirectory) {
  H2Box box;
  ASSERT_TRUE(box.fs->Mkdir("/big").ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(box.fs->WriteFile("/big/f" + std::to_string(i),
                                  FileBlob::FromString("x"))
                    .ok());
  }
  box.cloud->RunMaintenanceToQuiescence();

  auto page = box.fs->ListPaged("/big", ListDetail::kDetailed, {}, 20);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->entries.size(), 20u);
  EXPECT_TRUE(page->truncated);
  const auto page_cost = box.fs->last_op();
  EXPECT_EQ(page_cost.heads, 20u);  // only the page's children

  ASSERT_TRUE(box.fs->List("/big", ListDetail::kDetailed).ok());
  const auto full_cost = box.fs->last_op();
  EXPECT_EQ(full_cost.heads, 300u);
  EXPECT_GT(full_cost.elapsed, 3 * page_cost.elapsed);
}

TEST(ListPagedTest, MarkerSkipsExactly) {
  H2Box box;
  ASSERT_TRUE(box.fs->Mkdir("/d").ok());
  for (const char* name : {"alpha", "bravo", "charlie", "delta"}) {
    ASSERT_TRUE(box.fs->WriteFile(std::string("/d/") + name,
                                  FileBlob::FromString("x"))
                    .ok());
  }
  auto page = box.fs->ListPaged("/d", ListDetail::kNamesOnly, "bravo", 10);
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page->entries.size(), 2u);
  EXPECT_EQ(page->entries[0].name, "charlie");
  EXPECT_EQ(page->entries[1].name, "delta");
  EXPECT_FALSE(page->truncated);

  // A marker that is not an existing name still works (strictly-after).
  page = box.fs->ListPaged("/d", ListDetail::kNamesOnly, "b", 10);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->entries.size(), 3u);  // bravo, charlie, delta
}

TEST(ListPagedTest, Errors) {
  H2Box box;
  EXPECT_EQ(box.fs->ListPaged("/missing", ListDetail::kNamesOnly).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(
      box.fs->ListPaged("/", ListDetail::kNamesOnly, {}, 0).code(),
      ErrorCode::kInvalidArgument);
}

TEST(ResolveCacheTest, HitsAfterWarmup) {
  H2Box box;  // resolve cache defaults on
  ASSERT_TRUE(box.fs->Mkdir("/a").ok());
  ASSERT_TRUE(box.fs->Mkdir("/a/b").ok());
  ASSERT_TRUE(box.fs->WriteFile("/a/b/f", FileBlob::FromString("x")).ok());

  ASSERT_TRUE(box.fs->Stat("/a/b/f").ok());  // warm
  ASSERT_TRUE(box.fs->Stat("/a/b/f").ok());  // hit
  EXPECT_EQ(box.fs->last_op().gets, 0u);     // no directory-record GETs
  EXPECT_EQ(box.fs->last_op().heads, 1u);
  const H2Counters counters = box.cloud->middleware(0).counters();
  EXPECT_GT(counters.resolve_cache_hits, 0u);
}

TEST(ResolveCacheTest, CapacityEvictsLeastRecentlyUsed) {
  H2Config cfg;
  cfg.resolve_cache_capacity = 4;
  cfg.ring_cache_capacity = 4;
  H2Box box(cfg);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(box.fs->Mkdir("/d" + std::to_string(i)).ok());
  }
  // Touch all ten directories: only 4 of each entry kind can stay cached.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        box.fs->List("/d" + std::to_string(i), ListDetail::kNamesOnly).ok());
  }
  // /d9 was touched last -> record and ring cached; /d0 evicted -> both
  // GETs are paid again.
  ASSERT_TRUE(box.fs->List("/d9", ListDetail::kNamesOnly).ok());
  EXPECT_EQ(box.fs->last_op().gets, 0u);  // record + ring both cached
  ASSERT_TRUE(box.fs->List("/d0", ListDetail::kNamesOnly).ok());
  EXPECT_EQ(box.fs->last_op().gets, 2u);  // dir record + NameRing
}

TEST(ResolveCacheTest, InvalidatedOnRmdirAndMove) {
  H2Box box;
  ASSERT_TRUE(box.fs->Mkdir("/dir").ok());
  ASSERT_TRUE(box.fs->List("/dir", ListDetail::kNamesOnly).ok());  // cache
  ASSERT_TRUE(box.fs->Rmdir("/dir").ok());
  EXPECT_EQ(box.fs->List("/dir", ListDetail::kNamesOnly).code(),
            ErrorCode::kNotFound);

  ASSERT_TRUE(box.fs->Mkdir("/m").ok());
  ASSERT_TRUE(box.fs->List("/m", ListDetail::kNamesOnly).ok());
  ASSERT_TRUE(box.fs->Move("/m", "/moved").ok());
  EXPECT_EQ(box.fs->List("/m", ListDetail::kNamesOnly).code(),
            ErrorCode::kNotFound);
  EXPECT_TRUE(box.fs->List("/moved", ListDetail::kNamesOnly).ok());
}


TEST(WriteBatchTest, OnePatchPerDirectory) {
  H2Box box;
  ASSERT_TRUE(box.fs->Mkdir("/a").ok());
  ASSERT_TRUE(box.fs->Mkdir("/b").ok());
  const auto before = box.cloud->middleware(0).counters();

  std::vector<std::pair<std::string, FileBlob>> files;
  for (int i = 0; i < 20; ++i) {
    files.emplace_back("/a/f" + std::to_string(i),
                       FileBlob::FromString("x"));
  }
  for (int i = 0; i < 10; ++i) {
    files.emplace_back("/b/g" + std::to_string(i),
                       FileBlob::FromString("y"));
  }
  ASSERT_TRUE(box.fs->WriteFiles(std::move(files)).ok());
  const auto after = box.cloud->middleware(0).counters();
  // 30 files, but only 2 patches (one per directory).
  EXPECT_EQ(after.patches_submitted - before.patches_submitted, 2u);

  box.cloud->RunMaintenanceToQuiescence();
  EXPECT_EQ(box.fs->List("/a", ListDetail::kNamesOnly)->size(), 20u);
  EXPECT_EQ(box.fs->List("/b", ListDetail::kNamesOnly)->size(), 10u);
  EXPECT_EQ(box.fs->ReadFile("/a/f7")->data, "x");
}

TEST(WriteBatchTest, CheaperThanIndividualWrites) {
  H2Box batch_box, single_box;
  ASSERT_TRUE(batch_box.fs->Mkdir("/d").ok());
  ASSERT_TRUE(single_box.fs->Mkdir("/d").ok());

  std::vector<std::pair<std::string, FileBlob>> files;
  for (int i = 0; i < 50; ++i) {
    files.emplace_back("/d/f" + std::to_string(i),
                       FileBlob::FromString("x"));
  }
  ASSERT_TRUE(batch_box.fs->WriteFiles(std::move(files)).ok());
  const double batch_ms = batch_box.fs->last_op().elapsed_ms();

  double single_ms = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(single_box.fs->WriteFile("/d/f" + std::to_string(i),
                                         FileBlob::FromString("x"))
                    .ok());
    single_ms += single_box.fs->last_op().elapsed_ms();
  }
  // The 49 saved durable commits (~60 ms each) dominate.
  EXPECT_LT(batch_ms, single_ms / 2);
}

TEST(WriteBatchTest, VisibilityBeforeMaintenance) {
  H2Box box;
  std::vector<std::pair<std::string, FileBlob>> files;
  files.emplace_back("/one", FileBlob::FromString("1"));
  files.emplace_back("/two", FileBlob::FromString("2"));
  ASSERT_TRUE(box.fs->WriteFiles(std::move(files)).ok());
  // Read-your-writes through the pending-patch overlay.
  EXPECT_EQ(box.fs->List("/", ListDetail::kNamesOnly)->size(), 2u);
}

TEST(WriteBatchTest, ErrorsSurface) {
  H2Box box;
  std::vector<std::pair<std::string, FileBlob>> files;
  files.emplace_back("/ok", FileBlob::FromString("x"));
  files.emplace_back("/missing/f", FileBlob::FromString("x"));
  EXPECT_EQ(box.fs->WriteFiles(std::move(files)).code(),
            ErrorCode::kNotFound);
  std::vector<std::pair<std::string, FileBlob>> bad;
  ASSERT_TRUE(box.fs->Mkdir("/dir").ok());
  bad.emplace_back("/dir", FileBlob::FromString("x"));
  EXPECT_EQ(box.fs->WriteFiles(std::move(bad)).code(),
            ErrorCode::kIsADirectory);
}

}  // namespace
}  // namespace h2
