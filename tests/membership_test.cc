// Elastic membership: weighted virtual nodes, bounded-rate rebalancing,
// hint drain on removal, membership epochs over gossip, and the serial
// differential oracle -- the same churn trace drained at any
// max_rebalance_keys_per_step must leave a byte-identical cluster.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "cluster/object_cloud.h"
#include "h2/h2cloud.h"

namespace h2 {
namespace {

CloudConfig MembershipCloud(std::size_t rate, int part_power = 6) {
  CloudConfig cfg;
  cfg.node_count = 6;
  cfg.replica_count = 3;
  cfg.part_power = part_power;
  cfg.zone_count = 3;
  cfg.max_rebalance_keys_per_step = rate;
  return cfg;
}

std::string Key(std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "obj/k%04zu", i);
  return buf;
}

std::uint64_t TotalHints(ObjectCloud& cloud) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cloud.node_count(); ++i) {
    total += cloud.node(i).hint_count();
  }
  return total;
}

void DrainAll(ObjectCloud& cloud) {
  while (cloud.RunRebalanceStep() > 0) {
  }
  while (cloud.ReplayHints() > 0) {
  }
}

// The churn trace: four membership events (add, remove, replace,
// reweight), each followed by a FIXED number of foreground write bursts
// interleaved with bounded rebalance steps.  Writes only: a PUT's priced
// path (replica set, zone mix, one jitter draw) is the same wherever the
// rebalancer happens to be, while a GET's depends on which replica wins
// mid-migration -- reads mid-churn would advance the clock differently
// per rate and break the byte-identity this oracle asserts.
//
// Every write to Key(k) carries created = k + 1: node-level Put preserves
// the incumbent's creation time on overwrite, so whether the stale copy
// was still present (rate-dependent) must not change the surviving bytes.
// (+1 dodges created == 0, which the cloud rewrites to the PUT's tick.)
std::string RunChurnScenario(std::size_t rate) {
  ObjectCloud cloud(MembershipCloud(rate));
  OpMeter meter;
  for (std::size_t i = 0; i < 240; ++i) {
    EXPECT_TRUE(
        cloud.Put(Key(i), ObjectValue::FromString("seed", i + 1), meter)
            .ok());
  }

  std::size_t serial = 0;
  const auto churn_wave = [&](std::size_t salt) {
    for (std::size_t step = 0; step < 10; ++step) {
      for (std::size_t j = 0; j < 6; ++j, ++serial) {
        const std::size_t k = (salt * 13 + serial * 5) % 300;
        EXPECT_TRUE(cloud
                        .Put(Key(k),
                             ObjectValue::FromString(
                                 "wave" + std::to_string(salt), k + 1),
                             meter)
                        .ok());
      }
      EXPECT_TRUE(
          cloud.Delete(Key((salt * 13 + (serial - 1) * 5) % 300), meter)
              .ok());
      cloud.RunRebalanceStep();
    }
  };

  Result<DeviceId> added = cloud.AddStorageNodeDeferred();
  EXPECT_TRUE(added.ok());
  churn_wave(1);
  EXPECT_TRUE(cloud.RemoveStorageNode(2).ok());
  churn_wave(2);
  EXPECT_TRUE(cloud.ReplaceStorageNode(4).ok());
  churn_wave(3);
  EXPECT_TRUE(cloud.SetNodeWeight(*added, 2.0).ok());
  churn_wave(4);

  DrainAll(cloud);
  EXPECT_EQ(cloud.RebalancePending(), 0u);
  EXPECT_EQ(cloud.DivergentKeyCount(), 0u);
  return cloud.DebugDump();
}

TEST(MembershipTest, ChurnDifferentialAcrossRates) {
  const std::string drip = RunChurnScenario(3);
  const std::string chunky = RunChurnScenario(50);
  const std::string eager = RunChurnScenario(0);  // whole queue per step
  EXPECT_EQ(drip, eager);
  EXPECT_EQ(chunky, eager);
}

TEST(MembershipTest, DeferredAddMatchesEagerAdd) {
  ObjectCloud eager(MembershipCloud(0));
  ObjectCloud deferred(MembershipCloud(7));
  OpMeter m1, m2;
  for (std::size_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(
        eager.Put(Key(i), ObjectValue::FromString("v", i), m1).ok());
    ASSERT_TRUE(
        deferred.Put(Key(i), ObjectValue::FromString("v", i), m2).ok());
  }
  Result<ObjectCloud::MigrationReport> report = eager.AddStorageNode();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->objects_copied, 0u);

  ASSERT_TRUE(deferred.AddStorageNodeDeferred().ok());
  EXPECT_GT(deferred.RebalancePending(), 0u);
  std::size_t steps = 0;
  while (deferred.RunRebalanceStep() > 0) ++steps;
  EXPECT_GT(steps, 1u);  // the bounded path really dripped

  EXPECT_EQ(deferred.DebugDump(), eager.DebugDump());
  const ObjectCloud::RebalanceStats stats = deferred.rebalance_stats();
  EXPECT_EQ(stats.objects_copied, report->objects_copied);
  EXPECT_EQ(stats.objects_dropped, report->objects_dropped);
}

TEST(MembershipTest, BoundedRateIsRespectedPerStep) {
  CloudConfig cfg = MembershipCloud(16, /*part_power=*/8);
  ObjectCloud cloud(cfg);
  OpMeter meter;
  for (std::size_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(
        cloud.Put(Key(i), ObjectValue::FromString("x", i), meter).ok());
  }
  const VirtualNanos clock_before = cloud.clock().Now();
  ASSERT_TRUE(cloud.AddStorageNodeDeferred().ok());
  const std::size_t pending = cloud.RebalancePending();
  ASSERT_GT(pending, 16u);

  std::size_t steps = 0;
  std::size_t remaining = pending;
  for (;;) {
    const std::size_t moved = cloud.RunRebalanceStep();
    if (moved == 0) break;
    ++steps;
    EXPECT_LE(moved, 16u);
    EXPECT_EQ(moved, std::min<std::size_t>(16, remaining));
    remaining -= moved;
  }
  EXPECT_EQ(steps, (pending + 15) / 16);

  const ObjectCloud::RebalanceStats stats = cloud.rebalance_stats();
  EXPECT_EQ(stats.keys_moved, pending);
  EXPECT_EQ(stats.epoch, cloud.membership_epoch());
  // Migration work is priced on its own meter and never advances the
  // foreground clock -- churn rate cannot perturb foreground timestamps.
  EXPECT_GT(cloud.rebalance_cost().elapsed, 0);
  EXPECT_EQ(cloud.clock().Now(), clock_before);
  EXPECT_EQ(cloud.DivergentKeyCount(), 0u);
}

TEST(MembershipTest, WeightChangeRedistributesProportionally) {
  // One failure domain: with multiple zones the "as unique as possible"
  // placement caps a heavy node's share at ~1 replica row per partition
  // in its zone, so proportionality only holds zone-unconstrained.
  CloudConfig cfg = MembershipCloud(0, /*part_power=*/8);
  cfg.zone_count = 1;
  ObjectCloud cloud(cfg);
  OpMeter meter;
  for (std::size_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        cloud.Put(Key(i), ObjectValue::FromString("w", i), meter).ok());
  }
  ASSERT_TRUE(cloud.SetNodeWeight(0, 3.0).ok());
  while (cloud.RunRebalanceStep() > 0) {
  }

  // Weights are now {3, 1, 1, 1, 1, 1}: node 0 should hold ~3/8 of the
  // vnodes and of the raw replicas.
  const std::uint32_t vnodes0 = cloud.ring().VnodeCount(0);
  const double total_slots = 3.0 * cloud.ring().partition_count();
  EXPECT_NEAR(vnodes0, total_slots * 3.0 / 8.0, total_slots * 0.02);

  const std::vector<std::uint64_t> counts = cloud.NodeObjectCounts();
  const std::uint64_t raw =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(raw) * 3.0 / 8.0,
              static_cast<double>(raw) * 3.0 / 8.0 * 0.15);
  EXPECT_GT(cloud.rebalance_stats().keys_moved, 0u);
  EXPECT_EQ(cloud.DivergentKeyCount(), 0u);
}

TEST(MembershipTest, ReplaceStorageNodeMovesOnlyTheReplacedShare) {
  ObjectCloud cloud(MembershipCloud(0));
  OpMeter meter;
  for (std::size_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        cloud.Put(Key(i), ObjectValue::FromString("r", i), meter).ok());
  }
  const std::vector<std::uint64_t> before = cloud.NodeObjectCounts();
  const std::uint64_t epoch_before = cloud.membership_epoch();
  Result<DeviceId> fresh = cloud.ReplaceStorageNode(2);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(cloud.membership_epoch(), epoch_before + 1);
  while (cloud.RunRebalanceStep() > 0) {
  }

  // The replacement inherits node 2's slots wholesale: its data moves
  // over, node 2 drains, and no survivor gains or loses a single object.
  const std::vector<std::uint64_t> after = cloud.NodeObjectCounts();
  EXPECT_EQ(after[2], 0u);
  EXPECT_EQ(after[*fresh], before[2]);
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (i == 2) continue;
    EXPECT_EQ(after[i], before[i]) << "node " << i;
  }
  const ObjectCloud::RebalanceStats stats = cloud.rebalance_stats();
  EXPECT_EQ(stats.objects_copied, before[2]);
  EXPECT_EQ(stats.objects_dropped, before[2]);
  EXPECT_EQ(cloud.DivergentKeyCount(), 0u);
  // The retired id is gone: replacing it again must fail.
  EXPECT_EQ(cloud.ReplaceStorageNode(2).code(), ErrorCode::kNotFound);
}

// Regression: hints parked for a node that is then REMOVED must drain to
// the key's successor instead of leaking (their target never revives, so
// without migration they would sit in the holder's bounded queue
// forever, wasting capacity).
TEST(MembershipTest, HintsParkedForRemovedNodeDrainToSuccessor) {
  ObjectCloud cloud(MembershipCloud(0));
  OpMeter meter;
  for (std::size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(
        cloud.Put(Key(i), ObjectValue::FromString("base", i), meter).ok());
  }
  cloud.node(3).SetDown(true);
  for (std::size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(
        cloud.Put(Key(i), ObjectValue::FromString("new", i), meter).ok());
  }
  ASSERT_GT(TotalHints(cloud), 0u);  // writes node 3 missed are parked

  ASSERT_TRUE(cloud.RemoveStorageNode(3).ok());
  EXPECT_GT(cloud.rebalance_stats().hints_migrated, 0u);
  DrainAll(cloud);

  // Node 3 never comes back, yet nothing leaked and nothing diverged.
  EXPECT_EQ(TotalHints(cloud), 0u);
  EXPECT_EQ(cloud.DivergentKeyCount(), 0u);
  for (std::size_t i = 0; i < 120; ++i) {
    Result<ObjectValue> r = cloud.Get(Key(i), meter);
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(r->payload, "new") << Key(i);
  }
}

TEST(MembershipTest, RemoveLastDeviceIsRejected) {
  CloudConfig cfg = MembershipCloud(0);
  cfg.node_count = 1;
  cfg.replica_count = 1;
  cfg.zone_count = 1;
  ObjectCloud cloud(cfg);
  EXPECT_EQ(cloud.RemoveStorageNode(0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(cloud.RemoveStorageNode(42).code(), ErrorCode::kInvalidArgument);
}

// Membership epochs ride the gossip bus: every middleware learns the new
// topology like it learns NameRing patches, and flushes its resolve
// cache exactly once per epoch.
TEST(MembershipTest, EpochGossipsToEveryMiddleware) {
  H2CloudConfig cfg;
  cfg.cloud = MembershipCloud(16);
  cfg.middleware_count = 5;
  H2Cloud h2(cfg);
  OpMeter meter;
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        h2.cloud()
            .Put(Key(i), ObjectValue::FromString("g", i), meter)
            .ok());
  }

  Result<DeviceId> added = h2.AddStorageNode();
  ASSERT_TRUE(added.ok());
  h2.RunMaintenanceToQuiescence();
  const std::uint64_t epoch = h2.cloud().membership_epoch();
  for (std::size_t i = 0; i < h2.middleware_count(); ++i) {
    EXPECT_EQ(h2.middleware(i).topology_epoch(), epoch) << "middleware " << i;
    EXPECT_GE(h2.middleware(i).counters().topology_updates, 1u);
  }
  // Quiescence also means the maintenance loop drained the migration.
  EXPECT_EQ(h2.cloud().RebalancePending(), 0u);
  EXPECT_EQ(h2.cloud().DivergentKeyCount(), 0u);

  // A second change: epochs stay monotone and spread again.
  ASSERT_TRUE(h2.SetNodeWeight(*added, 2.0).ok());
  h2.RunMaintenanceToQuiescence();
  const std::uint64_t epoch2 = h2.cloud().membership_epoch();
  EXPECT_GT(epoch2, epoch);
  for (std::size_t i = 0; i < h2.middleware_count(); ++i) {
    EXPECT_EQ(h2.middleware(i).topology_epoch(), epoch2)
        << "middleware " << i;
    EXPECT_GE(h2.middleware(i).counters().topology_updates, 2u);
  }
}

// Direct primitives pin the membership epoch exactly like ExecuteBatch:
// a lone PUT/GET/HEAD/DELETE/COPY racing AddStorageNode/RemoveStorageNode
// holds the shared side of the membership lock for its whole duration, so
// a publish can never land mid-op and split its routing across epochs.
// Under -DH2_TSAN=ON this is the race net for the pinned wrappers; in any
// build the quorum failures it would cause show up as op errors below.
TEST(MembershipTest, DirectPrimitivesPinTheEpochDuringChurn) {
  ObjectCloud cloud(MembershipCloud(/*rate=*/8));
  {
    OpMeter seed;
    for (std::size_t i = 0; i < 48; ++i) {
      ASSERT_TRUE(
          cloud.Put(Key(i), ObjectValue::FromString("seed", i + 1), seed)
              .ok());
    }
  }

  std::atomic<bool> stop{false};
  std::thread churn([&cloud, &stop] {
    std::vector<DeviceId> added;
    for (int round = 0; round < 12; ++round) {
      Result<DeviceId> id = cloud.AddStorageNodeDeferred();
      if (id.ok()) added.push_back(*id);
      for (int s = 0; s < 4; ++s) cloud.RunRebalanceStep();
      if (added.size() > 1) {
        (void)cloud.RemoveStorageNode(added.front());
        added.erase(added.begin());
      }
      cloud.ReplayHints();
    }
    stop.store(true);
  });

  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> batch_failures{0};
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&cloud, &stop, &batch_failures, t] {
      OpMeter meter;
      for (std::size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const std::string key = Key((t * 16 + i) % 48);
        // Worker-private scratch key so Delete never races a peer's read.
        const std::string mine =
            "scratch/t" + std::to_string(t) + "-" + std::to_string(i % 8);
        switch (i % 6) {
          case 0:
            (void)cloud.Put(key, ObjectValue::FromString("w", 1), meter);
            break;
          case 1:
            (void)cloud.Get(key, meter);
            break;
          case 2:
            (void)cloud.Head(key, meter);
            break;
          case 3:
            (void)cloud.Copy(key, key + ".cp", meter);
            break;
          case 4:
            (void)cloud.Put(mine, ObjectValue::FromString("m", 1), meter);
            (void)cloud.Delete(mine, meter);
            break;
          default: {
            // Batches race the same publishes; their epoch-pin violation
            // counter is the direct witness that no publish landed
            // mid-wave.
            std::vector<BatchOp> ops;
            ops.push_back(BatchOp::Get(key));
            ops.push_back(BatchOp::Head(Key((t * 16 + i + 1) % 48)));
            auto results = cloud.ExecuteBatch(std::move(ops), meter);
            for (const auto& r : results) {
              if (!r.status.ok() && r.status.code() != ErrorCode::kNotFound) {
                batch_failures.fetch_add(1);
              }
            }
            break;
          }
        }
      }
    });
  }
  churn.join();
  for (auto& w : workers) w.join();

  EXPECT_GT(cloud.membership_epoch(), 1u);
  EXPECT_EQ(cloud.batch_stats().epoch_pin_violations, 0u);
  EXPECT_EQ(batch_failures.load(), 0u);
  // Once the rebalancer and hint queues drain, every seeded key reads
  // back: churn plus concurrent foreground traffic lost nothing.
  DrainAll(cloud);
  OpMeter check;
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_TRUE(cloud.Get(Key(i), check).ok()) << Key(i);
  }
}

TEST(MembershipTest, StaleEpochRumorIsOldNews) {
  H2CloudConfig cfg;
  cfg.cloud = MembershipCloud(0);
  cfg.middleware_count = 2;
  H2Cloud h2(cfg);
  ASSERT_TRUE(h2.AddStorageNode().ok());
  h2.RunMaintenanceToQuiescence();
  const std::uint64_t epoch = h2.cloud().membership_epoch();
  ASSERT_EQ(h2.middleware(1).topology_epoch(), epoch);

  // Replaying an old epoch is suppressed (handler reports no news), so
  // the bus quiesces immediately instead of re-flooding.
  h2.gossip().Publish(0, Rumor{kMembershipRumorTopic, 0, 1});
  h2.RunMaintenanceToQuiescence();
  EXPECT_EQ(h2.middleware(1).topology_epoch(), epoch);
  const H2Counters counters = h2.middleware(1).counters();
  EXPECT_EQ(counters.topology_updates, 1u);
}

}  // namespace
}  // namespace h2
