// Cross-system conformance suite.
//
// Every filesystem in this repository -- H2Cloud and all Table-1
// baselines -- implements the same POSIX-like FileSystem interface; this
// parameterized battery pins down the shared semantics (visibility,
// error codes, move/copy/rename behaviour, deep-tree handling) across all
// of them, so benchmark comparisons compare systems doing the same work.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>

#include "baselines/cas_fs.h"
#include "baselines/ch_fs.h"
#include "baselines/index_fs.h"
#include "baselines/snapshot_fs.h"
#include "baselines/swift_fs.h"
#include "h2/h2cloud.h"

namespace h2 {
namespace {

CloudConfig TestCloudConfig(LatencyProfile profile = LatencyProfile::RackLan()) {
  CloudConfig cfg;
  cfg.part_power = 8;
  cfg.latency = profile;
  return cfg;
}

/// Owns the substrate and the filesystem built on it.
struct Sut {
  virtual ~Sut() = default;
  virtual FileSystem& fs() = 0;
};

template <typename Fs>
struct BaselineSut : Sut {
  template <typename... Args>
  explicit BaselineSut(LatencyProfile profile, Args&&... args)
      : cloud(TestCloudConfig(profile)),
        filesystem(cloud, std::forward<Args>(args)...) {}
  FileSystem& fs() override { return filesystem; }
  ObjectCloud cloud;
  Fs filesystem;
};

struct H2Sut : Sut {
  H2Sut() : cloud(H2CloudConfig{.cloud = TestCloudConfig(), .h2 = {}}) {
    EXPECT_TRUE(cloud.CreateAccount("conformance").ok());
    account = std::move(cloud.OpenFilesystem("conformance")).value();
  }
  FileSystem& fs() override { return *account; }
  H2Cloud cloud;
  std::unique_ptr<H2AccountFs> account;
};

struct SystemParam {
  const char* name;
  std::function<std::unique_ptr<Sut>()> make;
};

std::vector<SystemParam> AllSystems() {
  return {
      {"H2Cloud", [] { return std::make_unique<H2Sut>(); }},
      {"Swift",
       [] {
         return std::make_unique<BaselineSut<SwiftFs>>(
             LatencyProfile::RackLan());
       }},
      {"PlainCH",
       [] {
         return std::make_unique<BaselineSut<ChFs>>(
             LatencyProfile::RackLan());
       }},
      {"Cumulus",
       [] {
         return std::make_unique<BaselineSut<SnapshotFs>>(
             LatencyProfile::RackLan());
       }},
      {"CAS",
       [] {
         return std::make_unique<BaselineSut<CasFs>>(
             LatencyProfile::RackLan());
       }},
      {"SingleIndex",
       [] {
         return std::make_unique<BaselineSut<IndexServerFs>>(
             LatencyProfile::RackLan(), IndexFsOptions::SingleIndex());
       }},
      {"StaticPartition",
       [] {
         return std::make_unique<BaselineSut<IndexServerFs>>(
             LatencyProfile::RackLan(), IndexFsOptions::StaticPartition());
       }},
      {"DP",
       [] {
         return std::make_unique<BaselineSut<IndexServerFs>>(
             LatencyProfile::RackLan(), IndexFsOptions::DynamicPartition());
       }},
      {"DPSharedDisk",
       [] {
         return std::make_unique<BaselineSut<IndexServerFs>>(
             LatencyProfile::RackLan(), IndexFsOptions::DpSharedDisk());
       }},
      {"Dropbox",
       [] {
         return std::make_unique<BaselineSut<IndexServerFs>>(
             LatencyProfile::DropboxWan(), IndexFsOptions::Dropbox());
       }},
  };
}

class ConformanceTest : public ::testing::TestWithParam<SystemParam> {
 protected:
  void SetUp() override { sut_ = GetParam().make(); }
  FileSystem& fs() { return sut_->fs(); }

  std::vector<std::string> ListNames(std::string_view path) {
    auto entries = fs().List(path, ListDetail::kNamesOnly);
    EXPECT_TRUE(entries.ok()) << entries.status().ToString();
    std::vector<std::string> names;
    if (entries.ok()) {
      for (const auto& e : *entries) names.push_back(e.name);
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  std::unique_ptr<Sut> sut_;
};

TEST_P(ConformanceTest, EmptyRootListsEmpty) {
  EXPECT_TRUE(ListNames("/").empty());
  auto info = fs().Stat("/");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->kind, EntryKind::kDirectory);
}

TEST_P(ConformanceTest, WriteReadRoundTrip) {
  ASSERT_TRUE(fs().WriteFile("/f.txt", FileBlob::FromString("hello")).ok());
  auto blob = fs().ReadFile("/f.txt");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->data, "hello");
  EXPECT_EQ(blob->logical_size, 5u);
}

TEST_P(ConformanceTest, OverwriteReplacesContent) {
  ASSERT_TRUE(fs().WriteFile("/f", FileBlob::FromString("v1")).ok());
  ASSERT_TRUE(fs().WriteFile("/f", FileBlob::FromString("longer-v2")).ok());
  EXPECT_EQ(fs().ReadFile("/f")->data, "longer-v2");
  EXPECT_EQ(ListNames("/"), std::vector<std::string>{"f"});
}

TEST_P(ConformanceTest, StatFileMetadata) {
  ASSERT_TRUE(fs().WriteFile("/f", FileBlob::FromString("12345678")).ok());
  auto info = fs().Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->kind, EntryKind::kFile);
  EXPECT_EQ(info->size, 8u);
}

TEST_P(ConformanceTest, StatMissingIsNotFound) {
  EXPECT_EQ(fs().Stat("/nothing").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().ReadFile("/nothing").code(), ErrorCode::kNotFound);
}

TEST_P(ConformanceTest, MkdirAndList) {
  ASSERT_TRUE(fs().Mkdir("/docs").ok());
  ASSERT_TRUE(fs().WriteFile("/docs/a", FileBlob::FromString("a")).ok());
  ASSERT_TRUE(fs().WriteFile("/docs/b", FileBlob::FromString("b")).ok());
  EXPECT_EQ(ListNames("/docs"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(ListNames("/"), std::vector<std::string>{"docs"});
}

TEST_P(ConformanceTest, ListDetailedReportsSizes) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  ASSERT_TRUE(fs().WriteFile("/d/file", FileBlob::FromString("xyz")).ok());
  ASSERT_TRUE(fs().Mkdir("/d/sub").ok());
  auto entries = fs().List("/d", ListDetail::kDetailed);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  for (const auto& e : *entries) {
    if (e.name == "file") {
      EXPECT_EQ(e.kind, EntryKind::kFile);
      EXPECT_EQ(e.size, 3u);
    } else {
      EXPECT_EQ(e.name, "sub");
      EXPECT_EQ(e.kind, EntryKind::kDirectory);
    }
  }
}

TEST_P(ConformanceTest, MkdirExistingFails) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  EXPECT_EQ(fs().Mkdir("/d").code(), ErrorCode::kAlreadyExists);
}

TEST_P(ConformanceTest, MkdirUnderMissingParentFails) {
  EXPECT_EQ(fs().Mkdir("/no/sub").code(), ErrorCode::kNotFound);
}

TEST_P(ConformanceTest, MkdirUnderFileFails) {
  ASSERT_TRUE(fs().WriteFile("/f", FileBlob::FromString("x")).ok());
  EXPECT_EQ(fs().Mkdir("/f/sub").code(), ErrorCode::kNotADirectory);
}

TEST_P(ConformanceTest, WriteIntoMissingDirFails) {
  EXPECT_EQ(fs().WriteFile("/no/f", FileBlob::FromString("x")).code(),
            ErrorCode::kNotFound);
}

TEST_P(ConformanceTest, WriteOverDirectoryFails) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  EXPECT_EQ(fs().WriteFile("/d", FileBlob::FromString("x")).code(),
            ErrorCode::kIsADirectory);
  EXPECT_EQ(fs().ReadFile("/d").code(), ErrorCode::kIsADirectory);
}

TEST_P(ConformanceTest, RemoveFileSemantics) {
  ASSERT_TRUE(fs().WriteFile("/f", FileBlob::FromString("x")).ok());
  ASSERT_TRUE(fs().RemoveFile("/f").ok());
  EXPECT_EQ(fs().Stat("/f").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(ListNames("/").empty());
  EXPECT_EQ(fs().RemoveFile("/f").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  EXPECT_EQ(fs().RemoveFile("/d").code(), ErrorCode::kIsADirectory);
}

TEST_P(ConformanceTest, RmdirRemovesSubtree) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  ASSERT_TRUE(fs().Mkdir("/d/sub").ok());
  ASSERT_TRUE(fs().WriteFile("/d/f", FileBlob::FromString("x")).ok());
  ASSERT_TRUE(fs().WriteFile("/d/sub/g", FileBlob::FromString("y")).ok());
  ASSERT_TRUE(fs().Rmdir("/d").ok());
  EXPECT_EQ(fs().Stat("/d").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().Stat("/d/f").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().Stat("/d/sub/g").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(ListNames("/").empty());
}

TEST_P(ConformanceTest, RmdirErrors) {
  EXPECT_EQ(fs().Rmdir("/").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs().Rmdir("/missing").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs().WriteFile("/f", FileBlob::FromString("x")).ok());
  EXPECT_EQ(fs().Rmdir("/f").code(), ErrorCode::kNotADirectory);
}

TEST_P(ConformanceTest, RecreateAfterRmdir) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  ASSERT_TRUE(fs().WriteFile("/d/f", FileBlob::FromString("old")).ok());
  ASSERT_TRUE(fs().Rmdir("/d").ok());
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  EXPECT_TRUE(ListNames("/d").empty());  // old children must not reappear
  ASSERT_TRUE(fs().WriteFile("/d/f", FileBlob::FromString("new")).ok());
  EXPECT_EQ(fs().ReadFile("/d/f")->data, "new");
}

TEST_P(ConformanceTest, MoveFile) {
  ASSERT_TRUE(fs().Mkdir("/a").ok());
  ASSERT_TRUE(fs().Mkdir("/b").ok());
  ASSERT_TRUE(fs().WriteFile("/a/f", FileBlob::FromString("data")).ok());
  ASSERT_TRUE(fs().Move("/a/f", "/b/g").ok());
  EXPECT_EQ(fs().Stat("/a/f").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().ReadFile("/b/g")->data, "data");
  EXPECT_TRUE(ListNames("/a").empty());
  EXPECT_EQ(ListNames("/b"), std::vector<std::string>{"g"});
}

TEST_P(ConformanceTest, MoveDirectorySubtree) {
  ASSERT_TRUE(fs().Mkdir("/src").ok());
  ASSERT_TRUE(fs().Mkdir("/src/sub").ok());
  ASSERT_TRUE(fs().WriteFile("/src/f", FileBlob::FromString("1")).ok());
  ASSERT_TRUE(fs().WriteFile("/src/sub/g", FileBlob::FromString("2")).ok());
  ASSERT_TRUE(fs().Mkdir("/dst").ok());
  ASSERT_TRUE(fs().Move("/src", "/dst/moved").ok());
  EXPECT_EQ(fs().ReadFile("/dst/moved/f")->data, "1");
  EXPECT_EQ(fs().ReadFile("/dst/moved/sub/g")->data, "2");
  EXPECT_EQ(fs().Stat("/src").code(), ErrorCode::kNotFound);
}

TEST_P(ConformanceTest, MoveErrors) {
  ASSERT_TRUE(fs().Mkdir("/a").ok());
  ASSERT_TRUE(fs().Mkdir("/b").ok());
  EXPECT_EQ(fs().Move("/a", "/a/in").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs().Move("/", "/b/r").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs().Move("/missing", "/b/x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().Move("/a", "/b").code(), ErrorCode::kAlreadyExists);
  EXPECT_TRUE(fs().Move("/a", "/a").ok());
}

TEST_P(ConformanceTest, RenameFile) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  ASSERT_TRUE(fs().WriteFile("/d/old", FileBlob::FromString("v")).ok());
  ASSERT_TRUE(fs().Rename("/d/old", "new").ok());
  EXPECT_EQ(fs().ReadFile("/d/new")->data, "v");
  EXPECT_EQ(fs().Stat("/d/old").code(), ErrorCode::kNotFound);
}

TEST_P(ConformanceTest, CopyFile) {
  ASSERT_TRUE(fs().WriteFile("/f", FileBlob::FromString("orig")).ok());
  ASSERT_TRUE(fs().Copy("/f", "/g").ok());
  EXPECT_EQ(fs().ReadFile("/f")->data, "orig");
  EXPECT_EQ(fs().ReadFile("/g")->data, "orig");
  // Deep copy: overwriting the copy leaves the source alone.
  ASSERT_TRUE(fs().WriteFile("/g", FileBlob::FromString("changed")).ok());
  EXPECT_EQ(fs().ReadFile("/f")->data, "orig");
}

TEST_P(ConformanceTest, CopyDirectorySubtree) {
  ASSERT_TRUE(fs().Mkdir("/src").ok());
  ASSERT_TRUE(fs().Mkdir("/src/sub").ok());
  ASSERT_TRUE(fs().WriteFile("/src/a", FileBlob::FromString("A")).ok());
  ASSERT_TRUE(fs().WriteFile("/src/sub/b", FileBlob::FromString("B")).ok());
  ASSERT_TRUE(fs().Copy("/src", "/copy").ok());
  EXPECT_EQ(fs().ReadFile("/copy/a")->data, "A");
  EXPECT_EQ(fs().ReadFile("/copy/sub/b")->data, "B");
  EXPECT_EQ(fs().ReadFile("/src/a")->data, "A");
  EXPECT_EQ(fs().Copy("/src", "/copy").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fs().Copy("/src", "/src/in").code(),
            ErrorCode::kInvalidArgument);
}

TEST_P(ConformanceTest, DeepTreeOperations) {
  std::string path;
  for (int i = 0; i < 8; ++i) {
    path += "/level" + std::to_string(i);
    ASSERT_TRUE(fs().Mkdir(path).ok()) << path;
  }
  const std::string file = path + "/deep.txt";
  ASSERT_TRUE(fs().WriteFile(file, FileBlob::FromString("deep")).ok());
  EXPECT_EQ(fs().ReadFile(file)->data, "deep");
  auto info = fs().Stat(file);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 4u);
}

TEST_P(ConformanceTest, ManyFilesInOneDirectory) {
  ASSERT_TRUE(fs().Mkdir("/big").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs().WriteFile("/big/f" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
  }
  EXPECT_EQ(ListNames("/big").size(), 64u);
  auto entries = fs().List("/big", ListDetail::kDetailed);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 64u);
}

TEST_P(ConformanceTest, SpecialCharacterNames) {
  ASSERT_TRUE(fs().Mkdir("/dir with spaces").ok());
  const std::string weird = "/dir with spaces/na|me%25\tfile";
  ASSERT_TRUE(fs().WriteFile(weird, FileBlob::FromString("w")).ok());
  EXPECT_EQ(fs().ReadFile(weird)->data, "w");
  EXPECT_EQ(ListNames("/dir with spaces").size(), 1u);
}

TEST_P(ConformanceTest, InvalidPathsRejected) {
  EXPECT_EQ(fs().Stat("relative").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs().Mkdir("/x/../y").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs().WriteFile("", FileBlob::FromString("x")).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs().WriteFile("/", FileBlob::FromString("x")).code(),
            ErrorCode::kIsADirectory);
}

TEST_P(ConformanceTest, ListFileFails) {
  ASSERT_TRUE(fs().WriteFile("/f", FileBlob::FromString("x")).ok());
  EXPECT_EQ(fs().List("/f", ListDetail::kNamesOnly).code(),
            ErrorCode::kNotADirectory);
  EXPECT_EQ(fs().List("/missing", ListDetail::kNamesOnly).code(),
            ErrorCode::kNotFound);
}

TEST_P(ConformanceTest, SyntheticLargeFileKeepsDeclaredSize) {
  ASSERT_TRUE(fs().WriteFile("/video.mp4",
                             FileBlob::Synthetic("sample", 1ULL << 30))
                  .ok());
  auto info = fs().Stat("/video.mp4");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 1ULL << 30);
}

TEST_P(ConformanceTest, EveryOperationIsMetered) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  EXPECT_GT(fs().last_op().elapsed, 0);
  ASSERT_TRUE(fs().WriteFile("/d/f", FileBlob::FromString("x")).ok());
  EXPECT_GT(fs().last_op().elapsed, 0);
  ASSERT_TRUE(fs().Stat("/d/f").ok());
  EXPECT_GT(fs().last_op().elapsed, 0);
  ASSERT_TRUE(fs().List("/d", ListDetail::kDetailed).ok());
  EXPECT_GT(fs().last_op().elapsed, 0);
}


TEST_P(ConformanceTest, MoveThenCopyChain) {
  ASSERT_TRUE(fs().Mkdir("/a").ok());
  ASSERT_TRUE(fs().WriteFile("/a/f", FileBlob::FromString("v1")).ok());
  ASSERT_TRUE(fs().Move("/a", "/b").ok());
  ASSERT_TRUE(fs().Copy("/b", "/c").ok());
  ASSERT_TRUE(fs().Move("/c/f", "/b/g").ok());
  EXPECT_EQ(fs().ReadFile("/b/f")->data, "v1");
  EXPECT_EQ(fs().ReadFile("/b/g")->data, "v1");
  EXPECT_TRUE(ListNames("/c").empty());
  EXPECT_EQ(ListNames("/b"), (std::vector<std::string>{"f", "g"}));
}

TEST_P(ConformanceTest, RepeatedRenamesKeepOneEntry) {
  ASSERT_TRUE(fs().WriteFile("/f0", FileBlob::FromString("x")).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fs().Rename("/f" + std::to_string(i),
                            "f" + std::to_string(i + 1))
                    .ok());
  }
  EXPECT_EQ(ListNames("/"), std::vector<std::string>{"f6"});
  EXPECT_EQ(fs().ReadFile("/f6")->data, "x");
}

TEST_P(ConformanceTest, MoveDirectoryThenWriteIntoIt) {
  ASSERT_TRUE(fs().Mkdir("/old").ok());
  ASSERT_TRUE(fs().WriteFile("/old/a", FileBlob::FromString("1")).ok());
  ASSERT_TRUE(fs().Move("/old", "/new").ok());
  ASSERT_TRUE(fs().WriteFile("/new/b", FileBlob::FromString("2")).ok());
  EXPECT_EQ(ListNames("/new"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(fs().WriteFile("/old/c", FileBlob::FromString("3")).code(),
            ErrorCode::kNotFound);
}

TEST_P(ConformanceTest, CopyIntoMovedDirectory) {
  ASSERT_TRUE(fs().Mkdir("/src").ok());
  ASSERT_TRUE(fs().WriteFile("/src/f", FileBlob::FromString("v")).ok());
  ASSERT_TRUE(fs().Mkdir("/parent").ok());
  ASSERT_TRUE(fs().Move("/parent", "/renamed").ok());
  ASSERT_TRUE(fs().Copy("/src", "/renamed/copy").ok());
  EXPECT_EQ(fs().ReadFile("/renamed/copy/f")->data, "v");
}

TEST_P(ConformanceTest, EmptyFileRoundTrip) {
  ASSERT_TRUE(fs().WriteFile("/empty", FileBlob::FromString("")).ok());
  auto blob = fs().ReadFile("/empty");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->data, "");
  EXPECT_EQ(blob->logical_size, 0u);
  auto info = fs().Stat("/empty");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 0u);
}

TEST_P(ConformanceTest, DeleteRecreateDelete) {
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(fs().WriteFile("/cycle",
                               FileBlob::FromString("r" +
                                                    std::to_string(round)))
                    .ok());
    EXPECT_EQ(fs().ReadFile("/cycle")->data, "r" + std::to_string(round));
    ASSERT_TRUE(fs().RemoveFile("/cycle").ok());
    EXPECT_EQ(fs().Stat("/cycle").code(), ErrorCode::kNotFound);
  }
  EXPECT_TRUE(ListNames("/").empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ConformanceTest, ::testing::ValuesIn(AllSystems()),
    [](const ::testing::TestParamInfo<SystemParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace h2
