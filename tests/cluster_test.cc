#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cluster/object_cloud.h"

namespace h2 {
namespace {

CloudConfig SmallCloud() {
  CloudConfig cfg;
  cfg.node_count = 8;
  cfg.replica_count = 3;
  cfg.part_power = 8;
  return cfg;
}

TEST(OpMeterTest, ChargesAccumulate) {
  OpMeter m;
  m.Charge(FromMillis(5));
  m.Charge(FromMillis(3));
  EXPECT_DOUBLE_EQ(m.cost().elapsed_ms(), 8.0);
  m.Reset();
  EXPECT_EQ(m.cost().elapsed, 0);
}

TEST(OpMeterTest, CriticalPathPricesWavesAtMax) {
  OpMeter m;
  // 100 uniform 1 ms lanes on distinct queues, width 10: 10 waves of 1 ms.
  std::vector<OpMeter::BatchLane> lanes;
  for (std::uint32_t i = 0; i < 100; ++i) {
    lanes.push_back({FromMillis(1), i});
  }
  m.ChargeCriticalPath(lanes, 10);
  EXPECT_DOUBLE_EQ(m.cost().elapsed_ms(), 10.0);
  EXPECT_EQ(m.cost().batches, 1u);
  EXPECT_EQ(m.cost().batched_ops, 100u);
  EXPECT_EQ(m.cost().batch_serial_cost, FromMillis(100));
  EXPECT_EQ(m.cost().batch_critical_cost, FromMillis(10));
  m.Reset();
  lanes.push_back({FromMillis(1), 200});  // 101 lanes -> 11 waves
  m.ChargeCriticalPath(lanes, 10);
  EXPECT_DOUBLE_EQ(m.cost().elapsed_ms(), 11.0);
  m.Reset();
  m.ChargeCriticalPath({}, 10);
  EXPECT_EQ(m.cost().elapsed, 0);
  EXPECT_EQ(m.cost().batches, 0u);
}

TEST(OpMeterTest, CriticalPathBoundedBySlowestLane) {
  // A wave of one large GET plus many cheap HEADs is priced at the GET,
  // not at sum/width (heterogeneous lanes do not speed each other up).
  OpMeter m;
  std::vector<OpMeter::BatchLane> lanes;
  lanes.push_back({FromMillis(28), 0});  // the big transfer
  for (std::uint32_t i = 1; i <= 10; ++i) {
    lanes.push_back({FromMillis(10), i});
  }
  m.ChargeCriticalPath(lanes, 11);  // one wave
  // Critical path = max lane = 28 ms.  Sum/width would be ~11.6 ms.
  EXPECT_DOUBLE_EQ(m.cost().elapsed_ms(), 28.0);
}

TEST(OpMeterTest, CriticalPathSerializesSharedQueues) {
  OpMeter m;
  // Four 2 ms lanes all behind the same device, 0.5 ms queueing: the
  // wave costs 2 + 3 * 0.5 = 3.5 ms.
  std::vector<OpMeter::BatchLane> lanes(4,
                                        OpMeter::BatchLane{FromMillis(2), 7});
  m.ChargeCriticalPath(lanes, 4, FromMillis(0.5));
  EXPECT_DOUBLE_EQ(m.cost().elapsed_ms(), 3.5);
  m.Reset();
  // Same lanes on distinct queues: pure max, 2 ms.
  for (std::uint32_t i = 0; i < 4; ++i) lanes[i].queue = i;
  m.ChargeCriticalPath(lanes, 4, FromMillis(0.5));
  EXPECT_DOUBLE_EQ(m.cost().elapsed_ms(), 2.0);
  m.Reset();
  // kNoQueue lanes never pay queueing even at one shared sentinel value.
  for (auto& lane : lanes) lane.queue = OpMeter::kNoQueue;
  m.ChargeCriticalPath(lanes, 4, FromMillis(0.5));
  EXPECT_DOUBLE_EQ(m.cost().elapsed_ms(), 2.0);
}

TEST(OpMeterTest, CriticalPathWidthOneIsSerialSum) {
  OpMeter m;
  std::vector<OpMeter::BatchLane> lanes;
  lanes.push_back({FromMillis(3), 1});
  lanes.push_back({FromMillis(5), 1});
  lanes.push_back({FromMillis(2), 1});
  m.ChargeCriticalPath(lanes, 1, FromMillis(0.5));
  // One lane per wave: no queueing surcharge, exact serial sum.
  EXPECT_DOUBLE_EQ(m.cost().elapsed_ms(), 10.0);
  EXPECT_EQ(m.cost().batch_serial_cost, m.cost().batch_critical_cost);
}

TEST(OpMeterTest, CostAddition) {
  OpCost a, b;
  a.elapsed = FromMillis(1);
  a.gets = 2;
  b.elapsed = FromMillis(2);
  b.puts = 3;
  a += b;
  EXPECT_EQ(a.elapsed, FromMillis(3));
  EXPECT_EQ(a.gets, 2u);
  EXPECT_EQ(a.puts, 3u);
  EXPECT_EQ(a.object_primitives(), 5u);
}

TEST(StorageNodeTest, PutGetDelete) {
  StorageNode node(0, "n0", 1);
  ASSERT_TRUE(node.Put("k", ObjectValue::FromString("v", 10)).ok());
  auto got = node.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "v");
  EXPECT_TRUE(node.Contains("k"));
  ASSERT_TRUE(node.Delete("k").ok());
  EXPECT_EQ(node.Get("k").code(), ErrorCode::kNotFound);
  EXPECT_EQ(node.Delete("k").code(), ErrorCode::kNotFound);
}

TEST(StorageNodeTest, OverwritePreservesCreation) {
  StorageNode node(0, "n0", 1);
  ASSERT_TRUE(node.Put("k", ObjectValue::FromString("v1", 10)).ok());
  ObjectValue v2 = ObjectValue::FromString("v2", 20);
  v2.created = 0;
  ASSERT_TRUE(node.Put("k", v2).ok());
  auto got = node.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "v2");
  EXPECT_EQ(got->created, 10);
}

TEST(StorageNodeTest, DownNodeFailsEverything) {
  StorageNode node(0, "n0", 1);
  ASSERT_TRUE(node.Put("k", ObjectValue::FromString("v", 1)).ok());
  node.SetDown(true);
  EXPECT_EQ(node.Get("k").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(node.Put("x", {}).code(), ErrorCode::kUnavailable);
  node.SetDown(false);
  EXPECT_TRUE(node.Get("k").ok());
}

TEST(StorageNodeTest, ErrorRateInjectsFaults) {
  StorageNode node(0, "n0", 99);
  ASSERT_TRUE(node.Put("k", ObjectValue::FromString("v", 1)).ok());
  node.SetErrorRate(0.5);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!node.Get("k").ok()) ++failures;
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
}

TEST(ObjectCloudTest, PutGetRoundTrip) {
  ObjectCloud cloud(SmallCloud());
  OpMeter m;
  ASSERT_TRUE(
      cloud.Put("key1", ObjectValue::FromString("hello", 0), m).ok());
  auto got = cloud.Get("key1", m);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "hello");
  EXPECT_EQ(got->logical_size, 5u);
}

TEST(ObjectCloudTest, GetChargesCalibratedLatency) {
  ObjectCloud cloud(SmallCloud());
  OpMeter m;
  ASSERT_TRUE(cloud.Put("key1", ObjectValue::FromString("x", 0), m).ok());
  m.Reset();
  ASSERT_TRUE(cloud.Get("key1", m).ok());
  // DESIGN.md §5: a proxied small-object GET is ~10 ms (+-jitter).
  EXPECT_GT(m.cost().elapsed_ms(), 8.0);
  EXPECT_LT(m.cost().elapsed_ms(), 12.5);
  EXPECT_EQ(m.cost().gets, 1u);
}

TEST(ObjectCloudTest, ReplicatedOnReplicaCountNodes) {
  ObjectCloud cloud(SmallCloud());
  OpMeter m;
  ASSERT_TRUE(cloud.Put("k", ObjectValue::FromString("v", 0), m).ok());
  int holders = 0;
  for (std::size_t i = 0; i < cloud.node_count(); ++i) {
    if (cloud.node(i).Contains("k")) ++holders;
  }
  EXPECT_EQ(holders, 3);
  EXPECT_EQ(cloud.LogicalObjectCount(), 1u);
  EXPECT_EQ(cloud.RawObjectCount(), 3u);
}

TEST(ObjectCloudTest, SurvivesOneNodeDown) {
  ObjectCloud cloud(SmallCloud());
  OpMeter m;
  ASSERT_TRUE(cloud.Put("k", ObjectValue::FromString("v", 0), m).ok());
  // Take down the primary replica; reads must fall through.
  cloud.node(0).SetDown(true);
  cloud.node(1).SetDown(true);  // maybe not replicas of "k", but legal
  auto got = cloud.Get("k", m);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  cloud.node(0).SetDown(false);
  cloud.node(1).SetDown(false);
}

TEST(ObjectCloudTest, QuorumWriteFailsWhenMajorityDown) {
  CloudConfig cfg = SmallCloud();
  cfg.node_count = 3;  // all nodes are replicas of everything
  ObjectCloud cloud(cfg);
  cloud.node(0).SetDown(true);
  cloud.node(1).SetDown(true);
  OpMeter m;
  EXPECT_EQ(cloud.Put("k", ObjectValue::FromString("v", 0), m).code(),
            ErrorCode::kUnavailable);
}

TEST(ObjectCloudTest, DeleteRemovesAllReplicas) {
  ObjectCloud cloud(SmallCloud());
  OpMeter m;
  ASSERT_TRUE(cloud.Put("k", ObjectValue::FromString("v", 0), m).ok());
  ASSERT_TRUE(cloud.Delete("k", m).ok());
  EXPECT_EQ(cloud.RawObjectCount(), 0u);
  EXPECT_EQ(cloud.Delete("k", m).code(), ErrorCode::kNotFound);
}

TEST(ObjectCloudTest, HeadReturnsMetadataOnly) {
  ObjectCloud cloud(SmallCloud());
  OpMeter m;
  ObjectValue v = ObjectValue::FromString("payload", 0);
  v.metadata["kind"] = "file";
  ASSERT_TRUE(cloud.Put("k", std::move(v), m).ok());
  auto head = cloud.Head("k", m);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->logical_size, 7u);
  EXPECT_EQ(head->metadata.at("kind"), "file");
}

TEST(ObjectCloudTest, CopyIsServerSide) {
  ObjectCloud cloud(SmallCloud());
  OpMeter m;
  ASSERT_TRUE(cloud.Put("src", ObjectValue::FromString("data", 0), m).ok());
  m.Reset();
  ASSERT_TRUE(cloud.Copy("src", "dst", m).ok());
  EXPECT_EQ(m.cost().copies, 1u);
  EXPECT_EQ(m.cost().gets, 0u);
  auto got = cloud.Get("dst", m);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "data");
  EXPECT_EQ(cloud.Copy("absent", "x", m).code(), ErrorCode::kNotFound);
}

TEST(ObjectCloudTest, LogicalSizeDrivesByteCosts) {
  ObjectCloud cloud(SmallCloud());
  OpMeter small_meter, large_meter;
  ASSERT_TRUE(cloud
                  .Put("small", ObjectValue::FromString("x", 0), small_meter)
                  .ok());
  // A "1 GiB video" with a tiny sample payload.
  ObjectValue video;
  video.payload = "sample";
  video.logical_size = 1ULL << 30;
  ASSERT_TRUE(cloud.Put("video", std::move(video), large_meter).ok());
  EXPECT_GT(large_meter.cost().elapsed, 100 * small_meter.cost().elapsed);
}

TEST(ObjectCloudTest, ScanVisitsEachLogicalObjectOnce) {
  ObjectCloud cloud(SmallCloud());
  OpMeter m;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), m)
                    .ok());
  }
  std::set<std::string> seen;
  m.Reset();
  cloud.Scan(
      [&](const std::string& key, const ObjectValue&) {
        EXPECT_TRUE(seen.insert(key).second) << "duplicate " << key;
      },
      m);
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(m.cost().scanned_objects, 300u);  // replicas scanned
}

TEST(ObjectCloudTest, LoadIsBalancedAcrossNodes) {
  ObjectCloud cloud(SmallCloud());
  OpMeter m;
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(cloud
                    .Put("obj" + std::to_string(i),
                         ObjectValue::FromString("v", 0), m)
                    .ok());
  }
  const auto counts = cloud.NodeObjectCounts();
  const double expected = 4000.0 * 3 / 8;
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.25);
  }
}

TEST(ObjectCloudTest, ClockAdvancesWithActivity) {
  ObjectCloud cloud(SmallCloud());
  const VirtualNanos before = cloud.clock().Now();
  OpMeter m;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        cloud.Put("k" + std::to_string(i), ObjectValue::FromString("v", 0), m)
            .ok());
  }
  // ~50 PUTs at ~12 ms each: virtual time moved by hundreds of ms.
  EXPECT_GT(cloud.clock().Now() - before, FromMillis(300));
}

TEST(LatencyModelTest, JitterStaysBounded) {
  LatencyModel model(LatencyProfile::RackLan(), 7);
  const VirtualNanos base = FromMillis(10);
  for (int i = 0; i < 1000; ++i) {
    const VirtualNanos v = model.Jitter(base);
    EXPECT_GE(v, FromMillis(9.2) - 1000);
    EXPECT_LE(v, FromMillis(10.8) + 1000);
  }
}

TEST(LatencyModelTest, WanRttMatchesPaperRange) {
  LatencyModel model(LatencyProfile::DropboxWan(), 11);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const VirtualNanos rtt = model.SampleWanRtt();
    EXPECT_GE(rtt, FromMillis(24));   // paper §5.3: 24-83 ms
    EXPECT_LE(rtt, FromMillis(83));
    sum += ToMillis(rtt);
  }
  EXPECT_NEAR(sum / 2000, 58.0, 4.0);  // mean 58 ms
}

}  // namespace
}  // namespace h2
