#include <gtest/gtest.h>

#include "h2/monitor.h"

namespace h2 {
namespace {

TEST(MonitorTest, SnapshotReflectsActivity) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.cloud.node_count = 9;
  cfg.cloud.zone_count = 3;
  cfg.middleware_count = 2;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("mon").ok());
  auto fs = std::move(cloud.OpenFilesystem("mon")).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs->WriteFile("/d/f" + std::to_string(i),
                              FileBlob::FromString("x"))
                    .ok());
  }

  MonitorSnapshot before = CollectSnapshot(cloud);
  EXPECT_EQ(before.middlewares.size(), 2u);
  EXPECT_EQ(before.nodes.size(), 9u);
  EXPECT_EQ(before.ring_zones, 3u);
  EXPECT_GT(before.TotalPatchesSubmitted(), 10u);
  EXPECT_FALSE(before.FullyConverged());  // patches still pending

  cloud.RunMaintenanceToQuiescence();
  MonitorSnapshot after = CollectSnapshot(cloud);
  EXPECT_TRUE(after.FullyConverged());
  EXPECT_EQ(after.TotalPatchesMerged(), after.TotalPatchesSubmitted());
  EXPECT_GT(after.logical_objects, 12u);
  EXPECT_EQ(after.raw_objects, 3 * after.logical_objects);
  EXPECT_GT(after.LoadImbalance(), 0.99);
  EXPECT_LT(after.LoadImbalance(), 3.0);
}

TEST(MonitorTest, TextReportContainsSections) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("mon").ok());
  auto fs = std::move(cloud.OpenFilesystem("mon")).value();
  ASSERT_TRUE(fs->Mkdir("/x").ok());
  cloud.RunMaintenanceToQuiescence();

  const std::string report = CollectSnapshot(cloud).ToText();
  EXPECT_NE(report.find("== H2Cloud monitor =="), std::string::npos);
  EXPECT_NE(report.find("-- middlewares --"), std::string::npos);
  EXPECT_NE(report.find("-- storage nodes --"), std::string::npos);
  EXPECT_NE(report.find("-- gossip --"), std::string::npos);
  EXPECT_NE(report.find("node-0"), std::string::npos);
  EXPECT_NE(report.find("idle"), std::string::npos);
}

TEST(MonitorTest, BatchStatsSectionReflectsBatchedIo) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("mon").ok());
  auto fs = std::move(cloud.OpenFilesystem("mon")).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs->WriteFile("/d/f" + std::to_string(i),
                              FileBlob::FromString("x"))
                    .ok());
  }
  cloud.RunMaintenanceToQuiescence();
  // A detailed LIST fans per-child HEADs through ExecuteBatch.
  ASSERT_TRUE(fs->List("/d", ListDetail::kDetailed).ok());

  const MonitorSnapshot snapshot = CollectSnapshot(cloud);
  EXPECT_GT(snapshot.batch.batches, 0u);
  EXPECT_GE(snapshot.batch.batched_ops, 20u);
  EXPECT_GE(snapshot.batch.mean_width(), 1.0);
  EXPECT_LE(snapshot.batch.critical_cost, snapshot.batch.serial_cost);
  EXPECT_GE(snapshot.batch.savings(), 0.0);
  EXPECT_LE(snapshot.batch.savings(), 1.0);

  const std::string report = snapshot.ToText();
  EXPECT_NE(report.find("-- batched I/O --"), std::string::npos);
  EXPECT_NE(report.find("critical path"), std::string::npos);
}

TEST(MonitorTest, DownNodeIsFlagged) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  cloud.cloud().node(2).SetDown(true);
  const MonitorSnapshot snapshot = CollectSnapshot(cloud);
  EXPECT_TRUE(snapshot.nodes[2].down);
  EXPECT_NE(snapshot.ToText().find("[DOWN]"), std::string::npos);
}

TEST(MonitorTest, EmptySnapshotDegradesSafely) {
  MonitorSnapshot snapshot;
  EXPECT_TRUE(snapshot.FullyConverged());
  EXPECT_DOUBLE_EQ(snapshot.LoadImbalance(), 1.0);
  EXPECT_FALSE(snapshot.ToText().empty());
}

}  // namespace
}  // namespace h2
