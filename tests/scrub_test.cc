// Orphan scrubber tests: unreachable namespaces (crash garbage) are
// reclaimed; everything reachable is untouched.
#include <gtest/gtest.h>

#include "h2/h2cloud.h"
#include "h2/keys.h"
#include "h2/scrub.h"

namespace h2 {
namespace {

struct Box {
  Box() {
    H2CloudConfig cfg;
    cfg.cloud.part_power = 8;
    cloud = std::make_unique<H2Cloud>(cfg);
    EXPECT_TRUE(cloud->CreateAccount("u").ok());
    fs = std::move(cloud->OpenFilesystem("u")).value();
  }
  std::unique_ptr<H2Cloud> cloud;
  std::unique_ptr<H2AccountFs> fs;
};

TEST(ScrubTest, CleanSystemLosesNothing) {
  Box box;
  ASSERT_TRUE(box.fs->Mkdir("/a").ok());
  ASSERT_TRUE(box.fs->Mkdir("/a/b").ok());
  ASSERT_TRUE(box.fs->WriteFile("/a/b/f", FileBlob::FromString("v")).ok());
  box.cloud->RunMaintenanceToQuiescence();

  const std::uint64_t before = box.cloud->cloud().LogicalObjectCount();
  const ScrubReport report = ScrubOrphans(box.cloud->cloud());
  EXPECT_EQ(report.namespaces_unreachable, 0u);
  EXPECT_EQ(report.objects_deleted, 0u);
  EXPECT_EQ(box.cloud->cloud().LogicalObjectCount(), before);
  EXPECT_EQ(box.fs->ReadFile("/a/b/f")->data, "v");
}

TEST(ScrubTest, ReclaimsCrashedCopyOrphans) {
  Box box;
  ASSERT_TRUE(box.fs->Mkdir("/src").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(box.fs->WriteFile("/src/f" + std::to_string(i),
                                  FileBlob::FromString("x"))
                    .ok());
  }
  box.cloud->RunMaintenanceToQuiescence();

  // Simulate a COPY that crashed mid-subtree: a freshly minted namespace
  // holding copied children + a NameRing, but no directory record
  // anywhere pointing at it.
  ObjectCloud& oc = box.cloud->cloud();
  OpMeter meter;
  const NamespaceId orphan{99, 7, 1469346604999LL};
  for (int i = 0; i < 5; ++i) {
    ObjectValue v = ObjectValue::FromString("copied", oc.clock().Tick());
    v.metadata["kind"] = "file";
    ASSERT_TRUE(
        oc.Put(ChildKey(orphan, "f" + std::to_string(i)), std::move(v),
               meter)
            .ok());
  }
  ObjectValue ring = ObjectValue::FromString("", oc.clock().Tick());
  ring.metadata["kind"] = "ring";
  ASSERT_TRUE(oc.Put(NameRingKey(orphan), std::move(ring), meter).ok());

  const ScrubReport report = ScrubOrphans(oc);
  EXPECT_EQ(report.namespaces_unreachable, 1u);
  EXPECT_EQ(report.objects_deleted, 6u);
  EXPECT_FALSE(oc.Exists(NameRingKey(orphan), meter));

  // The live filesystem is intact.
  auto entries = box.fs->List("/src", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 8u);
}

TEST(ScrubTest, ReclaimsLeftoverRmdirSubtree) {
  Box box;
  ASSERT_TRUE(box.fs->Mkdir("/doomed").ok());
  ASSERT_TRUE(box.fs->Mkdir("/doomed/deep").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(box.fs->WriteFile("/doomed/deep/f" + std::to_string(i),
                                  FileBlob::FromString("x"))
                    .ok());
  }
  box.cloud->RunMaintenanceToQuiescence();
  const std::uint64_t before = box.cloud->cloud().LogicalObjectCount();

  // RMDIR, but "crash" before any lazy cleanup runs: the subtree's
  // objects are unreachable garbage.
  ASSERT_TRUE(box.fs->Rmdir("/doomed").ok());
  box.cloud->middleware(0).MergePending();  // merge, skip cleanup

  const ScrubReport report = ScrubOrphans(box.cloud->cloud());
  EXPECT_GE(report.namespaces_unreachable, 2u);  // /doomed and /doomed/deep
  EXPECT_GE(report.objects_deleted, 8u);         // 6 files + ring(s)
  EXPECT_LT(box.cloud->cloud().LogicalObjectCount(), before);
  // Idempotent.
  EXPECT_EQ(ScrubOrphans(box.cloud->cloud()).objects_deleted, 0u);
}

TEST(ScrubTest, MultipleAccountsAllProtected) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  for (const char* user : {"alice", "bob", "carol"}) {
    ASSERT_TRUE(cloud.CreateAccount(user).ok());
    auto fs = std::move(cloud.OpenFilesystem(user)).value();
    ASSERT_TRUE(fs->Mkdir("/home").ok());
    ASSERT_TRUE(
        fs->WriteFile("/home/f", FileBlob::FromString(user)).ok());
  }
  cloud.RunMaintenanceToQuiescence();
  const ScrubReport report = ScrubOrphans(cloud.cloud());
  EXPECT_EQ(report.objects_deleted, 0u);
  for (const char* user : {"alice", "bob", "carol"}) {
    auto fs = std::move(cloud.OpenFilesystem(user)).value();
    EXPECT_EQ(fs->ReadFile("/home/f")->data, user);
  }
}

}  // namespace
}  // namespace h2
