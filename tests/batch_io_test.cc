// ObjectCloud::ExecuteBatch: positional results, critical-path pricing,
// per-node queue serialization, and the determinism contract -- the same
// workload at any io_concurrency must produce identical per-op results and
// a bit-identical final cloud state, with elapsed time monotone
// non-increasing over a doubling width sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cluster/object_cloud.h"

namespace h2 {
namespace {

CloudConfig SmallCloud(std::uint64_t io_concurrency = 0) {
  CloudConfig cfg;
  cfg.node_count = 8;
  cfg.replica_count = 3;
  cfg.part_power = 8;
  cfg.io_concurrency = io_concurrency;
  return cfg;
}

std::string Key(std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "acct/k%04zu", i);
  return buf;
}

TEST(ExecuteBatchTest, PositionalResultsMatchOpOrder) {
  ObjectCloud cloud(SmallCloud());
  OpMeter meter;
  ASSERT_TRUE(
      cloud.Put("a", ObjectValue::FromString("alpha", 1), meter).ok());

  std::vector<BatchOp> ops;
  ops.push_back(BatchOp::Get("a"));
  ops.push_back(BatchOp::Get("missing"));
  ops.push_back(BatchOp::Head("a"));
  ops.push_back(BatchOp::Copy("a", "b"));
  ops.push_back(BatchOp::Put("c", ObjectValue::FromString("gamma", 2)));
  ops.push_back(BatchOp::Delete("a"));
  auto results = cloud.ExecuteBatch(std::move(ops), meter);

  ASSERT_EQ(results.size(), 6u);
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[0].value.has_value());
  EXPECT_EQ(results[0].value->payload, "alpha");
  EXPECT_EQ(results[1].status.code(), ErrorCode::kNotFound);
  EXPECT_FALSE(results[1].value.has_value());
  ASSERT_TRUE(results[2].ok());
  ASSERT_TRUE(results[2].head.has_value());
  EXPECT_EQ(results[2].head->logical_size, 5u);
  EXPECT_TRUE(results[3].ok());
  EXPECT_TRUE(results[4].ok());
  EXPECT_TRUE(results[5].ok());

  // The batch really executed: the copy landed, the delete took.
  EXPECT_TRUE(cloud.Get("b", meter).ok());
  EXPECT_EQ(cloud.Get("a", meter).code(), ErrorCode::kNotFound);
}

TEST(ExecuteBatchTest, CountersFlowToMeterAndCloudStats) {
  ObjectCloud cloud(SmallCloud(8));
  OpMeter meter;
  std::vector<BatchOp> ops;
  for (std::size_t i = 0; i < 16; ++i) {
    ops.push_back(BatchOp::Put(Key(i), ObjectValue::FromString("x", i)));
  }
  const std::vector<BatchResult> results =
      cloud.ExecuteBatch(std::move(ops), meter);
  EXPECT_EQ(results.size(), 16u);

  const OpCost& c = meter.cost();
  EXPECT_EQ(c.batches, 1u);
  EXPECT_EQ(c.batched_ops, 16u);
  EXPECT_GT(c.batch_serial_cost, 0);
  EXPECT_GT(c.batch_critical_cost, 0);
  EXPECT_LE(c.batch_critical_cost, c.batch_serial_cost);
  EXPECT_EQ(c.elapsed, c.batch_critical_cost);
  EXPECT_GE(c.batch_savings(), 0.0);
  EXPECT_LE(c.batch_savings(), 1.0);
  EXPECT_DOUBLE_EQ(c.mean_batch_width(), 16.0);

  const ObjectCloud::BatchStats stats = cloud.batch_stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_ops, 16u);
  EXPECT_EQ(stats.serial_cost, c.batch_serial_cost);
  EXPECT_EQ(stats.critical_cost, c.batch_critical_cost);
}

// One fat lane (1 MiB GET) plus ten thin ones (HEADs) in a single wave:
// the wave must be priced at its critical path (~ the fat GET), not at
// sum-of-lanes (serial) and not at sum/width (perfect-speedup fiction).
TEST(ExecuteBatchTest, MixedWavePricedAtCriticalPath) {
  auto run_width = [](std::uint64_t w) {
    ObjectCloud cloud(SmallCloud(w));
    OpMeter setup;
    ObjectValue big = ObjectValue::FromString("B", 1);
    big.logical_size = 1024 * 1024;
    EXPECT_TRUE(cloud.Put("fat", big, setup).ok());
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_TRUE(
          cloud.Put(Key(i), ObjectValue::FromString("t", 2 + i), setup).ok());
    }
    std::vector<BatchOp> ops;
    ops.push_back(BatchOp::Get("fat"));
    for (std::size_t i = 0; i < 10; ++i) ops.push_back(BatchOp::Head(Key(i)));
    OpMeter meter;
    (void)cloud.ExecuteBatch(std::move(ops), meter);
    return meter.cost().elapsed;
  };

  const VirtualNanos serial = run_width(1);
  const VirtualNanos wave = run_width(11);
  ASSERT_GT(serial, 0);
  ASSERT_GT(wave, 0);
  const double ratio =
      static_cast<double>(wave) / static_cast<double>(serial);
  // Fat GET ~ 10 ms seek + 1 MiB transfer; each HEAD ~ 10 ms.  Serial sum
  // ~ 121 ms, critical path ~ the fat lane (~31 ms) -> ratio ~ 0.26.  A
  // sum/width model would give ~ 0.09, a serial model 1.0.
  EXPECT_GE(ratio, 0.20) << "wave priced below its slowest lane";
  EXPECT_LE(ratio, 0.35) << "wave not priced at critical path";
}

// Lanes that land on the same primary storage node serialize on its disk
// queue; lanes on distinct nodes do not.  Run with jitter pinned to zero
// so the difference is exactly the disk_queue surcharge.
TEST(ExecuteBatchTest, SharedPrimaryNodePaysQueueing) {
  CloudConfig cfg = SmallCloud(4);
  cfg.latency.jitter_frac = 0.0;
  ObjectCloud cloud(cfg);

  // Find two keys sharing a primary device and two on distinct devices.
  std::vector<std::string> same, distinct;
  for (std::size_t i = 0; i < 256 && (same.size() < 2 || distinct.size() < 2);
       ++i) {
    const std::string key = Key(i);
    if (same.empty()) {
      same.push_back(key);
      continue;
    }
    const std::uint32_t anchor = cloud.PrimaryDeviceOf(same.front());
    const std::uint32_t dev = cloud.PrimaryDeviceOf(key);
    if (dev == anchor && same.size() < 2) {
      same.push_back(key);
    } else if (dev != anchor && distinct.size() < 2) {
      if (distinct.empty() || cloud.PrimaryDeviceOf(distinct.front()) != dev) {
        distinct.push_back(key);
      }
    }
  }
  ASSERT_EQ(same.size(), 2u);
  ASSERT_EQ(distinct.size(), 2u);

  OpMeter setup;
  for (const auto& k : same)
    ASSERT_TRUE(cloud.Put(k, ObjectValue::FromString("s", 1), setup).ok());
  for (const auto& k : distinct)
    ASSERT_TRUE(cloud.Put(k, ObjectValue::FromString("d", 1), setup).ok());

  auto head_pair = [&cloud](const std::vector<std::string>& keys) {
    OpMeter meter;
    std::vector<BatchOp> ops;
    for (const auto& k : keys) ops.push_back(BatchOp::Head(k));
    (void)cloud.ExecuteBatch(std::move(ops), meter);
    return meter.cost().elapsed;
  };

  const VirtualNanos contended = head_pair(same);
  const VirtualNanos parallel = head_pair(distinct);
  // Same HEAD base cost everywhere (jitter off); the shared-node pair pays
  // exactly one disk_queue delay on top of the wave max.
  EXPECT_EQ(contended, parallel + cloud.latency().profile().disk_queue);
}

// -- the determinism contract --------------------------------------------

struct WorkloadOutcome {
  std::vector<ErrorCode> codes;
  std::vector<std::string> payloads;  // successful GET payloads, in order
  VirtualNanos elapsed = 0;
  std::string state;  // per-node (key, bytes, timestamps) dump
};

std::string DumpState(ObjectCloud& cloud) {
  std::string out;
  for (std::size_t n = 0; n < cloud.node_count(); ++n) {
    std::vector<std::string> lines;
    cloud.node(n).ForEach([&](const std::string& key, const ObjectValue& v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "|%llu|%llu|%llu|%llu\n",
                    static_cast<unsigned long long>(v.logical_size),
                    static_cast<unsigned long long>(v.created),
                    static_cast<unsigned long long>(v.modified),
                    static_cast<unsigned long long>(v.payload.size()));
      lines.push_back(cloud.node(n).name() + "/" + key + buf);
    });
    std::sort(lines.begin(), lines.end());
    for (auto& l : lines) out += l;
  }
  return out;
}

WorkloadOutcome RunWorkload(std::uint64_t io_concurrency) {
  ObjectCloud cloud(SmallCloud(io_concurrency));
  WorkloadOutcome out;
  OpMeter meter;

  std::vector<BatchOp> seed;
  for (std::size_t i = 0; i < 48; ++i) {
    seed.push_back(BatchOp::Put(
        Key(i), ObjectValue::FromString("payload-" + Key(i), 10 + i)));
  }
  auto seeded = cloud.ExecuteBatch(std::move(seed), meter);

  std::vector<BatchOp> mixed;
  for (std::size_t i = 0; i < 48; i += 4) mixed.push_back(BatchOp::Get(Key(i)));
  mixed.push_back(BatchOp::Get("acct/never-written"));
  for (std::size_t i = 1; i < 48; i += 4)
    mixed.push_back(BatchOp::Head(Key(i)));
  for (std::size_t i = 2; i < 48; i += 4)
    mixed.push_back(BatchOp::Copy(Key(i), Key(i) + "-copy"));
  for (std::size_t i = 3; i < 48; i += 4)
    mixed.push_back(BatchOp::Delete(Key(i)));
  auto results = cloud.ExecuteBatch(std::move(mixed), meter);

  for (const auto& r : seeded) out.codes.push_back(r.status.code());
  for (const auto& r : results) {
    out.codes.push_back(r.status.code());
    if (r.ok() && r.value.has_value()) out.payloads.push_back(r.value->payload);
  }
  out.elapsed = meter.cost().elapsed;
  out.state = DumpState(cloud);
  return out;
}

TEST(ExecuteBatchTest, WidthChangesCostNeverOutcome) {
  const WorkloadOutcome serial = RunWorkload(1);
  ASSERT_FALSE(serial.state.empty());
  ASSERT_FALSE(serial.payloads.empty());

  VirtualNanos prev = serial.elapsed;
  for (std::uint64_t w : {2u, 4u, 8u, 16u, 32u}) {
    const WorkloadOutcome wide = RunWorkload(w);
    EXPECT_EQ(wide.codes, serial.codes) << "W=" << w;
    EXPECT_EQ(wide.payloads, serial.payloads) << "W=" << w;
    EXPECT_EQ(wide.state, serial.state)
        << "final cloud state diverged at W=" << w;
    EXPECT_LE(wide.elapsed, serial.elapsed) << "W=" << w;
    // Doubling the wave width can only merge waves, never split them, so
    // elapsed is monotone non-increasing along the sweep.
    EXPECT_LE(wide.elapsed, prev) << "W=" << w;
    prev = wide.elapsed;
  }
}

// Pins the wave-width defaulting chain (H2Config::list_batch_width relies
// on it when left at 0):
//   BatchOptions::concurrency -> CloudConfig::io_concurrency
//                             -> LatencyProfile::batch_width -> >= 1.
// A detailed LIST passes BatchOptions{config_.list_batch_width}; each 0
// in the chain defers one level down, and the profile default is the
// floor, never silently 0 (which would deadlock the wave scheduler).
TEST(ExecuteBatchTest, EffectiveConcurrencyDefaultingChain) {
  // io_concurrency unset: 0-width requests fall through to the profile.
  {
    ObjectCloud cloud(SmallCloud(0));
    const std::uint64_t profile_width =
        cloud.latency().profile().batch_width;
    ASSERT_GT(profile_width, 0u);
    EXPECT_EQ(cloud.EffectiveConcurrency(), profile_width);
    EXPECT_EQ(cloud.EffectiveConcurrency(0), profile_width);
    // An explicit per-batch override always wins.
    EXPECT_EQ(cloud.EffectiveConcurrency(5), 5u);
  }
  // io_concurrency set: it is the default, overrides still win.
  {
    ObjectCloud cloud(SmallCloud(12));
    EXPECT_EQ(cloud.EffectiveConcurrency(), 12u);
    EXPECT_EQ(cloud.EffectiveConcurrency(0), 12u);
    EXPECT_EQ(cloud.EffectiveConcurrency(3), 3u);
  }
  // The floor: even a zeroed profile resolves to a width of at least 1.
  {
    CloudConfig cfg = SmallCloud(0);
    cfg.latency.batch_width = 0;
    ObjectCloud cloud(cfg);
    EXPECT_EQ(cloud.EffectiveConcurrency(), 1u);
  }
}

// Regression (elastic membership): a batch pins the ring epoch for its
// whole wave, so a membership change can never be observed mid-batch --
// some ops routed by the old ring, some by the new.
TEST(ExecuteBatchTest, MembershipChangeWaitsForInFlightBatch) {
  ObjectCloud cloud(SmallCloud(4));
  OpMeter meter;
  std::vector<BatchOp> ops;
  for (std::size_t i = 0; i < 32; ++i) {
    ops.push_back(BatchOp::Put(Key(i), ObjectValue::FromString("v", i)));
  }
  const std::uint64_t epoch_before = cloud.membership_epoch();
  auto results = cloud.ExecuteBatch(std::move(ops), meter);
  for (const auto& r : results) EXPECT_TRUE(r.ok());
  EXPECT_EQ(cloud.membership_epoch(), epoch_before);
  EXPECT_EQ(cloud.batch_stats().epoch_pin_violations, 0u);

  // Membership changes after the wave drained publish a fresh epoch.
  ASSERT_TRUE(cloud.AddStorageNode().ok());
  EXPECT_GT(cloud.membership_epoch(), epoch_before);
  EXPECT_EQ(cloud.batch_stats().epoch_pin_violations, 0u);
}

TEST(ExecuteBatchTest, ConcurrentMembershipChurnNeverTearsABatch) {
  ObjectCloud cloud(SmallCloud(4));
  OpMeter seed_meter;
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        cloud.Put(Key(i), ObjectValue::FromString("seed", i), seed_meter)
            .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failed_ops{0};
  std::thread batcher([&] {
    OpMeter meter;
    std::size_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<BatchOp> ops;
      for (std::size_t i = 0; i < 16; ++i) {
        const std::size_t k = (round * 7 + i * 3) % 64;
        if (i % 2 == 0) {
          ops.push_back(
              BatchOp::Put(Key(k), ObjectValue::FromString("w", round)));
        } else {
          ops.push_back(BatchOp::Get(Key(k)));
        }
      }
      for (const auto& r : cloud.ExecuteBatch(std::move(ops), meter)) {
        if (!r.ok()) failed_ops.fetch_add(1, std::memory_order_relaxed);
      }
      ++round;
    }
  });

  // Membership churn racing the batches: grow twice, reweight, and run
  // extra bounded rebalance steps from this thread.
  ASSERT_TRUE(cloud.AddStorageNode().ok());
  ASSERT_TRUE(cloud.SetNodeWeight(0, 2.5).ok());
  while (cloud.RunRebalanceStep(8) > 0) {
  }
  ASSERT_TRUE(cloud.AddStorageNode().ok());
  stop.store(true);
  batcher.join();

  // No op inside any batch saw a torn topology, nothing failed, and the
  // cluster converges once the queue drains.
  EXPECT_EQ(cloud.batch_stats().epoch_pin_violations, 0u);
  EXPECT_EQ(failed_ops.load(), 0u);
  while (cloud.RunRebalanceStep() > 0) {
  }
  while (cloud.ReplayHints() > 0) {
  }
  cloud.ReplicaScrub();
  EXPECT_EQ(cloud.DivergentKeyCount(), 0u);
}

}  // namespace
}  // namespace h2
