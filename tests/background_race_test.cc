// Background-merger race tests.
//
// Two jobs:
//   1. Hammer StartBackground's maximal-concurrency mode (one merger
//      thread per middleware plus a gossip/repair pump) against foreground
//      mkdir/put/list traffic, degraded-mode toggles and monitor
//      collection.  Run under -DH2_TSAN=ON these are the data-race
//      regression net for h2cloud/middleware/monitor locking.
//   2. Pin down the determinism contract for the coordinated mode: after
//      StopBackground the state must be bit-identical to what the
//      single-threaded RunMaintenanceStep schedule produces, including
//      every virtual timestamp.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "h2/h2cloud.h"
#include "h2/monitor.h"

namespace h2 {
namespace {

H2CloudConfig SmallConfig(int middlewares) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.middleware_count = middlewares;
  return cfg;
}

/// Full byte-level dump of every storage node: keys in sorted order
/// (StorageNode::ForEach guarantees that) with payload, sizes, timestamps
/// and metadata.  Two clouds with equal dumps are bit-identical down to
/// the virtual clock values their objects carry.
std::string DumpCloudState(H2Cloud& cloud) {
  std::string out;
  ObjectCloud& oc = cloud.cloud();
  for (std::size_t i = 0; i < oc.node_count(); ++i) {
    out += "== node " + std::to_string(i) + " ==\n";
    oc.node(i).ForEach([&](const std::string& key, const ObjectValue& v) {
      out += key;
      out += '|' + std::to_string(v.logical_size);
      out += '|' + std::to_string(v.created);
      out += '|' + std::to_string(v.modified);
      for (const auto& [mk, mv] : v.metadata) out += '|' + mk + '=' + mv;
      out += '|' + v.payload;
      out += '\n';
    });
  }
  return out;
}

/// The deterministic foreground workload both clouds in the bit-identity
/// test run: accounts, nested directories, files, moves and deletes --
/// enough to leave pending patches and cleanup work for the merger.
void RunSeedWorkload(H2Cloud& cloud) {
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  ASSERT_TRUE(cloud.CreateAccount("bob").ok());
  auto fs = std::move(cloud.OpenFilesystem("alice")).value();
  ASSERT_TRUE(fs->Mkdir("/docs").ok());
  ASSERT_TRUE(fs->Mkdir("/docs/old").ok());
  for (int i = 0; i < 20; ++i) {
    const std::string name = "/docs/f" + std::to_string(i);
    ASSERT_TRUE(
        fs->WriteFile(name, FileBlob::FromString("payload" + name)).ok());
  }
  ASSERT_TRUE(fs->Move("/docs/f0", "/docs/old/f0").ok());
  ASSERT_TRUE(fs->Copy("/docs/f1", "/docs/old/f1").ok());
  ASSERT_TRUE(fs->RemoveFile("/docs/f2").ok());
  auto fs2 = std::move(cloud.OpenFilesystem(
                           "bob", cloud.middleware_count() - 1))
                 .value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs2->WriteFile("/b" + std::to_string(i),
                               FileBlob::FromString("bob"))
                    .ok());
  }
}

// The tentpole assertion: a coordinated background merger, run over a
// quiet foreground and joined, leaves the cloud bit-identical -- same
// keys, same bytes, same virtual timestamps -- to the serial
// RunMaintenanceStep schedule.  Idle maintenance steps are no-ops, so the
// extra iterations the thread squeezes in change nothing.
TEST(BackgroundRaceTest, CoordinatedBackgroundMatchesSerialSchedule) {
  H2Cloud threaded(SmallConfig(2));
  H2Cloud serial(SmallConfig(2));
  RunSeedWorkload(threaded);
  RunSeedWorkload(serial);

  threaded.StartBackground(std::chrono::milliseconds(1),
                           H2Cloud::BackgroundMode::kCoordinated);
  for (int spin = 0; spin < 5000; ++spin) {
    bool idle = threaded.gossip().Idle();
    for (std::size_t i = 0; i < threaded.middleware_count(); ++i) {
      idle = idle && threaded.middleware(i).MaintenanceIdle();
    }
    if (idle) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  threaded.StopBackground();
  // Belt and braces: if the spin loop timed out, finish deterministically
  // (a no-op when the background thread already converged).
  threaded.RunMaintenanceToQuiescence();

  serial.RunMaintenanceToQuiescence();

  EXPECT_EQ(DumpCloudState(threaded), DumpCloudState(serial));
}

// Per-middleware mergers, gossip/repair pump, four foreground writers,
// a degraded-toggle flipper and a monitor poller, all live at once.  The
// assertion here is logical convergence (every write visible from every
// middleware once quiescent); under TSan the run itself is the assertion.
TEST(BackgroundRaceTest, PerMiddlewareMergersConvergeUnderHammer) {
  constexpr int kWriters = 4;
  constexpr int kFilesPerWriter = 15;
  H2Cloud cloud(SmallConfig(3));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  {
    auto setup = std::move(cloud.OpenFilesystem("u")).value();
    for (int t = 0; t < kWriters; ++t) {
      ASSERT_TRUE(setup->Mkdir("/w" + std::to_string(t)).ok());
    }
  }
  cloud.RunMaintenanceToQuiescence();

  cloud.StartBackground(std::chrono::milliseconds(1),
                        H2Cloud::BackgroundMode::kPerMiddleware);

  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&cloud, &errors, t] {
      auto fs =
          std::move(cloud.OpenFilesystem("u", t % cloud.middleware_count()))
              .value();
      const std::string dir = "/w" + std::to_string(t);
      for (int i = 0; i < kFilesPerWriter; ++i) {
        const std::string f = dir + "/f" + std::to_string(i);
        if (!fs->WriteFile(f, FileBlob::FromString("x")).ok()) ++errors;
        if (!fs->List(dir, ListDetail::kNamesOnly).ok()) ++errors;
        if (!fs->Stat(f).ok()) ++errors;
      }
    });
  }
  // Degraded-mode toggles and fault injection race the writers and the
  // merger threads; the match substring never occurs in real keys, so the
  // toggling exercises the locks without failing any write.
  threads.emplace_back([&cloud, &stop] {
    bool on = false;
    while (!stop.load()) {
      cloud.cloud().SetReadRepair(on);
      cloud.cloud().SetHintedHandoff(!on);
      cloud.cloud().FailPutsMatching(on ? "never-matches-any-key" : "");
      on = !on;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    cloud.cloud().SetReadRepair(true);
    cloud.cloud().SetHintedHandoff(true);
    cloud.cloud().FailPutsMatching("");
  });
  // Monitor collection races everything above (the torn-snapshot fix).
  threads.emplace_back([&cloud, &stop] {
    while (!stop.load()) {
      const MonitorSnapshot snap = CollectSnapshot(cloud);
      if (snap.middlewares.size() != 3) std::abort();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  for (int t = 0; t < kWriters; ++t) threads[t].join();
  stop.store(true);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  cloud.StopBackground();
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(errors.load(), 0);

  // Every write visible from every middleware.
  for (std::size_t m = 0; m < cloud.middleware_count(); ++m) {
    auto fs = std::move(cloud.OpenFilesystem("u", m)).value();
    for (int t = 0; t < kWriters; ++t) {
      auto names = fs->List("/w" + std::to_string(t), ListDetail::kNamesOnly);
      ASSERT_TRUE(names.ok());
      EXPECT_EQ(names->size(), static_cast<std::size_t>(kFilesPerWriter))
          << "middleware " << m << " dir /w" << t;
    }
  }
  const MonitorSnapshot final_snap = CollectSnapshot(cloud);
  EXPECT_TRUE(final_snap.FullyConverged());
}

// Start/Stop from many threads at once: the thread vector is guarded by
// background_mu_, so churn must neither crash, leak threads, nor deadlock.
TEST(BackgroundRaceTest, StartStopChurnIsThreadSafe) {
  H2Cloud cloud(SmallConfig(2));
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();

  std::vector<std::thread> churn;
  for (int t = 0; t < 4; ++t) {
    churn.emplace_back([&cloud, t] {
      for (int i = 0; i < 25; ++i) {
        if ((t + i) % 2 == 0) {
          cloud.StartBackground(std::chrono::milliseconds(1),
                                t % 2 == 0
                                    ? H2Cloud::BackgroundMode::kCoordinated
                                    : H2Cloud::BackgroundMode::kPerMiddleware);
        } else {
          cloud.StopBackground();
        }
      }
    });
  }
  // Foreground keeps writing through the churn.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        fs->WriteFile("/f" + std::to_string(i), FileBlob::FromString("x"))
            .ok());
  }
  for (auto& t : churn) t.join();
  cloud.StopBackground();
  EXPECT_FALSE(cloud.BackgroundRunning());
  cloud.RunMaintenanceToQuiescence();
  auto names = fs->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 30u);
}

// Restarting coordinated background after a stop keeps working (the CAS
// alone used to leave background_threads_ growing without bound and the
// stop path racing the vector).
TEST(BackgroundRaceTest, RestartAfterStopRemainsDeterministic) {
  H2Cloud threaded(SmallConfig(1));
  H2Cloud serial(SmallConfig(1));
  RunSeedWorkload(threaded);
  RunSeedWorkload(serial);

  for (int round = 0; round < 3; ++round) {
    threaded.StartBackground(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    threaded.StopBackground();
  }
  threaded.RunMaintenanceToQuiescence();
  serial.RunMaintenanceToQuiescence();
  EXPECT_EQ(DumpCloudState(threaded), DumpCloudState(serial));
}

}  // namespace
}  // namespace h2
