// Tests for the versioned directory-resolution cache: unit tests for the
// version-floor/LRU mechanics of H2ResolveCache, plus end-to-end checks
// that the cache actually removes cloud GETs from the hot path, stays
// coherent across middlewares via gossip, and surfaces in the monitor
// report.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "h2/h2cloud.h"
#include "h2/monitor.h"
#include "h2/resolve_cache.h"

namespace h2 {
namespace {

NamespaceId Ns(int i) {
  return NamespaceId{static_cast<std::uint32_t>(i), 1, 1000 + i};
}

DirRecord Rec(const NamespaceId& parent, std::string name, int i) {
  return DirRecord{Ns(100 + i), parent, std::move(name), i};
}

NameRing RingAt(VirtualNanos version) {
  NameRing ring;
  ring.Apply(RingTuple{"child", 10, EntryKind::kFile, false});
  ring.BumpVersion(version);
  return ring;
}

// ---- unit: version-floor + LRU mechanics ------------------------------------

TEST(ResolveCacheUnitTest, ChildRoundTripAndStaleFillRejected) {
  H2ResolveCache cache(8, 8);
  const NamespaceId parent = Ns(1);

  EXPECT_FALSE(cache.GetChild(parent, "x").has_value());
  const VirtualNanos floor = cache.ChildFloor(parent);
  cache.PutChild(parent, "x", Rec(parent, "x", 1), floor);
  auto got = cache.GetChild(parent, "x");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->name, "x");
  EXPECT_EQ(got->parent_ns, parent);

  // A fill whose floor snapshot predates an invalidation is dropped: the
  // racing cloud read may have observed pre-invalidation state.
  const VirtualNanos stale = cache.ChildFloor(parent);
  cache.EraseChild(parent, "x");
  EXPECT_FALSE(cache.GetChild(parent, "x").has_value());
  cache.PutChild(parent, "x", Rec(parent, "x", 1), stale);
  EXPECT_FALSE(cache.GetChild(parent, "x").has_value());

  // A snapshot taken after the invalidation fills normally.
  const VirtualNanos fresh = cache.ChildFloor(parent);
  cache.PutChild(parent, "x", Rec(parent, "x", 1), fresh);
  EXPECT_TRUE(cache.GetChild(parent, "x").has_value());
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().misses, 0u);
}

TEST(ResolveCacheUnitTest, ChildLruEvictsOldest) {
  H2ResolveCache cache(2, 2);
  const NamespaceId parent = Ns(1);
  const VirtualNanos floor = cache.ChildFloor(parent);
  cache.PutChild(parent, "a", Rec(parent, "a", 1), floor);
  cache.PutChild(parent, "b", Rec(parent, "b", 2), floor);
  cache.PutChild(parent, "c", Rec(parent, "c", 3), floor);
  EXPECT_EQ(cache.child_entries(), 2u);
  EXPECT_FALSE(cache.GetChild(parent, "a").has_value());  // evicted
  EXPECT_TRUE(cache.GetChild(parent, "b").has_value());
  EXPECT_TRUE(cache.GetChild(parent, "c").has_value());
}

TEST(ResolveCacheUnitTest, RingFillIsSelfValidating) {
  H2ResolveCache cache(4, 4);
  const NamespaceId ns = Ns(2);

  // No pre-read snapshot on the ring path: the dir_version carried by the
  // value is the admission check.
  cache.PutRing(ns, RingAt(10));
  auto got = cache.GetRing(ns);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->HasLive("child"));

  // Announcing a newer ring version drops the snapshot and fences
  // re-admission of anything older...
  cache.NoteRingVersion(ns, 20);
  EXPECT_FALSE(cache.GetRing(ns).has_value());
  cache.PutRing(ns, RingAt(19));  // stale: dir_version below the floor
  EXPECT_FALSE(cache.GetRing(ns).has_value());

  // ...while a ring that has caught up to the announced version admits.
  cache.PutRing(ns, RingAt(20));
  EXPECT_TRUE(cache.GetRing(ns).has_value());
}

TEST(ResolveCacheUnitTest, NoteVersionDropsOnlyThatNamespace) {
  H2ResolveCache cache(8, 8);
  const NamespaceId p1 = Ns(1), p2 = Ns(2);
  cache.PutChild(p1, "a", Rec(p1, "a", 1), cache.ChildFloor(p1));
  cache.PutChild(p1, "b", Rec(p1, "b", 2), cache.ChildFloor(p1));
  cache.PutChild(p2, "c", Rec(p2, "c", 3), cache.ChildFloor(p2));
  cache.PutRing(p1, RingAt(5));

  cache.NoteVersion(p1, 50);
  EXPECT_FALSE(cache.GetChild(p1, "a").has_value());
  EXPECT_FALSE(cache.GetChild(p1, "b").has_value());
  EXPECT_FALSE(cache.GetRing(p1).has_value());
  EXPECT_TRUE(cache.GetChild(p2, "c").has_value());
  EXPECT_GT(cache.stats().invalidations, 0u);
}

TEST(ResolveCacheUnitTest, NoteRingVersionLeavesChildEntriesAlone) {
  // Patch submits and merges change the overlaid ring view but not the
  // child record objects: only the ring snapshot may be dropped.
  H2ResolveCache cache(8, 8);
  const NamespaceId ns = Ns(4);
  cache.PutChild(ns, "kid", Rec(ns, "kid", 1), cache.ChildFloor(ns));
  cache.PutRing(ns, RingAt(5));

  cache.NoteRingVersion(ns, 50);
  EXPECT_FALSE(cache.GetRing(ns).has_value());
  EXPECT_TRUE(cache.GetChild(ns, "kid").has_value());
}

TEST(ResolveCacheUnitTest, RetiredNamespaceNeverAdmitsAgain) {
  H2ResolveCache cache(8, 8);
  const NamespaceId ns = Ns(5);
  cache.PutChild(ns, "x", Rec(ns, "x", 1), cache.ChildFloor(ns));
  cache.PutRing(ns, RingAt(7));

  cache.Retire(ns);
  EXPECT_FALSE(cache.GetChild(ns, "x").has_value());
  EXPECT_FALSE(cache.GetRing(ns).has_value());
  EXPECT_EQ(cache.ChildFloor(ns), H2ResolveCache::kRetired);

  // Even a "fresh" fill protocol cannot resurrect a retired namespace:
  // the floor snapshot equals kRetired, and PutChild refuses that fence.
  cache.PutChild(ns, "x", Rec(ns, "x", 1), cache.ChildFloor(ns));
  EXPECT_FALSE(cache.GetChild(ns, "x").has_value());
  cache.PutRing(ns, RingAt(H2ResolveCache::kRetired));
  EXPECT_FALSE(cache.GetRing(ns).has_value());
}

TEST(ResolveCacheUnitTest, ClearRejectsPreClearSnapshots) {
  // Clear forgets the per-namespace floor entries; the global floor must
  // keep old snapshots unusable (spurious misses are fine, false hits are
  // not).
  H2ResolveCache cache(8, 8);
  const NamespaceId parent = Ns(3);
  cache.NoteVersion(parent, 30);  // establish a nonzero floor to forget
  const VirtualNanos before = cache.ChildFloor(parent);
  cache.PutChild(parent, "x", Rec(parent, "x", 1), before);
  cache.Clear();
  EXPECT_EQ(cache.child_entries(), 0u);

  cache.PutChild(parent, "x", Rec(parent, "x", 1), before);
  EXPECT_FALSE(cache.GetChild(parent, "x").has_value());
  const VirtualNanos after = cache.ChildFloor(parent);
  EXPECT_GT(after, before);
  cache.PutChild(parent, "x", Rec(parent, "x", 1), after);
  EXPECT_TRUE(cache.GetChild(parent, "x").has_value());
}

// ---- end to end: the cache removes GETs from the hot path -------------------

std::uint64_t WarmPathGets(bool cache_on) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.h2.resolve_cache = cache_on;
  H2Cloud cloud(cfg);
  EXPECT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();

  std::string dir;
  for (int d = 1; d <= 8; ++d) {
    dir += "/d" + std::to_string(d);
    EXPECT_TRUE(fs->Mkdir(dir).ok());
  }
  EXPECT_TRUE(fs->WriteFile(dir + "/leaf", FileBlob::FromString("x")).ok());
  cloud.RunMaintenanceToQuiescence();

  EXPECT_TRUE(fs->Stat(dir + "/leaf").ok());  // warm-up round
  EXPECT_TRUE(fs->List(dir, ListDetail::kNamesOnly).ok());

  std::uint64_t gets = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(fs->Stat(dir + "/leaf").ok());
    gets += fs->last_op().gets;
    EXPECT_TRUE(fs->List(dir, ListDetail::kNamesOnly).ok());
    gets += fs->last_op().gets;
  }
  return gets;
}

TEST(ResolveCacheE2ETest, DeepWarmPathNeedsHalfTheCloudGets) {
  const std::uint64_t off = WarmPathGets(false);
  const std::uint64_t on = WarmPathGets(true);
  // Depth-8 Stat is O(d) GETs uncached and zero GETs warm; the issue's
  // acceptance bar is >= 2x fewer.
  EXPECT_GT(off, 0u);
  EXPECT_GE(off, 2 * std::max<std::uint64_t>(on, 1));
}

TEST(ResolveCacheE2ETest, GossipInvalidatesPeerCaches) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.middleware_count = 2;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs0 = std::move(cloud.OpenFilesystem("u", 0)).value();
  auto fs1 = std::move(cloud.OpenFilesystem("u", 1)).value();

  ASSERT_TRUE(fs0->Mkdir("/a").ok());
  ASSERT_TRUE(fs0->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs0->WriteFile("/a/b/f", FileBlob::FromString("v")).ok());
  cloud.RunMaintenanceToQuiescence();

  // Warm middleware 0's child and ring caches along the path.
  ASSERT_TRUE(fs0->Stat("/a/b/f").ok());
  ASSERT_TRUE(fs0->List("/a/b", ListDetail::kNamesOnly).ok());

  // The peer deletes the file through middleware 1; the maintenance
  // round's gossip rumor must evict middleware 0's snapshots.
  ASSERT_TRUE(fs1->RemoveFile("/a/b/f").ok());
  cloud.RunMaintenanceToQuiescence();
  auto names = fs0->List("/a/b", ListDetail::kNamesOnly);
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names->empty());
  EXPECT_EQ(fs0->Stat("/a/b/f").code(), ErrorCode::kNotFound);

  // Same for whole directories resolved through the child cache.
  ASSERT_TRUE(fs1->Rmdir("/a/b").ok());
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(fs0->Stat("/a/b").code(), ErrorCode::kNotFound);
  EXPECT_GT(cloud.middleware(0).counters().resolve_cache_invalidations, 0u);
}

// ---- hammer: internal synchronization ---------------------------------------

// The cache is a leaf-locked, internally synchronized structure: a
// lookup's floor check and its LRU admit are one critical section.
// Hammer it from readers, writers and invalidators at once -- foreground
// resolution, the background merger and gossip handlers in miniature.
// Under -DH2_TSAN=ON this is the data-race net for resolve_cache.cc; in
// any build the final invariants catch lost updates and torn LRU lists.
TEST(ResolveCacheHammerTest, ConcurrentLookupAdmitInvalidate) {
  H2ResolveCache cache(64, 16);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kNamespaces = 7;  // deliberately above the ring capacity/2
  std::atomic<std::uint64_t> observed_hits{0};
  std::atomic<std::uint64_t> lookups{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, &lookups, t] {
      Rng rng(0xca11ab1e + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const NamespaceId parent = Ns(static_cast<int>(rng.Below(kNamespaces)));
        const std::string name = "c" + std::to_string(rng.Below(5));
        const VirtualNanos version = 1 + rng.Below(64);
        switch (rng.Below(6)) {
          case 0: {  // fill protocol: snapshot the floor, then admit
            const VirtualNanos floor = cache.ChildFloor(parent);
            cache.PutChild(parent, name, Rec(parent, name, i), floor);
            break;
          }
          case 1:
            lookups.fetch_add(1, std::memory_order_relaxed);
            if (cache.GetChild(parent, name).has_value()) {
              observed_hits.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          case 2:
            cache.PutRing(parent, RingAt(version));  // self-validating fill
            break;
          case 3:
            lookups.fetch_add(1, std::memory_order_relaxed);
            (void)cache.GetRing(parent);
            break;
          case 4:
            cache.EraseChild(parent, name);
            break;
          default:
            if (rng.Chance(0.25)) {
              cache.NoteVersion(parent, version);
            } else {
              cache.NoteRingVersion(parent, version);
            }
            break;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Capacities hold (no torn LRU bookkeeping) ...
  EXPECT_LE(cache.child_entries(), 64u);
  EXPECT_LE(cache.ring_entries(), 16u);
  // ... and the stats ledger classified every lookup exactly once: a
  // torn lookup+admit section would lose or double-count entries here.
  const H2ResolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_GE(stats.hits, observed_hits.load());
  EXPECT_GT(stats.invalidations, 0u);

  // The cache still works after the storm.
  const NamespaceId parent = Ns(1);
  const VirtualNanos floor = cache.ChildFloor(parent);
  cache.PutChild(parent, "post", Rec(parent, "post", 1), floor);
  EXPECT_TRUE(cache.GetChild(parent, "post").has_value());
}

TEST(ResolveCacheE2ETest, MonitorReportsHitRate) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/a").ok());
  ASSERT_TRUE(fs->WriteFile("/a/f", FileBlob::FromString("x")).ok());
  cloud.RunMaintenanceToQuiescence();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs->Stat("/a/f").ok());
  }

  const MonitorSnapshot snapshot = CollectSnapshot(cloud);
  EXPECT_GT(snapshot.ResolveCacheHitRate(), 0.0);
  EXPECT_LE(snapshot.ResolveCacheHitRate(), 1.0);
  EXPECT_NE(snapshot.ToText().find("resolve cache"), std::string::npos);
}

}  // namespace
}  // namespace h2
