// Behaviour specific to each Table-1 baseline: the cost signatures and
// structural properties the conformance suite does not cover.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/cas_fs.h"
#include "baselines/ch_fs.h"
#include "baselines/index_fs.h"
#include "baselines/snapshot_fs.h"
#include "baselines/swift_fs.h"
#include "workload/tree_gen.h"

namespace h2 {
namespace {

CloudConfig SmallCloud(LatencyProfile profile = LatencyProfile::RackLan()) {
  CloudConfig cfg;
  cfg.part_power = 8;
  cfg.latency = profile;
  return cfg;
}

// --------------------------- Swift ----------------------------------------

TEST(SwiftTest, MoveCostScalesWithFiles) {
  // Pin the batch width to 1: this test asserts the O(n) re-key loop's
  // serial cost shape; wave-width scaling is covered by batch_io_test.
  CloudConfig cfg = SmallCloud();
  cfg.io_concurrency = 1;
  ObjectCloud cloud(cfg);
  SwiftFs fs(cloud);
  ASSERT_TRUE(fs.Mkdir("/dst").ok());
  ASSERT_TRUE(FillDirectory(fs, "/small", 10).ok());
  ASSERT_TRUE(FillDirectory(fs, "/large", 100).ok());

  ASSERT_TRUE(fs.Move("/small", "/dst/s").ok());
  const auto small_cost = fs.last_op();
  ASSERT_TRUE(fs.Move("/large", "/dst/l").ok());
  const auto large_cost = fs.last_op();
  // 10x files -> ~10x copies+deletes.
  EXPECT_GE(large_cost.copies, 100u);
  EXPECT_GT(large_cost.elapsed, 7 * small_cost.elapsed);
}

TEST(SwiftTest, ListChargesDbPagesPerChild) {
  ObjectCloud cloud(SmallCloud());
  SwiftFs fs(cloud);
  ASSERT_TRUE(FillDirectory(fs, "/dir", 50).ok());
  ASSERT_TRUE(fs.List("/dir", ListDetail::kDetailed).ok());
  // m children, each a B-tree descent: >= m pages, no object primitives.
  EXPECT_GE(fs.last_op().db_pages, 50u);
  EXPECT_EQ(fs.last_op().heads, 0u);
}

TEST(SwiftTest, FileAccessIsSingleHead) {
  ObjectCloud cloud(SmallCloud());
  SwiftFs fs(cloud);
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/a/b").ok());
  ASSERT_TRUE(fs.WriteFile("/a/b/f", FileBlob::FromString("x")).ok());
  ASSERT_TRUE(fs.Stat("/a/b/f").ok());
  EXPECT_EQ(fs.last_op().object_primitives(), 1u);  // depth-independent
}

TEST(SwiftTest, DbRowCountTracksEntries) {
  ObjectCloud cloud(SmallCloud());
  SwiftFs fs(cloud);
  ASSERT_TRUE(FillDirectory(fs, "/d", 20).ok());
  EXPECT_EQ(fs.db().size(), 21u);  // 20 files + the directory row
  ASSERT_TRUE(fs.Rmdir("/d").ok());
  EXPECT_EQ(fs.db().size(), 0u);
}

TEST(SwiftTest, VisitChildrenSkipsDeeperEntries) {
  ObjectCloud cloud(SmallCloud());
  SwiftFs fs(cloud);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Mkdir("/d/sub").ok());
  ASSERT_TRUE(FillDirectory(fs, "/d/sub/deep", 30).ok());
  ASSERT_TRUE(fs.WriteFile("/d/top", FileBlob::FromString("x")).ok());
  auto entries = fs.List("/d", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);  // "sub" and "top" only
}

// --------------------------- Plain CH -------------------------------------

TEST(PlainChTest, ListScansWholeCluster) {
  ObjectCloud cloud(SmallCloud());
  ChFs fs(cloud);
  ASSERT_TRUE(FillDirectory(fs, "/dir", 10).ok());
  ASSERT_TRUE(FillDirectory(fs, "/other", 40).ok());
  ASSERT_TRUE(fs.List("/dir", ListDetail::kNamesOnly).ok());
  // The scan visits every replica in the cluster, not just /dir.
  EXPECT_GE(fs.last_op().scanned_objects, 3 * 50u);
}

TEST(PlainChTest, AccessIsConstant) {
  ObjectCloud cloud(SmallCloud());
  ChFs fs(cloud);
  ASSERT_TRUE(FillDirectory(fs, "/dir", 100).ok());
  ASSERT_TRUE(fs.Stat("/dir/f000042").ok());
  EXPECT_EQ(fs.last_op().object_primitives(), 1u);
  EXPECT_EQ(fs.last_op().scanned_objects, 0u);
}

// --------------------------- Cumulus --------------------------------------

TEST(CumulusTest, AccessScansMetadataLog) {
  ObjectCloud cloud(SmallCloud());
  SnapshotFs fs(cloud);
  ASSERT_TRUE(FillDirectory(fs, "/dir", 64).ok());
  ASSERT_TRUE(fs.Stat("/dir/f000000").ok());
  EXPECT_GE(fs.last_op().scanned_objects, 64u);  // every log entry walked
}

TEST(CumulusTest, MkdirOnlyTouchesTailChunk) {
  ObjectCloud cloud(SmallCloud());
  SnapshotFs fs(cloud);
  ASSERT_TRUE(FillDirectory(fs, "/dir", 50).ok());
  ASSERT_TRUE(fs.Mkdir("/dir2").ok());
  EXPECT_EQ(fs.last_op().puts, 1u);           // tail chunk rewrite
  EXPECT_EQ(fs.last_op().scanned_objects, 0u);  // append, no scan
}

TEST(CumulusTest, MoveRewritesLog) {
  ObjectCloud cloud(SmallCloud());
  SnapshotFs fs(cloud);
  ASSERT_TRUE(fs.Mkdir("/dst").ok());
  ASSERT_TRUE(FillDirectory(fs, "/dir", 64).ok());
  ASSERT_TRUE(fs.Move("/dir", "/dst/moved").ok());
  EXPECT_GE(fs.last_op().scanned_objects, 64u);  // full log rewrite
}

TEST(CumulusTest, LogChunksAreRealObjects) {
  ObjectCloud cloud(SmallCloud());
  SnapshotFs fs(cloud);
  ASSERT_TRUE(FillDirectory(fs, "/dir", 1500).ok());  // > one chunk
  EXPECT_GE(fs.chunk_count(), 2u);
  OpMeter meter;
  EXPECT_TRUE(cloud.Get("cum:meta:0", meter).ok());
  EXPECT_TRUE(cloud.Get("cum:meta:1", meter).ok());
}

TEST(CumulusTest, SegmentsRotate) {
  ObjectCloud cloud(SmallCloud());
  SnapshotFs fs(cloud);
  ASSERT_TRUE(fs.Mkdir("/v").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fs.WriteFile("/v/video" + std::to_string(i),
                             FileBlob::Synthetic("s", 3ULL << 20))
                    .ok());
  }
  OpMeter meter;
  EXPECT_TRUE(cloud.Get("cum:seg:0", meter).ok());
  EXPECT_TRUE(cloud.Get("cum:seg:1", meter).ok());  // 4x3MiB > 4MiB target
}

// --------------------------- CAS -------------------------------------------

TEST(CasTest, MkdirRebuildsWholeIndex) {
  ObjectCloud cloud(SmallCloud());
  CasFs fs(cloud);
  ASSERT_TRUE(FillDirectory(fs, "/dir", 128).ok());
  ASSERT_TRUE(fs.Mkdir("/dir2").ok());
  EXPECT_GE(fs.last_op().scanned_objects, 128u);  // O(N) re-hash
}

TEST(CasTest, ContentIsDeduplicated) {
  ObjectCloud cloud(SmallCloud());
  CasFs fs(cloud);
  ASSERT_TRUE(fs.WriteFile("/a", FileBlob::FromString("same-bytes")).ok());
  const std::uint64_t after_first = cloud.LogicalObjectCount();
  ASSERT_TRUE(fs.WriteFile("/b", FileBlob::FromString("same-bytes")).ok());
  // Same content hash: no new content block, only pointer blocks moved.
  auto hash_a = fs.HashOf("/a");
  auto hash_b = fs.HashOf("/b");
  ASSERT_TRUE(hash_a.ok());
  ASSERT_TRUE(hash_b.ok());
  EXPECT_EQ(*hash_a, *hash_b);
  EXPECT_LE(cloud.LogicalObjectCount(), after_first + 1);
}

TEST(CasTest, StatByHashIsOneHead) {
  ObjectCloud cloud(SmallCloud());
  CasFs fs(cloud);
  ASSERT_TRUE(fs.Mkdir("/deep").ok());
  ASSERT_TRUE(fs.Mkdir("/deep/deeper").ok());
  ASSERT_TRUE(
      fs.WriteFile("/deep/deeper/f", FileBlob::FromString("data")).ok());
  auto hash = fs.HashOf("/deep/deeper/f");
  ASSERT_TRUE(hash.ok());
  auto info = fs.StatByHash(*hash);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(fs.last_op().object_primitives(), 1u);  // the paper's O(1)
  EXPECT_EQ(info->size, 4u);
}

TEST(CasTest, CopySharesContentBlocks) {
  ObjectCloud cloud(SmallCloud());
  CasFs fs(cloud);
  ASSERT_TRUE(FillDirectory(fs, "/dir", 20, /*file_size=*/2048).ok());
  const std::uint64_t bytes_before = cloud.LogicalBytes();
  ASSERT_TRUE(fs.Copy("/dir", "/dir2").ok());
  // Dedup: content not duplicated; only pointer blocks grew.
  EXPECT_LT(cloud.LogicalBytes() - bytes_before, 20 * 2048ull);
  EXPECT_EQ(fs.last_op().copies, 0u);
}

TEST(CasTest, DeleteReleasesUnreferencedContent) {
  ObjectCloud cloud(SmallCloud());
  CasFs fs(cloud);
  ASSERT_TRUE(fs.WriteFile("/a", FileBlob::FromString("unique-1")).ok());
  ASSERT_TRUE(fs.Copy("/a", "/b").ok());
  ASSERT_TRUE(fs.RemoveFile("/a").ok());
  EXPECT_EQ(fs.ReadFile("/b")->data, "unique-1");  // still referenced
  ASSERT_TRUE(fs.RemoveFile("/b").ok());
  auto hash = fs.HashOf("/b");
  EXPECT_FALSE(hash.ok());  // gone from the tree
}

// --------------------------- Index family ---------------------------------

TEST(IndexFsTest, SingleIndexUsesOneServer) {
  ObjectCloud cloud(SmallCloud());
  IndexServerFs fs(cloud, IndexFsOptions::SingleIndex());
  ASSERT_TRUE(FillDirectory(fs, "/dir", 30).ok());
  const auto loads = fs.ServerLoads();
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0], 32u);  // root + dir + 30 files
}

TEST(IndexFsTest, StaticPartitionCrossMoveTransfersContent) {
  ObjectCloud cloud(SmallCloud());
  IndexServerFs fs(cloud, IndexFsOptions::StaticPartition(4));
  // Find two top-level dirs on different servers.
  ASSERT_TRUE(fs.Mkdir("/alpha").ok());
  std::string other;
  for (const char* candidate : {"/beta", "/gamma", "/delta", "/epsilon",
                                "/zeta", "/eta"}) {
    ASSERT_TRUE(fs.Mkdir(candidate).ok());
    ASSERT_TRUE(fs.Mkdir(std::string(candidate) + "/x").ok());
    ASSERT_TRUE(fs.Move(std::string(candidate) + "/x",
                        std::string(candidate) + "/y")
                    .ok());
    other = candidate;
    break;
  }
  ASSERT_TRUE(FillDirectory(fs, "/alpha/data", 20).ok());

  // In-partition move: no content transfer.
  ASSERT_TRUE(fs.Move("/alpha/data", "/alpha/data2").ok());
  EXPECT_EQ(fs.last_op().copies, 0u);

  // Find a destination on a different server by probing.
  bool found_cross = false;
  for (const char* candidate : {"/beta", "/gamma", "/delta", "/epsilon"}) {
    if (!fs.Stat(candidate).ok()) {
      ASSERT_TRUE(fs.Mkdir(candidate).ok());
    }
    ASSERT_TRUE(fs.Move("/alpha/data2",
                        std::string(candidate) + "/data").ok());
    if (fs.last_op().copies > 0) {
      EXPECT_GE(fs.last_op().copies, 20u);  // per-file transfer
      found_cross = true;
      break;
    }
    ASSERT_TRUE(fs.Move(std::string(candidate) + "/data", "/alpha/data2")
                    .ok());
  }
  EXPECT_TRUE(found_cross) << "expected some top-level dir on another server";
}

TEST(IndexFsTest, DynamicPartitionSplitsUnderLoad) {
  ObjectCloud cloud(SmallCloud());
  IndexFsOptions opts = IndexFsOptions::DynamicPartition(4);
  opts.split_threshold = 64;
  IndexServerFs fs(cloud, opts);
  // Create enough nested directories to trip splitting.
  ASSERT_TRUE(fs.Mkdir("/root").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fs.Mkdir("/root/d" + std::to_string(i)).ok());
    ASSERT_TRUE(
        fs.WriteFile("/root/d" + std::to_string(i) + "/f",
                     FileBlob::FromString("x"))
            .ok());
  }
  const auto loads = fs.ServerLoads();
  const std::size_t busy =
      static_cast<std::size_t>(std::count_if(loads.begin(), loads.end(),
                                             [](std::size_t l) { return l > 0; }));
  EXPECT_GT(busy, 1u) << "load-based splitting must engage more servers";
}

TEST(IndexFsTest, DpMoveIsConstantAndCrossingsCharged) {
  ObjectCloud cloud(SmallCloud());
  IndexFsOptions opts = IndexFsOptions::DynamicPartition(4);
  opts.split_threshold = 8;
  IndexServerFs fs(cloud, opts);
  ASSERT_TRUE(fs.Mkdir("/dst").ok());
  ASSERT_TRUE(FillDirectory(fs, "/dir", 100).ok());
  ASSERT_TRUE(fs.Move("/dir", "/dst/moved").ok());
  EXPECT_EQ(fs.last_op().copies, 0u);  // O(1), subtree stays put
  EXPECT_LE(fs.last_op().index_rpcs, 4u);
}

TEST(IndexFsTest, SharedDiskPaysDurableCommit) {
  ObjectCloud cloud_a(SmallCloud());
  ObjectCloud cloud_b(SmallCloud());
  IndexServerFs dp(cloud_a, IndexFsOptions::DynamicPartition());
  IndexServerFs shared(cloud_b, IndexFsOptions::DpSharedDisk());
  ASSERT_TRUE(dp.Mkdir("/d").ok());
  const double dp_ms = dp.last_op().elapsed_ms();
  ASSERT_TRUE(shared.Mkdir("/d").ok());
  const double shared_ms = shared.last_op().elapsed_ms();
  EXPECT_GT(shared_ms, dp_ms + 30.0);  // the strong-consistency penalty
}

TEST(IndexFsTest, DropboxChargesServiceOverhead) {
  ObjectCloud cloud_a(SmallCloud(LatencyProfile::DropboxWan()));
  ObjectCloud cloud_b(SmallCloud());
  IndexServerFs dropbox(cloud_a, IndexFsOptions::Dropbox());
  IndexServerFs dp(cloud_b, IndexFsOptions::DynamicPartition());
  ASSERT_TRUE(dropbox.Mkdir("/d").ok());
  ASSERT_TRUE(dp.Mkdir("/d").ok());
  EXPECT_GT(dropbox.last_op().elapsed_ms(), 60.0);
  EXPECT_LT(dp.last_op().elapsed_ms(), 10.0);
}

TEST(IndexFsTest, RmdirReclaimsLazily) {
  ObjectCloud cloud(SmallCloud());
  IndexServerFs fs(cloud, IndexFsOptions::DynamicPartition());
  ASSERT_TRUE(FillDirectory(fs, "/dir", 40).ok());
  const std::uint64_t before = cloud.LogicalObjectCount();
  ASSERT_TRUE(fs.Rmdir("/dir").ok());
  EXPECT_EQ(cloud.LogicalObjectCount(), before);  // content still there
  EXPECT_FALSE(fs.MaintenanceIdle());
  EXPECT_EQ(fs.RunLazyCleanup(), 40u);
  EXPECT_EQ(cloud.LogicalObjectCount(), before - 40);
  EXPECT_TRUE(fs.MaintenanceIdle());
  EXPECT_GT(fs.maintenance_cost().elapsed, 0);
}

}  // namespace
}  // namespace h2
