#include <gtest/gtest.h>

#include <cmath>

#include "metrics/stats.h"

namespace h2 {
namespace {

TEST(SummaryTest, BasicStats) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.9), 0.0);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  for (int i = 0; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.percentile(0.25), 25.0, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(SummaryTest, AddAfterQueryResorts) {
  Summary s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.Add(9.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(LogLogSlopeTest, FitsKnownExponents) {
  std::vector<double> xs = {10, 100, 1000, 10000};
  std::vector<double> linear, constant, quadratic, logish;
  for (double x : xs) {
    linear.push_back(3 * x);
    constant.push_back(42);
    quadratic.push_back(x * x);
    logish.push_back(std::log2(x));
  }
  EXPECT_NEAR(LogLogSlope(xs, linear), 1.0, 0.01);
  EXPECT_NEAR(LogLogSlope(xs, constant), 0.0, 0.01);
  EXPECT_NEAR(LogLogSlope(xs, quadratic), 2.0, 0.01);
  const double log_slope = LogLogSlope(xs, logish);
  EXPECT_GT(log_slope, 0.1);
  EXPECT_LT(log_slope, 0.5);
}

TEST(LogLogSlopeTest, DegenerateInputs) {
  EXPECT_EQ(LogLogSlope({}, {}), 0.0);
  EXPECT_EQ(LogLogSlope({1}, {1}), 0.0);
  EXPECT_EQ(LogLogSlope({0, 0}, {1, 2}), 0.0);  // non-positive xs skipped
}

TEST(ComplexityClassTest, Buckets) {
  EXPECT_EQ(ComplexityClass(0.02), "O(1)");
  EXPECT_EQ(ComplexityClass(0.3), "O(log)");
  EXPECT_EQ(ComplexityClass(1.0), "O(linear)");
  EXPECT_EQ(ComplexityClass(2.0), "O(superlinear)");
}

TEST(SweepTableTest, TextAndCsv) {
  SweepTable table("Demo", "n", "ms");
  table.SetSweep({10, 100});
  table.AddSeries(Series{"sysA", {1.5, 2.5}});
  table.AddSeries(Series{"sysB", {10.0, 20000.0}});

  const std::string text = table.ToText();
  EXPECT_NE(text.find("Demo"), std::string::npos);
  EXPECT_NE(text.find("sysA"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("2.000e+04"), std::string::npos);  // sci notation

  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("n,sysA,sysB"), std::string::npos);
  EXPECT_NE(csv.find("10,1.5,10"), std::string::npos);
  EXPECT_NE(csv.find("100,2.5,20000"), std::string::npos);
}

TEST(SweepTableTest, MissingValuesRenderAsZero) {
  SweepTable table("Demo", "n", "ms");
  table.SetSweep({1, 2, 3});
  table.AddSeries(Series{"short", {7.0}});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("2,0"), std::string::npos);
}

}  // namespace
}  // namespace h2
