#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gossip/gossip.h"

namespace h2 {
namespace {

/// A member that follows the paper's timestamp rule: a rumor is fresh iff
/// its version exceeds the locally recorded version for its topic.
struct Member {
  std::map<std::string, std::int64_t> versions;
  std::mutex mu;

  bool Handle(const Rumor& rumor) {
    std::lock_guard lock(mu);
    auto [it, inserted] = versions.try_emplace(rumor.topic, rumor.version);
    if (!inserted) {
      if (it->second >= rumor.version) return false;  // stale: stop here
      it->second = rumor.version;
    }
    return true;
  }
};

struct Swarm {
  GossipBus bus;
  std::vector<std::unique_ptr<Member>> members;

  explicit Swarm(std::size_t n, int fanout = 3) : bus(fanout, 42) {
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(std::make_unique<Member>());
      Member* m = members.back().get();
      bus.Join([m](const Rumor& r) { return m->Handle(r); });
    }
  }

  std::size_t CountKnowing(const std::string& topic, std::int64_t version) {
    std::size_t n = 0;
    for (auto& m : members) {
      std::lock_guard lock(m->mu);
      auto it = m->versions.find(topic);
      if (it != m->versions.end() && it->second >= version) ++n;
    }
    return n;
  }
};

TEST(GossipTest, RumorReachesEveryMember) {
  Swarm swarm(16);
  swarm.members[0]->versions["ns1"] = 5;  // origin already knows it
  swarm.bus.Publish(0, Rumor{"ns1", 0, 5});
  swarm.bus.RunToQuiescence();
  EXPECT_EQ(swarm.CountKnowing("ns1", 5), 16u);
}

TEST(GossipTest, QuiescenceIsReached) {
  Swarm swarm(32);
  swarm.bus.Publish(3, Rumor{"t", 3, 1});
  const std::size_t rounds = swarm.bus.RunToQuiescence();
  EXPECT_GT(rounds, 0u);
  EXPECT_LT(rounds, 100u);
  EXPECT_TRUE(swarm.bus.Idle());
}

TEST(GossipTest, StaleRumorsAreSuppressed) {
  Swarm swarm(8);
  for (auto& m : swarm.members) m->versions["t"] = 10;  // everyone current
  swarm.bus.Publish(0, Rumor{"t", 0, 5});               // old news
  swarm.bus.RunToQuiescence();
  const GossipStats stats = swarm.bus.stats();
  // Only the initial fanout is delivered; nobody forwards.
  EXPECT_EQ(stats.suppressed, stats.delivered);
  EXPECT_LE(stats.delivered, 3u);
}

TEST(GossipTest, TimestampOrderingKeepsNewest) {
  Swarm swarm(8);
  swarm.bus.Publish(0, Rumor{"t", 0, 5});
  swarm.bus.Publish(1, Rumor{"t", 1, 9});
  swarm.bus.RunToQuiescence();
  EXPECT_EQ(swarm.CountKnowing("t", 9), 8u);
}

TEST(GossipTest, ConvergesWithManyConcurrentTopics) {
  Swarm swarm(24);
  for (int t = 0; t < 20; ++t) {
    const auto origin = static_cast<std::uint32_t>(t % 24);
    swarm.members[origin]->versions["topic" + std::to_string(t)] = t + 1;
    swarm.bus.Publish(origin,
                      Rumor{"topic" + std::to_string(t),
                            origin, t + 1});
  }
  swarm.bus.RunToQuiescence();
  for (int t = 0; t < 20; ++t) {
    EXPECT_EQ(swarm.CountKnowing("topic" + std::to_string(t), t + 1), 24u)
        << "topic " << t;
  }
}

TEST(GossipTest, SingleMemberIsTrivial) {
  Swarm swarm(1);
  swarm.bus.Publish(0, Rumor{"t", 0, 1});
  EXPECT_EQ(swarm.bus.RunToQuiescence(), 0u);
}

TEST(GossipTest, FanoutOneStillConverges) {
  Swarm swarm(12, /*fanout=*/1);
  swarm.members[0]->versions["t"] = 1;
  swarm.bus.Publish(0, Rumor{"t", 0, 1});
  swarm.bus.RunToQuiescence(100000);
  // Fanout 1 forwards only while the rumor is news, so coverage can stall
  // before reaching everyone -- but it must reach at least a chain.
  EXPECT_GE(swarm.CountKnowing("t", 1), 2u);
}

TEST(GossipTest, HigherFanoutDeliversFaster) {
  Swarm slow(64, 1), fast(64, 6);
  slow.members[0]->versions["t"] = 1;
  fast.members[0]->versions["t"] = 1;
  slow.bus.Publish(0, Rumor{"t", 0, 1});
  fast.bus.Publish(0, Rumor{"t", 0, 1});
  slow.bus.RunToQuiescence();
  fast.bus.RunToQuiescence();
  EXPECT_GT(fast.CountKnowing("t", 1), slow.CountKnowing("t", 1) / 2);
  EXPECT_EQ(fast.CountKnowing("t", 1), 64u);
}

TEST(GossipTest, StatsAreConsistent) {
  Swarm swarm(16);
  swarm.members[2]->versions["t"] = 3;
  swarm.bus.Publish(2, Rumor{"t", 2, 3});
  swarm.bus.RunToQuiescence();
  const GossipStats stats = swarm.bus.stats();
  EXPECT_EQ(stats.published, 1u);
  EXPECT_EQ(stats.delivered, stats.forwarded);  // every enqueue delivered
  EXPECT_GE(stats.delivered, 15u);              // at least full coverage
}

}  // namespace
}  // namespace h2
