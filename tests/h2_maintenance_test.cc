// NameRing maintenance protocol tests (§3.3): asynchronous merging,
// cross-middleware synchronization by gossip, repair of clobbered merges,
// crash recovery from durable patch chains, and the tombstone-compaction
// safety rule.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "h2/h2cloud.h"

namespace h2 {
namespace {

std::vector<std::string> Names(H2AccountFs& fs, std::string_view path) {
  auto entries = fs.List(path, ListDetail::kNamesOnly);
  EXPECT_TRUE(entries.ok()) << entries.status().ToString();
  std::vector<std::string> names;
  if (entries.ok()) {
    for (const auto& e : *entries) names.push_back(e.name);
  }
  return names;
}

H2CloudConfig TwoMiddlewares() {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.middleware_count = 2;
  return cfg;
}

TEST(MaintenanceTest, CrossMiddlewareVisibilityAfterMaintenance) {
  H2Cloud cloud(TwoMiddlewares());
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  auto fs0 = std::move(cloud.OpenFilesystem("alice", 0)).value();
  auto fs1 = std::move(cloud.OpenFilesystem("alice", 1)).value();

  ASSERT_TRUE(fs0->Mkdir("/shared").ok());
  ASSERT_TRUE(
      fs0->WriteFile("/shared/from0", FileBlob::FromString("a")).ok());
  ASSERT_TRUE(
      fs1->WriteFile("/shared/from1", FileBlob::FromString("b")).ok());

  cloud.RunMaintenanceToQuiescence();

  EXPECT_EQ(Names(*fs0, "/shared"),
            (std::vector<std::string>{"from0", "from1"}));
  EXPECT_EQ(Names(*fs1, "/shared"),
            (std::vector<std::string>{"from0", "from1"}));
}

TEST(MaintenanceTest, ConcurrentPatchesToSameDirectoryConverge) {
  H2Cloud cloud(TwoMiddlewares());
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  auto fs0 = std::move(cloud.OpenFilesystem("alice", 0)).value();
  auto fs1 = std::move(cloud.OpenFilesystem("alice", 1)).value();

  ASSERT_TRUE(fs0->Mkdir("/hot").ok());
  // Interleave writes from both middlewares into one directory without any
  // maintenance in between: both accumulate unmerged patches.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs0->WriteFile("/hot/a" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
    ASSERT_TRUE(fs1->WriteFile("/hot/b" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
  }
  cloud.RunMaintenanceToQuiescence();

  const auto names0 = Names(*fs0, "/hot");
  const auto names1 = Names(*fs1, "/hot");
  EXPECT_EQ(names0.size(), 20u);
  EXPECT_EQ(names0, names1);
}

TEST(MaintenanceTest, GossipRepairsClobberedMerge) {
  // Both middlewares merge concurrently; one read-merge-write can clobber
  // the other.  The gossip join must restore the union.
  H2Cloud cloud(TwoMiddlewares());
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  auto fs0 = std::move(cloud.OpenFilesystem("alice", 0)).value();
  auto fs1 = std::move(cloud.OpenFilesystem("alice", 1)).value();

  ASSERT_TRUE(fs0->Mkdir("/d").ok());
  ASSERT_TRUE(fs0->WriteFile("/d/zero", FileBlob::FromString("x")).ok());
  cloud.RunMaintenanceToQuiescence();

  ASSERT_TRUE(fs0->WriteFile("/d/one", FileBlob::FromString("x")).ok());
  ASSERT_TRUE(fs1->WriteFile("/d/two", FileBlob::FromString("x")).ok());

  auto ns = fs0->Namespace("/d");
  ASSERT_TRUE(ns.ok());
  const std::string ring_key = ns->ToString() + "::/NameRing/";

  // Reproduce the read-merge-write race deterministically: capture the
  // ring as it stands after middleware 0's merge, let middleware 1 merge
  // on top, then stomp the stored object with the captured version --
  // exactly what a concurrent writer that read before middleware 1's PUT
  // would have done.
  cloud.middleware(0).MergeNamespace(*ns);
  OpMeter m;
  auto before = cloud.cloud().Get(ring_key, m);
  ASSERT_TRUE(before.ok());
  cloud.middleware(1).MergeNamespace(*ns);
  ASSERT_TRUE(cloud.cloud()
                  .Put(ring_key, std::move(before).value(), m)
                  .ok());  // clobbers middleware 1's "two"

  // Gossip: middleware 1 joins the stored ring with its local view and
  // writes the union back.
  cloud.gossip().Publish(0, Rumor{ns->ToString(), 1,
                                  cloud.cloud().clock().Tick()});
  cloud.RunMaintenanceToQuiescence();

  const auto names = Names(*fs0, "/d");
  EXPECT_EQ(names, (std::vector<std::string>{"one", "two", "zero"}));
  const auto c0 = cloud.middleware(0).counters();
  const auto c1 = cloud.middleware(1).counters();
  EXPECT_GE(c0.gossip_repairs + c1.gossip_repairs, 1u);
}

TEST(MaintenanceTest, CrashRecoveryReplaysDurablePatches) {
  // A middleware submits patches (durably) and "crashes" before merging.
  // A fresh middleware with the same node id recovers the chain from the
  // cloud and completes the merge.
  CloudConfig cloud_cfg;
  cloud_cfg.part_power = 8;
  ObjectCloud cloud(cloud_cfg);
  NamespaceId root;
  {
    H2Middleware mw(cloud, 1);
    OpMeter meter;
    ASSERT_TRUE(mw.CreateAccount("alice", meter).ok());
    root = *mw.AccountRoot("alice", meter);
    ASSERT_TRUE(mw.Mkdir(root, "/docs", meter).ok());
    ASSERT_TRUE(mw.WriteFile(root, "/docs/f1",
                             FileBlob::FromString("v"), meter)
                    .ok());
    ASSERT_TRUE(mw.WriteFile(root, "/docs/f2",
                             FileBlob::FromString("v"), meter)
                    .ok());
    // mw is destroyed with patches unmerged -- the "crash".
    EXPECT_FALSE(mw.MaintenanceIdle());
  }
  H2Middleware recovered(cloud, 1);
  OpMeter meter;
  // Reading the directory must see both files even before merging,
  // because SubmitPatch persisted them...  The fresh middleware has no
  // in-memory pending state, so visibility comes from recovery: a write
  // to the same NameRing loads the chain object and merges the orphans.
  ASSERT_TRUE(recovered
                  .WriteFile(root, "/docs/f3", FileBlob::FromString("v"),
                             meter)
                  .ok());
  auto ns = recovered.ResolvePath(root, "/docs", meter);
  ASSERT_TRUE(ns.ok());
  EXPECT_GT(recovered.MergeNamespace(*ns), 0u);
  auto entries = recovered.List(root, "/docs", ListDetail::kNamesOnly, meter);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
}

TEST(MaintenanceTest, EagerCompactionAllowsResurrection) {
  // The documented anomaly of the paper's eager use-time compaction
  // (tombstone_gc_age = 0): once a deletion tombstone is physically
  // compacted, a delayed older creation patch re-inserts the child.
  H2Config eager;
  eager.tombstone_gc_age = 0;
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.h2 = eager;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  auto fs = std::move(cloud.OpenFilesystem("alice", 0)).value();

  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->WriteFile("/d/ghost", FileBlob::FromString("x")).ok());
  const VirtualNanos create_ts = cloud.cloud().clock().Now() - kSecond;

  ASSERT_TRUE(fs->RemoveFile("/d/ghost").ok());
  cloud.RunMaintenanceToQuiescence();
  // LIST compacts the tombstone away immediately under gc_age = 0.
  EXPECT_TRUE(Names(*fs, "/d").empty());
  EXPECT_GT(cloud.middleware(0).counters().tombstones_compacted, 0u);

  // A delayed duplicate of the original creation patch arrives (e.g. a
  // retransmitted patch from a slow node).
  auto ns = fs->Namespace("/d");
  ASSERT_TRUE(ns.ok());
  NameRing ring = [&] {
    OpMeter m;
    ObjectCloud& oc = cloud.cloud();
    auto obj = oc.Get(ns->ToString() + "::/NameRing/", m);
    return *NameRing::Parse(obj->payload);
  }();
  NameRing late_patch;
  late_patch.Apply(RingTuple{"ghost", create_ts, EntryKind::kFile, false});
  ring.Merge(late_patch);
  // The tombstone is gone, so the stale creation wins: resurrection.
  EXPECT_TRUE(ring.HasLive("ghost"));
}

TEST(MaintenanceTest, GcAgePreventsResurrection) {
  // With the default gc age, the tombstone outlives the delayed patch and
  // last-writer-wins suppresses it.
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;  // default tombstone_gc_age = 2s
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  auto fs = std::move(cloud.OpenFilesystem("alice", 0)).value();

  ASSERT_TRUE(fs->Mkdir("/d").ok());
  ASSERT_TRUE(fs->WriteFile("/d/ghost", FileBlob::FromString("x")).ok());
  const VirtualNanos create_ts = cloud.cloud().clock().Now();
  ASSERT_TRUE(fs->RemoveFile("/d/ghost").ok());
  cloud.RunMaintenanceToQuiescence();
  EXPECT_TRUE(Names(*fs, "/d").empty());

  auto ns = fs->Namespace("/d");
  OpMeter m;
  auto obj = cloud.cloud().Get(ns->ToString() + "::/NameRing/", m);
  ASSERT_TRUE(obj.ok());
  NameRing ring = *NameRing::Parse(obj->payload);
  NameRing late_patch;
  late_patch.Apply(RingTuple{"ghost", create_ts, EntryKind::kFile, false});
  ring.Merge(late_patch);
  EXPECT_FALSE(ring.HasLive("ghost"));  // tombstone still present, wins
}

TEST(MaintenanceTest, SynchronousModeChargesForegroundOp) {
  // Ablation of §3.3.1's strawman: merging inline makes directory-changing
  // operations strictly more expensive.
  H2CloudConfig async_cfg;
  async_cfg.cloud.part_power = 8;
  H2CloudConfig sync_cfg = async_cfg;
  sync_cfg.h2.synchronous_maintenance = true;

  H2Cloud async_cloud(async_cfg);
  H2Cloud sync_cloud(sync_cfg);
  ASSERT_TRUE(async_cloud.CreateAccount("u").ok());
  ASSERT_TRUE(sync_cloud.CreateAccount("u").ok());
  auto afs = std::move(async_cloud.OpenFilesystem("u")).value();
  auto sfs = std::move(sync_cloud.OpenFilesystem("u")).value();

  ASSERT_TRUE(afs->Mkdir("/d").ok());
  const double async_ms = afs->last_op().elapsed_ms();
  ASSERT_TRUE(sfs->Mkdir("/d").ok());
  const double sync_ms = sfs->last_op().elapsed_ms();
  // Inline merging adds the read-merge-write of the parent NameRing
  // (a GET + PUT + chain PUT, ~35 ms) to the foreground MKDIR.
  EXPECT_GT(sync_ms, async_ms + 25.0);

  // And in synchronous mode nothing is left pending.
  EXPECT_TRUE(sync_cloud.middleware(0).MaintenanceIdle());
}

TEST(MaintenanceTest, MaintenanceCostIsAccounted) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs->WriteFile("/d/f" + std::to_string(i),
                              FileBlob::FromString("x"))
                    .ok());
  }
  EXPECT_EQ(cloud.TotalMaintenanceCost().elapsed, 0);
  cloud.RunMaintenanceToQuiescence();
  const OpCost cost = cloud.TotalMaintenanceCost();
  EXPECT_GT(cost.elapsed, 0);
  EXPECT_GT(cost.puts, 0u);
}

TEST(MaintenanceTest, DeleteAccountReclaimsEverything) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("temp").ok());
  auto fs = std::move(cloud.OpenFilesystem("temp")).value();
  ASSERT_TRUE(fs->Mkdir("/a").ok());
  ASSERT_TRUE(fs->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs->WriteFile("/a/b/f", FileBlob::FromString("x")).ok());
  cloud.RunMaintenanceToQuiescence();
  ASSERT_TRUE(cloud.DeleteAccount("temp").ok());
  cloud.RunMaintenanceToQuiescence();
  // Everything gone but (at most) stray patch-chain bookkeeping.
  EXPECT_LE(cloud.cloud().LogicalObjectCount(), 1u);
}

TEST(MaintenanceTest, ThreadedBackgroundMergerConverges) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.middleware_count = 2;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  auto fs0 = std::move(cloud.OpenFilesystem("alice", 0)).value();
  auto fs1 = std::move(cloud.OpenFilesystem("alice", 1)).value();
  ASSERT_TRUE(fs0->Mkdir("/t").ok());

  cloud.StartBackground(std::chrono::milliseconds(1));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs0->WriteFile("/t/a" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
    ASSERT_TRUE(fs1->WriteFile("/t/b" + std::to_string(i),
                               FileBlob::FromString("x"))
                    .ok());
  }
  // Wait for the background merger to drain.
  for (int spin = 0; spin < 2000; ++spin) {
    if (cloud.middleware(0).MaintenanceIdle() &&
        cloud.middleware(1).MaintenanceIdle() && cloud.gossip().Idle()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cloud.StopBackground();
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(Names(*fs0, "/t").size(), 40u);
  EXPECT_EQ(Names(*fs1, "/t").size(), 40u);
}

}  // namespace
}  // namespace h2
