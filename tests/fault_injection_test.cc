// Fault-injection torture tests: nodes flap and fail while clients keep
// operating.  Individual operations may legitimately fail with
// Unavailable; what must hold afterwards are the system invariants:
// the filesystem stays responsive, listings contain no duplicates, every
// listed file is readable, and maintenance converges once the cluster
// heals.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "h2/h2cloud.h"
#include "h2/monitor.h"
#include "hash/md5.h"

namespace h2 {
namespace {

TEST(FaultInjectionTest, NodeFlappingDuringWrites) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();
  ASSERT_TRUE(fs->Mkdir("/dir").ok());

  Rng rng(1234);
  std::set<std::string> expected;
  int failed_writes = 0;
  for (int i = 0; i < 200; ++i) {
    // Flap a random node every few operations (at most one down at a
    // time, so quorums always exist).
    if (i % 10 == 0) {
      for (std::size_t n = 0; n < cloud.cloud().node_count(); ++n) {
        cloud.cloud().node(n).SetDown(false);
      }
      cloud.cloud().node(rng.Below(cloud.cloud().node_count())).SetDown(true);
    }
    const std::string name = "f" + std::to_string(i);
    const Status st =
        fs->WriteFile("/dir/" + name, FileBlob::FromString("v" + name));
    if (st.ok()) {
      expected.insert(name);
    } else {
      ++failed_writes;
      EXPECT_EQ(st.code(), ErrorCode::kUnavailable) << st.ToString();
    }
  }
  // Heal and converge.
  for (std::size_t n = 0; n < cloud.cloud().node_count(); ++n) {
    cloud.cloud().node(n).SetDown(false);
  }
  cloud.RunMaintenanceToQuiescence();
  cloud.cloud().RepairReplicas();

  // With single-node outages and 3-way quorums, writes should all pass.
  EXPECT_EQ(failed_writes, 0);

  auto entries = fs->List("/dir", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  std::set<std::string> listed;
  for (const auto& e : *entries) {
    EXPECT_TRUE(listed.insert(e.name).second) << "duplicate " << e.name;
  }
  EXPECT_EQ(listed, expected);
  for (const auto& name : expected) {
    auto blob = fs->ReadFile("/dir/" + name);
    ASSERT_TRUE(blob.ok()) << name << ": " << blob.status().ToString();
    EXPECT_EQ(blob->data, "v" + name);
  }
}

TEST(FaultInjectionTest, InjectedErrorRatesSurfaceAsUnavailable) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();

  for (std::size_t n = 0; n < cloud.cloud().node_count(); ++n) {
    cloud.cloud().node(n).SetErrorRate(0.4);
  }
  int ok = 0, unavailable = 0, other = 0;
  for (int i = 0; i < 100; ++i) {
    const Status st =
        fs->WriteFile("/f" + std::to_string(i), FileBlob::FromString("x"));
    if (st.ok()) {
      ++ok;
    } else if (st.code() == ErrorCode::kUnavailable) {
      ++unavailable;
    } else {
      ++other;
    }
  }
  // Failures are expressed as Unavailable, never as silent corruption or
  // misleading codes.
  EXPECT_EQ(other, 0);
  EXPECT_GT(ok, 0);
  EXPECT_GT(unavailable, 0);

  for (std::size_t n = 0; n < cloud.cloud().node_count(); ++n) {
    cloud.cloud().node(n).SetErrorRate(0.0);
  }
  cloud.RunMaintenanceToQuiescence();
  // Everything that reported success is durable and listed.
  auto entries = fs->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  EXPECT_GE(static_cast<int>(entries->size()), ok);
  for (const auto& e : *entries) {
    EXPECT_TRUE(fs->ReadFile("/" + e.name).ok()) << e.name;
  }
}

TEST(FaultInjectionTest, CreateAccountSurvivesRecordPutFailure) {
  // CREATE ACCOUNT writes the root NameRing first and the account record
  // last; the record is the commit point.  Failing the record PUT must
  // leave no half-created account behind, and a plain retry must succeed.
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);

  cloud.cloud().FailPutsMatching("account::");
  EXPECT_FALSE(cloud.CreateAccount("alice").ok());
  // No commit point was written: the account does not exist in any
  // observable way (only an orphan ring object remains in the cloud).
  EXPECT_EQ(cloud.OpenFilesystem("alice").code(), ErrorCode::kNotFound);

  cloud.cloud().FailPutsMatching("");
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  auto fs = std::move(cloud.OpenFilesystem("alice")).value();
  ASSERT_TRUE(fs->Mkdir("/home").ok());
  ASSERT_TRUE(
      fs->WriteFile("/home/f", FileBlob::FromString("durable")).ok());
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(fs->ReadFile("/home/f")->data, "durable");
}

TEST(FaultInjectionTest, MaintenanceRetriesThroughOutage) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs->WriteFile("/d/f" + std::to_string(i),
                              FileBlob::FromString("x"))
                    .ok());
  }
  // Take down two nodes (quorum still possible on an 8-node ring for most
  // partitions, but some merges may fail and must retry).
  cloud.cloud().node(0).SetDown(true);
  cloud.cloud().node(1).SetDown(true);
  cloud.RunMaintenanceStep();
  cloud.cloud().node(0).SetDown(false);
  cloud.cloud().node(1).SetDown(false);
  cloud.RunMaintenanceToQuiescence();

  const MonitorSnapshot snapshot = CollectSnapshot(cloud);
  EXPECT_TRUE(snapshot.FullyConverged());
  EXPECT_EQ(snapshot.TotalPatchesMerged(),
            snapshot.TotalPatchesSubmitted());
  auto entries = fs->List("/d", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 5u);
}

// All ring owners of every key hold bit-identical copies (payload and
// modification timestamp).  The strongest convergence statement the
// substrate can make after repair.
::testing::AssertionResult ReplicasBitIdentical(ObjectCloud& oc) {
  for (std::size_t n = 0; n < oc.node_count(); ++n) {
    // Snapshot first: ForEach holds the node's lock, and the cross-checks
    // below Get() from the very node being enumerated.
    std::vector<std::pair<std::string, ObjectValue>> mine;
    oc.node(n).ForEach([&](const std::string& key, const ObjectValue& value) {
      mine.emplace_back(key, value);
    });
    for (const auto& [key, value] : mine) {
      for (DeviceId owner : oc.ring().ReplicasOfHash(Md5::Hash64(key))) {
        auto theirs = oc.node(owner).Get(key);
        if (!theirs.ok()) {
          return ::testing::AssertionFailure()
                 << key << " missing on node " << owner;
        }
        if (theirs->payload != value.payload ||
            theirs->modified != value.modified) {
          return ::testing::AssertionFailure()
                 << key << " diverges between node " << n << " and node "
                 << owner;
        }
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(FaultInjectionTest, NodeCrashWriteReviveConverges) {
  // The issue's acceptance scenario: kill one node, keep writing through
  // the outage, revive it, run maintenance plus one anti-entropy sweep --
  // every replica must be bit-identical and the divergence oracle empty.
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs->WriteFile("/d/f" + std::to_string(i),
                              FileBlob::FromString("seed" + std::to_string(i)))
                    .ok());
  }
  cloud.RunMaintenanceToQuiescence();

  cloud.cloud().node(0).SetDown(true);
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const std::string path = "/d/f" + std::to_string(rng.Below(200));
    switch (rng.Below(4)) {
      case 0:
        (void)fs->RemoveFile(path);
        break;
      case 1:
        (void)fs->ReadFile(path);
        break;
      default:
        ASSERT_TRUE(
            fs->WriteFile(path, FileBlob::FromString("w" + std::to_string(i)))
                .ok());
        break;
    }
  }
  cloud.cloud().node(0).SetDown(false);

  cloud.RunMaintenanceToQuiescence();
  (void)cloud.cloud().ReplicaScrub();
  EXPECT_EQ(cloud.cloud().DivergentKeyCount(), 0u);
  EXPECT_TRUE(ReplicasBitIdentical(cloud.cloud()));
  // The repair machinery actually did something and was priced.
  const auto stats = cloud.cloud().repair_stats();
  EXPECT_GT(stats.hints_queued + stats.read_repairs_pushed +
                stats.scrub_repairs_pushed,
            0u);
  EXPECT_GT(cloud.cloud().repair_cost().elapsed, 0);
}

TEST(FaultInjectionTest, SegmentLogCrashRecoveryConverges) {
  // Crash-recovery acceptance scenario (ISSUE 7): on the segment-log
  // backend with a wide group-commit window, power-cycle a node
  // mid-batch.  The un-fsynced tail is lost, the durable log replays on
  // Restart(), and hint replay plus one anti-entropy sweep must bring
  // every replica back to bit-identical -- zero divergent keys.
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.cloud.backend.kind = BackendKind::kSegmentLog;
  cfg.cloud.backend.group_commit_window = 32;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(fs->WriteFile("/d/f" + std::to_string(i),
                              FileBlob::FromString("seed" + std::to_string(i)))
                    .ok());
  }
  cloud.RunMaintenanceToQuiescence();

  // Power loss mid-batch: node 0 has an open group-commit window (its
  // record count is not a multiple of 32), so real records die with it.
  cloud.cloud().node(0).Crash();
  const BackendStats crashed = cloud.cloud().node(0).backend_stats();
  EXPECT_GE(crashed.crashes, 1u);

  // Clients keep writing through the outage; hints park for node 0.
  Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    const std::string path = "/d/f" + std::to_string(rng.Below(120));
    if (rng.Below(5) == 0) {
      (void)fs->RemoveFile(path);
    } else {
      ASSERT_TRUE(
          fs->WriteFile(path, FileBlob::FromString("w" + std::to_string(i)))
              .ok());
    }
  }

  ASSERT_TRUE(cloud.cloud().node(0).Restart().ok());
  const BackendStats recovered = cloud.cloud().node(0).backend_stats();
  EXPECT_GE(recovered.recoveries, 1u);
  EXPECT_GT(recovered.records_replayed, 0u);

  cloud.RunMaintenanceToQuiescence();
  for (int sweep = 0; sweep < 8; ++sweep) {
    if (cloud.cloud().ReplicaScrub().divergent_keys == 0) break;
  }
  EXPECT_EQ(cloud.cloud().DivergentKeyCount(), 0u);
  EXPECT_TRUE(ReplicasBitIdentical(cloud.cloud()));
}

TEST(FaultInjectionTest, ZoneOutageFailureStormConverges) {
  // Failure storm (ISSUE 8): with zone-aware placement every partition
  // keeps its replicas in three distinct zones, so power-cycling an
  // entire zone on the segment-log backend leaves two live copies of
  // everything.  Degraded reads must stay stale-free throughout the
  // outage, and after the zone restarts the cluster must converge to
  // zero divergent keys with bit-identical replicas.
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  cfg.cloud.node_count = 9;
  cfg.cloud.zone_count = 3;
  cfg.cloud.backend.kind = BackendKind::kSegmentLog;
  cfg.cloud.backend.group_commit_window = 32;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(fs->WriteFile("/d/f" + std::to_string(i),
                              FileBlob::FromString("seed" + std::to_string(i)))
                    .ok());
  }
  cloud.RunMaintenanceToQuiescence();

  // Power loss takes out every node in zone 1 at once.
  std::vector<std::size_t> dark;
  for (std::size_t n = 0; n < cloud.cloud().node_count(); ++n) {
    if (cloud.cloud().node(n).zone() == 1) {
      cloud.cloud().node(n).Crash();
      dark.push_back(n);
    }
  }
  ASSERT_EQ(dark.size(), 3u);

  // Clients keep operating against the surviving two zones.  Every read
  // of a path we just wrote must observe that write -- a stale answer
  // here would mean a degraded GET picked a copy the outage froze.
  Rng rng(47);
  std::vector<std::string> last(160);
  for (int i = 0; i < 400; ++i) {
    const int f = static_cast<int>(rng.Below(160));
    const std::string path = "/d/f" + std::to_string(f);
    if (rng.Below(3) == 0 && !last[f].empty()) {
      auto blob = fs->ReadFile(path);
      ASSERT_TRUE(blob.ok()) << path << ": " << blob.status().ToString();
      EXPECT_EQ(blob->data, last[f]) << "stale degraded read of " << path;
    } else {
      const std::string value = "storm" + std::to_string(i);
      ASSERT_TRUE(fs->WriteFile(path, FileBlob::FromString(value)).ok());
      last[f] = value;
    }
  }

  // The zone comes back: durable log replays, hints drain, anti-entropy
  // closes whatever the group-commit window lost.
  for (std::size_t n : dark) {
    ASSERT_TRUE(cloud.cloud().node(n).Restart().ok());
    EXPECT_GE(cloud.cloud().node(n).backend_stats().recoveries, 1u);
  }
  cloud.RunMaintenanceToQuiescence();
  for (int sweep = 0; sweep < 8; ++sweep) {
    if (cloud.cloud().ReplicaScrub().divergent_keys == 0) break;
  }
  EXPECT_EQ(cloud.cloud().DivergentKeyCount(), 0u);
  EXPECT_TRUE(ReplicasBitIdentical(cloud.cloud()));
  // Reads after recovery still see the storm's final values.
  for (int f = 0; f < 160; ++f) {
    if (last[f].empty()) continue;
    auto blob = fs->ReadFile("/d/f" + std::to_string(f));
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(blob->data, last[f]);
  }
}

TEST(FaultInjectionTest, FlakyNodeSoakConverges) {
  // Two nodes drop a third of their requests while clients churn; after
  // the flakiness clears, maintenance plus anti-entropy sweeps must end
  // with zero divergent keys.
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());

  cloud.cloud().node(2).SetErrorRate(0.3);
  cloud.cloud().node(5).SetErrorRate(0.3);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const std::string path = "/d/s" + std::to_string(rng.Below(80));
    // Individual ops may fail Unavailable under the injected error rate;
    // convergence afterwards is what matters.
    (void)fs->WriteFile(path, FileBlob::FromString("v" + std::to_string(i)));
    if (i % 3 == 0) (void)fs->ReadFile(path);
  }
  cloud.cloud().node(2).SetErrorRate(0.0);
  cloud.cloud().node(5).SetErrorRate(0.0);

  cloud.RunMaintenanceToQuiescence();
  // Scrub until quiescent (a push can itself hit a laggard's tombstone
  // ordering; two sweeps are plenty in practice).
  for (int sweep = 0; sweep < 8; ++sweep) {
    if (cloud.cloud().ReplicaScrub().divergent_keys == 0) break;
  }
  EXPECT_EQ(cloud.cloud().DivergentKeyCount(), 0u);
  EXPECT_TRUE(ReplicasBitIdentical(cloud.cloud()));
}

}  // namespace
}  // namespace h2
