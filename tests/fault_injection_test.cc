// Fault-injection torture tests: nodes flap and fail while clients keep
// operating.  Individual operations may legitimately fail with
// Unavailable; what must hold afterwards are the system invariants:
// the filesystem stays responsive, listings contain no duplicates, every
// listed file is readable, and maintenance converges once the cluster
// heals.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "h2/h2cloud.h"
#include "h2/monitor.h"

namespace h2 {
namespace {

TEST(FaultInjectionTest, NodeFlappingDuringWrites) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();
  ASSERT_TRUE(fs->Mkdir("/dir").ok());

  Rng rng(1234);
  std::set<std::string> expected;
  int failed_writes = 0;
  for (int i = 0; i < 200; ++i) {
    // Flap a random node every few operations (at most one down at a
    // time, so quorums always exist).
    if (i % 10 == 0) {
      for (std::size_t n = 0; n < cloud.cloud().node_count(); ++n) {
        cloud.cloud().node(n).SetDown(false);
      }
      cloud.cloud().node(rng.Below(cloud.cloud().node_count())).SetDown(true);
    }
    const std::string name = "f" + std::to_string(i);
    const Status st =
        fs->WriteFile("/dir/" + name, FileBlob::FromString("v" + name));
    if (st.ok()) {
      expected.insert(name);
    } else {
      ++failed_writes;
      EXPECT_EQ(st.code(), ErrorCode::kUnavailable) << st.ToString();
    }
  }
  // Heal and converge.
  for (std::size_t n = 0; n < cloud.cloud().node_count(); ++n) {
    cloud.cloud().node(n).SetDown(false);
  }
  cloud.RunMaintenanceToQuiescence();
  cloud.cloud().RepairReplicas();

  // With single-node outages and 3-way quorums, writes should all pass.
  EXPECT_EQ(failed_writes, 0);

  auto entries = fs->List("/dir", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  std::set<std::string> listed;
  for (const auto& e : *entries) {
    EXPECT_TRUE(listed.insert(e.name).second) << "duplicate " << e.name;
  }
  EXPECT_EQ(listed, expected);
  for (const auto& name : expected) {
    auto blob = fs->ReadFile("/dir/" + name);
    ASSERT_TRUE(blob.ok()) << name << ": " << blob.status().ToString();
    EXPECT_EQ(blob->data, "v" + name);
  }
}

TEST(FaultInjectionTest, InjectedErrorRatesSurfaceAsUnavailable) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();

  for (std::size_t n = 0; n < cloud.cloud().node_count(); ++n) {
    cloud.cloud().node(n).SetErrorRate(0.4);
  }
  int ok = 0, unavailable = 0, other = 0;
  for (int i = 0; i < 100; ++i) {
    const Status st =
        fs->WriteFile("/f" + std::to_string(i), FileBlob::FromString("x"));
    if (st.ok()) {
      ++ok;
    } else if (st.code() == ErrorCode::kUnavailable) {
      ++unavailable;
    } else {
      ++other;
    }
  }
  // Failures are expressed as Unavailable, never as silent corruption or
  // misleading codes.
  EXPECT_EQ(other, 0);
  EXPECT_GT(ok, 0);
  EXPECT_GT(unavailable, 0);

  for (std::size_t n = 0; n < cloud.cloud().node_count(); ++n) {
    cloud.cloud().node(n).SetErrorRate(0.0);
  }
  cloud.RunMaintenanceToQuiescence();
  // Everything that reported success is durable and listed.
  auto entries = fs->List("/", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  EXPECT_GE(static_cast<int>(entries->size()), ok);
  for (const auto& e : *entries) {
    EXPECT_TRUE(fs->ReadFile("/" + e.name).ok()) << e.name;
  }
}

TEST(FaultInjectionTest, CreateAccountSurvivesRecordPutFailure) {
  // CREATE ACCOUNT writes the root NameRing first and the account record
  // last; the record is the commit point.  Failing the record PUT must
  // leave no half-created account behind, and a plain retry must succeed.
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);

  cloud.cloud().FailPutsMatching("account::");
  EXPECT_FALSE(cloud.CreateAccount("alice").ok());
  // No commit point was written: the account does not exist in any
  // observable way (only an orphan ring object remains in the cloud).
  EXPECT_EQ(cloud.OpenFilesystem("alice").code(), ErrorCode::kNotFound);

  cloud.cloud().FailPutsMatching("");
  ASSERT_TRUE(cloud.CreateAccount("alice").ok());
  auto fs = std::move(cloud.OpenFilesystem("alice")).value();
  ASSERT_TRUE(fs->Mkdir("/home").ok());
  ASSERT_TRUE(
      fs->WriteFile("/home/f", FileBlob::FromString("durable")).ok());
  cloud.RunMaintenanceToQuiescence();
  EXPECT_EQ(fs->ReadFile("/home/f")->data, "durable");
}

TEST(FaultInjectionTest, MaintenanceRetriesThroughOutage) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("t").ok());
  auto fs = std::move(cloud.OpenFilesystem("t")).value();
  ASSERT_TRUE(fs->Mkdir("/d").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs->WriteFile("/d/f" + std::to_string(i),
                              FileBlob::FromString("x"))
                    .ok());
  }
  // Take down two nodes (quorum still possible on an 8-node ring for most
  // partitions, but some merges may fail and must retry).
  cloud.cloud().node(0).SetDown(true);
  cloud.cloud().node(1).SetDown(true);
  cloud.RunMaintenanceStep();
  cloud.cloud().node(0).SetDown(false);
  cloud.cloud().node(1).SetDown(false);
  cloud.RunMaintenanceToQuiescence();

  const MonitorSnapshot snapshot = CollectSnapshot(cloud);
  EXPECT_TRUE(snapshot.FullyConverged());
  EXPECT_EQ(snapshot.TotalPatchesMerged(),
            snapshot.TotalPatchesSubmitted());
  auto entries = fs->List("/d", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 5u);
}

}  // namespace
}  // namespace h2
