#include <gtest/gtest.h>

#include <set>

#include "baselines/swift_fs.h"
#include "fs/path.h"
#include "h2/h2cloud.h"
#include "workload/trace.h"
#include "workload/tree_gen.h"

namespace h2 {
namespace {

TEST(TreeGenTest, DeterministicForSeed) {
  const TreeSpec spec = TreeSpec::Light(42);
  const GeneratedTree a = GenerateTree(spec);
  const GeneratedTree b = GenerateTree(spec);
  ASSERT_EQ(a.dirs.size(), b.dirs.size());
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].path, b.files[i].path);
    EXPECT_EQ(a.files[i].size, b.files[i].size);
  }
}

TEST(TreeGenTest, DifferentSeedsDiffer) {
  const GeneratedTree a = GenerateTree(TreeSpec::Light(1));
  const GeneratedTree b = GenerateTree(TreeSpec::Light(2));
  bool any_diff = a.files.size() != b.files.size();
  for (std::size_t i = 0; !any_diff && i < a.files.size(); ++i) {
    any_diff = a.files[i].path != b.files[i].path ||
               a.files[i].size != b.files[i].size;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TreeGenTest, RespectsCounts) {
  TreeSpec spec;
  spec.file_count = 500;
  spec.dir_count = 50;
  spec.max_depth = 6;
  const GeneratedTree tree = GenerateTree(spec);
  EXPECT_EQ(tree.dirs.size(), 50u);
  EXPECT_EQ(tree.files.size(), 500u);
  EXPECT_LE(tree.max_depth(), 7u);  // dirs <= 6 deep, files one deeper
}

TEST(TreeGenTest, ParentsComeBeforeChildren) {
  const GeneratedTree tree = GenerateTree(TreeSpec::Heavy(3));
  std::set<std::string> seen{"/"};
  for (const auto& dir : tree.dirs) {
    EXPECT_TRUE(seen.contains(ParentPath(dir))) << dir;
    seen.insert(dir);
  }
  for (const auto& file : tree.files) {
    EXPECT_TRUE(seen.contains(ParentPath(file.path))) << file.path;
  }
}

TEST(TreeGenTest, PathsAreUnique) {
  const GeneratedTree tree = GenerateTree(TreeSpec::Light(9));
  std::set<std::string> paths(tree.dirs.begin(), tree.dirs.end());
  for (const auto& f : tree.files) {
    EXPECT_TRUE(paths.insert(f.path).second) << f.path;
  }
}

TEST(TreeGenTest, FileSizeDistributionMatchesPaper) {
  // §5.1: sub-KB configs through multi-GB videos, ~1 MB mean object size.
  Rng rng(123);
  double total = 0;
  std::size_t tiny = 0, huge = 0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t size = SampleFileSize(rng);
    total += static_cast<double>(size);
    if (size < 1024) ++tiny;
    if (size > (1ULL << 30)) ++huge;
  }
  const double mean_mib = total / kSamples / (1 << 20);
  EXPECT_GT(mean_mib, 0.3);
  EXPECT_LT(mean_mib, 6.0);
  EXPECT_GT(tiny, kSamples / 3);        // plenty of tiny config files
  EXPECT_GT(huge, 10u);                 // the multi-GB tail exists
  EXPECT_LT(huge, kSamples / 100);
}

TEST(TreeGenTest, PopulateRoundTripsThroughH2) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();

  const GeneratedTree tree = GenerateTree(TreeSpec::Light(5));
  OpCost cost;
  ASSERT_TRUE(PopulateTree(*fs, tree, &cost).ok());
  EXPECT_GT(cost.elapsed, 0);
  EXPECT_GT(cost.puts, tree.files.size());

  for (std::size_t i = 0; i < tree.files.size(); i += 37) {
    auto info = fs->Stat(tree.files[i].path);
    ASSERT_TRUE(info.ok()) << tree.files[i].path;
    EXPECT_EQ(info->size, tree.files[i].size);
  }
}

TEST(TraceTest, DeterministicAndComplete) {
  const GeneratedTree tree = GenerateTree(TreeSpec::Light(5));
  const auto a = GenerateTrace(tree, 300, TraceMix{}, 11);
  const auto b = GenerateTrace(tree, 300, TraceMix{}, 11);
  ASSERT_EQ(a.size(), 300u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].path2, b[i].path2);
  }
}

TEST(TraceTest, MixIsRespected) {
  const GeneratedTree tree = GenerateTree(TreeSpec::Light(5));
  TraceMix mix;
  mix.stat = 100;
  mix.read = mix.write = mix.list = mix.mkdir = mix.move = mix.rename =
      mix.copy = mix.remove = mix.rmdir = 0;
  const auto trace = GenerateTrace(tree, 100, mix, 1);
  for (const TraceOp& op : trace) {
    EXPECT_EQ(op.kind, TraceOpKind::kStat);
  }
}

TEST(TraceTest, ReplaysWithoutFailuresOnH2) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();
  const GeneratedTree tree = GenerateTree(TreeSpec::Light(8));
  ASSERT_TRUE(PopulateTree(*fs, tree).ok());
  const auto trace = GenerateTrace(tree, 400, TraceMix{}, 21);
  const ReplayStats stats = ReplayTrace(*fs, trace);
  EXPECT_EQ(stats.failures, 0u) << "trace must be valid against the model";
  EXPECT_EQ(stats.ops, 400u);
  EXPECT_GT(stats.total_cost.elapsed, 0);
}

TEST(TraceTest, ReplaysIdenticallyAcrossSystems) {
  // The same trace must be valid for every implementation -- that is what
  // makes cross-system comparisons fair.
  const GeneratedTree tree = GenerateTree(TreeSpec::Light(13));
  const auto trace = GenerateTrace(tree, 300, TraceMix{}, 5);

  CloudConfig cloud_cfg;
  cloud_cfg.part_power = 8;
  ObjectCloud swift_cloud(cloud_cfg);
  SwiftFs swift(swift_cloud);
  ASSERT_TRUE(PopulateTree(swift, tree).ok());
  EXPECT_EQ(ReplayTrace(swift, trace).failures, 0u);
}

TEST(BuildersTest, FillDirectoryAndChain) {
  H2CloudConfig cfg;
  cfg.cloud.part_power = 8;
  H2Cloud cloud(cfg);
  ASSERT_TRUE(cloud.CreateAccount("u").ok());
  auto fs = std::move(cloud.OpenFilesystem("u")).value();

  ASSERT_TRUE(FillDirectory(*fs, "/dir", 25).ok());
  auto entries = fs->List("/dir", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 25u);

  auto deepest = MakeChain(*fs, 6);
  ASSERT_TRUE(deepest.ok());
  EXPECT_EQ(PathDepth(*deepest), 6u);
  EXPECT_TRUE(fs->Stat(*deepest).ok());
}

}  // namespace
}  // namespace h2
