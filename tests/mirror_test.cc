// Cross-system mirroring tests: trees copied between different systems
// through the shared interface remain observably identical.
#include <gtest/gtest.h>

#include "baselines/snapshot_fs.h"
#include "baselines/swift_fs.h"
#include "h2/h2cloud.h"
#include "workload/mirror.h"
#include "workload/tree_gen.h"

namespace h2 {
namespace {

CloudConfig SmallCloud() {
  CloudConfig cfg;
  cfg.part_power = 8;
  return cfg;
}

struct H2Box {
  H2Box() {
    H2CloudConfig cfg;
    cfg.cloud.part_power = 8;
    cloud = std::make_unique<H2Cloud>(cfg);
    EXPECT_TRUE(cloud->CreateAccount("u").ok());
    fs = std::move(cloud->OpenFilesystem("u")).value();
  }
  std::unique_ptr<H2Cloud> cloud;
  std::unique_ptr<H2AccountFs> fs;
};

TEST(MirrorTest, H2ToSwiftAndBack) {
  H2Box h2;
  const GeneratedTree tree = GenerateTree(TreeSpec::Light(55));
  ASSERT_TRUE(PopulateTree(*h2.fs, tree).ok());
  h2.cloud->RunMaintenanceToQuiescence();

  ObjectCloud swift_cloud(SmallCloud());
  SwiftFs swift(swift_cloud);
  auto stats = MirrorTree(*h2.fs, swift);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->files, tree.files.size());
  EXPECT_EQ(stats->directories, tree.dirs.size());
  EXPECT_EQ(stats->bytes, tree.total_bytes());

  auto equal = TreesEqual(*h2.fs, swift);
  ASSERT_TRUE(equal.ok());
  EXPECT_TRUE(*equal);

  // Round-trip into a fresh H2.
  H2Box h2b;
  ASSERT_TRUE(MirrorTree(swift, *h2b.fs).ok());
  h2b.cloud->RunMaintenanceToQuiescence();
  auto equal2 = TreesEqual(*h2.fs, *h2b.fs);
  ASSERT_TRUE(equal2.ok());
  EXPECT_TRUE(*equal2);
}

TEST(MirrorTest, BackupIntoCumulusPreservesEverything) {
  H2Box h2;
  ASSERT_TRUE(h2.fs->Mkdir("/docs").ok());
  ASSERT_TRUE(h2.fs->Mkdir("/docs/sub").ok());
  ASSERT_TRUE(
      h2.fs->WriteFile("/docs/a.txt", FileBlob::FromString("alpha")).ok());
  ASSERT_TRUE(h2.fs->WriteFile("/docs/sub/b.txt",
                               FileBlob::FromString("beta"))
                  .ok());
  ASSERT_TRUE(h2.fs->WriteFile("/video.mp4",
                               FileBlob::Synthetic("v", 1ULL << 28))
                  .ok());
  h2.cloud->RunMaintenanceToQuiescence();

  ObjectCloud backup_cloud(SmallCloud());
  SnapshotFs backup(backup_cloud);
  ASSERT_TRUE(MirrorTree(*h2.fs, backup).ok());
  auto equal = TreesEqual(*h2.fs, backup);
  ASSERT_TRUE(equal.ok());
  EXPECT_TRUE(*equal);
  // Synthetic logical size survives the round trip.
  auto info = backup.Stat("/video.mp4");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 1ULL << 28);
}

TEST(MirrorTest, TreesEqualDetectsDifferences) {
  H2Box a, b;
  ASSERT_TRUE(a.fs->WriteFile("/f", FileBlob::FromString("one")).ok());
  ASSERT_TRUE(b.fs->WriteFile("/f", FileBlob::FromString("two")).ok());
  auto equal = TreesEqual(*a.fs, *b.fs);
  ASSERT_TRUE(equal.ok());
  EXPECT_FALSE(*equal);

  ASSERT_TRUE(b.fs->WriteFile("/f", FileBlob::FromString("one")).ok());
  equal = TreesEqual(*a.fs, *b.fs);
  ASSERT_TRUE(equal.ok());
  EXPECT_TRUE(*equal);

  ASSERT_TRUE(b.fs->Mkdir("/extra").ok());
  equal = TreesEqual(*a.fs, *b.fs);
  ASSERT_TRUE(equal.ok());
  EXPECT_FALSE(*equal);
}

TEST(MirrorTest, MirrorIntoExistingMerges) {
  H2Box src, dst;
  ASSERT_TRUE(src.fs->Mkdir("/d").ok());
  ASSERT_TRUE(src.fs->WriteFile("/d/from_src", FileBlob::FromString("s")).ok());
  ASSERT_TRUE(dst.fs->Mkdir("/d").ok());
  ASSERT_TRUE(
      dst.fs->WriteFile("/d/pre_existing", FileBlob::FromString("p")).ok());
  ASSERT_TRUE(MirrorTree(*src.fs, *dst.fs).ok());
  dst.cloud->RunMaintenanceToQuiescence();
  auto entries = dst.fs->List("/d", ListDetail::kNamesOnly);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);  // merged, not replaced
}

}  // namespace
}  // namespace h2
