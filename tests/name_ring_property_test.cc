// Property tests for the NameRing merge algorithm (§3.3.2).
//
// The asynchronous maintenance protocol applies patches in whatever order
// intra-node merging and gossip happen to deliver them, so convergence
// requires Merge to be a semilattice join: commutative, associative and
// idempotent, with Apply monotone.  These properties are what the paper
// implicitly relies on for "each node can eventually have the same
// NameRing views"; we check them on randomized rings.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "h2/name_ring.h"

namespace h2 {
namespace {

NameRing RandomRing(Rng& rng, std::size_t max_tuples, std::size_t name_pool) {
  NameRing ring;
  const std::size_t n = rng.Below(max_tuples + 1);
  for (std::size_t i = 0; i < n; ++i) {
    RingTuple t;
    t.name = "n" + std::to_string(rng.Below(name_pool));
    t.timestamp = static_cast<VirtualNanos>(rng.Below(1000));
    t.kind = rng.Chance(0.3) ? EntryKind::kDirectory : EntryKind::kFile;
    t.deleted = rng.Chance(0.25);
    ring.Apply(std::move(t));
  }
  if (rng.Chance(0.5)) {
    ring.NoteMerged(static_cast<std::uint32_t>(rng.Below(4)),
                    rng.Below(20));
  }
  return ring;
}

class MergePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergePropertyTest, MergeIsCommutative) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const NameRing a = RandomRing(rng, 12, 8);
    const NameRing b = RandomRing(rng, 12, 8);
    NameRing ab = a;
    ab.Merge(b);
    NameRing ba = b;
    ba.Merge(a);
    // The small timestamp range (1000 values) makes equal-timestamp
    // collisions common; the deterministic tie-break (deleted wins, then
    // directory over file) resolves them identically on both sides.
    EXPECT_EQ(ab, ba);
  }
}

TEST_P(MergePropertyTest, MergeIsAssociative) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int iter = 0; iter < 50; ++iter) {
    const NameRing a = RandomRing(rng, 10, 6);
    const NameRing b = RandomRing(rng, 10, 6);
    const NameRing c = RandomRing(rng, 10, 6);
    NameRing left = a;
    left.Merge(b);
    left.Merge(c);
    NameRing bc = b;
    bc.Merge(c);
    NameRing right = a;
    right.Merge(bc);
    EXPECT_EQ(left, right);
  }
}

TEST_P(MergePropertyTest, MergeIsIdempotent) {
  Rng rng(GetParam() ^ 0x5555);
  for (int iter = 0; iter < 50; ++iter) {
    const NameRing a = RandomRing(rng, 12, 8);
    NameRing merged = a;
    merged.Merge(a);
    EXPECT_EQ(merged, a);
  }
}

TEST_P(MergePropertyTest, SelfMergeAfterOtherIsStable) {
  Rng rng(GetParam() ^ 0x1234);
  for (int iter = 0; iter < 50; ++iter) {
    const NameRing a = RandomRing(rng, 12, 8);
    const NameRing b = RandomRing(rng, 12, 8);
    NameRing once = a;
    once.Merge(b);
    NameRing twice = once;
    twice.Merge(b);
    twice.Merge(a);
    EXPECT_EQ(once, twice);  // join is monotone and absorbing
  }
}

TEST_P(MergePropertyTest, SerializationRoundTripsRandomRings) {
  Rng rng(GetParam() ^ 0x9999);
  for (int iter = 0; iter < 50; ++iter) {
    const NameRing a = RandomRing(rng, 20, 15);
    auto parsed = NameRing::Parse(a.Serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a);
  }
}

TEST_P(MergePropertyTest, MergeNeverRemovesTuples) {
  // §3.3.2: "no child is removed from the NameRing in the patch-NameRing
  // merging phase."
  Rng rng(GetParam() ^ 0x77);
  for (int iter = 0; iter < 50; ++iter) {
    NameRing a = RandomRing(rng, 12, 8);
    const std::size_t before = a.tuple_count();
    a.Merge(RandomRing(rng, 12, 8));
    EXPECT_GE(a.tuple_count(), before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Patch-application order independence: merging patches one by one, in any
// order, equals merging the "big patch" (intra-node pairwise merging of
// §3.3.2 phase 2 step 1).
TEST(MergeOrderTest, PatchOrderDoesNotMatter) {
  Rng rng(4242);
  for (int iter = 0; iter < 30; ++iter) {
    NameRing base = RandomRing(rng, 8, 6);
    std::vector<NameRing> patches;
    VirtualNanos ts = 1000;  // strictly increasing: no ties by construction
    for (int p = 0; p < 6; ++p) {
      NameRing patch;
      const std::size_t n = 1 + rng.Below(3);
      for (std::size_t i = 0; i < n; ++i) {
        patch.Apply(RingTuple{"n" + std::to_string(rng.Below(6)), ++ts,
                              EntryKind::kFile, rng.Chance(0.3)});
      }
      patches.push_back(std::move(patch));
    }

    NameRing forward = base;
    for (const auto& p : patches) forward.Merge(p);

    NameRing reverse = base;
    for (auto it = patches.rbegin(); it != patches.rend(); ++it) {
      reverse.Merge(*it);
    }

    NameRing big;
    for (const auto& p : patches) big.Merge(p);
    NameRing via_big = base;
    via_big.Merge(big);

    EXPECT_EQ(forward, reverse);
    EXPECT_EQ(forward, via_big);
  }
}

// The regression the tie-break fix targets: patches with FORCED timestamp
// collisions (create vs delete vs kind change at the same tick, from
// different nodes) must merge to bit-identical rings under every
// permutation of arrival order.  Before the fix the incumbent won ties,
// so two replicas receiving the same patches in different orders
// diverged forever.
TEST(MergeOrderTest, PermutedPatchOrdersWithTiesConverge) {
  Rng rng(777);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<NameRing> patches;
    for (int p = 0; p < 5; ++p) {
      NameRing patch;
      const std::size_t n = 1 + rng.Below(4);
      for (std::size_t i = 0; i < n; ++i) {
        // Only 4 names and 4 timestamps: collisions on every iteration.
        patch.Apply(RingTuple{"n" + std::to_string(rng.Below(4)),
                              static_cast<VirtualNanos>(10 * rng.Below(4)),
                              rng.Chance(0.4) ? EntryKind::kDirectory
                                              : EntryKind::kFile,
                              rng.Chance(0.4)});
      }
      patch.NoteMerged(static_cast<std::uint32_t>(p), 1 + rng.Below(5));
      patches.push_back(std::move(patch));
    }

    std::vector<std::size_t> order(patches.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::string reference;
    for (int perm = 0; perm < 24; ++perm) {
      // Random permutation (Fisher-Yates) of the patch arrival order.
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.Below(i)]);
      }
      NameRing merged;
      for (std::size_t idx : order) merged.Merge(patches[idx]);
      const std::string serialized = merged.Serialize();
      if (perm == 0) {
        reference = serialized;
      } else {
        ASSERT_EQ(serialized, reference)
            << "iteration " << iter << " permutation " << perm
            << " diverged";
      }
    }
  }
}

// Versioned reads are arrival-order independent (DESIGN.md §13): the
// {current} ∪ {history} set per name is the same under every permutation
// of patch arrival, so LiveChildrenAt must answer identically at EVERY
// version -- a losing incoming tuple is recorded as history exactly like
// a superseded incumbent.
TEST(MergeOrderTest, PermutedPatchOrdersAgreeOnEveryVersionedRead) {
  Rng rng(31337);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<NameRing> patches;
    for (int p = 0; p < 5; ++p) {
      NameRing patch;
      const std::size_t n = 1 + rng.Below(4);
      for (std::size_t i = 0; i < n; ++i) {
        patch.Apply(RingTuple{"n" + std::to_string(rng.Below(4)),
                              static_cast<VirtualNanos>(1 + rng.Below(40)),
                              rng.Chance(0.3) ? EntryKind::kDirectory
                                              : EntryKind::kFile,
                              rng.Chance(0.35)});
      }
      patches.push_back(std::move(patch));
    }

    // Reference answers from the identity permutation.
    NameRing reference;
    for (const auto& p : patches) reference.Merge(p);
    std::vector<std::string> expected;
    for (VirtualNanos v = 0; v <= 41; ++v) {
      auto at = reference.LiveChildrenAt(v);
      ASSERT_TRUE(at.ok());
      std::string flat;
      for (const RingTuple& t : *at) {
        flat += t.name + "@" + std::to_string(t.timestamp) + ";";
      }
      expected.push_back(std::move(flat));
    }

    std::vector<std::size_t> order(patches.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (int perm = 0; perm < 16; ++perm) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.Below(i)]);
      }
      NameRing merged;
      for (std::size_t idx : order) merged.Merge(patches[idx]);
      for (VirtualNanos v = 0; v <= 41; ++v) {
        auto at = merged.LiveChildrenAt(v);
        ASSERT_TRUE(at.ok());
        std::string flat;
        for (const RingTuple& t : *at) {
          flat += t.name + "@" + std::to_string(t.timestamp) + ";";
        }
        ASSERT_EQ(flat, expected[v])
            << "iteration " << iter << " permutation " << perm
            << " version " << v;
      }
    }
  }
}

// CompactHistory never changes an answer it can still give: any version
// at or above the post-compaction floor reads identically before and
// after folding, at every cutoff.
TEST(MergeOrderTest, CompactHistoryPreservesAnswerableReads) {
  Rng rng(90210);
  for (int iter = 0; iter < 20; ++iter) {
    NameRing ring;
    for (int p = 0; p < 5; ++p) {
      NameRing patch;
      const std::size_t n = 1 + rng.Below(4);
      for (std::size_t i = 0; i < n; ++i) {
        patch.Apply(RingTuple{"n" + std::to_string(rng.Below(4)),
                              static_cast<VirtualNanos>(1 + rng.Below(40)),
                              EntryKind::kFile, rng.Chance(0.35)});
      }
      ring.Merge(patch);
    }
    for (const VirtualNanos cutoff : {VirtualNanos{5}, VirtualNanos{20},
                                      VirtualNanos{45}}) {
      NameRing folded = ring;
      folded.CompactHistory(cutoff);
      for (VirtualNanos v = folded.history_floor(); v <= 41; ++v) {
        auto before = ring.LiveChildrenAt(v);
        auto after = folded.LiveChildrenAt(v);
        // `ring` itself may have a (lower) floor from earlier folds; only
        // compare where both sides answer.
        if (!before.ok()) continue;
        ASSERT_TRUE(after.ok()) << "cutoff " << cutoff << " v " << v;
        ASSERT_EQ(*before, *after)
            << "iteration " << iter << " cutoff " << cutoff
            << " version " << v;
      }
    }
  }
}

}  // namespace
}  // namespace h2
