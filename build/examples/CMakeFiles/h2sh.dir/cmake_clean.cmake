file(REMOVE_RECURSE
  "CMakeFiles/h2sh.dir/h2sh.cpp.o"
  "CMakeFiles/h2sh.dir/h2sh.cpp.o.d"
  "h2sh"
  "h2sh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2sh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
