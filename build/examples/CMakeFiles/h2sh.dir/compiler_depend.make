# Empty compiler generated dependencies file for h2sh.
# This may be replaced when dependencies are built.
