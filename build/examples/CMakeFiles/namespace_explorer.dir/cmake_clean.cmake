file(REMOVE_RECURSE
  "CMakeFiles/namespace_explorer.dir/namespace_explorer.cpp.o"
  "CMakeFiles/namespace_explorer.dir/namespace_explorer.cpp.o.d"
  "namespace_explorer"
  "namespace_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namespace_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
