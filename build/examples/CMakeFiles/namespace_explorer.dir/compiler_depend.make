# Empty compiler generated dependencies file for namespace_explorer.
# This may be replaced when dependencies are built.
