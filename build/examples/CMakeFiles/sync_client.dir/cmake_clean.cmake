file(REMOVE_RECURSE
  "CMakeFiles/sync_client.dir/sync_client.cpp.o"
  "CMakeFiles/sync_client.dir/sync_client.cpp.o.d"
  "sync_client"
  "sync_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
