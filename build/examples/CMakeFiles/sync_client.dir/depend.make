# Empty dependencies file for sync_client.
# This may be replaced when dependencies are built.
