file(REMOVE_RECURSE
  "CMakeFiles/multi_middleware_sync.dir/multi_middleware_sync.cpp.o"
  "CMakeFiles/multi_middleware_sync.dir/multi_middleware_sync.cpp.o.d"
  "multi_middleware_sync"
  "multi_middleware_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_middleware_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
