# Empty dependencies file for multi_middleware_sync.
# This may be replaced when dependencies are built.
