file(REMOVE_RECURSE
  "CMakeFiles/personal_cloud_drive.dir/personal_cloud_drive.cpp.o"
  "CMakeFiles/personal_cloud_drive.dir/personal_cloud_drive.cpp.o.d"
  "personal_cloud_drive"
  "personal_cloud_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personal_cloud_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
