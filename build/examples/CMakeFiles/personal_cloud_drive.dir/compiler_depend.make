# Empty compiler generated dependencies file for personal_cloud_drive.
# This may be replaced when dependencies are built.
