# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for personal_cloud_drive.
