# Empty compiler generated dependencies file for rest_api_demo.
# This may be replaced when dependencies are built.
