file(REMOVE_RECURSE
  "CMakeFiles/rest_api_demo.dir/rest_api_demo.cpp.o"
  "CMakeFiles/rest_api_demo.dir/rest_api_demo.cpp.o.d"
  "rest_api_demo"
  "rest_api_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rest_api_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
