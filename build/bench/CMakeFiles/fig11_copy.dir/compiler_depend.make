# Empty compiler generated dependencies file for fig11_copy.
# This may be replaced when dependencies are built.
