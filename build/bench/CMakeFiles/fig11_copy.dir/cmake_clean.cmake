file(REMOVE_RECURSE
  "CMakeFiles/fig11_copy.dir/fig11_copy.cc.o"
  "CMakeFiles/fig11_copy.dir/fig11_copy.cc.o.d"
  "fig11_copy"
  "fig11_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
