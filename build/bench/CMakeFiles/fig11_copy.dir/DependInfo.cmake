
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_copy.cc" "bench/CMakeFiles/fig11_copy.dir/fig11_copy.cc.o" "gcc" "bench/CMakeFiles/fig11_copy.dir/fig11_copy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/h2/CMakeFiles/h2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/h2_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/h2_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/h2_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/h2_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/h2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/h2_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/h2_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/h2_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/h2_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/h2_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/h2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
