file(REMOVE_RECURSE
  "CMakeFiles/fig10_list_m.dir/fig10_list_m.cc.o"
  "CMakeFiles/fig10_list_m.dir/fig10_list_m.cc.o.d"
  "fig10_list_m"
  "fig10_list_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_list_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
