# Empty dependencies file for fig10_list_m.
# This may be replaced when dependencies are built.
