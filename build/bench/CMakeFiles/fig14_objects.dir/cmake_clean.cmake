file(REMOVE_RECURSE
  "CMakeFiles/fig14_objects.dir/fig14_objects.cc.o"
  "CMakeFiles/fig14_objects.dir/fig14_objects.cc.o.d"
  "fig14_objects"
  "fig14_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
