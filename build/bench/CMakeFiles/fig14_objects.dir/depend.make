# Empty dependencies file for fig14_objects.
# This may be replaced when dependencies are built.
