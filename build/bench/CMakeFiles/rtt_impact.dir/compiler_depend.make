# Empty compiler generated dependencies file for rtt_impact.
# This may be replaced when dependencies are built.
