file(REMOVE_RECURSE
  "CMakeFiles/rtt_impact.dir/rtt_impact.cc.o"
  "CMakeFiles/rtt_impact.dir/rtt_impact.cc.o.d"
  "rtt_impact"
  "rtt_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtt_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
