file(REMOVE_RECURSE
  "CMakeFiles/tab1_complexity.dir/tab1_complexity.cc.o"
  "CMakeFiles/tab1_complexity.dir/tab1_complexity.cc.o.d"
  "tab1_complexity"
  "tab1_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
