# Empty dependencies file for tab1_complexity.
# This may be replaced when dependencies are built.
