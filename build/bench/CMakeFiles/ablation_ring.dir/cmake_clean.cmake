file(REMOVE_RECURSE
  "CMakeFiles/ablation_ring.dir/ablation_ring.cc.o"
  "CMakeFiles/ablation_ring.dir/ablation_ring.cc.o.d"
  "ablation_ring"
  "ablation_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
