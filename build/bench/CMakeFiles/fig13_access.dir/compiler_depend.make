# Empty compiler generated dependencies file for fig13_access.
# This may be replaced when dependencies are built.
