file(REMOVE_RECURSE
  "CMakeFiles/fig13_access.dir/fig13_access.cc.o"
  "CMakeFiles/fig13_access.dir/fig13_access.cc.o.d"
  "fig13_access"
  "fig13_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
