# Empty compiler generated dependencies file for fig08_rmdir.
# This may be replaced when dependencies are built.
