file(REMOVE_RECURSE
  "CMakeFiles/fig08_rmdir.dir/fig08_rmdir.cc.o"
  "CMakeFiles/fig08_rmdir.dir/fig08_rmdir.cc.o.d"
  "fig08_rmdir"
  "fig08_rmdir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rmdir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
