# Empty compiler generated dependencies file for fig12_mkdir.
# This may be replaced when dependencies are built.
