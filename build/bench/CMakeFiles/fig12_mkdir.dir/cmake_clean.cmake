file(REMOVE_RECURSE
  "CMakeFiles/fig12_mkdir.dir/fig12_mkdir.cc.o"
  "CMakeFiles/fig12_mkdir.dir/fig12_mkdir.cc.o.d"
  "fig12_mkdir"
  "fig12_mkdir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mkdir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
