file(REMOVE_RECURSE
  "CMakeFiles/fig09_list_n.dir/fig09_list_n.cc.o"
  "CMakeFiles/fig09_list_n.dir/fig09_list_n.cc.o.d"
  "fig09_list_n"
  "fig09_list_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_list_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
