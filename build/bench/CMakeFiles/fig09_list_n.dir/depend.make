# Empty dependencies file for fig09_list_n.
# This may be replaced when dependencies are built.
