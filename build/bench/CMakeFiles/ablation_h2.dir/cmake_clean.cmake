file(REMOVE_RECURSE
  "CMakeFiles/ablation_h2.dir/ablation_h2.cc.o"
  "CMakeFiles/ablation_h2.dir/ablation_h2.cc.o.d"
  "ablation_h2"
  "ablation_h2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_h2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
