# Empty dependencies file for ablation_h2.
# This may be replaced when dependencies are built.
