file(REMOVE_RECURSE
  "CMakeFiles/fig15_sizes.dir/fig15_sizes.cc.o"
  "CMakeFiles/fig15_sizes.dir/fig15_sizes.cc.o.d"
  "fig15_sizes"
  "fig15_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
