# Empty dependencies file for headline_numbers.
# This may be replaced when dependencies are built.
