# Empty compiler generated dependencies file for fig07_move_rename.
# This may be replaced when dependencies are built.
