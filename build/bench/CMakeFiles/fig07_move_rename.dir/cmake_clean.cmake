file(REMOVE_RECURSE
  "CMakeFiles/fig07_move_rename.dir/fig07_move_rename.cc.o"
  "CMakeFiles/fig07_move_rename.dir/fig07_move_rename.cc.o.d"
  "fig07_move_rename"
  "fig07_move_rename.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_move_rename.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
