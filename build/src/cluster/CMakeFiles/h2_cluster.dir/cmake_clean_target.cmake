file(REMOVE_RECURSE
  "libh2_cluster.a"
)
