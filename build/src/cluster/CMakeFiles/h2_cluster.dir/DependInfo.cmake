
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/latency.cc" "src/cluster/CMakeFiles/h2_cluster.dir/latency.cc.o" "gcc" "src/cluster/CMakeFiles/h2_cluster.dir/latency.cc.o.d"
  "/root/repo/src/cluster/object_cloud.cc" "src/cluster/CMakeFiles/h2_cluster.dir/object_cloud.cc.o" "gcc" "src/cluster/CMakeFiles/h2_cluster.dir/object_cloud.cc.o.d"
  "/root/repo/src/cluster/storage_node.cc" "src/cluster/CMakeFiles/h2_cluster.dir/storage_node.cc.o" "gcc" "src/cluster/CMakeFiles/h2_cluster.dir/storage_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/h2_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/h2_ring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
