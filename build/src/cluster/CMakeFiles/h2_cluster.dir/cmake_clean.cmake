file(REMOVE_RECURSE
  "CMakeFiles/h2_cluster.dir/latency.cc.o"
  "CMakeFiles/h2_cluster.dir/latency.cc.o.d"
  "CMakeFiles/h2_cluster.dir/object_cloud.cc.o"
  "CMakeFiles/h2_cluster.dir/object_cloud.cc.o.d"
  "CMakeFiles/h2_cluster.dir/storage_node.cc.o"
  "CMakeFiles/h2_cluster.dir/storage_node.cc.o.d"
  "libh2_cluster.a"
  "libh2_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
