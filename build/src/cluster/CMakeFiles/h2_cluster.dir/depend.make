# Empty dependencies file for h2_cluster.
# This may be replaced when dependencies are built.
