# Empty compiler generated dependencies file for h2_metrics.
# This may be replaced when dependencies are built.
