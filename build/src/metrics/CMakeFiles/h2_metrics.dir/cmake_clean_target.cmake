file(REMOVE_RECURSE
  "libh2_metrics.a"
)
