file(REMOVE_RECURSE
  "CMakeFiles/h2_metrics.dir/stats.cc.o"
  "CMakeFiles/h2_metrics.dir/stats.cc.o.d"
  "libh2_metrics.a"
  "libh2_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
