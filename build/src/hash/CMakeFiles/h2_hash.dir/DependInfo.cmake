
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/fast_hash.cc" "src/hash/CMakeFiles/h2_hash.dir/fast_hash.cc.o" "gcc" "src/hash/CMakeFiles/h2_hash.dir/fast_hash.cc.o.d"
  "/root/repo/src/hash/md5.cc" "src/hash/CMakeFiles/h2_hash.dir/md5.cc.o" "gcc" "src/hash/CMakeFiles/h2_hash.dir/md5.cc.o.d"
  "/root/repo/src/hash/uuid.cc" "src/hash/CMakeFiles/h2_hash.dir/uuid.cc.o" "gcc" "src/hash/CMakeFiles/h2_hash.dir/uuid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
