# Empty dependencies file for h2_hash.
# This may be replaced when dependencies are built.
