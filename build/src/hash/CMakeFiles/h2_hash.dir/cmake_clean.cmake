file(REMOVE_RECURSE
  "CMakeFiles/h2_hash.dir/fast_hash.cc.o"
  "CMakeFiles/h2_hash.dir/fast_hash.cc.o.d"
  "CMakeFiles/h2_hash.dir/md5.cc.o"
  "CMakeFiles/h2_hash.dir/md5.cc.o.d"
  "CMakeFiles/h2_hash.dir/uuid.cc.o"
  "CMakeFiles/h2_hash.dir/uuid.cc.o.d"
  "libh2_hash.a"
  "libh2_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
