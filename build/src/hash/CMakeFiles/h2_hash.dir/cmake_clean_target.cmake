file(REMOVE_RECURSE
  "libh2_hash.a"
)
