# Empty dependencies file for h2_ring.
# This may be replaced when dependencies are built.
