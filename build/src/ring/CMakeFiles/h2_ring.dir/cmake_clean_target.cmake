file(REMOVE_RECURSE
  "libh2_ring.a"
)
