file(REMOVE_RECURSE
  "CMakeFiles/h2_ring.dir/partition_ring.cc.o"
  "CMakeFiles/h2_ring.dir/partition_ring.cc.o.d"
  "libh2_ring.a"
  "libh2_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
