# Empty dependencies file for h2_gossip.
# This may be replaced when dependencies are built.
