file(REMOVE_RECURSE
  "libh2_gossip.a"
)
