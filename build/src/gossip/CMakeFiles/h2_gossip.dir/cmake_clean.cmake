file(REMOVE_RECURSE
  "CMakeFiles/h2_gossip.dir/gossip.cc.o"
  "CMakeFiles/h2_gossip.dir/gossip.cc.o.d"
  "libh2_gossip.a"
  "libh2_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
