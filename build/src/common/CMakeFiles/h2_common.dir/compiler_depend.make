# Empty compiler generated dependencies file for h2_common.
# This may be replaced when dependencies are built.
