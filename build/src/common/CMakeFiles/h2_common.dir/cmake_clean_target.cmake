file(REMOVE_RECURSE
  "libh2_common.a"
)
