file(REMOVE_RECURSE
  "CMakeFiles/h2_common.dir/rng.cc.o"
  "CMakeFiles/h2_common.dir/rng.cc.o.d"
  "CMakeFiles/h2_common.dir/status.cc.o"
  "CMakeFiles/h2_common.dir/status.cc.o.d"
  "CMakeFiles/h2_common.dir/strings.cc.o"
  "CMakeFiles/h2_common.dir/strings.cc.o.d"
  "libh2_common.a"
  "libh2_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
