# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("hash")
subdirs("codec")
subdirs("ring")
subdirs("cluster")
subdirs("net")
subdirs("gossip")
subdirs("fs")
subdirs("h2")
subdirs("baselines")
subdirs("workload")
subdirs("metrics")
