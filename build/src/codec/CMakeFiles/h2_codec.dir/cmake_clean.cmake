file(REMOVE_RECURSE
  "CMakeFiles/h2_codec.dir/formatter.cc.o"
  "CMakeFiles/h2_codec.dir/formatter.cc.o.d"
  "libh2_codec.a"
  "libh2_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
