file(REMOVE_RECURSE
  "libh2_codec.a"
)
