# Empty compiler generated dependencies file for h2_codec.
# This may be replaced when dependencies are built.
