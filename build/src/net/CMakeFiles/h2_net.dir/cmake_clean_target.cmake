file(REMOVE_RECURSE
  "libh2_net.a"
)
