# Empty dependencies file for h2_net.
# This may be replaced when dependencies are built.
