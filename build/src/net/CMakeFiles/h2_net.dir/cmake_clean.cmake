file(REMOVE_RECURSE
  "CMakeFiles/h2_net.dir/http.cc.o"
  "CMakeFiles/h2_net.dir/http.cc.o.d"
  "libh2_net.a"
  "libh2_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
