
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/h2/account_fs.cc" "src/h2/CMakeFiles/h2_core.dir/account_fs.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/account_fs.cc.o.d"
  "/root/repo/src/h2/h2cloud.cc" "src/h2/CMakeFiles/h2_core.dir/h2cloud.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/h2cloud.cc.o.d"
  "/root/repo/src/h2/intent_log.cc" "src/h2/CMakeFiles/h2_core.dir/intent_log.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/intent_log.cc.o.d"
  "/root/repo/src/h2/keys.cc" "src/h2/CMakeFiles/h2_core.dir/keys.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/keys.cc.o.d"
  "/root/repo/src/h2/middleware.cc" "src/h2/CMakeFiles/h2_core.dir/middleware.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/middleware.cc.o.d"
  "/root/repo/src/h2/monitor.cc" "src/h2/CMakeFiles/h2_core.dir/monitor.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/monitor.cc.o.d"
  "/root/repo/src/h2/name_ring.cc" "src/h2/CMakeFiles/h2_core.dir/name_ring.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/name_ring.cc.o.d"
  "/root/repo/src/h2/records.cc" "src/h2/CMakeFiles/h2_core.dir/records.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/records.cc.o.d"
  "/root/repo/src/h2/scrub.cc" "src/h2/CMakeFiles/h2_core.dir/scrub.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/scrub.cc.o.d"
  "/root/repo/src/h2/web_api.cc" "src/h2/CMakeFiles/h2_core.dir/web_api.cc.o" "gcc" "src/h2/CMakeFiles/h2_core.dir/web_api.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/h2_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/h2_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/h2_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/h2_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/h2_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/h2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/h2_ring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
