file(REMOVE_RECURSE
  "CMakeFiles/h2_core.dir/account_fs.cc.o"
  "CMakeFiles/h2_core.dir/account_fs.cc.o.d"
  "CMakeFiles/h2_core.dir/h2cloud.cc.o"
  "CMakeFiles/h2_core.dir/h2cloud.cc.o.d"
  "CMakeFiles/h2_core.dir/intent_log.cc.o"
  "CMakeFiles/h2_core.dir/intent_log.cc.o.d"
  "CMakeFiles/h2_core.dir/keys.cc.o"
  "CMakeFiles/h2_core.dir/keys.cc.o.d"
  "CMakeFiles/h2_core.dir/middleware.cc.o"
  "CMakeFiles/h2_core.dir/middleware.cc.o.d"
  "CMakeFiles/h2_core.dir/monitor.cc.o"
  "CMakeFiles/h2_core.dir/monitor.cc.o.d"
  "CMakeFiles/h2_core.dir/name_ring.cc.o"
  "CMakeFiles/h2_core.dir/name_ring.cc.o.d"
  "CMakeFiles/h2_core.dir/records.cc.o"
  "CMakeFiles/h2_core.dir/records.cc.o.d"
  "CMakeFiles/h2_core.dir/scrub.cc.o"
  "CMakeFiles/h2_core.dir/scrub.cc.o.d"
  "CMakeFiles/h2_core.dir/web_api.cc.o"
  "CMakeFiles/h2_core.dir/web_api.cc.o.d"
  "libh2_core.a"
  "libh2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
