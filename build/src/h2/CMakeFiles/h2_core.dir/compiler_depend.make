# Empty compiler generated dependencies file for h2_core.
# This may be replaced when dependencies are built.
