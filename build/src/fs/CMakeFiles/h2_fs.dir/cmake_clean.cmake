file(REMOVE_RECURSE
  "CMakeFiles/h2_fs.dir/filesystem.cc.o"
  "CMakeFiles/h2_fs.dir/filesystem.cc.o.d"
  "CMakeFiles/h2_fs.dir/path.cc.o"
  "CMakeFiles/h2_fs.dir/path.cc.o.d"
  "libh2_fs.a"
  "libh2_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
