file(REMOVE_RECURSE
  "libh2_fs.a"
)
