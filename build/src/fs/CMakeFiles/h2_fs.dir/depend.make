# Empty dependencies file for h2_fs.
# This may be replaced when dependencies are built.
