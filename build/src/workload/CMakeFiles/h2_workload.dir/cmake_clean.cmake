file(REMOVE_RECURSE
  "CMakeFiles/h2_workload.dir/mirror.cc.o"
  "CMakeFiles/h2_workload.dir/mirror.cc.o.d"
  "CMakeFiles/h2_workload.dir/trace.cc.o"
  "CMakeFiles/h2_workload.dir/trace.cc.o.d"
  "CMakeFiles/h2_workload.dir/tree_gen.cc.o"
  "CMakeFiles/h2_workload.dir/tree_gen.cc.o.d"
  "libh2_workload.a"
  "libh2_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
