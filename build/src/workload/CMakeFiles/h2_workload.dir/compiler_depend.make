# Empty compiler generated dependencies file for h2_workload.
# This may be replaced when dependencies are built.
