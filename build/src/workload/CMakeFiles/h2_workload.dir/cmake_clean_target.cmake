file(REMOVE_RECURSE
  "libh2_workload.a"
)
