# Empty compiler generated dependencies file for h2_baselines.
# This may be replaced when dependencies are built.
