
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cas_fs.cc" "src/baselines/CMakeFiles/h2_baselines.dir/cas_fs.cc.o" "gcc" "src/baselines/CMakeFiles/h2_baselines.dir/cas_fs.cc.o.d"
  "/root/repo/src/baselines/ch_fs.cc" "src/baselines/CMakeFiles/h2_baselines.dir/ch_fs.cc.o" "gcc" "src/baselines/CMakeFiles/h2_baselines.dir/ch_fs.cc.o.d"
  "/root/repo/src/baselines/common/tree_index.cc" "src/baselines/CMakeFiles/h2_baselines.dir/common/tree_index.cc.o" "gcc" "src/baselines/CMakeFiles/h2_baselines.dir/common/tree_index.cc.o.d"
  "/root/repo/src/baselines/index_fs.cc" "src/baselines/CMakeFiles/h2_baselines.dir/index_fs.cc.o" "gcc" "src/baselines/CMakeFiles/h2_baselines.dir/index_fs.cc.o.d"
  "/root/repo/src/baselines/snapshot_fs.cc" "src/baselines/CMakeFiles/h2_baselines.dir/snapshot_fs.cc.o" "gcc" "src/baselines/CMakeFiles/h2_baselines.dir/snapshot_fs.cc.o.d"
  "/root/repo/src/baselines/swift_fs.cc" "src/baselines/CMakeFiles/h2_baselines.dir/swift_fs.cc.o" "gcc" "src/baselines/CMakeFiles/h2_baselines.dir/swift_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/h2_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/h2_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/h2_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/h2_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/h2_ring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
