file(REMOVE_RECURSE
  "libh2_baselines.a"
)
