file(REMOVE_RECURSE
  "CMakeFiles/h2_baselines.dir/cas_fs.cc.o"
  "CMakeFiles/h2_baselines.dir/cas_fs.cc.o.d"
  "CMakeFiles/h2_baselines.dir/ch_fs.cc.o"
  "CMakeFiles/h2_baselines.dir/ch_fs.cc.o.d"
  "CMakeFiles/h2_baselines.dir/common/tree_index.cc.o"
  "CMakeFiles/h2_baselines.dir/common/tree_index.cc.o.d"
  "CMakeFiles/h2_baselines.dir/index_fs.cc.o"
  "CMakeFiles/h2_baselines.dir/index_fs.cc.o.d"
  "CMakeFiles/h2_baselines.dir/snapshot_fs.cc.o"
  "CMakeFiles/h2_baselines.dir/snapshot_fs.cc.o.d"
  "CMakeFiles/h2_baselines.dir/swift_fs.cc.o"
  "CMakeFiles/h2_baselines.dir/swift_fs.cc.o.d"
  "libh2_baselines.a"
  "libh2_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
