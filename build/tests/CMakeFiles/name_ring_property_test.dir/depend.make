# Empty dependencies file for name_ring_property_test.
# This may be replaced when dependencies are built.
