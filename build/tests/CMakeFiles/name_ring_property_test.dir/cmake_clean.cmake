file(REMOVE_RECURSE
  "CMakeFiles/name_ring_property_test.dir/name_ring_property_test.cc.o"
  "CMakeFiles/name_ring_property_test.dir/name_ring_property_test.cc.o.d"
  "name_ring_property_test"
  "name_ring_property_test.pdb"
  "name_ring_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_ring_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
