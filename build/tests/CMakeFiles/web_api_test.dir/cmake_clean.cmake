file(REMOVE_RECURSE
  "CMakeFiles/web_api_test.dir/web_api_test.cc.o"
  "CMakeFiles/web_api_test.dir/web_api_test.cc.o.d"
  "web_api_test"
  "web_api_test.pdb"
  "web_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
