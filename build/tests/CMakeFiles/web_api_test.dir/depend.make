# Empty dependencies file for web_api_test.
# This may be replaced when dependencies are built.
