# Empty dependencies file for h2_maintenance_test.
# This may be replaced when dependencies are built.
