file(REMOVE_RECURSE
  "CMakeFiles/h2_extensions_test.dir/h2_extensions_test.cc.o"
  "CMakeFiles/h2_extensions_test.dir/h2_extensions_test.cc.o.d"
  "h2_extensions_test"
  "h2_extensions_test.pdb"
  "h2_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
