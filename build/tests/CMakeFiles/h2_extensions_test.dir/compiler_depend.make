# Empty compiler generated dependencies file for h2_extensions_test.
# This may be replaced when dependencies are built.
