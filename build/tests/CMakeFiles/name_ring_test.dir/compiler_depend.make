# Empty compiler generated dependencies file for name_ring_test.
# This may be replaced when dependencies are built.
