file(REMOVE_RECURSE
  "CMakeFiles/name_ring_test.dir/name_ring_test.cc.o"
  "CMakeFiles/name_ring_test.dir/name_ring_test.cc.o.d"
  "name_ring_test"
  "name_ring_test.pdb"
  "name_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
