file(REMOVE_RECURSE
  "CMakeFiles/h2_middleware_test.dir/h2_middleware_test.cc.o"
  "CMakeFiles/h2_middleware_test.dir/h2_middleware_test.cc.o.d"
  "h2_middleware_test"
  "h2_middleware_test.pdb"
  "h2_middleware_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_middleware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
