# Empty compiler generated dependencies file for h2_concurrency_test.
# This may be replaced when dependencies are built.
