// Shared system construction for the figure benches.
//
// Each benchmark compares the systems the paper's evaluation compares
// (§5): H2Cloud, the OpenStack Swift model, and the Dropbox model
// (Dynamic Partition over a WAN-profile cloud); the Table-1 bench widens
// the set to every baseline.  Every system gets its own private cloud so
// object counts and load are not conflated.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/cas_fs.h"
#include "baselines/ch_fs.h"
#include "baselines/index_fs.h"
#include "baselines/snapshot_fs.h"
#include "baselines/swift_fs.h"
#include "h2/h2cloud.h"

namespace h2::bench {

enum class SystemKind {
  kH2,
  kSwift,
  kDropbox,
  kPlainCh,
  kCumulus,
  kCas,
  kSingleIndex,
  kStaticPartition,
  kDp,
  kDpSharedDisk,
};

inline const char* KindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kH2: return "H2Cloud";
    case SystemKind::kSwift: return "Swift";
    case SystemKind::kDropbox: return "Dropbox";
    case SystemKind::kPlainCh: return "PlainCH";
    case SystemKind::kCumulus: return "Cumulus";
    case SystemKind::kCas: return "CAS";
    case SystemKind::kSingleIndex: return "SingleIndex";
    case SystemKind::kStaticPartition: return "StaticPart";
    case SystemKind::kDp: return "DP";
    case SystemKind::kDpSharedDisk: return "DPShared";
  }
  return "?";
}

class SystemHolder {
 public:
  virtual ~SystemHolder() = default;
  virtual FileSystem& fs() = 0;
  virtual ObjectCloud& cloud() = 0;
  /// H2 only: drains background maintenance (between measured phases).
  virtual void Quiesce() {}
  virtual H2Cloud* h2() { return nullptr; }
};

namespace internal {

inline CloudConfig BenchCloudConfig(LatencyProfile profile) {
  CloudConfig cfg;
  cfg.node_count = 8;       // the paper's rack: 8 storage nodes (§5.1)
  cfg.replica_count = 3;
  cfg.part_power = 10;
  cfg.latency = profile;
  return cfg;
}

class H2Holder final : public SystemHolder {
 public:
  explicit H2Holder(H2Config h2_config = {}) {
    H2CloudConfig cfg;
    cfg.cloud = BenchCloudConfig(LatencyProfile::RackLan());
    cfg.h2 = h2_config;
    cloud_ = std::make_unique<H2Cloud>(cfg);
    const Status st = cloud_->CreateAccount("bench");
    (void)st;
    account_ = std::move(cloud_->OpenFilesystem("bench")).value();
  }
  FileSystem& fs() override { return *account_; }
  ObjectCloud& cloud() override { return cloud_->cloud(); }
  void Quiesce() override { cloud_->RunMaintenanceToQuiescence(); }
  H2Cloud* h2() override { return cloud_.get(); }

 private:
  std::unique_ptr<H2Cloud> cloud_;
  std::unique_ptr<H2AccountFs> account_;
};

template <typename Fs>
class BaselineHolder final : public SystemHolder {
 public:
  template <typename... Args>
  explicit BaselineHolder(LatencyProfile profile, Args&&... args)
      : cloud_(BenchCloudConfig(profile)),
        fs_(cloud_, std::forward<Args>(args)...) {}
  FileSystem& fs() override { return fs_; }
  ObjectCloud& cloud() override { return cloud_; }
  void Quiesce() override {
    if constexpr (std::is_same_v<Fs, IndexServerFs>) {
      fs_.RunLazyCleanup();
    }
  }

 private:
  ObjectCloud cloud_;
  Fs fs_;
};

}  // namespace internal

inline std::unique_ptr<SystemHolder> MakeSystem(SystemKind kind) {
  using internal::BaselineHolder;
  const LatencyProfile lan = LatencyProfile::RackLan();
  switch (kind) {
    case SystemKind::kH2: {
      // Paper reproduction: figures compare the O(d) level-by-level H2
      // of Fig. 13, so the figure benches keep the resolve cache off.
      // Cache-on series construct internal::H2Holder directly.
      H2Config paper;
      paper.resolve_cache = false;
      return std::make_unique<internal::H2Holder>(paper);
    }
    case SystemKind::kSwift:
      return std::make_unique<BaselineHolder<SwiftFs>>(lan);
    case SystemKind::kDropbox:
      return std::make_unique<BaselineHolder<IndexServerFs>>(
          LatencyProfile::DropboxWan(), IndexFsOptions::Dropbox());
    case SystemKind::kPlainCh:
      return std::make_unique<BaselineHolder<ChFs>>(lan);
    case SystemKind::kCumulus:
      return std::make_unique<BaselineHolder<SnapshotFs>>(lan);
    case SystemKind::kCas:
      return std::make_unique<BaselineHolder<CasFs>>(lan);
    case SystemKind::kSingleIndex:
      return std::make_unique<BaselineHolder<IndexServerFs>>(
          lan, IndexFsOptions::SingleIndex());
    case SystemKind::kStaticPartition:
      return std::make_unique<BaselineHolder<IndexServerFs>>(
          lan, IndexFsOptions::StaticPartition());
    case SystemKind::kDp:
      return std::make_unique<BaselineHolder<IndexServerFs>>(
          lan, IndexFsOptions::DynamicPartition());
    case SystemKind::kDpSharedDisk:
      return std::make_unique<BaselineHolder<IndexServerFs>>(
          lan, IndexFsOptions::DpSharedDisk());
  }
  return nullptr;
}

/// The three systems of Figs. 7-13.
inline std::vector<SystemKind> PaperTrio() {
  return {SystemKind::kSwift, SystemKind::kH2, SystemKind::kDropbox};
}

/// Every Table-1 row this repository implements.
inline std::vector<SystemKind> AllKinds() {
  return {SystemKind::kCumulus,        SystemKind::kCas,
          SystemKind::kPlainCh,        SystemKind::kSwift,
          SystemKind::kSingleIndex,    SystemKind::kStaticPartition,
          SystemKind::kDp,             SystemKind::kDpSharedDisk,
          SystemKind::kH2,             SystemKind::kDropbox};
}

/// Standard sweep of the figures' x axis (10 ... 100,000), capped for
/// binaries that need a faster default.
inline std::vector<std::size_t> GeometricSweep(std::size_t max_value) {
  std::vector<std::size_t> xs;
  for (std::size_t v = 10; v <= max_value; v *= 10) xs.push_back(v);
  return xs;
}

}  // namespace h2::bench
