// Churn sweep: degraded foreground latency and time-to-converge under
// elastic membership changes, per rebalance-rate knob (ISSUE 8).
//
// For each scenario -- add a node, remove a node, replace a node, and a
// full zone outage on the segment-log backend -- and each value of
// CloudConfig::max_rebalance_keys_per_step (the churn-rate knob), a
// fresh 9-node / 3-zone cloud is preloaded with the same deterministic
// object set, the membership event fires, and a GET-only foreground
// phase runs while RunRebalanceStep drips migration work between
// operations.  Reported per row:
//
//   * p50 / p99 virtual ms     -- per-GET operation time during the
//                                 degraded window (the paper's metric;
//                                 rebalance work is priced on its own
//                                 meter and never advances the
//                                 foreground clock, so these must not
//                                 grow with the rebalance rate)
//   * steps / keys / max-step  -- bounded-rate accounting: no single
//                                 step may exceed the configured knob
//   * rebalance virtual ms     -- time-to-converge on the rebalance
//                                 meter
//   * divergent_after          -- anti-entropy oracle, must be zero
//   * oracle_match             -- final DebugDump byte-equal to the
//                                 rate-0 (drain-everything-per-step)
//                                 run of the same scenario
//
// The measured phase is GET-only by design: a PUT's priced path is
// rate-invariant, but a GET's winner replica depends on how far
// migration has progressed, so reads mid-churn consume jitter draws
// differently per rate.  That is harmless here -- no timestamps are
// minted after the preload -- and it is exactly the degraded-read
// latency the sweep exists to measure.
//
// Output: human table on stdout plus BENCH_churn.json (path overridable
// via argv[1], object count via argv[2]); scripts/check_bench_json.sh
// validates the schema.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/object_cloud.h"
#include "common/rng.h"
#include "metrics/stats.h"

namespace h2::bench {
namespace {

struct SweepSpec {
  std::size_t objects = 3'000;  // distinct keys preloaded
  std::size_t gets = 600;       // degraded-phase reads
  std::uint64_t payload_bytes = 64;
};

const char* const kScenarios[] = {"add", "remove", "replace",
                                  "zone_outage"};
constexpr std::size_t kRates[] = {0, 16, 128};  // 0 = unbounded (oracle)

struct Row {
  std::string scenario;
  std::size_t rate = 0;
  std::size_t gets = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t steps_to_converge = 0;
  std::uint64_t keys_moved = 0;
  std::uint64_t max_step_keys = 0;
  double rebalance_ms = 0;
  std::uint64_t divergent_after = 0;
  bool oracle_match = false;
};

CloudConfig ChurnCloudConfig(std::size_t rate) {
  CloudConfig cfg;
  cfg.node_count = 9;
  cfg.replica_count = 3;
  cfg.zone_count = 3;  // one replica per zone: a zone outage leaves two
  cfg.part_power = 8;
  cfg.max_rebalance_keys_per_step = rate;
  cfg.backend.kind = BackendKind::kSegmentLog;
  cfg.backend.group_commit_window = 32;
  return cfg;
}

std::string Key(std::size_t i) { return "churn-" + std::to_string(i); }

Row RunRow(const std::string& scenario, std::size_t rate,
           const SweepSpec& spec, std::string& dump_out) {
  Row row;
  row.scenario = scenario;
  row.rate = rate;
  ObjectCloud cloud(ChurnCloudConfig(rate));
  OpMeter meter;

  // Preload.  Every key carries a deterministic created stamp (i + 1):
  // node-level PUT preserves the incumbent's creation time on overwrite,
  // so migration timing must never be able to change the surviving bytes.
  const std::string payload(spec.payload_bytes, 'c');
  for (std::size_t i = 0; i < spec.objects; ++i) {
    ObjectValue value = ObjectValue::FromString(payload, 0);
    value.created = static_cast<VirtualNanos>(i + 1);
    BENCH_CHECK(cloud.Put(Key(i), std::move(value), meter));
  }

  // The membership event.
  std::vector<std::size_t> dark;  // zone_outage: crashed node ids
  if (scenario == "add") {
    BENCH_CHECK(cloud.AddStorageNodeDeferred().status());
  } else if (scenario == "remove") {
    BENCH_CHECK(cloud.RemoveStorageNode(2));
  } else if (scenario == "replace") {
    BENCH_CHECK(cloud.ReplaceStorageNode(4).status());
  } else {  // zone_outage: power-cycle every node in zone 1
    for (std::size_t n = 0; n < cloud.node_count(); ++n) {
      if (cloud.node(n).zone() == 1) {
        cloud.node(n).Crash();
        dark.push_back(n);
      }
    }
  }

  const auto step = [&] {
    const std::size_t moved = cloud.RunRebalanceStep();
    if (moved > 0) {
      ++row.steps_to_converge;
      row.keys_moved += moved;
      row.max_step_keys = std::max<std::uint64_t>(row.max_step_keys, moved);
    }
  };

  // Degraded foreground phase: reads race the dripping rebalancer (and,
  // for zone_outage, run against two of three zones).  Every GET must
  // succeed; its virtual operation time feeds the latency summary.
  Summary latency;
  Rng rng(4242);
  for (std::size_t g = 0; g < spec.gets; ++g) {
    const std::string key = Key(rng.Below(spec.objects));
    meter.Reset();
    Result<ObjectValue> got = cloud.Get(key, meter);
    BENCH_CHECK(got.status());
    latency.Add(meter.cost().elapsed_ms());
    if (g % 4 == 0) step();
  }
  row.gets = spec.gets;
  row.p50_ms = latency.percentile(0.5);
  row.p99_ms = latency.percentile(0.99);

  // Drain whatever migration remains, then (zone_outage) restart the
  // dark zone -- segment-log replay restores the fsynced prefix -- and
  // scrub anti-entropy until the divergence oracle is empty.
  while (cloud.RebalancePending() > 0) step();
  const std::uint64_t scrub_before =
      cloud.repair_stats().scrub_repairs_pushed;
  for (const std::size_t n : dark) {
    BENCH_CHECK(cloud.node(n).Restart());
  }
  for (int sweep = 0; sweep < 16; ++sweep) {
    if (cloud.ReplicaScrub().divergent_keys == 0) break;
  }
  // Scrub pushes count as moved keys too: for zone_outage they are the
  // whole recovery (the rebalance queue is empty).
  row.keys_moved +=
      cloud.repair_stats().scrub_repairs_pushed - scrub_before;
  row.rebalance_ms = ToMillis(cloud.rebalance_cost().elapsed);
  row.divergent_after = cloud.DivergentKeyCount();
  dump_out = cloud.DebugDump();
  return row;
}

void EmitJson(const char* path, const SweepSpec& spec,
              const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"churn_sweep\",\n");
  std::fprintf(f, "  \"unit\": \"virtual_ms\",\n");
  std::fprintf(f,
               "  \"workload\": {\"objects\": %zu, \"gets\": %zu, "
               "\"payload_bytes\": %llu, \"nodes\": 9, \"zones\": 3, "
               "\"replicas\": 3},\n",
               spec.objects, spec.gets,
               static_cast<unsigned long long>(spec.payload_bytes));
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"rate\": %zu, \"gets\": %zu, "
        "\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"steps_to_converge\": %llu, \"keys_moved\": %llu, "
        "\"max_step_keys\": %llu, \"rebalance_ms\": %.4f, "
        "\"divergent_after\": %llu, \"oracle_match\": %s}%s\n",
        r.scenario.c_str(), r.rate, r.gets, r.p50_ms, r.p99_ms,
        static_cast<unsigned long long>(r.steps_to_converge),
        static_cast<unsigned long long>(r.keys_moved),
        static_cast<unsigned long long>(r.max_step_keys), r.rebalance_ms,
        static_cast<unsigned long long>(r.divergent_after),
        r.oracle_match ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_churn.json";
  SweepSpec spec;
  if (argc > 2) spec.objects = std::strtoull(argv[2], nullptr, 10);

  std::printf("# churn_sweep: %zu objects, %zu degraded GETs per row, "
              "9 nodes / 3 zones, rates {0=unbounded, 16, 128}\n",
              spec.objects, spec.gets);
  std::printf("%-12s %6s %9s %9s %7s %9s %9s %12s %6s %7s\n", "scenario",
              "rate", "p50 ms", "p99 ms", "steps", "keys", "max/step",
              "rebal ms", "diverg", "oracle");

  std::vector<Row> rows;
  bool ok = true;
  for (const char* const scenario : kScenarios) {
    std::string oracle_dump;
    for (const std::size_t rate : kRates) {
      std::string dump;
      Row row = RunRow(scenario, rate, spec, dump);
      if (rate == 0) {
        oracle_dump = dump;
        row.oracle_match = true;
      } else {
        row.oracle_match = (dump == oracle_dump);
      }
      ok = ok && row.oracle_match && row.divergent_after == 0 &&
           (rate == 0 || row.max_step_keys <= rate);
      std::printf("%-12s %6zu %9.4f %9.4f %7llu %9llu %9llu %12.4f "
                  "%6llu %7s\n",
                  row.scenario.c_str(), row.rate, row.p50_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.steps_to_converge),
                  static_cast<unsigned long long>(row.keys_moved),
                  static_cast<unsigned long long>(row.max_step_keys),
                  row.rebalance_ms,
                  static_cast<unsigned long long>(row.divergent_after),
                  row.oracle_match ? "match" : "DIVERGED");
      rows.push_back(std::move(row));
    }
  }
  EmitJson(out_path, spec, rows);
  std::printf("# wrote %s\n", out_path);

  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: a row diverged from its rate-0 oracle, left "
                 "divergent keys, or exceeded its rate bound\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace h2::bench

int main(int argc, char** argv) { return h2::bench::Main(argc, argv); }
