// Small helpers shared by the figure benches.
#pragma once

#include <cstdio>
#include <string>

#include "bench/systems.h"
#include "fs/path.h"
#include "metrics/stats.h"

namespace h2::bench {

/// Writes files f<from>..f<to-1> (1 KiB each) into `dir`.
inline Status AddFiles(FileSystem& fs, const std::string& dir,
                       std::size_t from, std::size_t to,
                       std::uint64_t file_size = 1024) {
  char buf[64];
  for (std::size_t i = from; i < to; ++i) {
    std::snprintf(buf, sizeof(buf), "f%06zu", i);
    const std::string path = JoinPath(dir, buf);
    H2_RETURN_IF_ERROR(
        fs.WriteFile(path, FileBlob::Synthetic("sample", file_size)));
  }
  return Status::Ok();
}

/// Runs `op` `reps` times and returns the mean operation time in ms.
template <typename Op>
double MeasureMs(FileSystem& fs, std::size_t reps, Op&& op) {
  Summary summary;
  for (std::size_t i = 0; i < reps; ++i) {
    op(i);
    summary.Add(fs.last_op().elapsed_ms());
  }
  return summary.mean();
}

inline void Die(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

#define BENCH_CHECK(expr) ::h2::bench::Die((expr), #expr)

}  // namespace h2::bench
