// Figure 9: operation time of detailed LIST as the total number of files
// in the directory (n) grows, with the number of *direct* children (m)
// held fixed -- the extra files live in a bulk sub-directory.
//
// Paper result: LIST depends on m, not n: all three systems are flat in
// n, with Swift the slowest (its per-child DB descents cost m·logN).
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

constexpr std::size_t kDirectChildren = 100;

void Run() {
  const auto sweep = GeometricSweep(100'000);
  SweepTable table(
      "Figure 9 (LIST detailed, m fixed at 100): operation time vs n",
      "n_files", "ms");
  table.SetSweep({sweep.begin(), sweep.end()});

  for (SystemKind kind : PaperTrio()) {
    auto holder = MakeSystem(kind);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/dir"));
    BENCH_CHECK(AddFiles(fs, "/dir", 0, kDirectChildren));
    BENCH_CHECK(fs.Mkdir("/dir/bulk"));

    Series series{KindName(kind), {}};
    std::size_t populated = 0;
    for (std::size_t n : sweep) {
      const std::size_t bulk =
          n > kDirectChildren ? n - kDirectChildren : 0;
      BENCH_CHECK(AddFiles(fs, "/dir/bulk", populated, bulk));
      populated = bulk;
      holder->Quiesce();
      series.values.push_back(MeasureMs(fs, 3, [&](std::size_t) {
        auto entries = fs.List("/dir", ListDetail::kDetailed);
        BENCH_CHECK(entries.status());
      }));
    }
    table.AddSeries(std::move(series));
  }
  table.Print();
  std::puts(
      "Expected shape (paper): flat in n for all three systems; Swift the "
      "slowest\n(m*logN DB descents), H2Cloud and Dropbox comparable.");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
