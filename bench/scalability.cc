// Table 1's "System Scalability" column, measured: Swift is "Limited",
// H2 is "Yes".
//
// Why: every Swift account's file-path DB lives on one storage node, so
// all metadata operations of all concurrent clients serialize on it; H2
// keeps no secondary structure -- NameRings are ordinary objects spread
// over the whole ring, and middlewares are stateless (§1: application
// instances "can easily scale").
//
// Model: k clients each run the same metadata-heavy workload in their own
// subtree.  Per-client costs are measured; the cluster makespan is
//   object portion:  max(max_i o_i, sum_i o_i / node_count)   (parallel
//                    across storage nodes)
//   Swift DB portion: sum_i d_i                               (one node)
//   makespan = max(object portion, DB portion)
// Aggregate throughput = total ops / makespan.
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

constexpr int kOpsPerClient = 60;
constexpr int kNodes = 8;

struct ClientCost {
  double elapsed_ms = 0;
  double db_ms = 0;
  int ops = 0;
};

ClientCost RunClientWorkload(FileSystem& fs, int client) {
  ClientCost cost;
  const std::string home = "/client" + std::to_string(client);
  BENCH_CHECK(fs.Mkdir(home));
  const double db_page_ms = 0.05;
  auto account = [&] {
    cost.elapsed_ms += fs.last_op().elapsed_ms();
    cost.db_ms += static_cast<double>(fs.last_op().db_pages) * db_page_ms;
    ++cost.ops;
  };
  account();
  for (int i = 0; cost.ops < kOpsPerClient; ++i) {
    BENCH_CHECK(fs.Mkdir(home + "/d" + std::to_string(i)));
    account();
    BENCH_CHECK(fs.WriteFile(home + "/d" + std::to_string(i) + "/f",
                             FileBlob::FromString("x")));
    account();
    BENCH_CHECK(
        fs.List(home, ListDetail::kDetailed).status());
    account();
  }
  return cost;
}

double MakespanMs(const std::vector<ClientCost>& clients, bool shared_db,
                  int nodes = kNodes) {
  double max_obj = 0, sum_obj = 0, sum_db = 0;
  for (const ClientCost& c : clients) {
    const double obj = c.elapsed_ms - c.db_ms;
    max_obj = std::max(max_obj, obj);
    sum_obj += obj;
    sum_db += c.db_ms;
  }
  const double object_makespan = std::max(max_obj, sum_obj / nodes);
  return shared_db ? std::max(object_makespan, sum_db) : object_makespan;
}

void Run() {
  SweepTable table(
      "Aggregate throughput vs concurrent clients (metadata-heavy mix)",
      "clients", "ops_per_sec");
  std::vector<double> xs = {1, 2, 4, 8, 16, 32};
  table.SetSweep(xs);

  for (SystemKind kind : {SystemKind::kSwift, SystemKind::kH2}) {
    Series series{KindName(kind), {}};
    for (double k : xs) {
      auto holder = MakeSystem(kind);
      std::vector<ClientCost> clients;
      int total_ops = 0;
      for (int c = 0; c < static_cast<int>(k); ++c) {
        clients.push_back(RunClientWorkload(holder->fs(), c));
        total_ops += clients.back().ops;
      }
      const double makespan_ms =
          MakespanMs(clients, kind == SystemKind::kSwift);
      series.values.push_back(1000.0 * total_ops / makespan_ms);
    }
    table.AddSeries(std::move(series));
  }
  table.Print();

  // Part 2 -- the crux of "Limited" vs "Yes": add hardware.  Swift's
  // ceiling is the one DB node, so extra storage nodes barely help; H2's
  // throughput is storage-bound and keeps growing with the cluster.
  SweepTable scaling(
      "Aggregate throughput vs storage nodes (32 concurrent clients)",
      "nodes", "ops_per_sec");
  std::vector<double> node_counts = {8, 16, 32, 64, 128};
  scaling.SetSweep(node_counts);
  for (SystemKind kind : {SystemKind::kSwift, SystemKind::kH2}) {
    auto holder = MakeSystem(kind);
    std::vector<ClientCost> clients;
    int total_ops = 0;
    for (int c = 0; c < 32; ++c) {
      clients.push_back(RunClientWorkload(holder->fs(), c));
      total_ops += clients.back().ops;
    }
    Series series{KindName(kind), {}};
    for (double nodes : node_counts) {
      const double makespan_ms =
          MakespanMs(clients, kind == SystemKind::kSwift,
                     static_cast<int>(nodes));
      series.values.push_back(1000.0 * total_ops / makespan_ms);
    }
    scaling.AddSeries(std::move(series));
  }
  scaling.Print();
  std::puts(
      "Expected (Table 1): Swift's throughput saturates once the single\n"
      "file-path DB serializes all clients' metadata ('Limited') -- adding\n"
      "storage nodes cannot raise that ceiling.  H2 has no secondary\n"
      "structure, so throughput keeps scaling with the cluster ('Yes').\n"
      "H2's higher per-op constant is the durable patch submission; its\n"
      "curve crosses Swift's as soon as the hardware grows.");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
