// Real wall-clock throughput of the sharded engine vs worker threads.
//
// Every other bench in this directory reports *virtual* operation time;
// this one reports what the process actually sustains.  A closed-loop
// Zipf load (workload/loadgen.h) of S shards -- one account through one
// dedicated middleware each -- is replayed by the sharded engine
// (engine/sharded_engine.h) at T = 1, 2, 4, 8 worker threads over a
// fresh cloud per T.  For each T we report real ops/sec and wall-clock
// p50/p99 per-op latency, and -- the differential oracle -- require the
// post-maintenance ObjectCloud::DebugDump() to be byte-identical to the
// T = 1 run's.  Any divergence is a determinism bug and fails the bench.
//
// The measured phase runs with pacing (EngineOptions::pacing): each
// worker really sleeps a fixed fraction of its op's simulated service
// time, so the closed loop is latency-bound the way a real fleet is and
// the thread-count scaling reflects overlap of in-flight operations
// rather than the host's core count.
//
// Output: a human table on stdout plus BENCH_throughput.json (path
// overridable via argv[1]), the machine-readable source of truth the
// EXPERIMENTS.md table cites; scripts/check_bench_json.sh validates the
// schema.  Ops/sec is machine-dependent; the speedup ratios and the
// oracle verdicts are the portable part.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engine/sharded_engine.h"
#include "workload/loadgen.h"

namespace h2::bench {
namespace {

/// Real-sleep fraction of simulated service time for the measured phase
/// (1 simulated ms -> 100 real us).  Large enough that waiting, not CPU,
/// bounds a serial client; small enough to keep the sweep brisk.
constexpr double kPacing = 0.1;

struct Row {
  int threads = 0;
  EngineReport setup;
  EngineReport measured;
  bool oracle_match = false;
};

H2CloudConfig SweepCloudConfig(std::size_t shards) {
  H2CloudConfig cfg;
  cfg.cloud = internal::BenchCloudConfig(LatencyProfile::RackLan());
  cfg.middleware_count = static_cast<int>(shards);  // one per shard
  return cfg;
}

std::vector<ShardPlan> SetupPlans(const std::vector<ShardLoad>& loads) {
  std::vector<ShardPlan> plans;
  plans.reserve(loads.size());
  for (const ShardLoad& load : loads) {
    plans.push_back(ShardPlan{load.account, load.setup});
  }
  return plans;
}

std::vector<ShardPlan> OpPlans(const std::vector<ShardLoad>& loads) {
  std::vector<ShardPlan> plans;
  plans.reserve(loads.size());
  for (const ShardLoad& load : loads) {
    plans.push_back(ShardPlan{load.account, load.ops});
  }
  return plans;
}

/// One full populate + measure cycle on a fresh cloud; returns the row
/// and the final state dump for the oracle comparison.
Row RunAt(int threads, const LoadgenSpec& spec,
          const std::vector<ShardLoad>& loads, std::string& dump_out) {
  Row row;
  row.threads = threads;

  H2Cloud cloud(SweepCloudConfig(spec.shards));

  EngineOptions opts;
  opts.threads = threads;
  opts.collect_latencies = false;  // populate phase: throughput only
  Result<EngineReport> setup = RunSharded(cloud, SetupPlans(loads), opts);
  BENCH_CHECK(setup.status());
  row.setup = *setup;
  cloud.RunMaintenanceToQuiescence();

  opts.collect_latencies = true;
  opts.pacing = kPacing;
  Result<EngineReport> measured = RunSharded(cloud, OpPlans(loads), opts);
  BENCH_CHECK(measured.status());
  row.measured = *measured;
  cloud.RunMaintenanceToQuiescence();

  dump_out = cloud.cloud().DebugDump();
  return row;
}

void EmitJson(const char* path, const LoadgenSpec& spec,
              const std::vector<Row>& rows, double speedup) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"throughput_sweep\",\n");
  std::fprintf(f, "  \"unit\": \"ops_per_sec\",\n");
  std::fprintf(f,
               "  \"workload\": {\"shards\": %zu, \"dirs_per_shard\": %zu, "
               "\"files_per_dir\": %zu, \"ops_per_shard\": %zu, "
               "\"zipf_s\": %.3f, \"seed\": %llu},\n",
               spec.shards, spec.dirs_per_shard, spec.files_per_dir,
               spec.ops_per_shard, spec.zipf_s,
               static_cast<unsigned long long>(spec.seed));
  std::fprintf(f, "  \"pacing\": %.3f,\n", kPacing);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"ops\": %zu, \"failures\": %zu, "
                 "\"wall_seconds\": %.6f, \"ops_per_sec\": %.1f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"oracle_match\": %s}%s\n",
                 r.threads, r.measured.ops, r.measured.failures,
                 r.measured.wall_seconds, r.measured.ops_per_sec,
                 r.measured.p50_ms, r.measured.p99_ms,
                 r.oracle_match ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_max_threads_over_serial\": %.2f\n", speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  const char* out_path =
      argc > 1 ? argv[1] : "BENCH_throughput.json";
  LoadgenSpec spec;
  if (argc > 2) spec.ops_per_shard = std::strtoull(argv[2], nullptr, 10);

  const std::vector<ShardLoad> loads = BuildZipfLoad(spec);

  std::printf("# throughput_sweep: %zu shards, %zu ops/shard, "
              "LIST/GET-heavy Zipf(s=%.2f)\n",
              spec.shards, spec.ops_per_shard, spec.zipf_s);
  std::printf("%8s %10s %12s %10s %10s %8s\n", "threads", "ops",
              "ops/sec", "p50 ms", "p99 ms", "oracle");

  std::string oracle_dump;
  std::vector<Row> rows;
  bool all_match = true;
  for (const int threads : {1, 2, 4, 8}) {
    std::string dump;
    Row row = RunAt(threads, spec, loads, dump);
    if (threads == 1) {
      oracle_dump = dump;
      row.oracle_match = true;
    } else {
      row.oracle_match = (dump == oracle_dump);
    }
    all_match = all_match && row.oracle_match;
    std::printf("%8d %10zu %12.1f %10.4f %10.4f %8s\n", row.threads,
                row.measured.ops, row.measured.ops_per_sec,
                row.measured.p50_ms, row.measured.p99_ms,
                row.oracle_match ? "match" : "DIVERGED");
    rows.push_back(std::move(row));
  }

  const double speedup =
      rows.front().measured.ops_per_sec > 0
          ? rows.back().measured.ops_per_sec /
                rows.front().measured.ops_per_sec
          : 0;
  std::printf("# speedup %dT/1T: %.2fx\n", rows.back().threads, speedup);
  EmitJson(out_path, spec, rows, speedup);
  std::printf("# wrote %s\n", out_path);

  if (!all_match) {
    std::fprintf(stderr,
                 "FATAL: threaded run diverged from the serial oracle\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace h2::bench

int main(int argc, char** argv) { return h2::bench::Main(argc, argv); }
