// google-benchmark microbenchmarks of the hot in-process data structures:
// the hashes that place every object, NameRing parse/merge/serialize, and
// partition-ring lookup.  These bound the CPU overhead the H2 middleware
// adds on top of the storage latencies the figure benches simulate.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "h2/h2cloud.h"
#include "h2/name_ring.h"
#include "hash/fast_hash.h"
#include "hash/md5.h"
#include "ring/partition_ring.h"

namespace h2 {
namespace {

void BM_Md5SmallKey(benchmark::State& state) {
  const std::string key = "06.01.1469346604539::some-file-name.dat";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash64(key));
  }
}
BENCHMARK(BM_Md5SmallKey);

void BM_Md5Payload(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(payload));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_Md5Payload)->Range(1 << 10, 1 << 20);

void BM_XxHash64(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(XxHash64(payload));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_XxHash64)->Range(1 << 10, 1 << 20);

NameRing MakeRing(std::size_t children) {
  NameRing ring;
  for (std::size_t i = 0; i < children; ++i) {
    ring.Apply(RingTuple{"child" + std::to_string(i),
                         static_cast<VirtualNanos>(i + 1), EntryKind::kFile,
                         false});
  }
  return ring;
}

void BM_NameRingSerialize(benchmark::State& state) {
  const NameRing ring = MakeRing(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Serialize());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NameRingSerialize)->Range(8, 1 << 14);

void BM_NameRingParse(benchmark::State& state) {
  const std::string data =
      MakeRing(static_cast<std::size_t>(state.range(0))).Serialize();
  for (auto _ : state) {
    auto parsed = NameRing::Parse(data);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NameRingParse)->Range(8, 1 << 14);

void BM_NameRingMergePatch(benchmark::State& state) {
  const NameRing base = MakeRing(static_cast<std::size_t>(state.range(0)));
  NameRing patch;
  patch.Apply(RingTuple{"child3", 1'000'000, EntryKind::kFile, true});
  patch.Apply(RingTuple{"brand-new", 1'000'001, EntryKind::kFile, false});
  for (auto _ : state) {
    NameRing ring = base;
    benchmark::DoNotOptimize(ring.Merge(patch));
  }
}
BENCHMARK(BM_NameRingMergePatch)->Range(8, 1 << 14);

void BM_PartitionRingLookup(benchmark::State& state) {
  PartitionRing ring(16, 3);
  for (int i = 0; i < 8; ++i) {
    benchmark::DoNotOptimize(
        ring.AddDevice(RingDevice{static_cast<DeviceId>(i),
                                  "node-" + std::to_string(i), 1.0}));
  }
  benchmark::DoNotOptimize(ring.Rebalance());
  std::uint64_t hash = 0x1234;
  for (auto _ : state) {
    hash = hash * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(ring.ReplicasOfHash(hash));
  }
}
BENCHMARK(BM_PartitionRingLookup);

void BM_RingRebalanceAfterNodeAdd(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PartitionRing ring(static_cast<int>(state.range(0)), 3);
    for (int i = 0; i < 8; ++i) {
      benchmark::DoNotOptimize(
          ring.AddDevice(RingDevice{static_cast<DeviceId>(i), "n", 1.0}));
    }
    benchmark::DoNotOptimize(ring.Rebalance());
    benchmark::DoNotOptimize(
        ring.AddDevice(RingDevice{8, "new", 1.0}));
    state.ResumeTiming();
    benchmark::DoNotOptimize(ring.Rebalance());
  }
}
BENCHMARK(BM_RingRebalanceAfterNodeAdd)->DenseRange(8, 14, 2);

// Depth-8 path resolution against a full simulated H2Cloud with the
// resolve cache off (arg 0) vs on (arg 1).  The figure of merit is the
// cloud_gets_per_op counter: O(d) directory-record GETs per Stat
// uncached, ~0 once the cache is warm.
struct DeepCloud {
  explicit DeepCloud(bool cache_on) {
    H2CloudConfig cfg;
    cfg.cloud.part_power = 8;
    cfg.h2.resolve_cache = cache_on;
    cloud = std::make_unique<H2Cloud>(cfg);
    ok = cloud->CreateAccount("bench").ok();
    if (!ok) return;
    fs = std::move(cloud->OpenFilesystem("bench")).value();
    for (int d = 1; d <= 8; ++d) {
      dir += "/d" + std::to_string(d);
      ok = ok && fs->Mkdir(dir).ok();
    }
    ok = ok && fs->WriteFile(dir + "/leaf", FileBlob::FromString("x")).ok();
    cloud->RunMaintenanceToQuiescence();
  }
  std::unique_ptr<H2Cloud> cloud;
  std::unique_ptr<H2AccountFs> fs;
  std::string dir;
  bool ok = true;
};

void BM_H2DeepStat(benchmark::State& state) {
  DeepCloud deep(state.range(0) != 0);
  if (!deep.ok) {
    state.SkipWithError("deep tree setup failed");
    return;
  }
  const std::string leaf = deep.dir + "/leaf";
  std::uint64_t gets = 0, ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(deep.fs->Stat(leaf));
    gets += deep.fs->last_op().gets;
    ++ops;
  }
  state.counters["cloud_gets_per_op"] =
      benchmark::Counter(static_cast<double>(gets) / static_cast<double>(ops));
}
BENCHMARK(BM_H2DeepStat)->ArgName("cache")->Arg(0)->Arg(1);

void BM_H2DeepList(benchmark::State& state) {
  DeepCloud deep(state.range(0) != 0);
  if (!deep.ok) {
    state.SkipWithError("deep tree setup failed");
    return;
  }
  std::uint64_t gets = 0, ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(deep.fs->List(deep.dir, ListDetail::kNamesOnly));
    gets += deep.fs->last_op().gets;
    ++ops;
  }
  state.counters["cloud_gets_per_op"] =
      benchmark::Counter(static_cast<double>(gets) / static_cast<double>(ops));
}
BENCHMARK(BM_H2DeepList)->ArgName("cache")->Arg(0)->Arg(1);

}  // namespace
}  // namespace h2

BENCHMARK_MAIN();
