// Figure 13: file access (lookup) time vs the directory depth d of the
// accessed file, d = 1..20.
//
// Paper result: Swift is flat at ~10 ms (one full-path hash + HEAD);
// H2 grows linearly in d (one directory-record GET per level, ~61 ms on
// average at the measured workloads' mean depth d=4); Dropbox is roughly
// constant with fluctuations, because Dynamic Partition usually resolves
// all d steps inside one index server.
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

constexpr std::size_t kMaxDepth = 20;

void Run() {
  SweepTable table("Figure 13 (file access): lookup time vs depth d",
                   "depth", "ms");
  std::vector<double> xs;
  for (std::size_t d = 1; d <= kMaxDepth; ++d) {
    xs.push_back(static_cast<double>(d));
  }
  table.SetSweep(xs);

  // Builds a 20-deep chain with one file at every level, then measures
  // Stat at each depth.
  const auto measure = [](SystemHolder& holder, std::string label) {
    FileSystem& fs = holder.fs();
    std::string dir;
    std::vector<std::string> files;
    for (std::size_t d = 1; d <= kMaxDepth; ++d) {
      // The file at depth d sits in the (d-1)-deep directory.
      const std::string file =
          dir + "/file_at_" + std::to_string(d);
      BENCH_CHECK(fs.WriteFile(file, FileBlob::FromString("x")));
      files.push_back(file);
      if (d < kMaxDepth) {
        dir += "/d" + std::to_string(d);
        BENCH_CHECK(fs.Mkdir(dir));
      }
    }
    holder.Quiesce();

    Series series{std::move(label), {}};
    for (const std::string& file : files) {
      series.values.push_back(MeasureMs(
          fs, 5, [&](std::size_t) { BENCH_CHECK(fs.Stat(file).status()); }));
    }
    return series;
  };

  double h2_at_4 = 0;
  for (SystemKind kind : PaperTrio()) {
    auto holder = MakeSystem(kind);
    Series series = measure(*holder, KindName(kind));
    if (kind == SystemKind::kH2) h2_at_4 = series.values[3];
    table.AddSeries(std::move(series));
  }
  // Extra series beyond the paper: H2 with the resolve cache enabled.
  // Warm lookups skip the per-level directory-record GETs, so the curve
  // flattens toward Swift's.
  {
    H2Config cached;
    cached.resolve_cache = true;
    internal::H2Holder holder(cached);
    table.AddSeries(measure(holder, "H2Cloud+cache"));
  }
  table.Print();
  std::printf(
      "H2Cloud lookup at the workloads' average depth d=4: %.1f ms "
      "(paper: ~61 ms).\n",
      h2_at_4);
  std::puts(
      "Expected shape (paper): Swift flat ~10 ms; H2Cloud proportional to "
      "d;\nDropbox roughly constant with fluctuations.");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
