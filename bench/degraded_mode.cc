// Degraded-mode ablation: what the replica repair subsystem buys.
//
// Runs the same deterministic trace against three repair configurations
// -- none, read-repair only, read-repair + hinted handoff -- through two
// outage phases:
//
//   Phase A: one storage node is down while the working set is
//            overwritten (it misses every write).
//   Heal:    the node revives; hints replay (when enabled) and a read
//            sweep over the working set triggers read-repair (when
//            enabled).
//   Phase B: the revived node's two partner replicas for a "hot"
//            partition go down, so reads of hot keys are served by the
//            revived node alone.  If it was not healed, clients read
//            stale data.
//
// A read is *stale* when it returns bytes that are neither the newest
// committed value nor a value from an attempted-but-quorum-failed PUT
// (Swift semantics: a failed write that partially landed may legitimately
// become visible and win last-writer-wins convergence).
//
// Afterwards every configuration is revived and converged (hint replay +
// anti-entropy sweeps) to show the repair machinery closes the loop, and
// at what out-of-band virtual-time cost.  Foreground trace pricing is
// untouched by any of this -- repair is charged on the cloud's repair
// meter (docs/PROTOCOL.md "Degraded-mode semantics").
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/object_cloud.h"
#include "common/rng.h"
#include "hash/md5.h"

namespace h2::bench {
namespace {

constexpr int kGenericKeys = 170;
constexpr int kHotKeys = 30;
constexpr int kPhaseAOps = 1000;
constexpr int kPhaseBOps = 1000;

std::vector<std::size_t> ReplicaIndices(const ObjectCloud& cloud,
                                        const std::string& key) {
  std::vector<std::size_t> out;
  for (DeviceId dev : cloud.ring().ReplicasOfHash(Md5::Hash64(key))) {
    out.push_back(static_cast<std::size_t>(dev));
  }
  return out;
}

struct TraceResult {
  std::string label;
  std::uint64_t reads = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t failed_puts = 0;
  std::uint64_t hints_queued = 0;
  std::uint64_t hints_replayed = 0;
  std::uint64_t read_repairs = 0;
  std::uint64_t divergent_at_revival = 0;
  int sweeps_to_converge = 0;
  double repair_ms = 0.0;
};

struct KeyState {
  std::string committed;            // newest quorum-acked value
  std::vector<std::string> pending; // attempted writes that failed quorum
};

bool IsStale(const KeyState& state, const Result<ObjectValue>& got) {
  if (got.ok()) {
    if (got->payload == state.committed) return false;
    for (const auto& p : state.pending) {
      if (got->payload == p) return false;
    }
    return true;
  }
  // NotFound while a committed value exists: the serving replica missed
  // the write entirely.
  return !state.committed.empty();
}

TraceResult RunTrace(bool read_repair, bool hinted_handoff,
                     const std::string& label) {
  CloudConfig cfg;
  cfg.node_count = 8;
  cfg.replica_count = 3;
  cfg.part_power = 8;
  cfg.read_repair = read_repair;
  cfg.hinted_handoff = hinted_handoff;
  ObjectCloud cloud(cfg);
  OpMeter meter;

  // Key population: generic keys spread over the ring, plus "hot" keys
  // pinned to partitions whose replica set contains node 0 -- phase B
  // downs the other two members of the first such set, so hot reads are
  // served by node 0 alone.
  std::vector<std::string> keys;
  std::vector<std::size_t> hot_partners;
  for (int i = 0; i < kGenericKeys; ++i) {
    keys.push_back("k" + std::to_string(i));
  }
  for (int j = 0; static_cast<int>(keys.size()) <
                  kGenericKeys + kHotKeys; ++j) {
    const std::string candidate = "hot" + std::to_string(j);
    const auto replicas = ReplicaIndices(cloud, candidate);
    if (replicas.size() != 3) continue;
    bool has0 = false;
    for (std::size_t r : replicas) has0 = has0 || r == 0;
    if (!has0) continue;
    if (hot_partners.empty()) {
      for (std::size_t r : replicas) {
        if (r != 0) hot_partners.push_back(r);
      }
    } else {
      // Every hot key must share the same partner pair.
      std::size_t matched = 0;
      for (std::size_t r : replicas) {
        for (std::size_t p : hot_partners) matched += r == p;
      }
      if (matched != 2) continue;
    }
    keys.push_back(candidate);
  }

  std::vector<KeyState> state(keys.size());
  auto put = [&](std::size_t k, const std::string& value) {
    ObjectValue v = ObjectValue::FromString(value, 0);
    v.logical_size = 1024;
    if (cloud.Put(keys[k], std::move(v), meter).ok()) {
      state[k].committed = value;
      state[k].pending.clear();
    } else {
      state[k].pending.push_back(value);
    }
  };

  // Seed everything, fully replicated.
  for (std::size_t k = 0; k < keys.size(); ++k) put(k, "seed");

  // Phase A: node 0 down, working set overwritten under it.
  cloud.node(0).SetDown(true);
  Rng rng(2026);
  for (int i = 0; i < kPhaseAOps; ++i) {
    const std::size_t k = rng.Below(keys.size());
    if (rng.Below(2) == 0) {
      put(k, "a" + std::to_string(i));
    } else {
      (void)cloud.Get(keys[k], meter);
    }
  }
  cloud.node(0).SetDown(false);

  // Heal window: hint replay (if enabled) plus one read sweep over the
  // working set (read-repair, if enabled, heals what the reads observe).
  while (cloud.ReplayHints() > 0) {
  }
  for (std::size_t k = 0; k < keys.size(); ++k) {
    (void)cloud.Get(keys[k], meter);
  }

  // Phase B: the hot partition's other two replicas go down; node 0
  // serves hot keys alone.
  TraceResult result;
  result.label = label;
  for (std::size_t p : hot_partners) cloud.node(p).SetDown(true);
  for (int i = 0; i < kPhaseBOps; ++i) {
    const std::size_t k = rng.Below(keys.size());
    if (rng.Below(10) < 3 && k < kGenericKeys) {
      put(k, "b" + std::to_string(i));
    } else {
      const auto got = cloud.Get(keys[k], meter);
      if (got.code() == ErrorCode::kUnavailable) continue;
      ++result.reads;
      result.stale_reads += IsStale(state[k], got);
    }
  }
  for (std::size_t p : hot_partners) cloud.node(p).SetDown(false);

  // Convergence: replay hints, then anti-entropy sweeps until the
  // divergence oracle is empty.
  result.divergent_at_revival = cloud.DivergentKeyCount();
  const double repair_ms_before =
      ToMillis(cloud.repair_cost().elapsed);
  while (cloud.ReplayHints() > 0) {
  }
  for (int sweep = 0; sweep < 64; ++sweep) {
    ++result.sweeps_to_converge;
    if (cloud.ReplicaScrub().divergent_keys == 0) break;
  }
  if (cloud.DivergentKeyCount() != 0) {
    std::fprintf(stderr, "FATAL: %s did not converge\n", label.c_str());
    std::exit(1);
  }

  const auto stats = cloud.repair_stats();
  result.failed_puts = stats.failed_puts;
  result.hints_queued = stats.hints_queued;
  result.hints_replayed = stats.hints_replayed;
  result.read_repairs = stats.read_repairs_pushed;
  result.repair_ms = ToMillis(cloud.repair_cost().elapsed);
  std::fprintf(stdout,
               "  [%s] convergence repair cost: %.1f ms of %.1f ms total\n",
               label.c_str(), result.repair_ms - repair_ms_before,
               result.repair_ms);
  return result;
}

void Run() {
  std::puts(
      "== Degraded-mode ablation: stale reads vs repair configuration ==\n"
      "8 nodes / 3 replicas; phase A: 1 node down for 1000 trace ops;\n"
      "phase B: its 2 hot-partition partners down for 1000 ops.\n");

  std::vector<TraceResult> rows;
  rows.push_back(RunTrace(false, false, "none"));
  rows.push_back(RunTrace(true, false, "read-repair"));
  rows.push_back(RunTrace(true, true, "read-repair+hints"));

  std::puts(
      "\nconfig              reads  stale  stale%  failed_puts  hints(q/r)"
      "  read_repairs  divergent@revive  sweeps  repair_ms");
  for (const auto& r : rows) {
    std::printf(
        "%-18s %6llu %6llu  %5.1f%%  %11llu  %5llu/%-5llu  %12llu  "
        "%16llu  %6d  %9.1f\n",
        r.label.c_str(), static_cast<unsigned long long>(r.reads),
        static_cast<unsigned long long>(r.stale_reads),
        r.reads == 0 ? 0.0
                     : 100.0 * static_cast<double>(r.stale_reads) /
                           static_cast<double>(r.reads),
        static_cast<unsigned long long>(r.failed_puts),
        static_cast<unsigned long long>(r.hints_queued),
        static_cast<unsigned long long>(r.hints_replayed),
        static_cast<unsigned long long>(r.read_repairs),
        static_cast<unsigned long long>(r.divergent_at_revival),
        r.sweeps_to_converge, r.repair_ms);
  }

  std::puts(
      "\nWith repair off, phase-B reads of the hot partition serve the\n"
      "revived node's stale copies.  Read-repair heals what the heal-window\n"
      "sweep observed; hinted handoff heals everything the node missed.\n"
      "All repair traffic is priced out-of-band (repair_ms), never on the\n"
      "foreground meters the figure benches calibrate against.");
}

}  // namespace
}  // namespace h2::bench

int main() {
  h2::bench::Run();
  return 0;
}
