// Figure 7: operation time of MOVE and RENAME as the number of files in
// the directory (n) grows from 10 to 100,000.
//
// Paper result: OpenStack Swift grows linearly with n (every file's
// placement key changes), while H2Cloud and Dropbox stay flat (a MOVE is
// a parent-record rewrite + two NameRing patches / an index dentry swap).
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

void Run() {
  const auto sweep = GeometricSweep(100'000);
  SweepTable move_table("Figure 7 (MOVE): operation time vs n", "n_files",
                        "ms");
  SweepTable rename_table("Figure 7 (RENAME): operation time vs n",
                          "n_files", "ms");
  std::vector<double> xs(sweep.begin(), sweep.end());
  move_table.SetSweep(xs);
  rename_table.SetSweep(xs);

  for (SystemKind kind : PaperTrio()) {
    auto holder = MakeSystem(kind);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/dst"));
    BENCH_CHECK(fs.Mkdir("/work"));

    Series move_series{KindName(kind), {}};
    Series rename_series{KindName(kind), {}};
    std::size_t populated = 0;
    for (std::size_t n : sweep) {
      BENCH_CHECK(AddFiles(fs, "/work", populated, n));
      populated = n;
      holder->Quiesce();

      // MOVE the n-file directory under a different parent, then restore.
      BENCH_CHECK(fs.Move("/work", "/dst/moved"));
      move_series.values.push_back(fs.last_op().elapsed_ms());
      BENCH_CHECK(fs.Move("/dst/moved", "/work"));

      // RENAME is a MOVE within the parent (§5.3).
      BENCH_CHECK(fs.Rename("/work", "work2"));
      rename_series.values.push_back(fs.last_op().elapsed_ms());
      BENCH_CHECK(fs.Rename("/work2", "work"));
      holder->Quiesce();
    }
    move_table.AddSeries(std::move(move_series));
    rename_table.AddSeries(std::move(rename_series));
  }

  move_table.Print();
  rename_table.Print();
  std::puts(
      "Expected shape (paper): Swift grows ~linearly in n; H2Cloud and\n"
      "Dropbox are flat (O(1) directory moves).");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
