// Ablation: geo-distributed deployment (§4.1: "multiple H2Middlewares are
// deployed ... to reduce the service delay when the object storage cloud
// is geographically distributed across several data centers").
//
// A 9-node cloud spans 3 zones with a configurable inter-zone round trip.
// With zone-aware replica placement (one copy per zone), every middleware
// finds a local replica for reads, so read latency stays flat as the
// inter-zone distance grows -- while writes pay the quorum's remote ack.
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

void Run() {
  SweepTable table("Geo deployment: op latency vs inter-zone RTT",
                   "inter_zone_ms", "ms");
  std::vector<double> xs = {0, 10, 30, 60};
  table.SetSweep(xs);
  Series read_local{"stat(zone-local replica)", {}};
  Series write_quorum{"write(cross-zone quorum)", {}};
  Series read_zoneless{"stat(no zone placement)", {}};

  for (double rtt : xs) {
    // Zone-aware cloud: 3 zones x 3 nodes, replicas span zones.
    {
      H2CloudConfig cfg;
      cfg.cloud.node_count = 9;
      cfg.cloud.zone_count = 3;
      cfg.cloud.part_power = 8;
      cfg.cloud.latency.inter_zone_hop = FromMillis(rtt);
      H2Cloud cloud(cfg);
      BENCH_CHECK(cloud.CreateAccount("geo"));
      auto fs = std::move(cloud.OpenFilesystem("geo")).value();
      BENCH_CHECK(fs->WriteFile("/doc", FileBlob::FromString("x")));
      cloud.RunMaintenanceToQuiescence();
      read_local.values.push_back(MeasureMs(*fs, 5, [&](std::size_t) {
        BENCH_CHECK(fs->Stat("/doc").status());
      }));
      write_quorum.values.push_back(MeasureMs(*fs, 5, [&](std::size_t i) {
        BENCH_CHECK(fs->WriteFile("/w" + std::to_string(i),
                                  FileBlob::FromString("x")));
      }));
    }
    // Same topology but the ring ignores zones (zone_count=1 while the
    // reader sits in zone 1): every read may cross zones.
    {
      CloudConfig cfg;
      cfg.node_count = 9;
      cfg.zone_count = 1;  // all nodes zone 0
      cfg.part_power = 8;
      cfg.latency.inter_zone_hop = FromMillis(rtt);
      ObjectCloud cloud(cfg);
      OpMeter writer;
      BENCH_CHECK(
          cloud.Put("doc", ObjectValue::FromString("x", 0), writer));
      OpMeter reader;
      reader.SetZone(1);  // remote data center, no local replicas exist
      double total = 0;
      for (int i = 0; i < 5; ++i) {
        reader.Reset();
        BENCH_CHECK(cloud.Head("doc", reader).status());
        total += reader.cost().elapsed_ms();
      }
      read_zoneless.values.push_back(total / 5);
    }
  }
  table.AddSeries(std::move(read_local));
  table.AddSeries(std::move(read_zoneless));
  table.AddSeries(std::move(write_quorum));
  table.Print();
  std::puts(
      "Zone-aware placement keeps reads flat regardless of inter-zone\n"
      "distance (a replica is always local); without it, reads pay the\n"
      "full inter-zone round trip.  Writes always pay it for the quorum.");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
