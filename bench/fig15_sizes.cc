// Figure 15: total stored bytes, H2Cloud vs OpenStack Swift, for the same
// ingested filesystems.
//
// Paper result: the extra bytes are negligible -- directory records and
// NameRings are sub-KB objects while the average file object is ~1 MB, so
// the H2 and Swift curves nearly coincide even though Fig. 14's object
// counts diverge.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "workload/tree_gen.h"

namespace h2::bench {
namespace {

void Run() {
  const std::size_t file_counts[] = {100, 1'000, 10'000};
  SweepTable table("Figure 15: stored bytes vs filesystem size", "n_files",
                   "MiB");
  std::vector<double> xs;
  for (std::size_t n : file_counts) xs.push_back(static_cast<double>(n));
  table.SetSweep(xs);

  double h2_bytes = 0, swift_bytes = 0;
  for (SystemKind kind : {SystemKind::kSwift, SystemKind::kH2}) {
    Series series{KindName(kind), {}};
    for (std::size_t n : file_counts) {
      auto holder = MakeSystem(kind);
      TreeSpec spec;
      spec.file_count = n;
      spec.dir_count = n / 10;
      spec.max_depth = 8;
      spec.seed = 7;  // identical trees for both systems
      const GeneratedTree tree = GenerateTree(spec);
      BENCH_CHECK(PopulateTree(holder->fs(), tree));
      holder->Quiesce();
      const double mib =
          static_cast<double>(holder->cloud().LogicalBytes()) / (1 << 20);
      series.values.push_back(mib);
      if (n == file_counts[2]) {
        (kind == SystemKind::kH2 ? h2_bytes : swift_bytes) = mib;
      }
    }
    table.AddSeries(std::move(series));
  }
  table.Print();
  std::printf("Storage overhead of H2Cloud at 10k files: %+.2f%%\n",
              100.0 * (h2_bytes - swift_bytes) / swift_bytes);
  std::puts(
      "Expected shape (paper): the byte curves nearly coincide; H2's "
      "extra\ndirectory/NameRing objects (<1 KB each) are negligible "
      "next to ~1 MB files.");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
