// Ablation: gossip fan-out vs convergence speed and traffic (§3.3.2).
//
// Sweeps the fan-out of the NameRing synchronization gossip and reports
// rounds-to-quiescence and messages sent for a fleet of middlewares that
// all learn about one NameRing update, plus the end-to-end convergence
// work for concurrent writers.
#include <cstdio>

#include "bench/bench_util.h"
#include "gossip/gossip.h"

namespace h2::bench {
namespace {

void RawGossipSweep() {
  SweepTable table("Gossip fan-out vs dissemination (64 members)",
                   "fanout", "count");
  std::vector<double> xs = {1, 2, 3, 4, 6, 8};
  table.SetSweep(xs);
  Series rounds{"rounds", {}};
  Series messages{"messages", {}};
  for (double fanout : xs) {
    GossipBus bus(static_cast<int>(fanout), 99);
    std::vector<std::int64_t> versions(64, 0);
    for (std::uint32_t i = 0; i < 64; ++i) {
      bus.Join([&versions, i](const Rumor& rumor) {
        if (versions[i] >= rumor.version) return false;
        versions[i] = rumor.version;
        return true;
      });
    }
    versions[0] = 1;
    bus.Publish(0, Rumor{"ring", 0, 1});
    rounds.values.push_back(static_cast<double>(bus.RunToQuiescence()));
    messages.values.push_back(static_cast<double>(bus.stats().delivered));
  }
  table.AddSeries(std::move(rounds));
  table.AddSeries(std::move(messages));
  table.Print();
  std::puts(
      "Higher fan-out converges in fewer rounds at the cost of more\n"
      "messages; fan-out 3 (H2Cloud's default) balances the two.");
}

void MiddlewareFleetConvergence() {
  SweepTable table("H2 fleet: middlewares vs maintenance work", "fleet",
                   "count");
  std::vector<double> xs = {1, 2, 4, 8};
  table.SetSweep(xs);
  Series steps{"maintenance_steps", {}};
  Series repairs{"gossip_repairs", {}};
  for (double fleet : xs) {
    H2CloudConfig cfg;
    cfg.cloud.part_power = 10;
    cfg.middleware_count = static_cast<int>(fleet);
    H2Cloud cloud(cfg);
    BENCH_CHECK(cloud.CreateAccount("bench"));
    std::vector<std::unique_ptr<H2AccountFs>> sessions;
    for (int i = 0; i < static_cast<int>(fleet); ++i) {
      sessions.push_back(std::move(cloud.OpenFilesystem("bench", i)).value());
    }
    BENCH_CHECK(sessions[0]->Mkdir("/hot"));
    for (int round = 0; round < 20; ++round) {
      for (std::size_t s = 0; s < sessions.size(); ++s) {
        BENCH_CHECK(sessions[s]->WriteFile(
            "/hot/f" + std::to_string(round) + "_" + std::to_string(s),
            FileBlob::FromString("x")));
      }
    }
    steps.values.push_back(
        static_cast<double>(cloud.RunMaintenanceToQuiescence()));
    std::uint64_t total_repairs = 0;
    for (std::size_t i = 0; i < cloud.middleware_count(); ++i) {
      total_repairs += cloud.middleware(i).counters().gossip_repairs;
    }
    repairs.values.push_back(static_cast<double>(total_repairs));
    // Sanity: all sessions agree on the final listing.
    auto names = sessions[0]->List("/hot", ListDetail::kNamesOnly);
    BENCH_CHECK(names.status());
    if (names->size() != 20 * sessions.size()) {
      std::fprintf(stderr, "convergence failure: %zu != %zu\n",
                   names->size(), 20 * sessions.size());
      std::exit(1);
    }
  }
  table.AddSeries(std::move(steps));
  table.AddSeries(std::move(repairs));
  table.Print();
}

}  // namespace
}  // namespace h2::bench

int main() {
  h2::bench::RawGossipSweep();
  h2::bench::MiddlewareFleetConvergence();
}
