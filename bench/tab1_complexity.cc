// Table 1: empirical complexity validation for every data structure.
//
// For each system and operation we sweep the driving variable (n files in
// the directory, m direct children, depth d, or total size N -- the
// paper's Table 1 notation), measure the *work units* each operation
// issues (object primitives + DB pages + index RPCs + entries scanned),
// fit the log-log slope, and classify it as O(1) / O(log) / O(linear).
// Work units rather than simulated time keep the classification free of
// the latency model's additive constants.
//
// The printed table juxtaposes the measured class with the paper's claim
// for every row of Table 1.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

double WorkUnits(const OpCost& cost) {
  return static_cast<double>(cost.object_primitives() + cost.db_pages +
                             cost.index_rpcs + cost.scanned_objects);
}

struct OpResult {
  std::string measured;
  double slope = 0;
};

/// Sweeps directory population n over `xs` and measures work of `op`.
template <typename Setup, typename Op>
OpResult FitOp(SystemKind kind, const std::vector<std::size_t>& xs,
               Setup&& setup, Op&& op) {
  std::vector<double> x_values, y_values;
  for (std::size_t x : xs) {
    auto holder = MakeSystem(kind);
    setup(*holder, x);
    holder->Quiesce();
    const OpCost cost = op(*holder, x);
    x_values.push_back(static_cast<double>(x));
    y_values.push_back(std::max(WorkUnits(cost), 1.0));
  }
  OpResult result;
  result.slope = LogLogSlope(x_values, y_values);
  result.measured = ComplexityClass(result.slope);
  return result;
}

void PopulateFlat(SystemHolder& holder, std::size_t n) {
  BENCH_CHECK(holder.fs().Mkdir("/dir"));
  BENCH_CHECK(AddFiles(holder.fs(), "/dir", 0, n));
  BENCH_CHECK(holder.fs().Mkdir("/dst"));
}

struct PaperRow {
  const char* access;
  const char* mkdir;
  const char* rm_mv;
  const char* list;
  const char* copy;
};

PaperRow PaperClaims(SystemKind kind) {
  switch (kind) {
    case SystemKind::kCumulus:
      return {"O(N)", "O(1)", "O(N)", "O(N)", "O(N)"};
    case SystemKind::kCas:
      return {"O(1)*", "O(N)", "O(N)", "O(m)", "O(N)"};
    case SystemKind::kPlainCh:
      return {"O(1)", "O(1)", "O(n)", "O(N)", "O(N)"};
    case SystemKind::kSwift:
      return {"O(1)", "O(1)", "O(n)", "O(mlogN)", "O(n+logN)"};
    case SystemKind::kSingleIndex:
    case SystemKind::kStaticPartition:
    case SystemKind::kDp:
    case SystemKind::kDpSharedDisk:
    case SystemKind::kDropbox:
      return {"O(d)", "O(1)", "O(1)", "O(m)", "O(n)"};
    case SystemKind::kH2:
      return {"O(d)/O(1)", "O(1)", "O(1)", "O(m)/O(1)", "O(n)"};
  }
  return {};
}

void Run() {
  // Sweeps sized so CAS/Cumulus rebuilds stay fast while the asymptote is
  // unambiguous over two decades.
  const std::vector<std::size_t> n_sweep = {16, 64, 256, 1024};
  const std::vector<std::size_t> d_sweep = {2, 4, 8, 16};

  std::printf("%-13s %-6s | %-12s %-12s %-12s %-12s %-12s\n", "system",
              "", "access(d|N)", "mkdir(n)", "rm+mv(n)", "list(m)",
              "copy(n)");
  std::puts(std::string(92, '-').c_str());

  for (SystemKind kind : AllKinds()) {
    if (kind == SystemKind::kDropbox) continue;  // = DP + WAN constants

    // File access vs depth d (Cumulus's driver is N; its directory holds
    // the files, so both interpretations coincide in the fit below).
    OpResult access = FitOp(
        kind, d_sweep,
        [](SystemHolder& holder, std::size_t d) {
          FileSystem& fs = holder.fs();
          std::string dir;
          for (std::size_t i = 1; i < d; ++i) {
            dir += "/d" + std::to_string(i);
            BENCH_CHECK(fs.Mkdir(dir));
          }
          BENCH_CHECK(fs.WriteFile(dir + "/target",
                                   FileBlob::FromString("x")));
        },
        [](SystemHolder& holder, std::size_t d) {
          std::string path;
          for (std::size_t i = 1; i < d; ++i) {
            path += "/d" + std::to_string(i);
          }
          path += "/target";
          BENCH_CHECK(holder.fs().Stat(path).status());
          return holder.fs().last_op();
        });
    // For Cumulus, access scales with N, not d: re-fit against n.
    if (kind == SystemKind::kCumulus || kind == SystemKind::kCas ||
        kind == SystemKind::kPlainCh || kind == SystemKind::kSwift) {
      OpResult vs_n = FitOp(
          kind, n_sweep, PopulateFlat,
          [](SystemHolder& holder, std::size_t) {
            BENCH_CHECK(holder.fs().Stat("/dir/f000000").status());
            return holder.fs().last_op();
          });
      if (vs_n.slope > access.slope) access = vs_n;
    }

    OpResult mkdir = FitOp(kind, n_sweep, PopulateFlat,
                           [](SystemHolder& holder, std::size_t) {
                             BENCH_CHECK(holder.fs().Mkdir("/dir/newdir"));
                             return holder.fs().last_op();
                           });

    OpResult rm_mv = FitOp(
        kind, n_sweep, PopulateFlat,
        [](SystemHolder& holder, std::size_t) {
          FileSystem& fs = holder.fs();
          BENCH_CHECK(fs.Move("/dir", "/dst/moved"));
          OpCost total = fs.last_op();
          BENCH_CHECK(fs.Rmdir("/dst/moved"));
          total += fs.last_op();
          return total;
        });

    OpResult list = FitOp(kind, n_sweep, PopulateFlat,
                          [](SystemHolder& holder, std::size_t) {
                            BENCH_CHECK(holder.fs()
                                            .List("/dir",
                                                  ListDetail::kDetailed)
                                            .status());
                            return holder.fs().last_op();
                          });

    OpResult copy = FitOp(kind, n_sweep, PopulateFlat,
                          [](SystemHolder& holder, std::size_t) {
                            BENCH_CHECK(holder.fs().Copy("/dir", "/dircopy"));
                            return holder.fs().last_op();
                          });

    const PaperRow paper = PaperClaims(kind);
    std::printf("%-13s %-6s | %-12s %-12s %-12s %-12s %-12s\n",
                KindName(kind), "paper", paper.access, paper.mkdir,
                paper.rm_mv, paper.list, paper.copy);
    std::printf("%-13s %-6s | %-5s(%4.2f) %-5s(%4.2f) %-5s(%4.2f) "
                "%-5s(%4.2f) %-5s(%4.2f)\n",
                "", "fit", access.measured.c_str(), access.slope,
                mkdir.measured.c_str(), mkdir.slope,
                rm_mv.measured.c_str(), rm_mv.slope, list.measured.c_str(),
                list.slope, copy.measured.c_str(), copy.slope);
  }
  std::puts(
      "\nNotes: slopes are log-log fits of work units (object primitives +\n"
      "DB pages + index RPCs + entries scanned) against the driving\n"
      "variable.  O(log) covers logN factors; the paper's O(d) rows fit\n"
      "near-linear against d.  CAS 'O(1)*' file access is by content hash\n"
      "(CasFs::StatByHash); path access walks pointer blocks, O(d).");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
