// Figure 14: number of objects stored, H2Cloud vs OpenStack Swift, for
// the same ingested filesystems.
//
// Paper result: H2Cloud stores visibly more objects, because every
// directory contributes a directory-record object and a NameRing object
// (plus transient patch/chain bookkeeping); Swift stores one object per
// file plus small directory markers.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/tree_gen.h"

namespace h2::bench {
namespace {

void Run() {
  const std::size_t file_counts[] = {100, 1'000, 10'000};
  SweepTable table("Figure 14: stored objects vs filesystem size",
                   "n_files", "objects");
  std::vector<double> xs;
  for (std::size_t n : file_counts) xs.push_back(static_cast<double>(n));
  table.SetSweep(xs);

  for (SystemKind kind : {SystemKind::kSwift, SystemKind::kH2}) {
    Series series{KindName(kind), {}};
    for (std::size_t n : file_counts) {
      auto holder = MakeSystem(kind);
      TreeSpec spec;
      spec.file_count = n;
      spec.dir_count = n / 10;
      spec.max_depth = 8;
      spec.seed = 7;
      const GeneratedTree tree = GenerateTree(spec);
      BENCH_CHECK(PopulateTree(holder->fs(), tree));
      holder->Quiesce();
      series.values.push_back(
          static_cast<double>(holder->cloud().LogicalObjectCount()));
    }
    table.AddSeries(std::move(series));
  }
  table.Print();
  std::puts(
      "Expected shape (paper): H2Cloud stores more objects than Swift\n"
      "(every directory adds a record object and a NameRing object).");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
