// The paper's headline absolute numbers (§1, §5.3), measured on the
// calibrated simulator:
//
//   * LISTing 1000 files costs just 0.35 second        (H2Cloud)
//   * COPYing 1000 files costs ~10 seconds             (H2Cloud)
//   * MKDIR takes 150-200 ms for H2Cloud and Dropbox
//   * Swift file access is stably as low as ~10 ms
//   * H2 file access averages ~61 ms at the workloads' mean depth d=4
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

void Run() {
  std::puts("== Headline numbers: paper vs this reproduction ==");

  // H2Cloud: LIST 1000 and COPY 1000.
  {
    auto holder = MakeSystem(SystemKind::kH2);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/dir"));
    BENCH_CHECK(AddFiles(fs, "/dir", 0, 1000));
    holder->Quiesce();

    BENCH_CHECK(fs.List("/dir", ListDetail::kDetailed).status());
    std::printf("%-34s paper: %8s   measured: %7.2f s\n",
                "H2Cloud LIST 1000 (detailed)", "0.35 s",
                fs.last_op().elapsed_ms() / 1000.0);

    // The paper's ~10 s COPY is serial per-object; at the default batch
    // width the per-file COPY waves pipeline ~32-wide (see the serial
    // W=1 line below for the calibration anchor).
    BENCH_CHECK(fs.Copy("/dir", "/dir-copy"));
    std::printf("%-34s paper: %8s   measured: %7.2f s\n",
                "H2Cloud COPY 1000 (batched)", "n/a",
                fs.last_op().elapsed_ms() / 1000.0);

    const double mkdir_ms =
        MeasureMs(fs, 10, [&](std::size_t i) {
          BENCH_CHECK(fs.Mkdir("/m" + std::to_string(i)));
        });
    std::printf("%-34s paper: %8s   measured: %7.0f ms\n", "H2Cloud MKDIR",
                "150-200ms", mkdir_ms);

    // Access at depth 4.
    BENCH_CHECK(fs.Mkdir("/a"));
    BENCH_CHECK(fs.Mkdir("/a/b"));
    BENCH_CHECK(fs.Mkdir("/a/b/c"));
    BENCH_CHECK(fs.WriteFile("/a/b/c/f", FileBlob::FromString("x")));
    const double access_ms = MeasureMs(fs, 10, [&](std::size_t) {
      BENCH_CHECK(fs.Stat("/a/b/c/f").status());
    });
    std::printf("%-34s paper: %8s   measured: %7.0f ms\n",
                "H2Cloud file access at d=4", "~61 ms", access_ms);
  }

  // H2Cloud COPY 1000 at the paper's serial (W = 1) proxy.
  {
    H2CloudConfig cfg;
    cfg.cloud = internal::BenchCloudConfig(LatencyProfile::RackLan());
    cfg.cloud.io_concurrency = 1;
    cfg.h2.resolve_cache = false;
    H2Cloud cloud(cfg);
    BENCH_CHECK(cloud.CreateAccount("bench"));
    auto fs = std::move(cloud.OpenFilesystem("bench")).value();
    BENCH_CHECK(fs->Mkdir("/dir"));
    BENCH_CHECK(AddFiles(*fs, "/dir", 0, 1000));
    cloud.RunMaintenanceToQuiescence();
    BENCH_CHECK(fs->Copy("/dir", "/dir-copy"));
    std::printf("%-34s paper: %8s   measured: %7.2f s\n",
                "H2Cloud COPY 1000 (serial W=1)", "~10 s",
                fs->last_op().elapsed_ms() / 1000.0);
  }

  // Swift file access.
  {
    auto holder = MakeSystem(SystemKind::kSwift);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/a"));
    BENCH_CHECK(fs.Mkdir("/a/b"));
    BENCH_CHECK(fs.Mkdir("/a/b/c"));
    BENCH_CHECK(fs.WriteFile("/a/b/c/f", FileBlob::FromString("x")));
    const double access_ms = MeasureMs(fs, 10, [&](std::size_t) {
      BENCH_CHECK(fs.Stat("/a/b/c/f").status());
    });
    std::printf("%-34s paper: %8s   measured: %7.1f ms\n",
                "Swift file access (any depth)", "~10 ms", access_ms);
  }

  // Dropbox MKDIR.
  {
    auto holder = MakeSystem(SystemKind::kDropbox);
    FileSystem& fs = holder->fs();
    const double mkdir_ms = MeasureMs(fs, 10, [&](std::size_t i) {
      BENCH_CHECK(fs.Mkdir("/m" + std::to_string(i)));
    });
    std::printf("%-34s paper: %8s   measured: %7.0f ms\n", "Dropbox MKDIR",
                "150-200ms", mkdir_ms);
  }
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
