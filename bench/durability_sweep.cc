// Durability sweep: apply throughput and crash-recovery time per storage
// backend and group-commit window (ISSUE 7).
//
// For each row -- the volatile in-memory backend, then the segment log at
// group-commit windows 0 (synchronous), 8 and 32 -- a fresh 8-node cloud
// absorbs the same deterministic put/overwrite/delete stream and is
// scrubbed to convergence.  We then power-cycle node 0 mid-batch
// (StorageNode::Crash + Restart) and converge again with hint replay and
// anti-entropy sweeps.  Reported per row:
//
//   * apply ops/sec            -- real wall-clock rate of the apply loop
//   * recovery wall seconds    -- Restart (log replay) + scrub back to
//                                 zero divergence; for the memory backend
//                                 this is a full re-replication from
//                                 peers, the contrast the sweep exists to
//                                 show
//   * records lost / replayed  -- the group-commit exposure window
//   * state_match              -- post-recovery DebugDump byte-equal to
//                                 the pre-crash dump (the oracle)
//
// Virtual-time paper numbers are untouched by construction: fsync costs
// land on each backend's private durability meter, pinned by the
// differential suite (tests/durability_test.cc).  Wall-clock rates are
// machine-dependent; the portable part is the oracle verdicts and the
// lost/replayed record accounting.
//
// Output: human table on stdout plus BENCH_durability.json (path
// overridable via argv[1]); scripts/check_bench_json.sh validates the
// schema.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/object_cloud.h"
#include "engine/wall_timer.h"

namespace h2::bench {
namespace {

struct SweepSpec {
  std::size_t objects = 2'000;     // distinct keys written
  std::size_t overwrites = 1'000;  // rewrites over the key space
  std::size_t deletes = 200;       // deletes over the key space
  std::uint64_t payload_bytes = 64;
};

struct Row {
  std::string backend;
  std::uint32_t window = 0;
  std::size_t ops = 0;
  double apply_wall_seconds = 0;
  double apply_ops_per_sec = 0;
  double recovery_wall_seconds = 0;
  BackendStats stats;             // node 0, post-recovery
  std::uint64_t scrub_pushes = 0; // copies+tombstones re-replicated
  std::uint64_t divergent_after_recovery = 0;
  bool state_match = false;
};

CloudConfig RowCloudConfig(BackendKind kind, std::uint32_t window) {
  CloudConfig cfg;
  cfg.node_count = 8;
  cfg.replica_count = 3;
  cfg.part_power = 8;
  cfg.backend.kind = kind;
  cfg.backend.group_commit_window = window;
  return cfg;
}

std::string Key(std::size_t i) { return "obj-" + std::to_string(i % 2'000); }

Row RunRow(const std::string& name, BackendKind kind, std::uint32_t window,
           const SweepSpec& spec) {
  Row row;
  row.backend = name;
  row.window = window;
  ObjectCloud cloud(RowCloudConfig(kind, window));
  OpMeter meter;

  // --- apply phase (measured in real wall time) ---------------------------
  WallTimer apply_timer;
  const std::string payload(spec.payload_bytes, 'd');
  for (std::size_t i = 0; i < spec.objects; ++i) {
    BENCH_CHECK(cloud.Put(Key(i), ObjectValue::FromString(payload, 0), meter));
  }
  for (std::size_t i = 0; i < spec.overwrites; ++i) {
    BENCH_CHECK(cloud.Put(Key(i * 7 + 1),
                          ObjectValue::FromString(payload + "w", 0), meter));
  }
  for (std::size_t i = 0; i < spec.deletes; ++i) {
    BENCH_CHECK(cloud.Delete(Key(i * 13 + 3), meter));
  }
  row.ops = spec.objects + spec.overwrites + spec.deletes;
  row.apply_wall_seconds = apply_timer.ElapsedSeconds();
  row.apply_ops_per_sec =
      row.apply_wall_seconds > 0
          ? static_cast<double>(row.ops) / row.apply_wall_seconds
          : 0;

  // Converge fully, then freeze the oracle state.
  (void)cloud.ReplicaScrub();
  const std::string before = cloud.DebugDump();

  // --- crash + recovery (measured in real wall time) ----------------------
  const std::uint64_t scrub_before =
      cloud.repair_stats().scrub_repairs_pushed;
  cloud.node(0).Crash();
  WallTimer recovery_timer;
  BENCH_CHECK(cloud.node(0).Restart());
  // Scrub until the divergence oracle is empty (the memory backend comes
  // back empty and needs full re-replication from peers; the segment log
  // only needs its lost group-commit tail).
  for (int sweep = 0; sweep < 16; ++sweep) {
    if (cloud.ReplicaScrub().divergent_keys == 0) break;
  }
  row.recovery_wall_seconds = recovery_timer.ElapsedSeconds();
  row.divergent_after_recovery = cloud.DivergentKeyCount();
  row.scrub_pushes =
      cloud.repair_stats().scrub_repairs_pushed - scrub_before;
  row.state_match = cloud.DebugDump() == before;
  row.stats = cloud.node(0).backend_stats();
  return row;
}

void EmitJson(const char* path, const SweepSpec& spec,
              const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"durability_sweep\",\n");
  std::fprintf(f, "  \"unit\": \"ops_per_sec\",\n");
  std::fprintf(f,
               "  \"workload\": {\"objects\": %zu, \"overwrites\": %zu, "
               "\"deletes\": %zu, \"payload_bytes\": %llu},\n",
               spec.objects, spec.overwrites, spec.deletes,
               static_cast<unsigned long long>(spec.payload_bytes));
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"group_commit_window\": %u, "
        "\"ops\": %zu, \"apply_wall_seconds\": %.6f, "
        "\"apply_ops_per_sec\": %.1f, \"fsyncs\": %llu, "
        "\"records_logged\": %llu, \"records_lost\": %llu, "
        "\"records_replayed\": %llu, \"recovery_wall_seconds\": %.6f, "
        "\"scrub_pushes\": %llu, \"divergent_after_recovery\": %llu, "
        "\"state_match\": %s}%s\n",
        r.backend.c_str(), r.window, r.ops, r.apply_wall_seconds,
        r.apply_ops_per_sec, static_cast<unsigned long long>(r.stats.fsyncs),
        static_cast<unsigned long long>(r.stats.records_logged),
        static_cast<unsigned long long>(r.stats.records_lost),
        static_cast<unsigned long long>(r.stats.records_replayed),
        r.recovery_wall_seconds,
        static_cast<unsigned long long>(r.scrub_pushes),
        static_cast<unsigned long long>(r.divergent_after_recovery),
        r.state_match ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_durability.json";
  SweepSpec spec;
  if (argc > 2) spec.objects = std::strtoull(argv[2], nullptr, 10);

  std::printf("# durability_sweep: %zu objects + %zu overwrites + %zu "
              "deletes, crash node 0 mid-batch, recover, scrub\n",
              spec.objects, spec.overwrites, spec.deletes);
  std::printf("%-12s %7s %12s %9s %9s %10s %10s %7s\n", "backend", "window",
              "apply op/s", "fsyncs", "lost", "replayed", "recov s",
              "oracle");

  std::vector<Row> rows;
  rows.push_back(RunRow("memory", BackendKind::kMemory, 0, spec));
  for (const std::uint32_t window : {0u, 8u, 32u}) {
    rows.push_back(
        RunRow("segment-log", BackendKind::kSegmentLog, window, spec));
  }

  bool ok = true;
  for (const Row& r : rows) {
    std::printf("%-12s %7u %12.1f %9llu %9llu %10llu %10.4f %7s\n",
                r.backend.c_str(), r.window, r.apply_ops_per_sec,
                static_cast<unsigned long long>(r.stats.fsyncs),
                static_cast<unsigned long long>(r.stats.records_lost),
                static_cast<unsigned long long>(r.stats.records_replayed),
                r.recovery_wall_seconds,
                r.state_match && r.divergent_after_recovery == 0 ? "match"
                                                                 : "FAIL");
    ok = ok && r.state_match && r.divergent_after_recovery == 0;
  }
  EmitJson(out_path, spec, rows);
  std::printf("# wrote %s\n", out_path);

  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: a row failed to recover to the pre-crash state\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace h2::bench

int main(int argc, char** argv) { return h2::bench::Main(argc, argv); }
