// Ablation: does the reproduction depend on the 2018 hardware constants?
//
// The latency model is calibrated to the paper's rack (15K-RPM SAS disks,
// 1 GbE).  This bench re-runs the headline comparisons -- Fig. 7's MOVE
// sweep and Fig. 13's access-depth sweep -- under a 2020s NVMe/25GbE
// profile.  Absolute numbers drop ~30x; the comparative conclusions
// (Swift linear in n vs H2 flat; Swift flat in d vs H2 linear) are
// unchanged, because they come from primitive *counts*, not constants.
#include <cstdio>

#include "bench/bench_util.h"
#include "baselines/swift_fs.h"

namespace h2::bench {
namespace {

struct Pair {
  std::unique_ptr<ObjectCloud> swift_cloud;
  std::unique_ptr<SwiftFs> swift;
  std::unique_ptr<H2Cloud> h2_cloud;
  std::unique_ptr<H2AccountFs> h2;
};

Pair MakePair(const LatencyProfile& profile) {
  Pair pair;
  CloudConfig cfg;
  cfg.part_power = 10;
  cfg.latency = profile;
  pair.swift_cloud = std::make_unique<ObjectCloud>(cfg);
  pair.swift = std::make_unique<SwiftFs>(*pair.swift_cloud);
  H2CloudConfig h2cfg;
  h2cfg.cloud = cfg;
  pair.h2_cloud = std::make_unique<H2Cloud>(h2cfg);
  BENCH_CHECK(pair.h2_cloud->CreateAccount("bench"));
  pair.h2 = std::move(pair.h2_cloud->OpenFilesystem("bench")).value();
  return pair;
}

void MoveSweep(const char* label, const LatencyProfile& profile) {
  SweepTable table(std::string("Fig.7 MOVE sweep under ") + label,
                   "n_files", "ms");
  const auto sweep = GeometricSweep(10'000);
  table.SetSweep({sweep.begin(), sweep.end()});
  Pair pair = MakePair(profile);
  Series swift_series{"Swift", {}};
  Series h2_series{"H2Cloud", {}};
  for (FileSystem* fs : {static_cast<FileSystem*>(pair.swift.get()),
                         static_cast<FileSystem*>(pair.h2.get())}) {
    BENCH_CHECK(fs->Mkdir("/dst"));
    BENCH_CHECK(fs->Mkdir("/work"));
  }
  std::size_t populated = 0;
  for (std::size_t n : sweep) {
    BENCH_CHECK(AddFiles(*pair.swift, "/work", populated, n));
    BENCH_CHECK(AddFiles(*pair.h2, "/work", populated, n));
    populated = n;
    pair.h2_cloud->RunMaintenanceToQuiescence();
    BENCH_CHECK(pair.swift->Move("/work", "/dst/m"));
    swift_series.values.push_back(pair.swift->last_op().elapsed_ms());
    BENCH_CHECK(pair.swift->Move("/dst/m", "/work"));
    BENCH_CHECK(pair.h2->Move("/work", "/dst/m"));
    h2_series.values.push_back(pair.h2->last_op().elapsed_ms());
    BENCH_CHECK(pair.h2->Move("/dst/m", "/work"));
    pair.h2_cloud->RunMaintenanceToQuiescence();
  }
  table.AddSeries(std::move(swift_series));
  table.AddSeries(std::move(h2_series));
  table.Print();
}

void AccessSweep(const char* label, const LatencyProfile& profile) {
  SweepTable table(std::string("Fig.13 access sweep under ") + label,
                   "depth", "ms");
  std::vector<double> xs = {2, 4, 8, 16};
  table.SetSweep(xs);
  Pair pair = MakePair(profile);
  Series swift_series{"Swift", {}};
  Series h2_series{"H2Cloud", {}};
  for (FileSystem* fs : {static_cast<FileSystem*>(pair.swift.get()),
                         static_cast<FileSystem*>(pair.h2.get())}) {
    std::string dir;
    for (int d = 1; d < 16; ++d) {
      dir += "/d" + std::to_string(d);
      BENCH_CHECK(fs->Mkdir(dir));
    }
    BENCH_CHECK(fs->WriteFile(dir + "/leaf", FileBlob::FromString("x")));
  }
  pair.h2_cloud->RunMaintenanceToQuiescence();
  for (double d : xs) {
    std::string path;
    for (int i = 1; i < static_cast<int>(d); ++i) {
      path += "/d" + std::to_string(i);
    }
    path += d == 16 ? "/leaf" : "/d" + std::to_string(static_cast<int>(d));
    swift_series.values.push_back(MeasureMs(*pair.swift, 5, [&](std::size_t) {
      BENCH_CHECK(pair.swift->Stat(path).status());
    }));
    h2_series.values.push_back(MeasureMs(*pair.h2, 5, [&](std::size_t) {
      BENCH_CHECK(pair.h2->Stat(path).status());
    }));
  }
  table.AddSeries(std::move(swift_series));
  table.AddSeries(std::move(h2_series));
  table.Print();
}

}  // namespace
}  // namespace h2::bench

int main() {
  using h2::LatencyProfile;
  h2::bench::MoveSweep("2018 rack (paper)", LatencyProfile::RackLan());
  h2::bench::MoveSweep("2020s NVMe/25GbE", LatencyProfile::ModernNvme());
  h2::bench::AccessSweep("2018 rack (paper)", LatencyProfile::RackLan());
  h2::bench::AccessSweep("2020s NVMe/25GbE", LatencyProfile::ModernNvme());
  std::puts(
      "Same shapes under both calibrations: Swift's MOVE is linear in n\n"
      "and H2Cloud's flat; Swift's access is flat in d and H2Cloud's\n"
      "linear.  The conclusions are primitive-count shapes, not hardware\n"
      "constants.");
}
