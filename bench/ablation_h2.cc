// Ablations of H2Cloud's design choices (DESIGN.md experiment index):
//
//   1. Asynchronous vs synchronous NameRing maintenance (§3.3.1's
//      strawman): what deferring merges buys on the foreground path.
//   2. Namespace caching: the paper's H2 resolves level-by-level (O(d));
//      a (parent, name)->namespace cache makes deep access flat, which is
//      the behaviour the paper attributes to Dynamic Partition.
//   3. Detailed-LIST batch width: the proxy's parallel lanes for
//      per-child metadata fetches, the knob behind "LIST 1000 = 0.35 s".
//   4. Tombstone GC age: eager (paper) vs aged compaction -- amortized
//      LIST cost after heavy churn.
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

std::unique_ptr<internal::H2Holder> MakeH2(H2Config cfg) {
  return std::make_unique<internal::H2Holder>(cfg);
}

void AblationSyncMaintenance() {
  SweepTable table("Ablation 1: async vs synchronous maintenance",
                   "op_index", "ms");
  table.SetSweep({0, 1, 2});
  std::puts("x axis: 0=MKDIR 1=WRITE(new file) 2=MOVE dir(n=100)");
  for (bool synchronous : {false, true}) {
    H2Config cfg;
    cfg.synchronous_maintenance = synchronous;
    auto holder = MakeH2(cfg);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/dir"));
    BENCH_CHECK(AddFiles(fs, "/dir", 0, 100));
    BENCH_CHECK(fs.Mkdir("/dst"));
    holder->Quiesce();

    Series series{synchronous ? "synchronous" : "async(paper)", {}};
    series.values.push_back(MeasureMs(fs, 5, [&](std::size_t i) {
      BENCH_CHECK(fs.Mkdir("/m" + std::to_string(i) +
                           (synchronous ? "s" : "a")));
    }));
    series.values.push_back(MeasureMs(fs, 5, [&](std::size_t i) {
      BENCH_CHECK(fs.WriteFile("/w" + std::to_string(i) +
                                   (synchronous ? "s" : "a"),
                               FileBlob::FromString("x")));
    }));
    BENCH_CHECK(fs.Move("/dir", "/dst/moved"));
    series.values.push_back(fs.last_op().elapsed_ms());
    table.AddSeries(std::move(series));
  }
  table.Print();
}

void AblationNamespaceCache() {
  SweepTable table("Ablation 2: namespace cache and access depth", "depth",
                   "ms");
  std::vector<double> xs;
  for (std::size_t d = 1; d <= 16; d *= 2) {
    xs.push_back(static_cast<double>(d));
  }
  table.SetSweep(xs);
  for (bool cache : {false, true}) {
    H2Config cfg;
    cfg.resolve_cache = cache;
    auto holder = MakeH2(cfg);
    FileSystem& fs = holder->fs();
    std::string dir;
    for (std::size_t d = 1; d < 16; ++d) {
      dir += "/d" + std::to_string(d);
      BENCH_CHECK(fs.Mkdir(dir));
    }
    BENCH_CHECK(fs.WriteFile(dir + "/leaf", FileBlob::FromString("x")));
    holder->Quiesce();

    Series series{cache ? "cache_on" : "cache_off(paper)", {}};
    for (std::size_t d = 1; d <= 16; d *= 2) {
      std::string path;
      for (std::size_t i = 1; i < d; ++i) path += "/d" + std::to_string(i);
      path += d == 16 ? "/leaf" : "/d" + std::to_string(d);
      series.values.push_back(MeasureMs(fs, 5, [&](std::size_t) {
        BENCH_CHECK(fs.Stat(path).status());
      }));
    }
    table.AddSeries(std::move(series));
  }
  table.Print();
  std::puts(
      "With the cache on, deep access flattens toward O(1) -- the same\n"
      "effect the paper observes for Dropbox's Dynamic Partition (Fig. 13).");
}

void AblationBatchWidth() {
  SweepTable table("Ablation 3: detailed-LIST batch width (m=1000)",
                   "width", "ms");
  std::vector<double> xs;
  for (std::uint64_t w : {1, 4, 16, 32, 64, 128}) {
    xs.push_back(static_cast<double>(w));
  }
  table.SetSweep(xs);
  Series series{"H2Cloud", {}};
  for (std::uint64_t width : {1, 4, 16, 32, 64, 128}) {
    H2Config cfg;
    cfg.list_batch_width = width;
    auto holder = MakeH2(cfg);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/dir"));
    BENCH_CHECK(AddFiles(fs, "/dir", 0, 1000));
    holder->Quiesce();
    BENCH_CHECK(fs.List("/dir", ListDetail::kDetailed).status());
    series.values.push_back(fs.last_op().elapsed_ms());
  }
  table.AddSeries(std::move(series));
  table.Print();
  std::puts(
      "The paper's 0.35 s LIST-1000 implies ~32 parallel lanes at ~10 ms\n"
      "per child HEAD; width 1 degrades to ~10 s.");
}

void AblationTombstoneGc() {
  SweepTable table(
      "Ablation 4: tombstone GC age -- LIST cost after churn", "config",
      "ms");
  table.SetSweep({0, 1, 2});
  std::puts(
      "x axis: 0=gc_age 0 (paper, eager) 1=gc_age 2s (default) "
      "2=compaction off");
  Series ring_size{"ring_tuples_after", {}};
  Series list_ms{"list_ms", {}};
  struct Option {
    bool compact;
    VirtualNanos age;
  };
  for (const Option& opt : {Option{true, 0}, Option{true, 2 * kSecond},
                            Option{false, 0}}) {
    H2Config cfg;
    cfg.compact_on_use = opt.compact;
    cfg.tombstone_gc_age = opt.age;
    auto holder = MakeH2(cfg);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/dir"));
    // Churn: create and delete 500 files, keep 100.
    BENCH_CHECK(AddFiles(fs, "/dir", 0, 600));
    for (int i = 100; i < 600; ++i) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "/dir/f%06d", i);
      BENCH_CHECK(fs.RemoveFile(buf));
    }
    holder->Quiesce();
    list_ms.values.push_back(MeasureMs(fs, 3, [&](std::size_t) {
      BENCH_CHECK(fs.List("/dir", ListDetail::kDetailed).status());
    }));
    // Ring size after use-time compaction policy applied.
    auto names = fs.List("/dir", ListDetail::kNamesOnly);
    BENCH_CHECK(names.status());
    ring_size.values.push_back(static_cast<double>(names->size()));
  }
  table.AddSeries(std::move(list_ms));
  table.AddSeries(std::move(ring_size));
  table.Print();
}

void AblationBatchIngest() {
  SweepTable table("Ablation 5: bulk ingest (one patch per directory)",
                   "files", "seconds");
  std::vector<double> xs = {100, 400, 1600};
  table.SetSweep(xs);
  Series single{"per-file patches", {}};
  Series batched{"batched patches", {}};
  for (double n : xs) {
    {
      auto holder = MakeH2({});
      FileSystem& fs = holder->fs();
      BENCH_CHECK(fs.Mkdir("/dir"));
      double total = 0;
      for (int i = 0; i < static_cast<int>(n); ++i) {
        BENCH_CHECK(fs.WriteFile("/dir/f" + std::to_string(i),
                                 FileBlob::FromString("x")));
        total += fs.last_op().elapsed_ms();
      }
      single.values.push_back(total / 1000.0);
    }
    {
      auto holder = MakeH2({});
      auto* account = static_cast<H2AccountFs*>(&holder->fs());
      BENCH_CHECK(account->Mkdir("/dir"));
      std::vector<std::pair<std::string, FileBlob>> files;
      for (int i = 0; i < static_cast<int>(n); ++i) {
        files.emplace_back("/dir/f" + std::to_string(i),
                           FileBlob::FromString("x"));
      }
      BENCH_CHECK(account->WriteFiles(std::move(files)));
      batched.values.push_back(account->last_op().elapsed_ms() / 1000.0);
    }
  }
  table.AddSeries(std::move(single));
  table.AddSeries(std::move(batched));
  table.Print();
  std::puts(
      "Batching folds n durable patch commits into one per directory --\n"
      "the fast path a sync client uses when uploading a whole folder.");
}

}  // namespace
}  // namespace h2::bench

int main() {
  h2::bench::AblationSyncMaintenance();
  h2::bench::AblationNamespaceCache();
  h2::bench::AblationBatchWidth();
  h2::bench::AblationTombstoneGc();
  h2::bench::AblationBatchIngest();
}
