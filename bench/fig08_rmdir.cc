// Figure 8: operation time of RMDIR vs the number of files in the
// directory (n).  Same shape as Fig. 7: Swift deletes every member object
// (O(n)); H2Cloud tombstones the parent entry and reclaims lazily (O(1));
// Dropbox/DP detaches the subtree at the index (O(1)).
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

void Run() {
  const auto sweep = GeometricSweep(100'000);
  SweepTable table("Figure 8 (RMDIR): operation time vs n", "n_files", "ms");
  table.SetSweep({sweep.begin(), sweep.end()});

  for (SystemKind kind : PaperTrio()) {
    auto holder = MakeSystem(kind);
    FileSystem& fs = holder->fs();
    Series series{KindName(kind), {}};
    for (std::size_t n : sweep) {
      BENCH_CHECK(fs.Mkdir("/doomed"));
      BENCH_CHECK(AddFiles(fs, "/doomed", 0, n));
      holder->Quiesce();
      BENCH_CHECK(fs.Rmdir("/doomed"));
      series.values.push_back(fs.last_op().elapsed_ms());
      holder->Quiesce();  // lazy reclamation runs off the measured path
    }
    table.AddSeries(std::move(series));
  }
  table.Print();
  std::puts(
      "Expected shape (paper): Swift ~linear in n; H2Cloud and Dropbox "
      "flat.");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
