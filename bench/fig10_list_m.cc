// Figure 10: operation time of detailed LIST as the number of direct
// children (m) grows from 10 to 100,000.
//
// Paper result: linear in m for every system.  Swift pays a B-tree
// descent per child (m·logN); H2Cloud reads the NameRing once and batches
// the per-child metadata fetches; Dropbox/DP serves children from the
// index server.  Headline number: LISTing 1000 files costs H2Cloud
// ~0.35 s (§1).
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

void Run() {
  const auto sweep = GeometricSweep(100'000);
  SweepTable table("Figure 10 (LIST detailed): operation time vs m",
                   "m_children", "ms");
  table.SetSweep({sweep.begin(), sweep.end()});

  SweepTable names_table(
      "Figure 10 companion (LIST names-only): operation time vs m",
      "m_children", "ms");
  names_table.SetSweep({sweep.begin(), sweep.end()});

  for (SystemKind kind : PaperTrio()) {
    auto holder = MakeSystem(kind);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/dir"));

    Series detailed{KindName(kind), {}};
    Series names{KindName(kind), {}};
    std::size_t populated = 0;
    for (std::size_t m : sweep) {
      BENCH_CHECK(AddFiles(fs, "/dir", populated, m));
      populated = m;
      holder->Quiesce();
      detailed.values.push_back(MeasureMs(fs, 3, [&](std::size_t) {
        BENCH_CHECK(fs.List("/dir", ListDetail::kDetailed).status());
      }));
      names.values.push_back(MeasureMs(fs, 3, [&](std::size_t) {
        BENCH_CHECK(fs.List("/dir", ListDetail::kNamesOnly).status());
      }));
    }
    table.AddSeries(std::move(detailed));
    names_table.AddSeries(std::move(names));
  }
  table.Print();
  names_table.Print();
  std::puts(
      "Expected shape (paper): detailed LIST linear in m, Swift slowest.\n"
      "Names-only LIST is H2's O(1) NameRing read (§2, 'Comparison').");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
