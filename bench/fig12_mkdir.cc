// Figure 12: operation time of MKDIR vs the size of the containing
// directory (n).
//
// Paper result: constant for every system (the new directory is empty).
// Swift is fastest (~tens of ms: a marker PUT + DB insert); H2Cloud and
// Dropbox take 150-200 ms -- H2 pays the durable NameRing patch
// submission, Dropbox its service stack -- which the paper deems
// acceptable because RTT dominates user experience for this operation.
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

void Run() {
  const auto sweep = GeometricSweep(10'000);
  SweepTable table("Figure 12 (MKDIR): operation time vs n", "n_files",
                   "ms");
  table.SetSweep({sweep.begin(), sweep.end()});

  for (SystemKind kind : PaperTrio()) {
    auto holder = MakeSystem(kind);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/parent"));

    Series series{KindName(kind), {}};
    std::size_t populated = 0;
    std::size_t dir_id = 0;
    for (std::size_t n : sweep) {
      BENCH_CHECK(AddFiles(fs, "/parent", populated, n));
      populated = n;
      holder->Quiesce();
      series.values.push_back(MeasureMs(fs, 5, [&](std::size_t) {
        BENCH_CHECK(fs.Mkdir("/parent/sub" + std::to_string(dir_id++)));
      }));
    }
    table.AddSeries(std::move(series));
  }
  table.Print();
  std::puts(
      "Expected shape (paper): constant in n for all; Swift fastest,\n"
      "H2Cloud and Dropbox higher but steady (paper: 150-200 ms).");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
