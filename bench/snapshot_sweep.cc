// Versioned-namespace benchmarks: snapshot-clone vs CopyTree, ListAt
// time-travel overhead, history-watermark retention ablation, and
// concurrent-writer hot-directory throughput (DESIGN.md §13).
//
// Four sections, one committed artifact (BENCH_snapshot.json, path
// overridable via argv[1]); scripts/check_bench_json.sh validates the
// schema and re-asserts the headline invariants:
//
//   clone_vs_copy      -- SnapshotClone of a 1000-file subtree against
//                         the CopyTree fan-out on the *same* tree, at
//                         io_concurrency = 1 so the copy pays the serial
//                         per-file price the paper's cost model reports
//                         (W = 1 reproduces the serial numbers; wave
//                         batching would only compress the copy's
//                         elapsed, never the clone's).  The clone must
//                         be >= 100x cheaper in virtual time and every
//                         file read through it byte-identical to the
//                         source.  A Cumulus (compressed-snapshot
//                         baseline) row shows what "snapshot" costs a
//                         system whose SnapshotClone degenerates to a
//                         materialized copy.
//   listat             -- mean virtual ms of a live LIST vs ListAt at
//                         the current version vs ListAt at a historical
//                         version, on a retained-history directory.
//   watermark_ablation -- the same churny single-directory workload under
//                         history_watermark in {0, 8s, 64s, keep-all}:
//                         tuples folded, background compaction passes and
//                         cost (the dedicated meter), and how many of the
//                         observed DirVersions remain answerable.
//   rows (hot_dir)     -- sharded-engine closed loop where every shard
//                         hammers its own hot directory with writes plus
//                         versioned reads and snapshot clones, at
//                         T = 1, 2, 4, 8 worker threads; real ops/sec,
//                         wall p50/p99, and the serial differential
//                         oracle (post-maintenance DebugDump byte-equal
//                         to T = 1) per row.
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "engine/sharded_engine.h"
#include "h2/monitor.h"
#include "workload/tree_gen.h"

namespace h2::bench {
namespace {

constexpr std::size_t kSubtreeFiles = 1000;
// Flat layout: SnapshotClone is O(directories) (one pin RMW each, plus
// one durable patch commit for the destination entry), while CopyTree is
// O(files x bytes).  The headline ratio therefore uses the flat
// 1000-file directory; clone-of-nested-tree correctness is pinned by
// tests/snapshot_test.cc's differential against CopyTree.
constexpr std::size_t kSubtreeDirs = 0;
constexpr std::size_t kSubtreeFileBytes = 512 * 1024;
constexpr std::size_t kListFiles = 128;  // listat section directory size
constexpr std::size_t kListReps = 32;
constexpr double kPacing = 0.1;  // hot-dir sweep, as throughput_sweep

// -- section results ---------------------------------------------------------

struct CloneVsCopy {
  double clone_ms = 0;
  double copy_ms = 0;
  std::uint64_t clone_primitives = 0;
  std::uint64_t copy_primitives = 0;
  double baseline_copy_ms = 0;  // Cumulus materialized "snapshot"
  bool reads_identical = false;
  double cost_ratio() const {
    return clone_ms > 0 ? copy_ms / clone_ms : 0;
  }
  double primitives_ratio() const {
    return clone_primitives > 0
               ? static_cast<double>(copy_primitives) /
                     static_cast<double>(clone_primitives)
               : 0;
  }
};

struct ListAtRow {
  double live_ms = 0;
  double at_current_ms = 0;
  double at_past_ms = 0;
};

struct AblationRow {
  std::string label;
  double watermark_s = 0;  // -1 = keep everything
  std::uint64_t tuples_folded = 0;
  std::uint64_t compaction_passes = 0;
  double compaction_ms = 0;
  std::size_t versions_observed = 0;
  std::size_t versions_answerable = 0;
};

struct HotDirRow {
  int threads = 0;
  EngineReport measured;
  bool oracle_match = false;
};

// -- helpers -----------------------------------------------------------------

std::unique_ptr<H2Cloud> MakeSerialCloud(VirtualNanos watermark,
                                         std::uint64_t io_concurrency = 0,
                                         bool resolve_cache = true) {
  H2CloudConfig cfg;
  cfg.cloud = internal::BenchCloudConfig(LatencyProfile::RackLan());
  cfg.cloud.io_concurrency = io_concurrency;
  cfg.h2.history_watermark = watermark;
  cfg.h2.resolve_cache = resolve_cache;
  auto cloud = std::make_unique<H2Cloud>(cfg);
  BENCH_CHECK(cloud->CreateAccount("bench"));
  return cloud;
}

Status BuildSubtree(FileSystem& fs, const std::string& root) {
  H2_RETURN_IF_ERROR(fs.Mkdir(root));
  if (kSubtreeDirs == 0) {
    return AddFiles(fs, root, 0, kSubtreeFiles, kSubtreeFileBytes);
  }
  const std::size_t per_dir = kSubtreeFiles / kSubtreeDirs;
  for (std::size_t d = 0; d < kSubtreeDirs; ++d) {
    const std::string dir = root + "/d" + std::to_string(d);
    H2_RETURN_IF_ERROR(fs.Mkdir(dir));
    H2_RETURN_IF_ERROR(AddFiles(fs, dir, 0, per_dir, kSubtreeFileBytes));
  }
  return Status::Ok();
}

/// Recursively reads every file under `dir`, appending "path=bytes"
/// lines; clone and source must produce identical flattenings.
Status FlattenTree(FileSystem& fs, const std::string& dir,
                   std::string& out) {
  H2_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                      fs.List(dir, ListDetail::kNamesOnly));
  for (const DirEntry& e : entries) {
    const std::string path = dir + "/" + e.name;
    if (e.kind == EntryKind::kDirectory) {
      H2_RETURN_IF_ERROR(FlattenTree(fs, path, out));
    } else {
      H2_ASSIGN_OR_RETURN(FileBlob blob, fs.ReadFile(path));
      out += e.name + "=" + blob.data + ":" +
             std::to_string(blob.logical_size) + "\n";
    }
  }
  return Status::Ok();
}

CloneVsCopy RunCloneVsCopy() {
  CloneVsCopy result;
  // io_concurrency = 1: the CopyTree fan-out is priced as the serial
  // per-file sum, the same schedule every figure bench reports.
  auto cloud = MakeSerialCloud(/*watermark=*/0, /*io_concurrency=*/1);
  auto fs = std::move(cloud->OpenFilesystem("bench")).value();
  BENCH_CHECK(BuildSubtree(*fs, "/src"));
  cloud->RunMaintenanceToQuiescence();

  BENCH_CHECK(fs->Copy("/src", "/copy"));
  result.copy_ms = fs->last_op().elapsed_ms();
  result.copy_primitives = fs->last_op().object_primitives();

  BENCH_CHECK(fs->SnapshotClone("/src", "/snap"));
  result.clone_ms = fs->last_op().elapsed_ms();
  result.clone_primitives = fs->last_op().object_primitives();

  std::string src_flat;
  std::string snap_flat;
  BENCH_CHECK(FlattenTree(*fs, "/src", src_flat));
  BENCH_CHECK(FlattenTree(*fs, "/snap", snap_flat));
  result.reads_identical = !src_flat.empty() && src_flat == snap_flat;

  // The Cumulus baseline has no version history: its SnapshotClone is
  // the default materialized Copy over the O(N) metadata log.
  auto cumulus = MakeSystem(SystemKind::kCumulus);
  BENCH_CHECK(BuildSubtree(cumulus->fs(), "/src"));
  BENCH_CHECK(cumulus->fs().SnapshotClone("/src", "/snap"));
  result.baseline_copy_ms = cumulus->fs().last_op().elapsed_ms();
  return result;
}

ListAtRow RunListAt() {
  ListAtRow row;
  // Keep-everything watermark: the historical version must stay
  // answerable however maintenance interleaves.  Resolve cache OFF: with
  // it on, a warm LIST (live or versioned) is served from the cached
  // merged ring at zero cloud cost and every column reads 0 ms -- the
  // interesting comparison is the uncached read path, where ListAt pays
  // the same ring fetch as LIST plus the history replay.
  auto cloud = MakeSerialCloud(/*watermark=*/1'000'000LL * kSecond,
                               /*io_concurrency=*/0,
                               /*resolve_cache=*/false);
  auto fs = std::move(cloud->OpenFilesystem("bench")).value();
  BENCH_CHECK(fs->Mkdir("/hot"));
  BENCH_CHECK(AddFiles(*fs, "/hot", 0, kListFiles / 2));
  cloud->RunMaintenanceToQuiescence();
  const VirtualNanos past = fs->DirVersion("/hot").value();
  BENCH_CHECK(AddFiles(*fs, "/hot", kListFiles / 2, kListFiles));
  cloud->RunMaintenanceToQuiescence();
  const VirtualNanos current = fs->DirVersion("/hot").value();

  row.live_ms = MeasureMs(*fs, kListReps, [&](std::size_t) {
    BENCH_CHECK(fs->List("/hot", ListDetail::kNamesOnly).status());
  });
  row.at_current_ms = MeasureMs(*fs, kListReps, [&](std::size_t) {
    BENCH_CHECK(
        fs->ListAt("/hot", current, ListDetail::kNamesOnly).status());
  });
  row.at_past_ms = MeasureMs(*fs, kListReps, [&](std::size_t) {
    BENCH_CHECK(fs->ListAt("/hot", past, ListDetail::kNamesOnly).status());
  });
  return row;
}

AblationRow RunAblation(const std::string& label, VirtualNanos watermark) {
  AblationRow row;
  row.label = label;
  row.watermark_s =
      label == "keep_all"
          ? -1.0
          : static_cast<double>(watermark) / static_cast<double>(kSecond);
  auto cloud = MakeSerialCloud(watermark);
  auto fs = std::move(cloud->OpenFilesystem("bench")).value();
  BENCH_CHECK(fs->Mkdir("/churn"));

  // Churny single directory: create, overwrite-adjacent churn and
  // deletes, with maintenance (merge + background compaction) every few
  // steps so history actually crosses the watermark.
  std::vector<VirtualNanos> versions;
  std::set<std::string> live;
  for (std::size_t i = 0; i < 160; ++i) {
    const std::string path = "/churn/f" + std::to_string(i % 40);
    // Delete every fifth touch of a live name; a name deleted on a
    // previous lap gets re-created instead, so the schedule stays legal
    // (and identical) at every watermark.
    if (i >= 40 && i % 5 == 0 && live.count(path) > 0) {
      BENCH_CHECK(fs->RemoveFile(path));
      live.erase(path);
    } else {
      BENCH_CHECK(fs->WriteFile(path, FileBlob::Synthetic("s", 256)));
      live.insert(path);
    }
    if (i % 8 == 7) cloud->RunMaintenanceToQuiescence();
    versions.push_back(fs->DirVersion("/churn").value());
  }
  cloud->RunMaintenanceToQuiescence();

  row.versions_observed = versions.size();
  for (const VirtualNanos v : versions) {
    if (fs->ListAt("/churn", v, ListDetail::kNamesOnly).ok()) {
      ++row.versions_answerable;
    }
  }
  const MonitorSnapshot snapshot = CollectSnapshot(*cloud);
  row.tuples_folded = snapshot.TotalHistoryFolded();
  for (const auto& mw : snapshot.middlewares) {
    row.compaction_passes += mw.counters.history_compaction_passes;
  }
  row.compaction_ms = ToMillis(snapshot.history_compaction_cost.elapsed);
  return row;
}

// Hot-directory shard plans: one directory per shard, every measured op
// lands in it -- concurrent writers with versioned readers.
std::vector<ShardPlan> HotDirSetup(std::size_t shards) {
  std::vector<ShardPlan> plans;
  for (std::size_t s = 0; s < shards; ++s) {
    ShardPlan plan;
    plan.account = "u" + std::to_string(s);
    plan.ops.push_back(TraceOp{TraceOpKind::kMkdir, "/hot", "", 0});
    for (std::size_t i = 0; i < 16; ++i) {
      plan.ops.push_back(TraceOp{TraceOpKind::kWrite,
                                 "/hot/seed" + std::to_string(i), "", 1024});
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::vector<ShardPlan> HotDirOps(std::size_t shards,
                                 std::size_t ops_per_shard) {
  TreeSpec spec;
  spec.file_count = 16;
  spec.dir_count = 1;
  spec.max_depth = 1;
  TraceMix mix;
  mix.stat = 5;
  mix.read = 5;
  mix.list = 5;
  mix.write = 55;  // concurrent writers dominate
  mix.mkdir = 2;
  mix.move = 2;
  mix.rename = 1;
  mix.copy = 0;
  mix.remove = 5;
  mix.rmdir = 2;
  mix.list_at = 12;
  mix.snapshot_clone = 6;
  std::vector<ShardPlan> plans;
  for (std::size_t s = 0; s < shards; ++s) {
    spec.seed = 500 + s;
    const GeneratedTree tree = GenerateTree(spec);
    ShardPlan plan;
    plan.account = "u" + std::to_string(s);
    // The generated tree's dirs/files live under the shard's own root;
    // replay them into /hot so every op contends on one directory.
    for (const std::string& dir : tree.dirs) {
      plan.ops.push_back(TraceOp{TraceOpKind::kMkdir, dir, "", 0});
    }
    for (const FileSpec& file : tree.files) {
      plan.ops.push_back(
          TraceOp{TraceOpKind::kWrite, file.path, "", file.size});
    }
    std::vector<TraceOp> generated =
        GenerateTrace(tree, ops_per_shard, mix, 7000 + s);
    plan.ops.insert(plan.ops.end(),
                    std::make_move_iterator(generated.begin()),
                    std::make_move_iterator(generated.end()));
    plans.push_back(std::move(plan));
  }
  return plans;
}

HotDirRow RunHotDirAt(int threads, std::size_t shards,
                      const std::vector<ShardPlan>& setup,
                      const std::vector<ShardPlan>& ops,
                      std::string& dump_out) {
  HotDirRow row;
  row.threads = threads;
  H2CloudConfig cfg;
  cfg.cloud = internal::BenchCloudConfig(LatencyProfile::RackLan());
  cfg.middleware_count = static_cast<int>(shards);
  cfg.h2.history_watermark = 64 * kSecond;  // retention on, threaded
  H2Cloud cloud(cfg);

  EngineOptions opts;
  opts.threads = threads;
  opts.collect_latencies = false;
  Result<EngineReport> prepared = RunSharded(cloud, setup, opts);
  BENCH_CHECK(prepared.status());
  cloud.RunMaintenanceToQuiescence();

  opts.collect_latencies = true;
  opts.pacing = kPacing;
  Result<EngineReport> measured = RunSharded(cloud, ops, opts);
  BENCH_CHECK(measured.status());
  row.measured = *measured;
  cloud.RunMaintenanceToQuiescence();
  dump_out = cloud.cloud().DebugDump();
  return row;
}

// -- emission ----------------------------------------------------------------

void EmitJson(const char* path, std::size_t shards,
              std::size_t ops_per_shard, const CloneVsCopy& clone,
              const ListAtRow& listat,
              const std::vector<AblationRow>& ablation,
              const std::vector<HotDirRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"snapshot_sweep\",\n");
  std::fprintf(f, "  \"unit\": \"virtual_ms\",\n");
  std::fprintf(f,
               "  \"workload\": {\"subtree_files\": %zu, "
               "\"subtree_dirs\": %zu, \"listat_files\": %zu, "
               "\"listat_reps\": %zu, \"hot_dir_shards\": %zu, "
               "\"hot_dir_ops_per_shard\": %zu},\n",
               kSubtreeFiles, kSubtreeDirs, kListFiles, kListReps, shards,
               ops_per_shard);
  std::fprintf(f,
               "  \"clone_vs_copy\": {\"clone_ms\": %.4f, "
               "\"copy_ms\": %.4f, \"cost_ratio\": %.2f, "
               "\"clone_primitives\": %llu, \"copy_primitives\": %llu, "
               "\"primitives_ratio\": %.2f, \"baseline_copy_ms\": %.4f, "
               "\"reads_identical\": %s},\n",
               clone.clone_ms, clone.copy_ms, clone.cost_ratio(),
               static_cast<unsigned long long>(clone.clone_primitives),
               static_cast<unsigned long long>(clone.copy_primitives),
               clone.primitives_ratio(), clone.baseline_copy_ms,
               clone.reads_identical ? "true" : "false");
  std::fprintf(f,
               "  \"listat\": {\"live_ms\": %.4f, \"at_current_ms\": %.4f, "
               "\"at_past_ms\": %.4f},\n",
               listat.live_ms, listat.at_current_ms, listat.at_past_ms);
  std::fprintf(f, "  \"watermark_ablation\": [\n");
  for (std::size_t i = 0; i < ablation.size(); ++i) {
    const AblationRow& a = ablation[i];
    std::fprintf(f,
                 "    {\"watermark\": \"%s\", \"watermark_s\": %.1f, "
                 "\"tuples_folded\": %llu, \"compaction_passes\": %llu, "
                 "\"compaction_ms\": %.4f, \"versions_observed\": %zu, "
                 "\"versions_answerable\": %zu}%s\n",
                 a.label.c_str(), a.watermark_s,
                 static_cast<unsigned long long>(a.tuples_folded),
                 static_cast<unsigned long long>(a.compaction_passes),
                 a.compaction_ms, a.versions_observed,
                 a.versions_answerable,
                 i + 1 < ablation.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const HotDirRow& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"ops\": %zu, \"failures\": %zu, "
                 "\"wall_seconds\": %.6f, \"ops_per_sec\": %.1f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"oracle_match\": %s}%s\n",
                 r.threads, r.measured.ops, r.measured.failures,
                 r.measured.wall_seconds, r.measured.ops_per_sec,
                 r.measured.p50_ms, r.measured.p99_ms,
                 r.oracle_match ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_snapshot.json";
  std::size_t ops_per_shard = 120;
  if (argc > 2) ops_per_shard = std::strtoull(argv[2], nullptr, 10);
  constexpr std::size_t kShards = 5;

  std::printf("# snapshot_sweep: clone vs copy on %zu files / %zu dirs\n",
              kSubtreeFiles, kSubtreeDirs);
  const CloneVsCopy clone = RunCloneVsCopy();
  std::printf(
      "clone %.3f ms (%llu primitives) vs copy %.3f ms (%llu primitives): "
      "%.0fx cheaper, reads %s; Cumulus materialized %.3f ms\n",
      clone.clone_ms,
      static_cast<unsigned long long>(clone.clone_primitives),
      clone.copy_ms,
      static_cast<unsigned long long>(clone.copy_primitives),
      clone.cost_ratio(), clone.reads_identical ? "identical" : "DIVERGED",
      clone.baseline_copy_ms);

  const ListAtRow listat = RunListAt();
  std::printf(
      "# listat (%zu files, %zu reps): live %.4f ms, at-current %.4f ms, "
      "at-past %.4f ms\n",
      kListFiles, kListReps, listat.live_ms, listat.at_current_ms,
      listat.at_past_ms);

  std::vector<AblationRow> ablation;
  ablation.push_back(RunAblation("0s", 0));
  ablation.push_back(RunAblation("8s", 8 * kSecond));
  ablation.push_back(RunAblation("64s", 64 * kSecond));
  ablation.push_back(RunAblation("keep_all", 1'000'000LL * kSecond));
  std::printf("%-10s %10s %8s %10s %12s\n", "watermark", "folded", "passes",
              "compact ms", "answerable");
  for (const AblationRow& a : ablation) {
    std::printf("%-10s %10llu %8llu %10.4f %8zu/%zu\n", a.label.c_str(),
                static_cast<unsigned long long>(a.tuples_folded),
                static_cast<unsigned long long>(a.compaction_passes),
                a.compaction_ms, a.versions_answerable,
                a.versions_observed);
  }

  std::printf("# hot-dir sweep: %zu shards, %zu ops/shard\n", kShards,
              ops_per_shard);
  std::printf("%8s %10s %12s %10s %10s %8s\n", "threads", "ops", "ops/sec",
              "p50 ms", "p99 ms", "oracle");
  const std::vector<ShardPlan> setup = HotDirSetup(kShards);
  const std::vector<ShardPlan> ops = HotDirOps(kShards, ops_per_shard);
  std::string oracle_dump;
  std::vector<HotDirRow> rows;
  bool ok = clone.reads_identical && clone.cost_ratio() >= 100.0;
  for (const int threads : {1, 2, 4, 8}) {
    std::string dump;
    HotDirRow row = RunHotDirAt(threads, kShards, setup, ops, dump);
    if (threads == 1) {
      oracle_dump = dump;
      row.oracle_match = true;
    } else {
      row.oracle_match = (dump == oracle_dump);
    }
    ok = ok && row.oracle_match;
    std::printf("%8d %10zu %12.1f %10.4f %10.4f %8s\n", row.threads,
                row.measured.ops, row.measured.ops_per_sec,
                row.measured.p50_ms, row.measured.p99_ms,
                row.oracle_match ? "match" : "DIVERGED");
    rows.push_back(std::move(row));
  }

  EmitJson(out_path, kShards, ops_per_shard, clone, listat, ablation, rows);
  std::printf("# wrote %s\n", out_path);
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: clone slower than 100x vs copy, clone reads "
                 "diverged, or a threaded run diverged from the serial "
                 "oracle\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace h2::bench

int main(int argc, char** argv) { return h2::bench::Main(argc, argv); }
