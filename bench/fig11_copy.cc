// Figure 11: operation time of COPY vs the number of files in the
// directory (n).
//
// Paper result: the three systems perform similarly -- COPY is inherently
// O(n) everywhere because each file's content must become a new object
// (server-side copies).  Headline number: COPYing 1000 files costs
// H2Cloud ~10 s (§1).
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

void Run() {
  // 100k copies are dominated by identical per-file costs; sweep to 10k
  // to keep this binary snappy and extrapolate the last decade linearly.
  const auto sweep = GeometricSweep(10'000);
  SweepTable table("Figure 11 (COPY): operation time vs n", "n_files", "ms");
  table.SetSweep({sweep.begin(), sweep.end()});

  for (SystemKind kind : PaperTrio()) {
    auto holder = MakeSystem(kind);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/src"));

    Series series{KindName(kind), {}};
    std::size_t populated = 0;
    std::size_t copy_id = 0;
    for (std::size_t n : sweep) {
      BENCH_CHECK(AddFiles(fs, "/src", populated, n));
      populated = n;
      holder->Quiesce();
      const std::string dst = "/copy" + std::to_string(copy_id++);
      BENCH_CHECK(fs.Copy("/src", dst));
      series.values.push_back(fs.last_op().elapsed_ms());
      BENCH_CHECK(fs.Rmdir(dst));
      holder->Quiesce();
    }
    table.AddSeries(std::move(series));
  }
  table.Print();
  std::puts(
      "Expected shape (paper): ~linear in n for all three systems, with\n"
      "similar constants (O(n) object copies dominate; Swift adds logN).");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
