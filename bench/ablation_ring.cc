// Ablation: the consistent-hashing ring's elasticity properties -- the
// substrate guarantee H2Cloud relies on (§1: keeping directories in the
// object cloud means reliability/scalability come "automatically").
//
//   * data movement when growing an n-node cluster by one (theory:
//     ~1/(n+1) of placements);
//   * imbalance across nodes after ingest, by partition power;
//   * replica-repair volume after losing one node's disk.
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

void MovementOnGrowth() {
  SweepTable table("Ring growth: data moved when adding node n+1",
                   "nodes_before", "fraction");
  std::vector<double> xs = {4, 8, 12, 16};
  table.SetSweep(xs);
  Series measured{"measured", {}};
  Series theory{"theory_1_over_n+1", {}};
  for (double n : xs) {
    CloudConfig cfg;
    cfg.node_count = static_cast<int>(n);
    cfg.part_power = 12;
    ObjectCloud cloud(cfg);
    OpMeter meter;
    for (int i = 0; i < 3000; ++i) {
      BENCH_CHECK(cloud.Put("obj" + std::to_string(i),
                            ObjectValue::FromString("v", 0), meter));
    }
    const double placements = 3.0 * 3000;
    auto report = cloud.AddStorageNode();
    BENCH_CHECK(report.status());
    measured.values.push_back(report->objects_copied / placements);
    theory.values.push_back(1.0 / (n + 1));
  }
  table.AddSeries(std::move(measured));
  table.AddSeries(std::move(theory));
  table.Print();
}

void BalanceByPartitionPower() {
  // With heterogeneous device weights, each device's ideal share is
  // fractional; the ring can only assign whole partitions, so quota
  // rounding causes imbalance that shrinks as partitions get finer.
  SweepTable table(
      "Weighted-ring imbalance vs partition power (8 nodes, weights 1-4)",
      "part_power", "max dev / ideal");
  std::vector<double> xs = {4, 6, 8, 10, 12};
  table.SetSweep(xs);
  Series imbalance{"imbalance", {}};
  for (double power : xs) {
    PartitionRing ring(static_cast<int>(power), 3);
    double total_weight = 0;
    for (int i = 0; i < 8; ++i) {
      const double weight = 1.0 + i % 4;
      total_weight += weight;
      BENCH_CHECK(ring.AddDevice(
          RingDevice{static_cast<DeviceId>(i), "d" + std::to_string(i),
                     weight}));
    }
    BENCH_CHECK(ring.Rebalance());
    const auto counts = ring.SlotCounts();
    double worst = 0;
    for (int i = 0; i < 8; ++i) {
      const double ideal = 3.0 * ring.partition_count() * (1.0 + i % 4) /
                           total_weight;
      worst = std::max(worst, counts[static_cast<std::size_t>(i)] / ideal);
    }
    imbalance.values.push_back(worst);
  }
  table.AddSeries(std::move(imbalance));
  table.Print();
  std::puts(
      "More partitions -> finer placement granularity -> quota rounding\n"
      "vanishes; Swift production rings use 2^18.");
}

void RepairAfterDiskLoss() {
  CloudConfig cfg;
  cfg.part_power = 12;
  ObjectCloud cloud(cfg);
  OpMeter meter;
  for (int i = 0; i < 3000; ++i) {
    BENCH_CHECK(cloud.Put("obj" + std::to_string(i),
                          ObjectValue::FromString("v", 0), meter));
  }
  std::vector<std::string> lost;
  cloud.node(0).ForEach(
      [&](const std::string& key, const ObjectValue&) { lost.push_back(key); });
  for (const auto& key : lost) (void)cloud.node(0).Delete(key);
  const auto report = cloud.RepairReplicas();
  std::printf(
      "Replica repair after node-0 disk loss: %zu replicas lost, %llu "
      "re-replicated,\ncluster fully replicated again: %s\n",
      lost.size(), static_cast<unsigned long long>(report.objects_copied),
      cloud.RawObjectCount() == 3 * cloud.LogicalObjectCount() ? "yes"
                                                                : "NO");
}

}  // namespace
}  // namespace h2::bench

int main() {
  h2::bench::MovementOnGrowth();
  h2::bench::BalanceByPartitionPower();
  h2::bench::RepairAfterDiskLoss();
}
