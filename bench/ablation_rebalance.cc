// Rebalance-rate policy ablation under LIVE foreground load (ROADMAP
// item 2 remaining; complements bench/churn_sweep.cc, which measures
// degraded reads with the rebalancer dripping *between* serial ops).
//
// Here the contention is real: a membership event (one node added) fires
// on a populated cloud, then the sharded engine replays a Zipf load on 2
// worker threads while a pump thread drives RunRebalanceStep
// concurrently -- direct primitives pinning the membership epoch against
// live migration.  Per policy (max_rebalance_keys_per_step in {3, 16,
// 128, 0 = unbounded}) we report convergence effort (steps, keys, max
// step, virtual rebalance ms), foreground wall throughput during the
// contended window, and the correctness gates: the per-step bound held,
// anti-entropy finds zero divergent keys afterwards, and every preloaded
// key reads back.
//
// Cross-rate byte-identity is deliberately NOT asserted: with reads
// racing migration, the winning replica (and so each shard's jitter
// consumption) legitimately depends on how far migration has progressed.
// That oracle lives in churn_sweep's write-only phases; this bench's
// contract is bounded-rate progress under contention.
//
// Output: human table on stdout, plus an "ablation_rebalance" section
// appended to an existing BENCH_churn.json (path overridable via
// argv[1]; run bench/churn_sweep first -- the file must exist).
// scripts/check_bench_json.sh validates the combined document.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/sharded_engine.h"
#include "workload/loadgen.h"

namespace h2::bench {
namespace {

constexpr std::size_t kShards = 4;
constexpr std::size_t kPreload = 1'200;  // direct-keyed objects to migrate
constexpr double kPacing = 0.05;

struct Row {
  std::size_t rate = 0;  // 0 = unbounded
  std::uint64_t steps = 0;
  std::uint64_t keys_moved = 0;
  std::uint64_t max_step_keys = 0;
  double rebalance_ms = 0;
  std::size_t foreground_ops = 0;
  std::size_t foreground_failures = 0;
  double foreground_ops_per_sec = 0;
  std::uint64_t divergent_after = 0;
  bool keys_readable = false;
};

std::string Key(std::size_t i) { return "abl/k" + std::to_string(i); }

Row RunRate(std::size_t rate, const std::vector<ShardLoad>& loads) {
  Row row;
  row.rate = rate;

  H2CloudConfig cfg;
  cfg.cloud = internal::BenchCloudConfig(LatencyProfile::RackLan());
  cfg.cloud.max_rebalance_keys_per_step = rate;
  cfg.middleware_count = static_cast<int>(kShards);
  H2Cloud cloud(cfg);
  ObjectCloud& oc = cloud.cloud();

  // Direct-keyed ballast so the membership event has real mass to move
  // (the shard trees add more on top).
  {
    OpMeter meter;
    for (std::size_t i = 0; i < kPreload; ++i) {
      BENCH_CHECK(
          oc.Put(Key(i), ObjectValue::FromString("ballast", i + 1), meter));
    }
  }

  EngineOptions opts;
  opts.threads = 2;
  opts.collect_latencies = false;
  std::vector<ShardPlan> setup;
  std::vector<ShardPlan> ops;
  for (const ShardLoad& load : loads) {
    setup.push_back(ShardPlan{load.account, load.setup});
    ops.push_back(ShardPlan{load.account, load.ops});
  }
  BENCH_CHECK(RunSharded(cloud, setup, opts).status());
  cloud.RunMaintenanceToQuiescence();

  // The membership event, then the contended window: a pump thread
  // drains the migration queue at the configured per-step bound while
  // the engine replays the measured load.
  BENCH_CHECK(oc.AddStorageNodeDeferred().status());
  std::atomic<bool> stop{false};
  std::uint64_t max_step = 0;
  std::thread pump([&oc, &stop, &max_step] {
    for (;;) {
      const std::size_t moved = oc.RunRebalanceStep();
      max_step = std::max<std::uint64_t>(max_step, moved);
      if (moved == 0) {
        if (stop.load(std::memory_order_relaxed)) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });

  opts.pacing = kPacing;
  Result<EngineReport> measured = RunSharded(cloud, ops, opts);
  BENCH_CHECK(measured.status());
  stop.store(true);
  pump.join();
  cloud.RunMaintenanceToQuiescence();
  while (oc.RebalancePending() > 0) (void)oc.RunRebalanceStep();
  while (oc.ReplayHints() > 0) {
  }

  row.foreground_ops = measured->ops;
  row.foreground_failures = measured->failures;
  row.foreground_ops_per_sec = measured->ops_per_sec;
  const ObjectCloud::RebalanceStats stats = oc.rebalance_stats();
  row.steps = stats.steps;
  row.keys_moved = stats.keys_moved;
  row.max_step_keys = max_step;
  row.rebalance_ms = ToMillis(oc.rebalance_cost().elapsed);
  for (int sweep = 0; sweep < 16; ++sweep) {
    if (oc.ReplicaScrub().divergent_keys == 0) break;
  }
  row.divergent_after = oc.DivergentKeyCount();

  row.keys_readable = true;
  OpMeter check;
  for (std::size_t i = 0; i < kPreload; ++i) {
    if (!oc.Get(Key(i), check).ok()) {
      row.keys_readable = false;
      break;
    }
  }
  return row;
}

/// Splices the section into an existing churn_sweep artifact: truncate
/// either the previous ablation section (re-run) or the final "}" and
/// re-close the document.
void AppendSection(const char* path, const std::vector<Row>& rows) {
  std::FILE* in = std::fopen(path, "rb");
  if (in == nullptr) {
    std::fprintf(stderr,
                 "FATAL: %s does not exist -- run bench/churn_sweep "
                 "first, then append this ablation\n",
                 path);
    std::exit(1);
  }
  std::string doc;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) doc.append(buf, n);
  std::fclose(in);

  const std::size_t prior = doc.find("\"ablation_rebalance\"");
  std::size_t cut;
  if (prior != std::string::npos) {
    cut = doc.rfind(',', prior);
  } else {
    cut = doc.rfind('}');
  }
  if (cut == std::string::npos) {
    std::fprintf(stderr, "FATAL: %s is not a churn_sweep artifact\n", path);
    std::exit(1);
  }
  doc.resize(cut);

  std::FILE* out = std::fopen(path, "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot rewrite %s\n", path);
    std::exit(1);
  }
  std::fwrite(doc.data(), 1, doc.size(), out);
  std::fprintf(out, ",\n  \"ablation_rebalance\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"rate\": %zu, \"steps\": %llu, \"keys_moved\": %llu, "
        "\"max_step_keys\": %llu, \"rebalance_ms\": %.4f, "
        "\"foreground_ops\": %zu, \"foreground_failures\": %zu, "
        "\"foreground_ops_per_sec\": %.1f, \"divergent_after\": %llu, "
        "\"keys_readable\": %s}%s\n",
        r.rate, static_cast<unsigned long long>(r.steps),
        static_cast<unsigned long long>(r.keys_moved),
        static_cast<unsigned long long>(r.max_step_keys), r.rebalance_ms,
        r.foreground_ops, r.foreground_failures, r.foreground_ops_per_sec,
        static_cast<unsigned long long>(r.divergent_after),
        r.keys_readable ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

int Main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_churn.json";

  LoadgenSpec spec;
  spec.shards = kShards;
  spec.ops_per_shard = 150;
  const std::vector<ShardLoad> loads = BuildZipfLoad(spec);

  std::printf("# ablation_rebalance: %zu ballast keys + %zu-shard Zipf "
              "load live during migration\n",
              kPreload, kShards);
  std::printf("%10s %8s %10s %10s %12s %12s %8s %8s\n", "rate", "steps",
              "keys", "max/step", "rebal ms", "fg ops/s", "diverg",
              "keys");

  std::vector<Row> rows;
  bool ok = true;
  for (const std::size_t rate : {std::size_t{3}, std::size_t{16},
                                 std::size_t{128}, std::size_t{0}}) {
    Row row = RunRate(rate, loads);
    ok = ok && row.divergent_after == 0 && row.keys_readable &&
         (rate == 0 || row.max_step_keys <= rate);
    std::printf("%10zu %8llu %10llu %10llu %12.4f %12.1f %8llu %8s\n",
                row.rate, static_cast<unsigned long long>(row.steps),
                static_cast<unsigned long long>(row.keys_moved),
                static_cast<unsigned long long>(row.max_step_keys),
                row.rebalance_ms, row.foreground_ops_per_sec,
                static_cast<unsigned long long>(row.divergent_after),
                row.keys_readable ? "ok" : "LOST");
    rows.push_back(std::move(row));
  }

  AppendSection(path, rows);
  std::printf("# appended ablation_rebalance section to %s\n", path);
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: a policy exceeded its step bound, left divergent "
                 "keys, or lost ballast keys\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace h2::bench

int main(int argc, char** argv) { return h2::bench::Main(argc, argv); }
