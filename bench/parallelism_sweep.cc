// Batched-I/O width sweep: elapsed time of the fan-out-heavy operations
// (detailed LIST, COPY, RMDIR of a 1000-file directory) as the batch
// wave width W (CloudConfig::io_concurrency) grows 1 -> 32, for H2Cloud
// and the Swift baseline.  LIST and COPY are waves of per-child object
// ops, so their critical-path cost shrinks roughly W-fold; H2's RMDIR is
// O(1) foreground (the subtree is reclaimed lazily), so only its
// background cleanup cost moves.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

struct Row {
  std::uint64_t width = 0;
  double h2_list_ms = 0, h2_copy_ms = 0, h2_rmdir_ms = 0, h2_cleanup_ms = 0;
  double sw_list_ms = 0, sw_copy_ms = 0, sw_rmdir_ms = 0;
};

double MaintenanceMs(H2Cloud& cloud) {
  double total = 0;
  for (std::size_t i = 0; i < cloud.middleware_count(); ++i) {
    total += cloud.middleware(i).maintenance_cost().elapsed_ms();
  }
  return total;
}

Row Measure(std::uint64_t width) {
  Row row;
  row.width = width;

  {
    H2CloudConfig cfg;
    cfg.cloud = internal::BenchCloudConfig(LatencyProfile::RackLan());
    cfg.cloud.io_concurrency = width;
    cfg.h2.resolve_cache = false;  // paper-reproduction O(d) resolution
    H2Cloud cloud(cfg);
    BENCH_CHECK(cloud.CreateAccount("bench"));
    auto fs = std::move(cloud.OpenFilesystem("bench")).value();
    BENCH_CHECK(fs->Mkdir("/dir"));
    BENCH_CHECK(AddFiles(*fs, "/dir", 0, 1000));
    cloud.RunMaintenanceToQuiescence();

    BENCH_CHECK(fs->List("/dir", ListDetail::kDetailed).status());
    row.h2_list_ms = fs->last_op().elapsed_ms();

    BENCH_CHECK(fs->Copy("/dir", "/dir-copy"));
    row.h2_copy_ms = fs->last_op().elapsed_ms();

    cloud.RunMaintenanceToQuiescence();
    const double before = MaintenanceMs(cloud);
    BENCH_CHECK(fs->Rmdir("/dir-copy"));
    row.h2_rmdir_ms = fs->last_op().elapsed_ms();
    cloud.RunMaintenanceToQuiescence();
    row.h2_cleanup_ms = MaintenanceMs(cloud) - before;
  }

  {
    CloudConfig ccfg = internal::BenchCloudConfig(LatencyProfile::RackLan());
    ccfg.io_concurrency = width;
    ObjectCloud cloud(ccfg);
    SwiftFs fs(cloud);
    BENCH_CHECK(fs.Mkdir("/dir"));
    BENCH_CHECK(AddFiles(fs, "/dir", 0, 1000));

    BENCH_CHECK(fs.List("/dir", ListDetail::kDetailed).status());
    row.sw_list_ms = fs.last_op().elapsed_ms();

    BENCH_CHECK(fs.Copy("/dir", "/dir-copy"));
    row.sw_copy_ms = fs.last_op().elapsed_ms();

    BENCH_CHECK(fs.Rmdir("/dir-copy"));
    row.sw_rmdir_ms = fs.last_op().elapsed_ms();
  }
  return row;
}

void RequireStrictDecrease(const char* what, double prev, double cur,
                           std::uint64_t from, std::uint64_t to) {
  if (cur < prev) return;
  std::fprintf(stderr,
               "FATAL %s did not strictly decrease W=%llu (%.2f ms) -> "
               "W=%llu (%.2f ms)\n",
               what, static_cast<unsigned long long>(from), prev,
               static_cast<unsigned long long>(to), cur);
  std::exit(1);
}

void Run() {
  std::puts(
      "== Parallelism sweep: wave width W vs elapsed, 1000-file dir ==");
  std::printf("%4s  %10s %10s %10s %12s  %10s %10s %10s\n", "W", "H2 LIST",
              "H2 COPY", "H2 RMDIR", "H2 cleanup", "Sw LIST", "Sw COPY",
              "Sw RMDIR");

  std::vector<Row> rows;
  for (std::uint64_t w : {1u, 2u, 4u, 8u, 16u, 32u}) {
    rows.push_back(Measure(w));
    const Row& r = rows.back();
    std::printf("%4llu  %9.1fms %9.1fms %9.1fms %11.1fms  %9.1fms %9.1fms "
                "%9.1fms\n",
                static_cast<unsigned long long>(r.width), r.h2_list_ms,
                r.h2_copy_ms, r.h2_rmdir_ms, r.h2_cleanup_ms, r.sw_list_ms,
                r.sw_copy_ms, r.sw_rmdir_ms);
  }

  // Acceptance: the batched fan-outs get strictly faster W=1 -> 16.
  for (std::size_t i = 1; i < rows.size() && rows[i].width <= 16; ++i) {
    RequireStrictDecrease("H2 detailed LIST-1000", rows[i - 1].h2_list_ms,
                          rows[i].h2_list_ms, rows[i - 1].width,
                          rows[i].width);
    RequireStrictDecrease("H2 COPY-1000", rows[i - 1].h2_copy_ms,
                          rows[i].h2_copy_ms, rows[i - 1].width,
                          rows[i].width);
  }
  std::puts(
      "\nExpected shape: H2 LIST and H2/Swift COPY fall ~W-fold (waves "
      "priced at their critical path); Swift's detailed LIST is container-"
      "DB pages, so it is W-independent; H2 RMDIR stays O(1) foreground "
      "while its lazy cleanup cost falls with W; Swift RMDIR falls with W "
      "because its per-member deletes batch.");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
