// §5.3 "The Impact of RTT": alpha = RTT / filesystem-operation-time.
//
// The paper measures a 58 ms average WAN RTT (24-83 ms, PINGed from Santa
// Cruz to Dropbox) and reports:
//   * directory operations: alpha stays within ~0.3 for every system, so
//     operation time -- not the network -- dominates user experience;
//   * file access: alpha falls from ~2.7 to ~0.3 for H2 as depth grows
//     0..20, fluctuates around ~5 for Swift and ~0.5 for Dropbox, so RTT
//     dominates shallow accesses.
// Conclusion reproduced here: directory-operation optimization is where
// the systems differ; shallow file access is RTT-bound everywhere.
#include <cstdio>

#include "bench/bench_util.h"

namespace h2::bench {
namespace {

double MeanWanRttMs() {
  LatencyModel model(LatencyProfile::DropboxWan(), 2026);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) sum += ToMillis(model.SampleWanRtt());
  return sum / 1000.0;
}

void Run() {
  const double rtt_ms = MeanWanRttMs();
  std::printf("WAN RTT model: mean %.1f ms (paper: 58 ms, range 24-83)\n\n",
              rtt_ms);

  // --- alpha for directory operations over a 1000-file directory --------
  SweepTable dir_table("alpha = RTT / operation time, directory operations",
                       "op", "alpha");
  dir_table.SetSweep({0, 1, 2, 3});  // MKDIR, MOVE, RMDIR, LIST
  std::puts("x axis: 0=MKDIR 1=MOVE 2=RMDIR 3=LIST(detailed), n=1000");
  for (SystemKind kind : PaperTrio()) {
    auto holder = MakeSystem(kind);
    FileSystem& fs = holder->fs();
    BENCH_CHECK(fs.Mkdir("/dir"));
    BENCH_CHECK(AddFiles(fs, "/dir", 0, 1000));
    BENCH_CHECK(fs.Mkdir("/dst"));
    holder->Quiesce();

    Series series{KindName(kind), {}};
    BENCH_CHECK(fs.Mkdir("/dir/sub"));
    series.values.push_back(rtt_ms / fs.last_op().elapsed_ms());
    BENCH_CHECK(fs.Move("/dir", "/dst/moved"));
    series.values.push_back(rtt_ms / fs.last_op().elapsed_ms());
    BENCH_CHECK(fs.Move("/dst/moved", "/dir"));
    holder->Quiesce();
    BENCH_CHECK(fs.Rmdir("/dir/sub"));
    series.values.push_back(rtt_ms / fs.last_op().elapsed_ms());
    holder->Quiesce();
    BENCH_CHECK(fs.List("/dir", ListDetail::kDetailed).status());
    series.values.push_back(rtt_ms / fs.last_op().elapsed_ms());
    dir_table.AddSeries(std::move(series));
  }
  dir_table.Print();

  // --- alpha for file access vs depth ------------------------------------
  SweepTable access_table("alpha = RTT / lookup time, file access",
                          "depth", "alpha");
  std::vector<double> xs;
  for (std::size_t d = 1; d <= 20; ++d) xs.push_back(static_cast<double>(d));
  access_table.SetSweep(xs);
  for (SystemKind kind : PaperTrio()) {
    auto holder = MakeSystem(kind);
    FileSystem& fs = holder->fs();
    std::string dir;
    std::vector<std::string> files;
    for (std::size_t d = 1; d <= 20; ++d) {
      const std::string file = dir + "/file_at_" + std::to_string(d);
      BENCH_CHECK(fs.WriteFile(file, FileBlob::FromString("x")));
      files.push_back(file);
      if (d < 20) {
        dir += "/d" + std::to_string(d);
        BENCH_CHECK(fs.Mkdir(dir));
      }
    }
    holder->Quiesce();
    Series series{KindName(kind), {}};
    for (const std::string& file : files) {
      const double ms = MeasureMs(
          fs, 5, [&](std::size_t) { BENCH_CHECK(fs.Stat(file).status()); });
      series.values.push_back(rtt_ms / ms);
    }
    access_table.AddSeries(std::move(series));
  }
  access_table.Print();
  std::puts(
      "Expected (paper): directory-op alpha <= ~0.3 everywhere; file-access\n"
      "alpha ~5 for Swift, ~0.5 for Dropbox, and falling ~2.7 -> ~0.3 for "
      "H2\nas depth grows -- so RTT dominates shallow file access, while\n"
      "directory operations are worth optimizing.");
}

}  // namespace
}  // namespace h2::bench

int main() { h2::bench::Run(); }
