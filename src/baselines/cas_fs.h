// Content Addressable Storage baseline with a multi-layer pointer-block
// index (Table 1 row 2) -- the Venti/Foundation/Camlistore family.
//
// Every block lives at the hash of its content: file content blocks, and
// directory "pointer blocks" that list (name, kind, child hash, size)
// tuples.  The root pointer block's hash is kept at a well-known key.
//
// Consequences the paper calls out (§2):
//   * accessing a block whose hash you hold is O(1) (StatByHash);
//   * a block cannot change without changing its address, so EVERY
//     structural mutation -- even MKDIR -- re-derives the hierarchical
//     index: the naive implementation recomputes pointer-block hashes over
//     the whole tree, O(N);
//   * LIST is O(m) (read one pointer block);
//   * COPY shares content blocks (dedup) but still rebuilds the index,
//     O(N).
//
// Path-based access walks pointer blocks from the root (O(d) GETs).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "baselines/common/tree_index.h"
#include "cluster/object_cloud.h"
#include "fs/filesystem.h"

namespace h2 {

class CasFs final : public FileSystem {
 public:
  explicit CasFs(ObjectCloud& cloud);

  std::string_view system_name() const override { return "CAS"; }

  Status WriteFile(std::string_view path, FileBlob blob) override;
  Result<FileBlob> ReadFile(std::string_view path) override;
  Result<FileInfo> Stat(std::string_view path) override;
  Status RemoveFile(std::string_view path) override;
  Status Mkdir(std::string_view path) override;
  Status Rmdir(std::string_view path) override;
  Status Move(std::string_view from, std::string_view to) override;
  Result<std::vector<DirEntry>> List(std::string_view path,
                                     ListDetail detail) override;
  Status Copy(std::string_view from, std::string_view to) override;

  /// The O(1) access CAS is known for: one HEAD at the content address.
  Result<FileInfo> StatByHash(const std::string& content_hash);
  /// Content hash for a path (what an application would keep around).
  Result<std::string> HashOf(std::string_view path);

  std::uint64_t index_rebuilds() const { return rebuilds_; }

 private:
  struct NodeMeta {
    std::string hash;  // content block (files) / pointer block (dirs)
  };

  static std::string BlockKey(const std::string& hash);

  Status RebuildIndex(OpMeter& meter);
  std::string HashSubtree(IndexNode* node, OpMeter& meter,
                          std::vector<std::pair<std::string, std::string>>*
                              new_blocks);
  Result<IndexNode*> WalkChargingBlockReads(std::string_view normalized,
                                            OpMeter& meter);
  void ReleaseContent(IndexNode* subtree, OpMeter& meter);

  ObjectCloud& cloud_;
  TreeIndex tree_;
  std::unordered_map<const IndexNode*, NodeMeta> meta_;
  std::unordered_map<std::string, std::uint64_t> content_refs_;
  std::uint64_t rebuilds_ = 0;
  std::string root_hash_;
};

}  // namespace h2
