#include "baselines/ch_fs.h"

#include "common/strings.h"
#include "fs/path.h"

namespace h2 {

namespace {
constexpr std::string_view kPrefix = "ch:";
}

ChFs::ChFs(ObjectCloud& cloud) : cloud_(cloud) {}

std::string ChFs::Key(std::string_view path) const {
  std::string key(kPrefix);
  key += path;
  return key;
}

bool ChFs::IsDirMarker(const ObjectValue& v) {
  auto it = v.metadata.find("kind");
  return it != v.metadata.end() && it->second == "dir";
}

std::vector<std::pair<std::string, bool>> ChFs::ScanSubtree(
    const std::string& dir, OpMeter& meter) {
  const std::string prefix =
      Key(dir == "/" ? std::string("/") : dir + "/");
  std::vector<std::pair<std::string, bool>> out;
  cloud_.Scan(
      [&](const std::string& key, const ObjectValue& value) {
        if (!StartsWith(key, kPrefix)) return;
        if (key.compare(0, prefix.size(), prefix) != 0) return;
        out.emplace_back(key.substr(kPrefix.size()), IsDirMarker(value));
      },
      meter);
  return out;
}

Status ChFs::RequireDir(const std::string& path, OpMeter& meter) {
  if (path == "/") return Status::Ok();
  H2_ASSIGN_OR_RETURN(ObjectHead head, cloud_.Head(Key(path), meter));
  auto it = head.metadata.find("kind");
  if (it == head.metadata.end() || it->second != "dir") {
    return Status::NotADirectory("not a directory: " + path);
  }
  return Status::Ok();
}

Status ChFs::WriteFile(std::string_view path, FileBlob blob) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot write to /");
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(p), meter));
  Result<ObjectHead> existing = cloud_.Head(Key(p), meter);
  if (existing.ok()) {
    auto it = existing->metadata.find("kind");
    if (it != existing->metadata.end() && it->second == "dir") {
      return Status::IsADirectory("is a directory: " + p);
    }
  } else if (existing.code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  ObjectValue value;
  value.payload = std::move(blob.data);
  value.logical_size = blob.logical_size;
  value.metadata["kind"] = "file";
  return cloud_.Put(Key(p), std::move(value), meter);
}

Result<FileBlob> ChFs::ReadFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot read /");
  H2_ASSIGN_OR_RETURN(ObjectValue obj, cloud_.Get(Key(p), meter));
  if (IsDirMarker(obj)) return Status::IsADirectory("is a directory: " + p);
  return FileBlob{std::move(obj.payload), obj.logical_size};
}

Result<FileInfo> ChFs::Stat(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  FileInfo info;
  if (p == "/") {
    info.kind = EntryKind::kDirectory;
    return info;
  }
  H2_ASSIGN_OR_RETURN(ObjectHead head, cloud_.Head(Key(p), meter));
  auto it = head.metadata.find("kind");
  info.kind = (it != head.metadata.end() && it->second == "dir")
                  ? EntryKind::kDirectory
                  : EntryKind::kFile;
  info.size = head.logical_size;
  info.created = head.created;
  info.modified = head.modified;
  return info;
}

Status ChFs::RemoveFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot remove /");
  H2_ASSIGN_OR_RETURN(ObjectHead head, cloud_.Head(Key(p), meter));
  auto it = head.metadata.find("kind");
  if (it != head.metadata.end() && it->second == "dir") {
    return Status::IsADirectory("is a directory: " + p);
  }
  return cloud_.Delete(Key(p), meter);
}

Status ChFs::Mkdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::AlreadyExists("/");
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(p), meter));
  if (cloud_.Exists(Key(p), meter)) {
    return Status::AlreadyExists("exists: " + p);
  }
  ObjectValue marker = ObjectValue::FromString("", cloud_.clock().Tick());
  marker.metadata["kind"] = "dir";
  return cloud_.Put(Key(p), std::move(marker), meter);
}

Status ChFs::Rmdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::InvalidArgument("cannot remove /");
  H2_RETURN_IF_ERROR(RequireDir(p, meter));
  // Without any index, membership is discovered by scanning the cluster;
  // the deletions themselves go out as one pipelined batch.
  std::vector<BatchOp> deletes;
  for (const auto& [member, is_dir] : ScanSubtree(p, meter)) {
    deletes.push_back(BatchOp::Delete(Key(member)));
  }
  deletes.push_back(BatchOp::Delete(Key(p)));
  const std::vector<BatchResult> results =
      cloud_.ExecuteBatch(std::move(deletes), meter);
  for (const BatchResult& r : results) H2_RETURN_IF_ERROR(r.status);
  return Status::Ok();
}

Status ChFs::Move(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot move /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t) return Status::Ok();
  if (IsWithin(t, f)) {
    return Status::InvalidArgument("cannot move a directory into itself");
  }
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(t), meter));
  H2_ASSIGN_OR_RETURN(ObjectHead src, cloud_.Head(Key(f), meter));
  if (cloud_.Exists(Key(t), meter)) {
    return Status::AlreadyExists("destination exists: " + t);
  }
  auto it = src.metadata.find("kind");
  const bool is_dir = it != src.metadata.end() && it->second == "dir";

  std::vector<std::pair<std::string, bool>> members;
  if (is_dir) members = ScanSubtree(f, meter);
  members.emplace_back(f, is_dir);
  // Re-key as two pipelined batches: all COPYs, then all DELETEs.
  std::vector<BatchOp> copies;
  std::vector<BatchOp> deletes;
  copies.reserve(members.size());
  deletes.reserve(members.size());
  for (const auto& [member, member_is_dir] : members) {
    const std::string target = t + member.substr(f.size());
    copies.push_back(BatchOp::Copy(Key(member), Key(target)));
    deletes.push_back(BatchOp::Delete(Key(member)));
  }
  const std::vector<BatchResult> copied =
      cloud_.ExecuteBatch(std::move(copies), meter);
  for (const BatchResult& r : copied) H2_RETURN_IF_ERROR(r.status);
  const std::vector<BatchResult> dropped =
      cloud_.ExecuteBatch(std::move(deletes), meter);
  for (const BatchResult& r : dropped) H2_RETURN_IF_ERROR(r.status);
  return Status::Ok();
}

Result<std::vector<DirEntry>> ChFs::List(std::string_view path,
                                         ListDetail detail) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  H2_RETURN_IF_ERROR(RequireDir(p, meter));

  // O(N): the only way to learn a directory's members is a cluster scan.
  const std::string prefix = p == "/" ? "/" : p + "/";
  std::vector<DirEntry> entries;
  cloud_.Scan(
      [&](const std::string& key, const ObjectValue& value) {
        if (!StartsWith(key, kPrefix)) return;
        const std::string_view stored(key);
        const std::string_view member = stored.substr(kPrefix.size());
        if (member.size() <= prefix.size() ||
            member.compare(0, prefix.size(), prefix) != 0) {
          return;
        }
        const std::string_view rest = member.substr(prefix.size());
        if (rest.find('/') != std::string_view::npos) return;  // deeper
        DirEntry e;
        e.name = std::string(rest);
        e.kind = IsDirMarker(value) ? EntryKind::kDirectory
                                    : EntryKind::kFile;
        if (detail == ListDetail::kDetailed) {
          e.size = value.logical_size;
          e.modified = value.modified;
        }
        entries.push_back(std::move(e));
      },
      meter);
  return entries;
}

Status ChFs::Copy(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot copy /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t || IsWithin(t, f)) {
    return Status::InvalidArgument("cannot copy a directory into itself");
  }
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(t), meter));
  H2_ASSIGN_OR_RETURN(ObjectHead src, cloud_.Head(Key(f), meter));
  if (cloud_.Exists(Key(t), meter)) {
    return Status::AlreadyExists("destination exists: " + t);
  }
  auto it = src.metadata.find("kind");
  const bool is_dir = it != src.metadata.end() && it->second == "dir";

  std::vector<std::pair<std::string, bool>> members;
  if (is_dir) members = ScanSubtree(f, meter);
  members.emplace_back(f, is_dir);
  std::vector<BatchOp> copies;
  copies.reserve(members.size());
  for (const auto& [member, member_is_dir] : members) {
    const std::string target = t + member.substr(f.size());
    copies.push_back(BatchOp::Copy(Key(member), Key(target)));
  }
  const std::vector<BatchResult> copied =
      cloud_.ExecuteBatch(std::move(copies), meter);
  for (const BatchResult& r : copied) H2_RETURN_IF_ERROR(r.status);
  return Status::Ok();
}

}  // namespace h2
