#include "baselines/snapshot_fs.h"

#include "codec/formatter.h"
#include "fs/path.h"

namespace h2 {
namespace {

constexpr std::size_t kEntriesPerChunk = 1024;
constexpr std::uint64_t kSegmentTarget = 4ULL << 20;  // 4 MiB segments
constexpr VirtualNanos kPerEntryCpu = FromMillis(0.002);

std::string ChunkKey(std::size_t index) {
  return "cum:meta:" + std::to_string(index);
}
std::string SegmentKey(std::uint32_t segment) {
  return "cum:seg:" + std::to_string(segment);
}

}  // namespace

SnapshotFs::SnapshotFs(ObjectCloud& cloud) : cloud_(cloud) {}

std::size_t SnapshotFs::ChunksNeeded() const {
  return (state_.size() + kEntriesPerChunk - 1) / kEntriesPerChunk;
}

Status SnapshotFs::PutChunk(std::size_t index, OpMeter& meter) {
  // Serialize the entries belonging to this chunk (the real object, so
  // Fig. 14/15 storage accounting sees the metadata log).
  std::string payload;
  std::size_t i = 0;
  for (const auto& [path, entry] : state_) {
    if (i / kEntriesPerChunk == index) {
      payload += MakeTupleLine(
          {path, std::to_string(entry.size),
           entry.kind == EntryKind::kDirectory ? "D" : "F",
           std::to_string(entry.segment)});
      payload.push_back('\n');
    }
    ++i;
  }
  ObjectValue value = ObjectValue::FromString(std::move(payload),
                                              cloud_.clock().Tick());
  value.metadata["kind"] = "metalog";
  H2_RETURN_IF_ERROR(cloud_.Put(ChunkKey(index), std::move(value), meter));
  if (chunk_dirty_.size() <= index) chunk_dirty_.resize(index + 1, false);
  chunk_dirty_[index] = true;
  return Status::Ok();
}

Status SnapshotFs::ChargeLogScan(OpMeter& meter) {
  // Fetch every metadata-log chunk and walk every entry.
  for (std::size_t i = 0; i < ChunksNeeded(); ++i) {
    Result<ObjectValue> chunk = cloud_.Get(ChunkKey(i), meter);
    if (!chunk.ok() && chunk.code() != ErrorCode::kNotFound) {
      return chunk.status();
    }
  }
  meter.Charge(static_cast<VirtualNanos>(state_.size()) * kPerEntryCpu);
  meter.CountScanned(state_.size());  // work units: log entries walked
  return Status::Ok();
}

Status SnapshotFs::RewriteLog(OpMeter& meter) {
  const std::size_t needed = ChunksNeeded();
  for (std::size_t i = 0; i < needed; ++i) {
    H2_RETURN_IF_ERROR(PutChunk(i, meter));
  }
  // Drop chunks past the new end.
  for (std::size_t i = needed; i < chunk_dirty_.size(); ++i) {
    if (chunk_dirty_[i]) (void)cloud_.Delete(ChunkKey(i), meter);
  }
  chunk_dirty_.resize(needed, false);
  meter.Charge(static_cast<VirtualNanos>(state_.size()) * kPerEntryCpu);
  meter.CountScanned(state_.size());  // work units: log entries rewritten
  return Status::Ok();
}

Status SnapshotFs::AppendToLog(OpMeter& meter) {
  // Touch only the tail chunk.
  const std::size_t last = ChunksNeeded() == 0 ? 0 : ChunksNeeded() - 1;
  return PutChunk(last, meter);
}

Status SnapshotFs::RequireDir(const std::string& path, OpMeter& meter) {
  (void)meter;
  if (path == "/") return Status::Ok();
  auto it = state_.find(path);
  if (it == state_.end()) return Status::NotFound("no such directory: " + path);
  if (it->second.kind != EntryKind::kDirectory) {
    return Status::NotADirectory("not a directory: " + path);
  }
  return Status::Ok();
}

Status SnapshotFs::WriteContentToSegment(const Entry& entry,
                                         OpMeter& meter) {
  segment_bytes_ += entry.size;
  if (segment_bytes_ > kSegmentTarget) {
    ++current_segment_;
    segment_bytes_ = entry.size;
  }
  // Rewrite (append to) the current segment object; the logical size
  // reflects everything packed so far.
  ObjectValue seg;
  seg.payload = "segment-sample";
  seg.logical_size = segment_bytes_;
  seg.metadata["kind"] = "segment";
  return cloud_.Put(SegmentKey(current_segment_), std::move(seg), meter);
}

Status SnapshotFs::WriteFile(std::string_view path, FileBlob blob) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot write to /");
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(p), meter));
  auto it = state_.find(p);
  if (it != state_.end() && it->second.kind == EntryKind::kDirectory) {
    return Status::IsADirectory("is a directory: " + p);
  }

  Entry entry;
  entry.kind = EntryKind::kFile;
  entry.size = blob.logical_size;
  entry.created = it != state_.end() ? it->second.created
                                     : cloud_.clock().Tick();
  entry.modified = cloud_.clock().Tick();
  entry.segment = current_segment_;
  entry.payload = std::move(blob.data);
  H2_RETURN_IF_ERROR(WriteContentToSegment(entry, meter));
  state_[p] = std::move(entry);
  return AppendToLog(meter);
}

Result<FileBlob> SnapshotFs::ReadFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot read /");
  // Locate the file by scanning the metadata log (O(N))...
  H2_RETURN_IF_ERROR(ChargeLogScan(meter));
  auto it = state_.find(p);
  if (it == state_.end()) return Status::NotFound("no such file: " + p);
  if (it->second.kind == EntryKind::kDirectory) {
    return Status::IsADirectory("is a directory: " + p);
  }
  // ...then pull the segment that packs its content.
  H2_ASSIGN_OR_RETURN(ObjectValue seg,
                      cloud_.Get(SegmentKey(it->second.segment), meter));
  (void)seg;
  return FileBlob{it->second.payload, it->second.size};
}

Result<FileInfo> SnapshotFs::Stat(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") {
    FileInfo info;
    info.kind = EntryKind::kDirectory;
    return info;
  }
  H2_RETURN_IF_ERROR(ChargeLogScan(meter));
  auto it = state_.find(p);
  if (it == state_.end()) return Status::NotFound("no such entry: " + p);
  FileInfo info;
  info.kind = it->second.kind;
  info.size = it->second.size;
  info.created = it->second.created;
  info.modified = it->second.modified;
  return info;
}

Status SnapshotFs::RemoveFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot remove /");
  auto it = state_.find(p);
  if (it == state_.end()) return Status::NotFound("no such file: " + p);
  if (it->second.kind == EntryKind::kDirectory) {
    return Status::IsADirectory("is a directory: " + p);
  }
  state_.erase(it);
  // Dropping an entry invalidates the packed log: rewrite it.
  return RewriteLog(meter);
}

Status SnapshotFs::Mkdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::AlreadyExists("/");
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(p), meter));
  if (state_.contains(p)) return Status::AlreadyExists("exists: " + p);
  Entry entry;
  entry.kind = EntryKind::kDirectory;
  entry.created = entry.modified = cloud_.clock().Tick();
  state_[p] = std::move(entry);
  return AppendToLog(meter);  // O(1): append-only
}

Status SnapshotFs::Rmdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::InvalidArgument("cannot remove /");
  H2_RETURN_IF_ERROR(RequireDir(p, meter));
  const std::string lo = p + "/";
  auto it = state_.lower_bound(lo);
  while (it != state_.end() && it->first.compare(0, lo.size(), lo) == 0) {
    it = state_.erase(it);
  }
  state_.erase(p);
  return RewriteLog(meter);  // O(N)
}

Status SnapshotFs::Move(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot move /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t) return Status::Ok();
  if (IsWithin(t, f)) {
    return Status::InvalidArgument("cannot move a directory into itself");
  }
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(t), meter));
  auto src = state_.find(f);
  if (src == state_.end()) return Status::NotFound("no such entry: " + f);
  if (state_.contains(t)) return Status::AlreadyExists("destination exists: " + t);

  std::vector<std::pair<std::string, Entry>> moved;
  moved.emplace_back(t, src->second);
  if (src->second.kind == EntryKind::kDirectory) {
    const std::string lo = f + "/";
    for (auto it = state_.lower_bound(lo);
         it != state_.end() && it->first.compare(0, lo.size(), lo) == 0;
         ++it) {
      moved.emplace_back(t + it->first.substr(f.size()), it->second);
    }
  }
  // Erase the old range, insert the renamed one, rewrite the log.
  state_.erase(f);
  const std::string lo = f + "/";
  auto it = state_.lower_bound(lo);
  while (it != state_.end() && it->first.compare(0, lo.size(), lo) == 0) {
    it = state_.erase(it);
  }
  for (auto& [new_path, entry] : moved) state_[new_path] = std::move(entry);
  return RewriteLog(meter);  // O(N)
}

Result<std::vector<DirEntry>> SnapshotFs::List(std::string_view path,
                                               ListDetail detail) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  H2_RETURN_IF_ERROR(RequireDir(p, meter));
  H2_RETURN_IF_ERROR(ChargeLogScan(meter));  // O(N)

  const std::string lo = p == "/" ? "/" : p + "/";
  std::vector<DirEntry> entries;
  for (auto it = state_.lower_bound(lo);
       it != state_.end() && it->first.compare(0, lo.size(), lo) == 0;
       ++it) {
    const std::string_view rest = std::string_view(it->first).substr(lo.size());
    if (rest.find('/') != std::string_view::npos) continue;
    DirEntry e;
    e.name = std::string(rest);
    e.kind = it->second.kind;
    if (detail == ListDetail::kDetailed) {
      e.size = it->second.size;
      e.modified = it->second.modified;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

Status SnapshotFs::Copy(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot copy /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t || IsWithin(t, f)) {
    return Status::InvalidArgument("cannot copy a directory into itself");
  }
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(t), meter));
  auto src = state_.find(f);
  if (src == state_.end()) return Status::NotFound("no such entry: " + f);
  if (state_.contains(t)) return Status::AlreadyExists("destination exists: " + t);

  // Segments are immutable and content-shared between snapshots, so a COPY
  // duplicates only metadata entries; finding them still scans the log.
  H2_RETURN_IF_ERROR(ChargeLogScan(meter));
  std::vector<std::pair<std::string, Entry>> copies;
  copies.emplace_back(t, src->second);
  if (src->second.kind == EntryKind::kDirectory) {
    const std::string lo = f + "/";
    for (auto it = state_.lower_bound(lo);
         it != state_.end() && it->first.compare(0, lo.size(), lo) == 0;
         ++it) {
      copies.emplace_back(t + it->first.substr(f.size()), it->second);
    }
  }
  for (auto& [new_path, entry] : copies) state_[new_path] = std::move(entry);
  return RewriteLog(meter);
}

}  // namespace h2
