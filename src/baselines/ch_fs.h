// Plain Consistent Hash pseudo-filesystem (Table 1 row 3).
//
// Files and directory markers are flat objects at hash(full path) and
// there is NO secondary index whatsoever.  File access and MKDIR are O(1),
// but any operation that must discover the members of a directory --
// LIST, RMDIR, MOVE, COPY -- has no option but to enumerate the cluster
// (ObjectCloud::Scan) and filter by path prefix, which is what drives the
// O(N) rows in Table 1 and why Swift bolts a file-path DB on top.
#pragma once

#include <string>

#include "cluster/object_cloud.h"
#include "fs/filesystem.h"

namespace h2 {

class ChFs final : public FileSystem {
 public:
  explicit ChFs(ObjectCloud& cloud);

  std::string_view system_name() const override { return "PlainCH"; }

  Status WriteFile(std::string_view path, FileBlob blob) override;
  Result<FileBlob> ReadFile(std::string_view path) override;
  Result<FileInfo> Stat(std::string_view path) override;
  Status RemoveFile(std::string_view path) override;
  Status Mkdir(std::string_view path) override;
  Status Rmdir(std::string_view path) override;
  Status Move(std::string_view from, std::string_view to) override;
  Result<std::vector<DirEntry>> List(std::string_view path,
                                     ListDetail detail) override;
  Status Copy(std::string_view from, std::string_view to) override;

 private:
  std::string Key(std::string_view path) const;
  static bool IsDirMarker(const ObjectValue& v);
  /// Cluster scan returning the paths under `dir` (O(N)).
  std::vector<std::pair<std::string, bool>> ScanSubtree(
      const std::string& dir, OpMeter& meter);
  Status RequireDir(const std::string& path, OpMeter& meter);

  ObjectCloud& cloud_;
};

}  // namespace h2
