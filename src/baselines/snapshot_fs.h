// Compressed Snapshot baseline -- Cumulus (Table 1 row 1, Fig. 1a).
//
// Cumulus backs a filesystem up to an object cloud as *segments* (TAR-like
// packs of file content) plus a *metadata log*: the directory hierarchy
// flattened to a linear list of entries.  The representation is superb for
// whole-filesystem backup/restore and terrible as a live filesystem:
//
//   * locating one file means scanning the metadata log -- O(N) GETs/CPU;
//   * LIST and COPY scan the log the same way -- O(N);
//   * RMDIR and MOVE invalidate log entries wholesale, forcing a rewrite
//     of the log -- O(N);
//   * only appends (WRITE of a new file, MKDIR) are cheap -- O(1) amortized,
//     touching the log's tail chunk.
//
// The log is materialized as chunk objects ("cum:meta:<i>", 1024 entries
// each) and content as rotating segment objects ("cum:seg:<k>"), so the
// storage-side object counts and byte volumes are real; an in-memory
// mirror answers queries *after* the faithful scan/rewrite costs have been
// charged.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/object_cloud.h"
#include "fs/filesystem.h"

namespace h2 {

class SnapshotFs final : public FileSystem {
 public:
  explicit SnapshotFs(ObjectCloud& cloud);

  std::string_view system_name() const override { return "Cumulus"; }

  Status WriteFile(std::string_view path, FileBlob blob) override;
  Result<FileBlob> ReadFile(std::string_view path) override;
  Result<FileInfo> Stat(std::string_view path) override;
  Status RemoveFile(std::string_view path) override;
  Status Mkdir(std::string_view path) override;
  Status Rmdir(std::string_view path) override;
  Status Move(std::string_view from, std::string_view to) override;
  Result<std::vector<DirEntry>> List(std::string_view path,
                                     ListDetail detail) override;
  Status Copy(std::string_view from, std::string_view to) override;

  std::size_t log_entry_count() const { return state_.size(); }
  std::size_t chunk_count() const { return chunk_dirty_.size(); }

 private:
  struct Entry {
    EntryKind kind = EntryKind::kFile;
    std::uint64_t size = 0;
    VirtualNanos created = 0;
    VirtualNanos modified = 0;
    std::uint32_t segment = 0;  // content segment (files)
    std::string payload;        // sample payload (in-memory mirror)
  };

  // -- cost charging against the real log/segment objects --
  Status ChargeLogScan(OpMeter& meter);
  Status RewriteLog(OpMeter& meter);
  Status AppendToLog(OpMeter& meter);

  Status PutChunk(std::size_t index, OpMeter& meter);
  std::size_t ChunksNeeded() const;

  Status RequireDir(const std::string& path, OpMeter& meter);
  Status WriteContentToSegment(const Entry& entry, OpMeter& meter);

  ObjectCloud& cloud_;
  // The "current snapshot": latest state per path, sorted so subtree
  // ranges are contiguous (like the flattened metadata log).
  std::map<std::string, Entry> state_;
  std::vector<bool> chunk_dirty_;  // chunk objects currently in the cloud
  std::uint32_t current_segment_ = 0;
  std::uint64_t segment_bytes_ = 0;
};

}  // namespace h2
