// The index-server baseline family (Table 1 rows 5-8).
//
// One configurable implementation covers four data structures that share
// a "namespace on metadata servers, content in the object cloud" split:
//
//   * Single Index Server (GFS/HDFS namenode): one metadata server; every
//     operation is one RPC; scalability limited by that server.
//   * Static Partition (AFS): the namespace is split by top-level
//     directory across k servers with a fixed mapping; operations that
//     cross partitions must physically transfer file content.
//   * Dynamic Partition (Ceph/PanFS, and -- per the paper's §5.3
//     inference -- Dropbox): directory subtrees are (re)assigned to
//     servers by load; resolution pays an extra RPC per partition
//     crossing, structural operations stay O(1).
//   * DP on Shared Disk (BlueSky/xFS): DP whose metadata mutations must
//     synchronously commit to shared storage (strong consistency),
//     charging a durable-commit penalty per mutation.
//
// The Dropbox profile additionally charges the measured service-stack
// overhead per metadata operation (cluster/latency.h, DropboxWan).
//
// Contents of removed subtrees are reclaimed lazily (RunLazyCleanup),
// charged to a maintenance meter -- the same asynchrony H2Cloud uses --
// which is what makes RMDIR/MOVE O(1) in Table 1.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "baselines/common/tree_index.h"
#include "cluster/object_cloud.h"
#include "fs/filesystem.h"

namespace h2 {

struct IndexFsOptions {
  enum class Partitioning { kSingle, kStatic, kDynamic };

  Partitioning partitioning = Partitioning::kDynamic;
  int server_count = 4;
  /// Dynamic: dentries a server may hold before new sub-directories are
  /// split off to the least-loaded server.
  std::size_t split_threshold = 4096;
  /// DP-on-shared-disk: charge a durable commit per metadata mutation.
  bool shared_disk = false;
  /// Dropbox: charge the latency profile's service overhead per op.
  bool service_overhead = false;
  std::string key_prefix = "dp:";
  std::string display_name = "DP";

  static IndexFsOptions SingleIndex();
  static IndexFsOptions StaticPartition(int servers = 4);
  static IndexFsOptions DynamicPartition(int servers = 4);
  static IndexFsOptions DpSharedDisk(int servers = 4);
  /// Use together with a cloud built on LatencyProfile::DropboxWan().
  static IndexFsOptions Dropbox(int servers = 8);
};

class IndexServerFs final : public FileSystem {
 public:
  IndexServerFs(ObjectCloud& cloud, IndexFsOptions options);

  std::string_view system_name() const override {
    return options_.display_name;
  }

  Status WriteFile(std::string_view path, FileBlob blob) override;
  Result<FileBlob> ReadFile(std::string_view path) override;
  Result<FileInfo> Stat(std::string_view path) override;
  Status RemoveFile(std::string_view path) override;
  Status Mkdir(std::string_view path) override;
  Status Rmdir(std::string_view path) override;
  Status Move(std::string_view from, std::string_view to) override;
  Result<std::vector<DirEntry>> List(std::string_view path,
                                     ListDetail detail) override;
  Status Copy(std::string_view from, std::string_view to) override;

  // --- maintenance & introspection ----------------------------------------
  /// Deletes content objects of removed subtrees; returns objects freed.
  std::size_t RunLazyCleanup(std::size_t max_objects = ~std::size_t{0});
  bool MaintenanceIdle() const { return cleanup_.empty(); }
  OpCost maintenance_cost() const { return maintenance_meter_.cost(); }
  /// Dentries per metadata server (load-balance experiments).
  std::vector<std::size_t> ServerLoads() const { return server_load_; }
  /// Partition crossings during the last resolution (tests).
  std::size_t last_crossings() const { return last_crossings_; }

 private:
  // Cost charging.
  void ChargeServiceOverhead(OpMeter& meter);
  void ChargeMetadataRpc(OpMeter& meter, std::size_t levels,
                         std::size_t crossings, bool mutation);

  Result<IndexNode*> Resolve(std::string_view normalized, OpMeter& meter,
                             bool mutation);
  Result<IndexNode*> ResolveParent(std::string_view normalized,
                                   OpMeter& meter, bool mutation);
  std::string ContentKey(std::uint64_t file_id) const;
  std::uint32_t PickServerForNewDir(const IndexNode& parent,
                                    std::string_view new_name);
  void AccountCreate(const IndexNode& node);
  void AccountRemoveSubtree(const IndexNode* node);
  Status TransferSubtreeContent(IndexNode* node, OpMeter& meter);

  ObjectCloud& cloud_;
  IndexFsOptions options_;
  TreeIndex tree_;
  std::vector<std::size_t> server_load_;
  std::uint64_t next_file_id_ = 1;
  std::deque<std::unique_ptr<IndexNode>> cleanup_;
  OpMeter maintenance_meter_;
  std::size_t last_crossings_ = 0;
};

}  // namespace h2
