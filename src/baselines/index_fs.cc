#include "baselines/index_fs.h"

#include <algorithm>

#include "fs/path.h"
#include "hash/fast_hash.h"

namespace h2 {
namespace {

// In-memory tree-walk cost per level on a metadata server.
constexpr VirtualNanos kPerLevelCpu = FromMillis(0.02);
// Per-entry cost of a detailed LIST (metadata row fetch + serialization).
constexpr VirtualNanos kPerChildDetail = FromMillis(0.25);

}  // namespace

IndexFsOptions IndexFsOptions::SingleIndex() {
  IndexFsOptions o;
  o.partitioning = Partitioning::kSingle;
  o.server_count = 1;
  o.key_prefix = "gfs:";
  o.display_name = "SingleIndex";
  return o;
}

IndexFsOptions IndexFsOptions::StaticPartition(int servers) {
  IndexFsOptions o;
  o.partitioning = Partitioning::kStatic;
  o.server_count = servers;
  o.key_prefix = "afs:";
  o.display_name = "StaticPartition";
  return o;
}

IndexFsOptions IndexFsOptions::DynamicPartition(int servers) {
  IndexFsOptions o;
  o.partitioning = Partitioning::kDynamic;
  o.server_count = servers;
  o.key_prefix = "dp:";
  o.display_name = "DP";
  return o;
}

IndexFsOptions IndexFsOptions::DpSharedDisk(int servers) {
  IndexFsOptions o = DynamicPartition(servers);
  o.shared_disk = true;
  o.key_prefix = "dpsd:";
  o.display_name = "DPSharedDisk";
  return o;
}

IndexFsOptions IndexFsOptions::Dropbox(int servers) {
  IndexFsOptions o = DynamicPartition(servers);
  o.service_overhead = true;
  o.key_prefix = "dbx:";
  o.display_name = "Dropbox";
  return o;
}

IndexServerFs::IndexServerFs(ObjectCloud& cloud, IndexFsOptions options)
    : cloud_(cloud), options_(std::move(options)) {
  server_load_.assign(static_cast<std::size_t>(options_.server_count), 0);
  server_load_[0] = 1;  // the root dentry
}

void IndexServerFs::ChargeServiceOverhead(OpMeter& meter) {
  if (!options_.service_overhead) return;
  meter.Charge(
      cloud_.latency().Jitter(cloud_.latency().profile().service_overhead));
}

void IndexServerFs::ChargeMetadataRpc(OpMeter& meter, std::size_t levels,
                                      std::size_t crossings, bool mutation) {
  const LatencyProfile& p = cloud_.latency().profile();
  // One RPC to the entry server plus one per partition crossing.
  VirtualNanos cost =
      static_cast<VirtualNanos>(1 + crossings) * (2 * p.lan_hop + p.index_cpu);
  cost += static_cast<VirtualNanos>(levels) * kPerLevelCpu;
  if (mutation && options_.shared_disk) {
    // Strong consistency across the shared disks (§2, DP on Shared Disk).
    cost += p.durable_commit;
  }
  meter.Charge(cloud_.latency().Jitter(cost));
  meter.CountIndexRpc();
}

Result<IndexNode*> IndexServerFs::Resolve(std::string_view normalized,
                                          OpMeter& meter, bool mutation) {
  std::size_t levels = 0;
  Result<IndexNode*> node = tree_.Find(normalized, &levels);
  // Count partition crossings along the successful prefix of the walk.
  std::size_t crossings = 0;
  if (node.ok()) {
    const IndexNode* cur = *node;
    while (cur->parent != nullptr) {
      if (cur->server != cur->parent->server) ++crossings;
      cur = cur->parent;
    }
  }
  last_crossings_ = crossings;
  ChargeMetadataRpc(meter, levels, crossings, mutation);
  meter.CountScanned(levels);  // work units: tree levels walked
  return node;
}

Result<IndexNode*> IndexServerFs::ResolveParent(std::string_view normalized,
                                                OpMeter& meter,
                                                bool mutation) {
  H2_ASSIGN_OR_RETURN(IndexNode * node,
                      Resolve(ParentPath(normalized), meter, mutation));
  if (!node->is_dir()) {
    return Status::NotADirectory("parent is not a directory");
  }
  return node;
}

std::string IndexServerFs::ContentKey(std::uint64_t file_id) const {
  return options_.key_prefix + "file:" + std::to_string(file_id);
}

std::uint32_t IndexServerFs::PickServerForNewDir(const IndexNode& parent,
                                                 std::string_view new_name) {
  (void)new_name;
  switch (options_.partitioning) {
    case IndexFsOptions::Partitioning::kSingle:
      return 0;
    case IndexFsOptions::Partitioning::kStatic: {
      // Fixed assignment by top-level directory name: never rebalanced.
      // A directory created directly under the root *is* the top level,
      // so it hashes its own (new) name.
      if (parent.parent == nullptr) {
        return static_cast<std::uint32_t>(Fnv1a64(new_name) %
                                          server_load_.size());
      }
      const IndexNode* top = &parent;
      while (top->parent != nullptr && top->parent->parent != nullptr) {
        top = top->parent;
      }
      return static_cast<std::uint32_t>(Fnv1a64(top->name) %
                                        server_load_.size());
    }
    case IndexFsOptions::Partitioning::kDynamic: {
      // Split: once the parent's server is over threshold, place new
      // sub-directories on the least-loaded server.
      if (server_load_[parent.server] <= options_.split_threshold) {
        return parent.server;
      }
      const auto it =
          std::min_element(server_load_.begin(), server_load_.end());
      return static_cast<std::uint32_t>(it - server_load_.begin());
    }
  }
  return 0;
}

void IndexServerFs::AccountCreate(const IndexNode& node) {
  server_load_[node.server] += 1;
}

void IndexServerFs::AccountRemoveSubtree(const IndexNode* node) {
  TreeIndex::Visit(node, [this](const IndexNode* n) {
    auto& load = server_load_[n->server];
    if (load > 0) --load;
  });
}

Status IndexServerFs::WriteFile(std::string_view path, FileBlob blob) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot write to /");
  ChargeServiceOverhead(meter);
  H2_ASSIGN_OR_RETURN(IndexNode * parent, ResolveParent(p, meter, true));
  const std::string_view name = BaseName(p);

  IndexNode* node = nullptr;
  auto it = parent->children.find(name);
  if (it != parent->children.end()) {
    node = it->second.get();
    if (node->is_dir()) {
      return Status::IsADirectory("is a directory: " + p);
    }
  } else {
    H2_ASSIGN_OR_RETURN(
        node, tree_.CreateChild(parent, name, EntryKind::kFile,
                                cloud_.clock().Tick()));
    node->server = parent->server;
    node->file_id = next_file_id_++;
    AccountCreate(*node);
  }
  node->size = blob.logical_size;
  node->modified = cloud_.clock().Tick();

  ObjectValue value;
  value.payload = std::move(blob.data);
  value.logical_size = node->size;
  return cloud_.Put(ContentKey(node->file_id), std::move(value), meter);
}

Result<FileBlob> IndexServerFs::ReadFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  ChargeServiceOverhead(meter);
  H2_ASSIGN_OR_RETURN(IndexNode * node, Resolve(p, meter, false));
  if (node->is_dir()) return Status::IsADirectory("is a directory: " + p);
  H2_ASSIGN_OR_RETURN(ObjectValue obj,
                      cloud_.Get(ContentKey(node->file_id), meter));
  return FileBlob{std::move(obj.payload), obj.logical_size};
}

Result<FileInfo> IndexServerFs::Stat(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  ChargeServiceOverhead(meter);
  H2_ASSIGN_OR_RETURN(IndexNode * node, Resolve(p, meter, false));
  FileInfo info;
  info.kind = node->kind;
  info.size = node->size;
  info.created = node->created;
  info.modified = node->modified;
  return info;
}

Status IndexServerFs::RemoveFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  ChargeServiceOverhead(meter);
  H2_ASSIGN_OR_RETURN(IndexNode * node, Resolve(p, meter, true));
  if (node->is_dir()) return Status::IsADirectory("is a directory: " + p);
  H2_RETURN_IF_ERROR(cloud_.Delete(ContentKey(node->file_id), meter));
  AccountRemoveSubtree(node);
  return tree_.Remove(node);
}

Status IndexServerFs::Mkdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::AlreadyExists("/");
  ChargeServiceOverhead(meter);
  H2_ASSIGN_OR_RETURN(IndexNode * parent, ResolveParent(p, meter, true));
  H2_ASSIGN_OR_RETURN(
      IndexNode * node,
      tree_.CreateChild(parent, BaseName(p), EntryKind::kDirectory,
                        cloud_.clock().Tick()));
  node->server = PickServerForNewDir(*parent, BaseName(p));
  AccountCreate(*node);
  return Status::Ok();
}

Status IndexServerFs::Rmdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::InvalidArgument("cannot remove /");
  ChargeServiceOverhead(meter);
  H2_ASSIGN_OR_RETURN(IndexNode * node, Resolve(p, meter, true));
  if (!node->is_dir()) return Status::NotADirectory("not a directory: " + p);
  AccountRemoveSubtree(node);
  std::unique_ptr<IndexNode> detached = tree_.Detach(node);
  if (detached != nullptr) {
    cleanup_.push_back(std::move(detached));  // content reclaimed lazily
  }
  return Status::Ok();
}

Status IndexServerFs::TransferSubtreeContent(IndexNode* node,
                                             OpMeter& meter) {
  // Static partitioning's penalty: moving across partitions physically
  // re-writes every file's content to the destination server's store --
  // one pipelined batch of COPYs, then one of DELETEs.
  std::vector<BatchOp> copies;
  std::vector<BatchOp> deletes;
  TreeIndex::Visit(node, [&](IndexNode* n) {
    if (n->is_dir()) return;
    const std::string old_key = ContentKey(n->file_id);
    n->file_id = next_file_id_++;
    copies.push_back(BatchOp::Copy(old_key, ContentKey(n->file_id)));
    deletes.push_back(BatchOp::Delete(old_key));
  });
  const std::vector<BatchResult> copied =
      cloud_.ExecuteBatch(std::move(copies), meter);
  for (const BatchResult& r : copied) H2_RETURN_IF_ERROR(r.status);
  const std::vector<BatchResult> dropped =
      cloud_.ExecuteBatch(std::move(deletes), meter);
  for (const BatchResult& r : dropped) H2_RETURN_IF_ERROR(r.status);
  return Status::Ok();
}

Status IndexServerFs::Move(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot move /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t) return Status::Ok();
  if (IsWithin(t, f)) {
    return Status::InvalidArgument("cannot move a directory into itself");
  }
  ChargeServiceOverhead(meter);
  H2_ASSIGN_OR_RETURN(IndexNode * node, Resolve(f, meter, true));
  H2_ASSIGN_OR_RETURN(IndexNode * to_parent, ResolveParent(t, meter, true));
  const std::string_view to_name = BaseName(t);
  if (to_parent->children.contains(std::string(to_name))) {
    return Status::AlreadyExists("destination exists: " + t);
  }

  const std::uint32_t src_server = node->server;
  std::unique_ptr<IndexNode> owned = tree_.Detach(node);
  Status attached = tree_.Attach(to_parent, std::move(owned), to_name);
  if (!attached.ok()) return attached;

  if (options_.partitioning == IndexFsOptions::Partitioning::kStatic &&
      src_server != to_parent->server) {
    // Cross-partition move: rehome metadata and transfer content.
    TreeIndex::Visit(node, [&](IndexNode* n) {
      server_load_[n->server] -= 1;
      n->server = to_parent->server;
      server_load_[n->server] += 1;
    });
    return TransferSubtreeContent(node, meter);
  }
  return Status::Ok();
}

Result<std::vector<DirEntry>> IndexServerFs::List(std::string_view path,
                                                  ListDetail detail) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  ChargeServiceOverhead(meter);
  H2_ASSIGN_OR_RETURN(IndexNode * node, Resolve(p, meter, false));
  if (!node->is_dir()) return Status::NotADirectory("not a directory: " + p);

  std::vector<DirEntry> entries;
  entries.reserve(node->children.size());
  std::uint64_t bytes = 0;
  // Detailed metadata rows are independent fetches the index server
  // pipelines: priced as a wave-scheduled batch of CPU lanes (no disk
  // queue -- the rows live in the server's cache/B-tree, not behind one
  // spindle).
  std::vector<OpMeter::BatchLane> detail_lanes;
  for (const auto& [name, child] : node->children) {
    DirEntry e;
    e.name = name;
    e.kind = child->kind;
    bytes += name.size() + 32;
    if (detail == ListDetail::kDetailed) {
      e.size = child->size;
      e.modified = child->modified;
      detail_lanes.push_back({kPerChildDetail, OpMeter::kNoQueue});
      meter.CountScanned(1);  // work unit: one metadata row fetched
    }
    entries.push_back(std::move(e));
  }
  if (!detail_lanes.empty()) {
    meter.ChargeCriticalPath(detail_lanes, cloud_.EffectiveConcurrency());
  }
  meter.Charge(cloud_.latency().ByteCost(bytes));
  return entries;
}

Status IndexServerFs::Copy(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot copy /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t || IsWithin(t, f)) {
    return Status::InvalidArgument("cannot copy a directory into itself");
  }
  ChargeServiceOverhead(meter);
  H2_ASSIGN_OR_RETURN(IndexNode * src, Resolve(f, meter, true));
  H2_ASSIGN_OR_RETURN(IndexNode * to_parent, ResolveParent(t, meter, true));
  const std::string_view to_name = BaseName(t);
  if (to_parent->children.contains(std::string(to_name))) {
    return Status::AlreadyExists("destination exists: " + t);
  }

  // Deep-copy metadata in memory, collecting the content duplications,
  // then issue them as one pipelined batch of server-side COPYs (O(n)
  // with a wave-priced constant).
  std::vector<BatchOp> copies;
  const std::function<Result<IndexNode*>(IndexNode*, const IndexNode*,
                                         std::string_view)>
      clone = [&](IndexNode* dst_parent, const IndexNode* src_node,
                  std::string_view name) -> Result<IndexNode*> {
    H2_ASSIGN_OR_RETURN(IndexNode * dst,
                        tree_.CreateChild(dst_parent, name, src_node->kind,
                                          cloud_.clock().Tick()));
    dst->server = dst_parent->server;
    dst->size = src_node->size;
    AccountCreate(*dst);
    if (!src_node->is_dir()) {
      dst->file_id = next_file_id_++;
      copies.push_back(BatchOp::Copy(ContentKey(src_node->file_id),
                                     ContentKey(dst->file_id)));
      return dst;
    }
    for (const auto& [child_name, child] : src_node->children) {
      H2_ASSIGN_OR_RETURN(IndexNode * ignored,
                          clone(dst, child.get(), child_name));
      (void)ignored;
    }
    return dst;
  };
  H2_ASSIGN_OR_RETURN(IndexNode * ignored, clone(to_parent, src, to_name));
  (void)ignored;
  const std::vector<BatchResult> copied =
      cloud_.ExecuteBatch(std::move(copies), meter);
  for (const BatchResult& r : copied) H2_RETURN_IF_ERROR(r.status);
  return Status::Ok();
}

std::size_t IndexServerFs::RunLazyCleanup(std::size_t max_objects) {
  std::size_t deleted = 0;
  while (!cleanup_.empty() && deleted < max_objects) {
    std::unique_ptr<IndexNode> subtree = std::move(cleanup_.front());
    cleanup_.pop_front();
    std::vector<BatchOp> deletes;
    TreeIndex::Visit(subtree.get(), [&](IndexNode* n) {
      if (n->is_dir()) return;
      deletes.push_back(BatchOp::Delete(ContentKey(n->file_id)));
    });
    const std::vector<BatchResult> results =
        cloud_.ExecuteBatch(std::move(deletes), maintenance_meter_);
    for (const BatchResult& r : results) {
      if (r.ok()) ++deleted;
    }
  }
  return deleted;
}

}  // namespace h2
