#include "baselines/cas_fs.h"

#include "codec/formatter.h"
#include "fs/path.h"
#include "hash/md5.h"

namespace h2 {
namespace {

constexpr VirtualNanos kPerEntryHashCpu = FromMillis(0.002);

std::string ContentHash(const FileBlob& blob) {
  Md5 md5;
  md5.Update(blob.data);
  const std::uint64_t size = blob.logical_size;
  md5.Update(&size, sizeof(size));
  std::string hex;
  for (std::uint8_t b : md5.Finish()) {
    static constexpr char kHex[] = "0123456789abcdef";
    hex.push_back(kHex[b >> 4]);
    hex.push_back(kHex[b & 15]);
  }
  return hex;
}

}  // namespace

CasFs::CasFs(ObjectCloud& cloud) : cloud_(cloud) {
  OpMeter boot;
  (void)RebuildIndex(boot);  // publish the (empty) root pointer block
}

std::string CasFs::BlockKey(const std::string& hash) {
  return "cas:blk:" + hash;
}

std::string CasFs::HashSubtree(
    IndexNode* node, OpMeter& meter,
    std::vector<std::pair<std::string, std::string>>* new_blocks) {
  if (!node->is_dir()) return meta_[node].hash;
  // Serialize the pointer block: (name, kind, child hash, size) tuples.
  std::string payload;
  for (auto& [name, child] : node->children) {
    const std::string child_hash = HashSubtree(child.get(), meter, new_blocks);
    payload += MakeTupleLine(
        {name, child->is_dir() ? "D" : "F", child_hash,
         std::to_string(child->size), std::to_string(child->modified)});
    payload.push_back('\n');
    meter.Charge(kPerEntryHashCpu);
    meter.CountScanned(1);  // work unit: one entry re-hashed
  }
  const std::string hash = Md5::HexDigest(payload);
  NodeMeta& m = meta_[node];
  if (m.hash != hash) {
    new_blocks->emplace_back(hash, std::move(payload));
    m.hash = hash;
  }
  return m.hash;
}

Status CasFs::RebuildIndex(OpMeter& meter) {
  // The naive CAS re-derivation the paper charges O(N) for: every pointer
  // block in the tree is re-serialized and re-hashed; blocks whose hash
  // changed are written (content addressing dedups the rest).
  ++rebuilds_;
  std::vector<std::pair<std::string, std::string>> new_blocks;
  const std::string new_root = HashSubtree(tree_.root(), meter, &new_blocks);
  // Changed pointer blocks are independent writes: one pipelined batch.
  std::vector<BatchOp> puts;
  puts.reserve(new_blocks.size());
  for (auto& [hash, payload] : new_blocks) {
    ObjectValue value =
        ObjectValue::FromString(std::move(payload), cloud_.clock().Tick());
    value.metadata["kind"] = "ptrblock";
    puts.push_back(BatchOp::Put(BlockKey(hash), std::move(value)));
  }
  const std::vector<BatchResult> written =
      cloud_.ExecuteBatch(std::move(puts), meter);
  for (const BatchResult& r : written) H2_RETURN_IF_ERROR(r.status);
  if (new_root != root_hash_) {
    root_hash_ = new_root;
    ObjectValue root = ObjectValue::FromString(root_hash_,
                                               cloud_.clock().Tick());
    root.metadata["kind"] = "casroot";
    H2_RETURN_IF_ERROR(cloud_.Put("cas:root", std::move(root), meter));
  }
  return Status::Ok();
}

Result<IndexNode*> CasFs::WalkChargingBlockReads(std::string_view normalized,
                                                 OpMeter& meter) {
  // Path access descends pointer blocks from the root: one GET per level.
  IndexNode* node = tree_.root();
  for (auto component : PathComponents(normalized)) {
    if (!node->is_dir()) {
      return Status::NotADirectory("not a directory on path");
    }
    H2_ASSIGN_OR_RETURN(ObjectValue block,
                        cloud_.Get(BlockKey(meta_[node].hash), meter));
    (void)block;
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return Status::NotFound("no such entry: " + std::string(normalized));
    }
    node = it->second.get();
  }
  return node;
}

Status CasFs::WriteFile(std::string_view path, FileBlob blob) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot write to /");
  H2_ASSIGN_OR_RETURN(IndexNode * parent,
                      tree_.FindDir(ParentPath(p), nullptr));
  const std::string_view name = BaseName(p);

  IndexNode* node = nullptr;
  auto it = parent->children.find(name);
  if (it != parent->children.end()) {
    node = it->second.get();
    if (node->is_dir()) return Status::IsADirectory("is a directory: " + p);
    ReleaseContent(node, meter);
  } else {
    H2_ASSIGN_OR_RETURN(node,
                        tree_.CreateChild(parent, name, EntryKind::kFile,
                                          cloud_.clock().Tick()));
  }

  const std::string hash = ContentHash(blob);
  node->size = blob.logical_size;
  node->modified = cloud_.clock().Tick();
  meta_[node].hash = hash;
  if (content_refs_[hash]++ == 0) {
    ObjectValue value;
    value.payload = std::move(blob.data);
    value.logical_size = blob.logical_size;
    value.metadata["kind"] = "content";
    H2_RETURN_IF_ERROR(cloud_.Put(BlockKey(hash), std::move(value), meter));
  }
  return RebuildIndex(meter);  // structural change: O(N)
}

Result<FileBlob> CasFs::ReadFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot read /");
  H2_ASSIGN_OR_RETURN(IndexNode * node, WalkChargingBlockReads(p, meter));
  if (node->is_dir()) return Status::IsADirectory("is a directory: " + p);
  H2_ASSIGN_OR_RETURN(ObjectValue obj,
                      cloud_.Get(BlockKey(meta_[node].hash), meter));
  return FileBlob{std::move(obj.payload), obj.logical_size};
}

Result<FileInfo> CasFs::Stat(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  FileInfo info;
  if (p == "/") {
    info.kind = EntryKind::kDirectory;
    return info;
  }
  H2_ASSIGN_OR_RETURN(IndexNode * node, WalkChargingBlockReads(p, meter));
  info.kind = node->kind;
  info.size = node->size;
  info.created = node->created;
  info.modified = node->modified;
  return info;
}

Result<FileInfo> CasFs::StatByHash(const std::string& content_hash) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(ObjectHead head,
                      cloud_.Head(BlockKey(content_hash), meter));
  FileInfo info;
  info.kind = EntryKind::kFile;
  info.size = head.logical_size;
  info.created = head.created;
  info.modified = head.modified;
  return info;
}

Result<std::string> CasFs::HashOf(std::string_view path) {
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  H2_ASSIGN_OR_RETURN(IndexNode * node, tree_.Find(p, nullptr));
  return meta_[node].hash;
}

void CasFs::ReleaseContent(IndexNode* subtree, OpMeter& meter) {
  TreeIndex::Visit(subtree, [&](IndexNode* n) {
    if (n->is_dir()) return;
    const std::string& hash = meta_[n].hash;
    auto it = content_refs_.find(hash);
    if (it != content_refs_.end() && --it->second == 0) {
      (void)cloud_.Delete(BlockKey(hash), meter);
      content_refs_.erase(it);
    }
  });
}

Status CasFs::RemoveFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot remove /");
  H2_ASSIGN_OR_RETURN(IndexNode * node, tree_.Find(p, nullptr));
  if (node->is_dir()) return Status::IsADirectory("is a directory: " + p);
  ReleaseContent(node, meter);
  meta_.erase(node);
  H2_RETURN_IF_ERROR(tree_.Remove(node));
  return RebuildIndex(meter);
}

Status CasFs::Mkdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::AlreadyExists("/");
  H2_ASSIGN_OR_RETURN(IndexNode * parent,
                      tree_.FindDir(ParentPath(p), nullptr));
  H2_ASSIGN_OR_RETURN(IndexNode * node,
                      tree_.CreateChild(parent, BaseName(p),
                                        EntryKind::kDirectory,
                                        cloud_.clock().Tick()));
  (void)node;
  return RebuildIndex(meter);  // "even simple MKDIR" is O(N) in CAS (§2)
}

Status CasFs::Rmdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::InvalidArgument("cannot remove /");
  H2_ASSIGN_OR_RETURN(IndexNode * node, tree_.Find(p, nullptr));
  if (!node->is_dir()) return Status::NotADirectory("not a directory: " + p);
  ReleaseContent(node, meter);
  TreeIndex::Visit(node, [&](IndexNode* n) { meta_.erase(n); });
  H2_RETURN_IF_ERROR(tree_.Remove(node));
  return RebuildIndex(meter);
}

Status CasFs::Move(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot move /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t) return Status::Ok();
  if (IsWithin(t, f)) {
    return Status::InvalidArgument("cannot move a directory into itself");
  }
  H2_ASSIGN_OR_RETURN(IndexNode * node, tree_.Find(f, nullptr));
  H2_ASSIGN_OR_RETURN(IndexNode * to_parent,
                      tree_.FindDir(ParentPath(t), nullptr));
  const std::string_view to_name = BaseName(t);
  if (to_parent->children.contains(std::string(to_name))) {
    return Status::AlreadyExists("destination exists: " + t);
  }
  std::unique_ptr<IndexNode> owned = tree_.Detach(node);
  H2_RETURN_IF_ERROR(tree_.Attach(to_parent, std::move(owned), to_name));
  return RebuildIndex(meter);  // content untouched, index rebuilt
}

Result<std::vector<DirEntry>> CasFs::List(std::string_view path,
                                          ListDetail detail) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  H2_ASSIGN_OR_RETURN(IndexNode * node, WalkChargingBlockReads(p, meter));
  if (!node->is_dir()) return Status::NotADirectory("not a directory: " + p);
  // One more GET: the directory's own pointer block, which carries the
  // (name, kind, hash, size) tuples -- O(m) with per-entry CPU.
  H2_ASSIGN_OR_RETURN(ObjectValue block,
                      cloud_.Get(BlockKey(meta_[node].hash), meter));
  (void)block;
  std::vector<DirEntry> entries;
  // Per-entry decode is independent CPU work the client pipelines:
  // wave-priced lanes with no disk queue behind them.
  std::vector<OpMeter::BatchLane> entry_lanes;
  entry_lanes.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    entry_lanes.push_back({kPerEntryHashCpu, OpMeter::kNoQueue});
    meter.CountScanned(1);  // work unit: one pointer-block entry read
    DirEntry e;
    e.name = name;
    e.kind = child->kind;
    if (detail == ListDetail::kDetailed) {
      e.size = child->size;
      e.modified = child->modified;
    }
    entries.push_back(std::move(e));
  }
  if (!entry_lanes.empty()) {
    meter.ChargeCriticalPath(entry_lanes, cloud_.EffectiveConcurrency());
  }
  return entries;
}

Status CasFs::Copy(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot copy /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t || IsWithin(t, f)) {
    return Status::InvalidArgument("cannot copy a directory into itself");
  }
  H2_ASSIGN_OR_RETURN(IndexNode * src, tree_.Find(f, nullptr));
  H2_ASSIGN_OR_RETURN(IndexNode * to_parent,
                      tree_.FindDir(ParentPath(t), nullptr));
  const std::string_view to_name = BaseName(t);
  if (to_parent->children.contains(std::string(to_name))) {
    return Status::AlreadyExists("destination exists: " + t);
  }

  // Content blocks are shared (that is CAS's strength: no data copies);
  // only the metadata tree is cloned, then the index rebuilt.
  const std::function<Result<IndexNode*>(IndexNode*, IndexNode*,
                                         std::string_view)>
      clone = [&](IndexNode* dst_parent, IndexNode* src_node,
                  std::string_view name) -> Result<IndexNode*> {
    H2_ASSIGN_OR_RETURN(IndexNode * dst,
                        tree_.CreateChild(dst_parent, name, src_node->kind,
                                          cloud_.clock().Tick()));
    dst->size = src_node->size;
    if (!src_node->is_dir()) {
      meta_[dst].hash = meta_[src_node].hash;
      content_refs_[meta_[dst].hash] += 1;  // dedup: share the block
    }
    for (auto& [child_name, child] : src_node->children) {
      H2_ASSIGN_OR_RETURN(IndexNode * ignored,
                          clone(dst, child.get(), child_name));
      (void)ignored;
    }
    return dst;
  };
  H2_ASSIGN_OR_RETURN(IndexNode * ignored, clone(to_parent, src, to_name));
  (void)ignored;
  return RebuildIndex(meter);
}

}  // namespace h2
