// OpenStack Swift pseudo-filesystem baseline: Consistent Hash with a
// File-Path DB (Table 1 row 4; the paper's primary comparison system).
//
// Files live in the object cloud at hash(full path) -- the "pseudo
// filesystem" of Fig. 1b -- and every file additionally has a row in a
// per-account SQL-style file-path database (SQLite/MySQL in Swift), kept
// sorted by path so LIST and COPY can binary-search instead of scanning
// the cluster (Fig. 3).  This puts Swift's complexities at:
//
//   file access O(1); MKDIR O(1);
//   RMDIR/MOVE  O(n)      -- every file's full path changes, so each one
//                            must be copied to its new key and deleted;
//   LIST        O(m logN) -- one B-tree descent per listed child;
//   COPY        O(n+logN) -- per-file server-side copies + bulk DB insert.
//
// The DB is modeled as a sorted map whose accesses charge B-tree page
// costs; it lives on a single storage node, which is the scalability
// bottleneck the paper criticizes ("Limited" in Table 1).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cluster/object_cloud.h"
#include "fs/filesystem.h"

namespace h2 {

/// The file-path database: rows keyed by full path, sorted (B-tree).
/// Cost accounting is done by the owner via the page-count helpers.
class PathDb {
 public:
  struct Row {
    EntryKind kind = EntryKind::kFile;
    std::uint64_t size = 0;
    VirtualNanos created = 0;
    VirtualNanos modified = 0;
  };

  /// B-tree descent depth for the current table size.
  std::uint64_t SeekPages() const;

  bool Contains(const std::string& path) const;
  const Row* Find(const std::string& path) const;
  void Upsert(const std::string& path, Row row);
  bool Erase(const std::string& path);

  /// Visits rows in ["prefix/", "prefix0") -- i.e. everything beneath the
  /// directory -- in path order.  Returns rows visited.
  std::size_t VisitSubtree(
      const std::string& dir,
      const std::function<void(const std::string&, const Row&)>& fn) const;
  /// Visits only direct children of `dir`.  Returns rows visited.
  std::size_t VisitChildren(
      const std::string& dir,
      const std::function<void(const std::string&, const Row&)>& fn) const;

  std::size_t size() const { return rows_.size(); }

 private:
  std::map<std::string, Row> rows_;
};

class SwiftFs final : public FileSystem {
 public:
  explicit SwiftFs(ObjectCloud& cloud);

  std::string_view system_name() const override { return "Swift"; }

  Status WriteFile(std::string_view path, FileBlob blob) override;
  Result<FileBlob> ReadFile(std::string_view path) override;
  Result<FileInfo> Stat(std::string_view path) override;
  Status RemoveFile(std::string_view path) override;
  Status Mkdir(std::string_view path) override;
  Status Rmdir(std::string_view path) override;
  Status Move(std::string_view from, std::string_view to) override;
  Result<std::vector<DirEntry>> List(std::string_view path,
                                     ListDetail detail) override;
  Status Copy(std::string_view from, std::string_view to) override;

  const PathDb& db() const { return db_; }

 private:
  std::string Key(std::string_view path) const;
  void ChargeDbPages(OpMeter& meter, std::uint64_t pages);
  /// Directory existence check via the DB (root always exists).
  Status RequireDir(const std::string& path, OpMeter& meter);

  ObjectCloud& cloud_;
  PathDb db_;
};

}  // namespace h2
