#include "baselines/swift_fs.h"

#include <bit>

#include "fs/path.h"

namespace h2 {

// ---------------------------------------------------------------------------
// PathDb
// ---------------------------------------------------------------------------

std::uint64_t PathDb::SeekPages() const {
  const std::size_t n = rows_.size();
  if (n < 2) return 1;
  return std::bit_width(n);  // ~log2(N) B-tree page touches
}

bool PathDb::Contains(const std::string& path) const {
  return rows_.contains(path);
}

const PathDb::Row* PathDb::Find(const std::string& path) const {
  auto it = rows_.find(path);
  return it == rows_.end() ? nullptr : &it->second;
}

void PathDb::Upsert(const std::string& path, Row row) {
  rows_[path] = row;
}

bool PathDb::Erase(const std::string& path) {
  return rows_.erase(path) > 0;
}

std::size_t PathDb::VisitSubtree(
    const std::string& dir,
    const std::function<void(const std::string&, const Row&)>& fn) const {
  const std::string lo = dir == "/" ? "/" : dir + "/";
  std::size_t visited = 0;
  for (auto it = rows_.lower_bound(lo); it != rows_.end(); ++it) {
    if (it->first.compare(0, lo.size(), lo) != 0) break;
    fn(it->first, it->second);
    ++visited;
  }
  return visited;
}

std::size_t PathDb::VisitChildren(
    const std::string& dir,
    const std::function<void(const std::string&, const Row&)>& fn) const {
  const std::string lo = dir == "/" ? "/" : dir + "/";
  std::size_t visited = 0;
  for (auto it = rows_.lower_bound(lo); it != rows_.end();) {
    if (it->first.compare(0, lo.size(), lo) != 0) break;
    if (it->first.find('/', lo.size()) == std::string::npos) {
      // Direct child.
      fn(it->first, it->second);
      ++visited;
      ++it;
    } else {
      // Deeper entry: skip the whole sub-directory range in one seek,
      // the way a B-tree range cursor would.
      const std::size_t slash = it->first.find('/', lo.size());
      std::string next_prefix = it->first.substr(0, slash);
      next_prefix.push_back('0');  // '/'+1: first key after the subtree
      it = rows_.lower_bound(next_prefix);
      ++visited;
    }
  }
  return visited;
}

// ---------------------------------------------------------------------------
// SwiftFs
// ---------------------------------------------------------------------------

SwiftFs::SwiftFs(ObjectCloud& cloud) : cloud_(cloud) {}

std::string SwiftFs::Key(std::string_view path) const {
  // hash(full file path) locates the object (Fig. 1b); the cloud hashes
  // the key internally, so the key is just the decorated path.
  std::string key = "swift:";
  key += path;
  return key;
}

void SwiftFs::ChargeDbPages(OpMeter& meter, std::uint64_t pages) {
  meter.CountDbPages(pages);
  // The DB lives on one node: page accesses are sequential.
  meter.Charge(static_cast<VirtualNanos>(pages) *
               cloud_.latency().profile().db_page);
}

Status SwiftFs::RequireDir(const std::string& path, OpMeter& meter) {
  if (path == "/") return Status::Ok();
  ChargeDbPages(meter, db_.SeekPages());
  const PathDb::Row* row = db_.Find(path);
  if (row == nullptr) return Status::NotFound("no such directory: " + path);
  if (row->kind != EntryKind::kDirectory) {
    return Status::NotADirectory("not a directory: " + path);
  }
  return Status::Ok();
}

Status SwiftFs::WriteFile(std::string_view path, FileBlob blob) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot write to /");
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(p), meter));

  ChargeDbPages(meter, db_.SeekPages());
  const PathDb::Row* existing = db_.Find(p);
  if (existing != nullptr && existing->kind == EntryKind::kDirectory) {
    return Status::IsADirectory("is a directory: " + p);
  }

  const VirtualNanos now = cloud_.clock().Tick();
  ObjectValue value;
  value.payload = std::move(blob.data);
  value.logical_size = blob.logical_size;
  H2_RETURN_IF_ERROR(cloud_.Put(Key(p), std::move(value), meter));

  PathDb::Row row;
  row.kind = EntryKind::kFile;
  row.size = blob.logical_size;
  row.created = existing != nullptr ? existing->created : now;
  row.modified = now;
  ChargeDbPages(meter, db_.SeekPages());
  db_.Upsert(p, row);
  return Status::Ok();
}

Result<FileBlob> SwiftFs::ReadFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot read /");
  const PathDb::Row* row = db_.Find(p);  // type check: one DB seek
  ChargeDbPages(meter, db_.SeekPages());
  if (row != nullptr && row->kind == EntryKind::kDirectory) {
    return Status::IsADirectory("is a directory: " + p);
  }
  H2_ASSIGN_OR_RETURN(ObjectValue obj, cloud_.Get(Key(p), meter));
  return FileBlob{std::move(obj.payload), obj.logical_size};
}

Result<FileInfo> SwiftFs::Stat(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") {
    FileInfo info;
    info.kind = EntryKind::kDirectory;
    return info;
  }
  // O(1): hash the full path, HEAD the object (file or directory marker).
  H2_ASSIGN_OR_RETURN(ObjectHead head, cloud_.Head(Key(p), meter));
  const PathDb::Row* row = db_.Find(p);
  FileInfo info;
  info.kind = row != nullptr ? row->kind : EntryKind::kFile;
  info.size = head.logical_size;
  info.created = head.created;
  info.modified = head.modified;
  return info;
}

Status SwiftFs::RemoveFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::IsADirectory("cannot remove /");
  ChargeDbPages(meter, db_.SeekPages());
  const PathDb::Row* row = db_.Find(p);
  if (row == nullptr) return Status::NotFound("no such file: " + p);
  if (row->kind == EntryKind::kDirectory) {
    return Status::IsADirectory("is a directory: " + p);
  }
  H2_RETURN_IF_ERROR(cloud_.Delete(Key(p), meter));
  ChargeDbPages(meter, db_.SeekPages());
  db_.Erase(p);
  return Status::Ok();
}

Status SwiftFs::Mkdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::AlreadyExists("/");
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(p), meter));
  ChargeDbPages(meter, db_.SeekPages());
  if (db_.Contains(p)) return Status::AlreadyExists("exists: " + p);

  // A zero-byte marker object plus a DB row -- Swift's pseudo-directory.
  const VirtualNanos now = cloud_.clock().Tick();
  ObjectValue marker = ObjectValue::FromString("", now);
  marker.metadata["kind"] = "dir";
  H2_RETURN_IF_ERROR(cloud_.Put(Key(p), std::move(marker), meter));
  PathDb::Row row;
  row.kind = EntryKind::kDirectory;
  row.created = row.modified = now;
  ChargeDbPages(meter, db_.SeekPages());
  db_.Upsert(p, row);
  return Status::Ok();
}

Status SwiftFs::Rmdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  if (p == "/") return Status::InvalidArgument("cannot remove /");
  H2_RETURN_IF_ERROR(RequireDir(p, meter));

  // Every entry beneath the directory is a separate flat object that must
  // be deleted individually -- O(n).
  std::vector<std::string> doomed;
  ChargeDbPages(meter, db_.SeekPages());
  ChargeDbPages(meter, db_.VisitSubtree(p, [&](const std::string& path2,
                                               const PathDb::Row&) {
    doomed.push_back(path2);
  }));
  std::vector<BatchOp> deletes;
  deletes.reserve(doomed.size() + 1);
  for (const std::string& d : doomed) {
    deletes.push_back(BatchOp::Delete(Key(d)));
  }
  deletes.push_back(BatchOp::Delete(Key(p)));
  const std::vector<BatchResult> results =
      cloud_.ExecuteBatch(std::move(deletes), meter);
  for (const BatchResult& r : results) H2_RETURN_IF_ERROR(r.status);
  for (const std::string& d : doomed) {
    ChargeDbPages(meter, db_.SeekPages());
    db_.Erase(d);
  }
  ChargeDbPages(meter, db_.SeekPages());
  db_.Erase(p);
  return Status::Ok();
}

Status SwiftFs::Move(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot move /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t) return Status::Ok();
  if (IsWithin(t, f)) {
    return Status::InvalidArgument("cannot move a directory into itself");
  }
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(t), meter));
  ChargeDbPages(meter, db_.SeekPages());
  const PathDb::Row* src = db_.Find(f);
  if (src == nullptr) return Status::NotFound("no such entry: " + f);
  ChargeDbPages(meter, db_.SeekPages());
  if (db_.Contains(t)) return Status::AlreadyExists("destination exists: " + t);

  // The full path is baked into every object's placement hash, so a MOVE
  // must rewrite every affected object: copy to the new key, delete the
  // old one, update the DB row.  O(n) in the files beneath the source.
  std::vector<std::pair<std::string, PathDb::Row>> affected;
  affected.emplace_back(f, *src);
  if (src->kind == EntryKind::kDirectory) {
    ChargeDbPages(meter, db_.VisitSubtree(f, [&](const std::string& path2,
                                                 const PathDb::Row& row) {
      affected.emplace_back(path2, row);
    }));
  }
  // Re-keying pipelines like any other fan-out: one batch of COPYs, one
  // batch of DELETEs, then the DB row updates.
  std::vector<BatchOp> copies;
  copies.reserve(affected.size());
  for (const auto& [old_path, row] : affected) {
    const std::string new_path = t + old_path.substr(f.size());
    copies.push_back(BatchOp::Copy(Key(old_path), Key(new_path)));
  }
  const std::vector<BatchResult> copied =
      cloud_.ExecuteBatch(std::move(copies), meter);
  for (const BatchResult& r : copied) H2_RETURN_IF_ERROR(r.status);
  std::vector<BatchOp> deletes;
  deletes.reserve(affected.size());
  for (const auto& [old_path, row] : affected) {
    deletes.push_back(BatchOp::Delete(Key(old_path)));
  }
  const std::vector<BatchResult> dropped =
      cloud_.ExecuteBatch(std::move(deletes), meter);
  for (const BatchResult& r : dropped) H2_RETURN_IF_ERROR(r.status);
  for (const auto& [old_path, row] : affected) {
    const std::string new_path = t + old_path.substr(f.size());
    ChargeDbPages(meter, 2 * db_.SeekPages());
    db_.Erase(old_path);
    db_.Upsert(new_path, row);
  }
  return Status::Ok();
}

Result<std::vector<DirEntry>> SwiftFs::List(std::string_view path,
                                            ListDetail detail) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  H2_RETURN_IF_ERROR(RequireDir(p, meter));

  // Fig. 3: each listed child is located via binary search of the DB --
  // O(m logN).  The DB rows carry the metadata, so a detailed LIST costs
  // the same page traffic as a plain one (names-only still pays it, which
  // is exactly why H2's NameRing wins this comparison).
  std::vector<DirEntry> entries;
  const std::uint64_t seek = db_.SeekPages();
  db_.VisitChildren(p, [&](const std::string& child_path,
                           const PathDb::Row& row) {
    ChargeDbPages(meter, seek);
    DirEntry e;
    e.name = std::string(BaseName(child_path));
    e.kind = row.kind;
    if (detail == ListDetail::kDetailed) {
      e.size = row.size;
      e.modified = row.modified;
    }
    entries.push_back(std::move(e));
  });
  return entries;
}

Status SwiftFs::Copy(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  if (f == "/") return Status::InvalidArgument("cannot copy /");
  if (t == "/") return Status::AlreadyExists("destination exists: /");
  if (f == t || IsWithin(t, f)) {
    return Status::InvalidArgument("cannot copy a directory into itself");
  }
  H2_RETURN_IF_ERROR(RequireDir(ParentPath(t), meter));
  ChargeDbPages(meter, db_.SeekPages());
  const PathDb::Row* src = db_.Find(f);
  if (src == nullptr) return Status::NotFound("no such entry: " + f);
  ChargeDbPages(meter, db_.SeekPages());
  if (db_.Contains(t)) return Status::AlreadyExists("destination exists: " + t);

  std::vector<std::pair<std::string, PathDb::Row>> affected;
  affected.emplace_back(f, *src);
  if (src->kind == EntryKind::kDirectory) {
    ChargeDbPages(meter, db_.VisitSubtree(f, [&](const std::string& path2,
                                                 const PathDb::Row& row) {
      affected.emplace_back(path2, row);
    }));
  }
  // O(n + logN): per-object server-side copies (one pipelined batch)
  // plus a bulk DB insert (one descent, then sequential row appends).
  ChargeDbPages(meter, db_.SeekPages() + affected.size());
  std::vector<BatchOp> copies;
  copies.reserve(affected.size());
  for (const auto& [old_path, row] : affected) {
    const std::string new_path = t + old_path.substr(f.size());
    copies.push_back(BatchOp::Copy(Key(old_path), Key(new_path)));
  }
  const std::vector<BatchResult> copied =
      cloud_.ExecuteBatch(std::move(copies), meter);
  for (const BatchResult& r : copied) H2_RETURN_IF_ERROR(r.status);
  for (const auto& [old_path, row] : affected) {
    db_.Upsert(t + old_path.substr(f.size()), row);
  }
  return Status::Ok();
}

}  // namespace h2
