// In-memory directory tree shared by the index-server baselines
// (Single Index Server, Static Partition, Dynamic Partition).
//
// These systems keep the namespace on dedicated metadata servers rather
// than in the object cloud; the tree here models that server-resident
// state.  Cost accounting lives in the filesystems that use it -- the
// tree itself is pure data structure.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"
#include "fs/filesystem.h"

namespace h2 {

struct IndexNode {
  std::string name;
  EntryKind kind = EntryKind::kDirectory;
  std::uint64_t size = 0;
  VirtualNanos created = 0;
  VirtualNanos modified = 0;
  /// Content object id for files (the cloud key suffix).
  std::uint64_t file_id = 0;
  /// Metadata-server id owning this dentry (used by the partition
  /// baselines; 0 elsewhere).
  std::uint32_t server = 0;

  IndexNode* parent = nullptr;
  std::map<std::string, std::unique_ptr<IndexNode>, std::less<>> children;

  bool is_dir() const { return kind == EntryKind::kDirectory; }
};

class TreeIndex {
 public:
  TreeIndex();

  IndexNode* root() { return root_.get(); }
  const IndexNode* root() const { return root_.get(); }

  /// Walks a normalized path.  `levels_out`, if set, receives the number
  /// of components traversed (the paper's d).
  Result<IndexNode*> Find(std::string_view normalized_path,
                          std::size_t* levels_out = nullptr);
  /// Find + require a directory.
  Result<IndexNode*> FindDir(std::string_view normalized_path,
                             std::size_t* levels_out = nullptr);

  /// Creates a child under `dir`; fails with AlreadyExists.
  Result<IndexNode*> CreateChild(IndexNode* dir, std::string_view name,
                                 EntryKind kind, VirtualNanos now);

  /// Detaches `node` from its parent and returns ownership (for MOVE).
  std::unique_ptr<IndexNode> Detach(IndexNode* node);

  /// Attaches a detached subtree under `dir` as `name`.
  Status Attach(IndexNode* dir, std::unique_ptr<IndexNode> node,
                std::string_view name);

  /// Removes `node` and its subtree.
  Status Remove(IndexNode* node);

  // --- subtree queries ---------------------------------------------------
  static std::size_t SubtreeNodeCount(const IndexNode* node);
  static std::size_t SubtreeFileCount(const IndexNode* node);
  /// Pre-order visit (node itself included).
  static void Visit(IndexNode* node,
                    const std::function<void(IndexNode*)>& fn);
  static void Visit(const IndexNode* node,
                    const std::function<void(const IndexNode*)>& fn);

  /// True if `node` is `ancestor` or lies beneath it.
  static bool IsDescendant(const IndexNode* node, const IndexNode* ancestor);

 private:
  std::unique_ptr<IndexNode> root_;
};

}  // namespace h2
