#include "baselines/common/tree_index.h"

#include "fs/path.h"

namespace h2 {

TreeIndex::TreeIndex() : root_(std::make_unique<IndexNode>()) {
  root_->kind = EntryKind::kDirectory;
}

Result<IndexNode*> TreeIndex::Find(std::string_view normalized_path,
                                   std::size_t* levels_out) {
  IndexNode* node = root_.get();
  std::size_t levels = 0;
  for (auto component : PathComponents(normalized_path)) {
    if (!node->is_dir()) {
      return Status::NotADirectory("not a directory on path: " +
                                   std::string(component));
    }
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return Status::NotFound("no such entry: " +
                              std::string(normalized_path));
    }
    node = it->second.get();
    ++levels;
  }
  if (levels_out != nullptr) *levels_out = levels;
  return node;
}

Result<IndexNode*> TreeIndex::FindDir(std::string_view normalized_path,
                                      std::size_t* levels_out) {
  H2_ASSIGN_OR_RETURN(IndexNode * node, Find(normalized_path, levels_out));
  if (!node->is_dir()) {
    return Status::NotADirectory("not a directory: " +
                                 std::string(normalized_path));
  }
  return node;
}

Result<IndexNode*> TreeIndex::CreateChild(IndexNode* dir,
                                          std::string_view name,
                                          EntryKind kind, VirtualNanos now) {
  if (!dir->is_dir()) {
    return Status::NotADirectory("parent is not a directory");
  }
  auto [it, inserted] = dir->children.try_emplace(std::string(name));
  if (!inserted) {
    return Status::AlreadyExists("exists: " + std::string(name));
  }
  it->second = std::make_unique<IndexNode>();
  IndexNode* child = it->second.get();
  child->name = std::string(name);
  child->kind = kind;
  child->created = child->modified = now;
  child->parent = dir;
  child->server = dir->server;  // partitions inherit unless split later
  return child;
}

std::unique_ptr<IndexNode> TreeIndex::Detach(IndexNode* node) {
  IndexNode* parent = node->parent;
  if (parent == nullptr) return nullptr;  // cannot detach the root
  auto it = parent->children.find(node->name);
  if (it == parent->children.end()) return nullptr;
  std::unique_ptr<IndexNode> owned = std::move(it->second);
  parent->children.erase(it);
  owned->parent = nullptr;
  return owned;
}

Status TreeIndex::Attach(IndexNode* dir, std::unique_ptr<IndexNode> node,
                         std::string_view name) {
  if (!dir->is_dir()) {
    return Status::NotADirectory("attach target is not a directory");
  }
  if (dir->children.contains(std::string(name))) {
    return Status::AlreadyExists("exists: " + std::string(name));
  }
  node->name = std::string(name);
  node->parent = dir;
  dir->children[node->name] = std::move(node);
  return Status::Ok();
}

Status TreeIndex::Remove(IndexNode* node) {
  IndexNode* parent = node->parent;
  if (parent == nullptr) {
    return Status::InvalidArgument("cannot remove the root");
  }
  parent->children.erase(node->name);
  return Status::Ok();
}

std::size_t TreeIndex::SubtreeNodeCount(const IndexNode* node) {
  std::size_t count = 1;
  for (const auto& [name, child] : node->children) {
    count += SubtreeNodeCount(child.get());
  }
  return count;
}

std::size_t TreeIndex::SubtreeFileCount(const IndexNode* node) {
  std::size_t count = node->is_dir() ? 0 : 1;
  for (const auto& [name, child] : node->children) {
    count += SubtreeFileCount(child.get());
  }
  return count;
}

void TreeIndex::Visit(IndexNode* node,
                      const std::function<void(IndexNode*)>& fn) {
  fn(node);
  for (auto& [name, child] : node->children) Visit(child.get(), fn);
}

void TreeIndex::Visit(const IndexNode* node,
                      const std::function<void(const IndexNode*)>& fn) {
  fn(node);
  for (const auto& [name, child] : node->children) {
    Visit(static_cast<const IndexNode*>(child.get()), fn);
  }
}

bool TreeIndex::IsDescendant(const IndexNode* node,
                             const IndexNode* ancestor) {
  for (const IndexNode* cur = node; cur != nullptr; cur = cur->parent) {
    if (cur == ancestor) return true;
  }
  return false;
}

}  // namespace h2
