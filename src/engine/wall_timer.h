// Real (wall-clock) elapsed-time measurement for the sharded engine.
//
// Everything else in src/ runs on virtual time (common/clock.h): the
// latency model *charges* nanoseconds instead of sleeping, which is what
// keeps experiments bit-for-bit reproducible.  The sharded engine is the
// one component whose whole point is real throughput -- how many
// operations per second the process actually sustains as worker threads
// are added -- so it, and only it, may read the machine clock.
//
// This header is the single sanctioned wall-clock read in src/; h2lint's
// wall-clock rule allowlists exactly this file.  Wall time must never
// leak into simulated state (timestamps, jitter, costs): it is measured
// around operations, reported in EngineReport/BENCH_throughput.json, and
// discarded.  steady_clock, not system_clock -- elapsed intervals must
// survive NTP steps.
#pragma once

#include <chrono>
#include <cstdint>

namespace h2 {

class WallTimer {
  using Clock = std::chrono::steady_clock;

 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  std::uint64_t ElapsedNanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  std::chrono::time_point<Clock> start_;
};

}  // namespace h2
