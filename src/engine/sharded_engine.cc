#include "engine/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_set>

#include "common/rng.h"
#include "engine/wall_timer.h"

namespace h2 {
namespace {

/// Percentile over wall-clock nanos (nearest-rank on a sorted copy).
double PercentileMs(std::vector<std::uint64_t>& nanos, double q) {
  if (nanos.empty()) return 0;
  std::sort(nanos.begin(), nanos.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(nanos.size() - 1) + 0.5);
  return static_cast<double>(nanos[std::min(rank, nanos.size() - 1)]) * 1e-6;
}

}  // namespace

Result<EngineReport> RunSharded(H2Cloud& cloud,
                                const std::vector<ShardPlan>& plans,
                                const EngineOptions& opts) {
  EngineReport report;
  report.threads = std::max(1, opts.threads);
  if (plans.empty()) return report;
  if (plans.size() > cloud.middleware_count()) {
    return Status::InvalidArgument(
        "sharded engine needs one middleware per shard");
  }
  if (cloud.middleware(0).config().synchronous_maintenance) {
    // Inline merges would publish gossip rumors from foreground threads,
    // making the rumor queue order schedule-dependent.
    return Status::InvalidArgument(
        "sharded engine requires asynchronous maintenance");
  }
  if (cloud.BackgroundRunning()) {
    // The oracle compares post-replay state; a concurrent merger would
    // interleave clock ticks with the replay and break bit-identity.
    return Status::InvalidArgument(
        "stop the background merger before a sharded replay");
  }
  {
    std::unordered_set<std::string_view> accounts;
    for (const ShardPlan& plan : plans) {
      if (!accounts.insert(plan.account).second) {
        return Status::InvalidArgument(
            "shard accounts must be distinct: " + plan.account);
      }
    }
  }

  // --- serial setup: accounts, sessions, shard execution contexts ---------
  // Account creation and session opening run on the global clock in shard
  // order, so their cost and timestamps are identical for every T.
  struct Shard {
    const ShardPlan* plan = nullptr;
    std::unique_ptr<H2AccountFs> fs;
    std::unique_ptr<SimClock> clock;
    std::unique_ptr<Rng> jitter;
    std::vector<std::uint64_t> latency_nanos;
    std::size_t failures = 0;
    OpCost cost;
  };
  std::vector<Shard> shards(plans.size());
  const VirtualNanos epoch = cloud.cloud().clock().Now();
  for (std::size_t i = 0; i < plans.size(); ++i) {
    Shard& shard = shards[i];
    shard.plan = &plans[i];
    const Status created = cloud.CreateAccount(plans[i].account);
    if (!created.ok() && created.code() != ErrorCode::kAlreadyExists) {
      return created;
    }
    H2_ASSIGN_OR_RETURN(shard.fs, cloud.OpenFilesystem(plans[i].account, i));
    // Stride (i + 1): even shard 0 leaves the global clock's neighborhood,
    // so maintenance ticks (global domain) can never collide with a shard
    // timestamp.
    shard.clock = std::make_unique<SimClock>(
        epoch + static_cast<VirtualNanos>(i + 1) * opts.clock_stride);
    shard.jitter = std::make_unique<Rng>(
        SplitMix64(opts.jitter_seed + i).Next());
    shard.fs->BindExecutionContext(shard.clock.get(), shard.jitter.get());
  }

  // --- threaded replay ----------------------------------------------------
  const int threads =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(report.threads), shards.size()));
  auto run_shard = [&opts](Shard& shard) {
    if (opts.collect_latencies) {
      shard.latency_nanos.reserve(shard.plan->ops.size());
    }
    WallTimer timer;
    for (const TraceOp& op : shard.plan->ops) {
      if (opts.collect_latencies) timer.Restart();
      const Status status = ApplyTraceOp(*shard.fs, op);
      if (!status.ok()) ++shard.failures;
      const OpCost& cost = shard.fs->last_op();
      shard.cost += cost;
      if (opts.pacing > 0 && cost.elapsed > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            static_cast<std::int64_t>(opts.pacing *
                                      static_cast<double>(cost.elapsed))));
      }
      if (opts.collect_latencies) {
        // Sampled after the pacing sleep: the closed-loop client's view
        // of the op includes its (scaled) service time.
        shard.latency_nanos.push_back(timer.ElapsedNanos());
      }
    }
  };

  WallTimer wall;
  if (threads <= 1) {
    for (Shard& shard : shards) run_shard(shard);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&shards, threads, t, &run_shard] {
        for (std::size_t i = static_cast<std::size_t>(t); i < shards.size();
             i += static_cast<std::size_t>(threads)) {
          run_shard(shards[i]);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }
  report.wall_seconds = wall.ElapsedSeconds();

  // --- aggregate (shard order: the merge itself is deterministic) ---------
  std::vector<std::uint64_t> all_nanos;
  for (Shard& shard : shards) {
    report.ops += shard.plan->ops.size();
    report.failures += shard.failures;
    report.virtual_cost += shard.cost;
    all_nanos.insert(all_nanos.end(), shard.latency_nanos.begin(),
                     shard.latency_nanos.end());
    shard.fs->BindExecutionContext(nullptr, nullptr);
  }
  if (report.wall_seconds > 0) {
    report.ops_per_sec =
        static_cast<double>(report.ops) / report.wall_seconds;
  }
  report.p50_ms = PercentileMs(all_nanos, 0.50);
  report.p99_ms = PercentileMs(all_nanos, 0.99);
  return report;
}

}  // namespace h2
