// The sharded wall-clock execution engine.
//
// Everything else in this repository executes serially and measures
// *virtual* operation time.  The engine adds the missing axis: real
// throughput.  It partitions a workload into shards -- one account served
// through its own dedicated middleware -- and replays the shards on T
// worker threads, measuring real ops/sec and wall-clock latency
// percentiles while the virtual-cost model keeps metering underneath.
//
// Determinism contract (the serial differential oracle).  The final cloud
// state after Run() is bit-identical for every thread count T, including
// T = 1, because every source of state is a function of a single shard's
// own op order:
//
//   * keys: a shard's account root, namespaces, child objects, NameRings,
//     patches and intent records all live under per-account / per-node
//     key families (h2/keys.h), so shards never write the same key;
//   * timestamps: each shard binds a private SimClock domain to its
//     session meter (OpMeter::SetClockDomain), offset by a per-shard
//     stride so no two domains ever mint the same tick;
//   * jitter: each shard binds a private xoshiro stream seeded from its
//     shard index (OpMeter::SetJitterStream), so latency draws do not
//     cross shards through the global RNG;
//   * middlewares: one per shard, so descriptor caches, resolve caches,
//     namespace minters and patch counters are shard-private;
//   * gossip: foreground operations never publish rumors (merges do, and
//     the engine rejects synchronous_maintenance, the one config that
//     merges inline) -- maintenance stays a serial phase owned by the
//     caller, before and after Run().
//
// What remains shared -- storage node maps, the partition ring, the
// repair accumulator -- is either internally synchronized on disjoint
// keys or commutative, so the interleaving cannot leak into state.
// tests/sharded_engine_test.cc enforces the contract by byte-comparing
// ObjectCloud::DebugDump() across thread counts for every trace family.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/op_meter.h"
#include "common/clock.h"
#include "common/status.h"
#include "h2/h2cloud.h"
#include "workload/trace.h"

namespace h2 {

/// One shard: a trace replayed for `account` through the middleware with
/// the shard's own index.  Accounts must be distinct across shards (the
/// engine verifies; shared accounts would share namespaces and break the
/// determinism contract above).
struct ShardPlan {
  std::string account;
  std::vector<TraceOp> ops;
};

struct EngineOptions {
  /// Worker threads.  Thread j runs shards i with i % threads == j, in
  /// increasing i, each shard serially in op order.
  int threads = 1;
  /// Base seed for the per-shard jitter streams; shard i draws from
  /// Rng(SplitMix64(jitter_seed + i)).  Fixed default keeps benches
  /// reproducible run-to-run.
  std::uint64_t jitter_seed = 0x5eeded11e5ULL;
  /// Virtual-time offset between consecutive shard clock domains.  One
  /// virtual day: far larger than any shard can advance during a replay,
  /// so domains never overlap and every timestamp stays globally unique.
  VirtualNanos clock_stride = 86'400LL * kSecond;
  /// Record a wall-clock latency sample per operation (for p50/p99).
  /// Sampling never feeds back into simulated state, so it cannot affect
  /// the final-state oracle.
  bool collect_latencies = true;
  /// Fraction of each op's *virtual* elapsed time the worker really
  /// sleeps after the op (0 = none).  This closes the loop over service
  /// time: simulated operations complete instantly in real time, so an
  /// unpaced sweep degenerates into a CPU microbenchmark whose scaling
  /// is just the host's core count.  With pacing, each shard experiences
  /// its simulated service latency (scaled), and ops/sec vs threads
  /// measures what threading buys a latency-bound closed-loop fleet:
  /// overlap of in-flight operations -- on any host, including a
  /// single-core CI runner.  Sleeping reads no clock and writes no
  /// state, so pacing cannot perturb the determinism oracle.
  double pacing = 0;
};

struct EngineReport {
  std::size_t ops = 0;
  std::size_t failures = 0;   // non-OK statuses (counted, not fatal)
  double wall_seconds = 0;    // replay section only (setup excluded)
  double ops_per_sec = 0;
  double p50_ms = 0;          // wall-clock per-op latency percentiles
  double p99_ms = 0;
  OpCost virtual_cost;        // summed simulated cost across shards
  int threads = 1;
};

/// Replays `plans` over `cloud` on `opts.threads` worker threads.
/// Requires one middleware per shard (plans.size() <= middleware_count),
/// distinct accounts, and asynchronous maintenance.  Creates missing
/// accounts and opens sessions serially (so setup cost never races),
/// then runs the threaded replay.  The caller owns maintenance: run
/// RunMaintenanceToQuiescence() after Run() returns before comparing
/// state dumps.
Result<EngineReport> RunSharded(H2Cloud& cloud,
                                const std::vector<ShardPlan>& plans,
                                const EngineOptions& opts = {});

}  // namespace h2
