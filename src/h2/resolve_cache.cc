#include "h2/resolve_cache.h"

#include "h2/keys.h"

namespace h2 {
namespace {

constexpr std::size_t kRevMapSlack = 4;

}  // namespace

H2ResolveCache::H2ResolveCache(std::size_t child_capacity,
                               std::size_t ring_capacity)
    : child_capacity_(child_capacity == 0 ? 1 : child_capacity),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

std::uint64_t H2ResolveCache::ChildRevLocked(const NamespaceId& ns) const {
  auto it = child_revs_.find(ns);
  return it == child_revs_.end() ? rev_floor_ : it->second;
}

std::uint64_t H2ResolveCache::RingRevLocked(const NamespaceId& ns) const {
  auto it = ring_revs_.find(ns);
  return it == ring_revs_.end() ? rev_floor_ : it->second;
}

std::uint64_t H2ResolveCache::ChildRev(const NamespaceId& ns) const {
  std::lock_guard lock(mu_);
  return ChildRevLocked(ns);
}

std::uint64_t H2ResolveCache::RingRev(const NamespaceId& ns) const {
  std::lock_guard lock(mu_);
  return RingRevLocked(ns);
}

std::optional<DirRecord> H2ResolveCache::GetChild(const NamespaceId& parent,
                                                  const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = child_map_.find(ChildKey(parent, name));
  if (it == child_map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  child_lru_.splice(child_lru_.begin(), child_lru_, it->second);
  ++stats_.hits;
  return it->second->record;
}

void H2ResolveCache::PutChild(const NamespaceId& parent,
                              const std::string& name, const DirRecord& record,
                              std::uint64_t rev_snapshot) {
  std::lock_guard lock(mu_);
  // The revision re-check and the LRU admit are one critical section:
  // an invalidation between them can no longer lose to this fill.
  if (ChildRevLocked(parent) != rev_snapshot) return;  // invalidated mid-fill
  std::string key = ChildKey(parent, name);
  auto it = child_map_.find(key);
  if (it != child_map_.end()) {
    it->second->record = record;
    child_lru_.splice(child_lru_.begin(), child_lru_, it->second);
    return;
  }
  child_lru_.push_front(ChildEntry{parent, key, record});
  child_map_.emplace(std::move(key), child_lru_.begin());
  if (child_map_.size() > child_capacity_) {
    child_map_.erase(child_lru_.back().key);
    child_lru_.pop_back();
  }
}

void H2ResolveCache::EraseChild(const NamespaceId& parent,
                                const std::string& name) {
  std::lock_guard lock(mu_);
  BumpChildRev(parent);
  auto it = child_map_.find(ChildKey(parent, name));
  if (it == child_map_.end()) return;
  child_lru_.erase(it->second);
  child_map_.erase(it);
  ++stats_.invalidations;
}

std::optional<NameRing> H2ResolveCache::GetRing(const NamespaceId& ns) {
  std::lock_guard lock(mu_);
  auto it = ring_map_.find(ns);
  if (it == ring_map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ring_lru_.splice(ring_lru_.begin(), ring_lru_, it->second);
  ++stats_.hits;
  return it->second->ring;
}

void H2ResolveCache::PutRing(const NamespaceId& ns, const NameRing& ring,
                             std::uint64_t rev_snapshot) {
  std::lock_guard lock(mu_);
  if (RingRevLocked(ns) != rev_snapshot) return;  // invalidated mid-fill
  auto it = ring_map_.find(ns);
  if (it != ring_map_.end()) {
    it->second->ring = ring;
    ring_lru_.splice(ring_lru_.begin(), ring_lru_, it->second);
    return;
  }
  ring_lru_.push_front(RingEntry{ns, ring});
  ring_map_.emplace(ns, ring_lru_.begin());
  if (ring_map_.size() > ring_capacity_) {
    ring_map_.erase(ring_lru_.back().ns);
    ring_lru_.pop_back();
  }
}

void H2ResolveCache::InvalidateRing(const NamespaceId& ns) {
  std::lock_guard lock(mu_);
  InvalidateRingLocked(ns);
}

void H2ResolveCache::InvalidateRingLocked(const NamespaceId& ns) {
  BumpRingRev(ns);
  auto it = ring_map_.find(ns);
  if (it == ring_map_.end()) return;
  ring_lru_.erase(it->second);
  ring_map_.erase(it);
  ++stats_.invalidations;
}

void H2ResolveCache::InvalidateNamespace(const NamespaceId& ns) {
  std::lock_guard lock(mu_);
  InvalidateRingLocked(ns);
  BumpChildRev(ns);
  // Child entries are keyed by (ns, name); walk the LRU and drop every
  // entry under ns. Capacity-bounded, and namespace-wide invalidations
  // only fire on remote-change events, so the scan cost is acceptable.
  bool dropped = false;
  for (auto it = child_lru_.begin(); it != child_lru_.end();) {
    if (it->parent == ns) {
      child_map_.erase(it->key);
      it = child_lru_.erase(it);
      dropped = true;
    } else {
      ++it;
    }
  }
  if (dropped) ++stats_.invalidations;
}

void H2ResolveCache::ClearLocked() {
  // Raising the floor past every previously-minted revision kills all
  // in-flight fills at once; per-namespace entries become redundant.
  rev_floor_ = NextRev();
  child_revs_.clear();
  ring_revs_.clear();
  child_lru_.clear();
  child_map_.clear();
  ring_lru_.clear();
  ring_map_.clear();
  ++stats_.invalidations;
}

void H2ResolveCache::Clear() {
  std::lock_guard lock(mu_);
  ClearLocked();
}

void H2ResolveCache::OnTopologyEpoch(std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  if (epoch <= topology_epoch_) return;  // duplicate / stale rumor
  topology_epoch_ = epoch;
  ++stats_.epoch_flushes;
  ClearLocked();
}

void H2ResolveCache::BumpChildRev(const NamespaceId& ns) {
  child_revs_[ns] = NextRev();
  TrimRevMaps();
}

void H2ResolveCache::BumpRingRev(const NamespaceId& ns) {
  ring_revs_[ns] = NextRev();
  TrimRevMaps();
}

void H2ResolveCache::TrimRevMaps() {
  // Keep revision bookkeeping bounded. Forgetting an entry makes its
  // namespace read `rev_floor_`; raising the floor to a fresh value
  // first guarantees dropped revisions can only cause spurious misses
  // for outstanding snapshots, never false hits.
  const std::size_t limit =
      kRevMapSlack * (child_capacity_ + ring_capacity_) + 16;
  if (child_revs_.size() > limit || ring_revs_.size() > limit) {
    rev_floor_ = NextRev();
    child_revs_.clear();
    ring_revs_.clear();
  }
}

}  // namespace h2
