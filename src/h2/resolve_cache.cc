#include "h2/resolve_cache.h"

#include <algorithm>

#include "h2/keys.h"

namespace h2 {
namespace {

constexpr std::size_t kFloorMapSlack = 4;

}  // namespace

H2ResolveCache::H2ResolveCache(std::size_t child_capacity,
                               std::size_t ring_capacity)
    : child_capacity_(child_capacity == 0 ? 1 : child_capacity),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

VirtualNanos H2ResolveCache::ChildFloorLocked(const NamespaceId& ns) const {
  auto it = child_floors_.find(ns);
  return it == child_floors_.end() ? global_floor_
                                   : std::max(it->second, global_floor_);
}

VirtualNanos H2ResolveCache::RingFloorLocked(const NamespaceId& ns) const {
  auto it = ring_floors_.find(ns);
  return it == ring_floors_.end() ? global_floor_
                                  : std::max(it->second, global_floor_);
}

VirtualNanos H2ResolveCache::ChildFloor(const NamespaceId& ns) const {
  H2MutexLock lock(mu_);
  return ChildFloorLocked(ns);
}

VirtualNanos H2ResolveCache::RingFloor(const NamespaceId& ns) const {
  H2MutexLock lock(mu_);
  return RingFloorLocked(ns);
}

std::optional<DirRecord> H2ResolveCache::GetChild(const NamespaceId& parent,
                                                  const std::string& name) {
  H2MutexLock lock(mu_);
  auto it = child_map_.find(ChildKey(parent, name));
  if (it == child_map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  child_lru_.splice(child_lru_.begin(), child_lru_, it->second);
  ++stats_.hits;
  return it->second->record;
}

void H2ResolveCache::PutChild(const NamespaceId& parent,
                              const std::string& name, const DirRecord& record,
                              VirtualNanos floor_snapshot) {
  H2MutexLock lock(mu_);
  // The floor re-check and the LRU admit are one critical section: an
  // invalidation between them can no longer lose to this fill.  Floors
  // are monotone, so equality means "nothing was noted since snapshot".
  // Retirement is terminal -- a post-retire snapshot also matches, but
  // nothing under a deleted namespace may ever be admitted again.
  if (floor_snapshot == kRetired) return;
  if (ChildFloorLocked(parent) != floor_snapshot) return;  // stale fill
  std::string key = ChildKey(parent, name);
  auto it = child_map_.find(key);
  if (it != child_map_.end()) {
    it->second->record = record;
    child_lru_.splice(child_lru_.begin(), child_lru_, it->second);
    return;
  }
  child_lru_.push_front(ChildEntry{parent, key, record});
  child_map_.emplace(std::move(key), child_lru_.begin());
  if (child_map_.size() > child_capacity_) {
    child_map_.erase(child_lru_.back().key);
    child_lru_.pop_back();
  }
}

void H2ResolveCache::EraseChild(const NamespaceId& parent,
                                const std::string& name) {
  H2MutexLock lock(mu_);
  // A minimal floor step fences out in-flight fills for this parent
  // without demanding a directory version from the caller.
  VirtualNanos floor = ChildFloorLocked(parent);
  if (floor < kRetired) {
    child_floors_[parent] = floor + 1;
    if (floor + 1 > max_noted_) max_noted_ = floor + 1;
    TrimFloorMaps();
  }
  auto it = child_map_.find(ChildKey(parent, name));
  if (it == child_map_.end()) return;
  child_lru_.erase(it->second);
  child_map_.erase(it);
  ++stats_.invalidations;
}

std::optional<NameRing> H2ResolveCache::GetRing(const NamespaceId& ns) {
  H2MutexLock lock(mu_);
  auto it = ring_map_.find(ns);
  if (it == ring_map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ring_lru_.splice(ring_lru_.begin(), ring_lru_, it->second);
  ++stats_.hits;
  return it->second->ring;
}

void H2ResolveCache::PutRing(const NamespaceId& ns, const NameRing& ring) {
  H2MutexLock lock(mu_);
  // The ring is self-validating: its dir_version must have caught up with
  // every version announced for this namespace.  A fill that raced an
  // invalidation carries an older version and is rejected here.  The
  // retired floor is terminal: no version, however large, re-admits a
  // deleted namespace.
  const VirtualNanos floor = RingFloorLocked(ns);
  if (floor == kRetired || ring.dir_version() < floor) return;  // stale fill
  auto it = ring_map_.find(ns);
  if (it != ring_map_.end()) {
    it->second->ring = ring;
    ring_lru_.splice(ring_lru_.begin(), ring_lru_, it->second);
    return;
  }
  ring_lru_.push_front(RingEntry{ns, ring});
  ring_map_.emplace(ns, ring_lru_.begin());
  if (ring_map_.size() > ring_capacity_) {
    ring_map_.erase(ring_lru_.back().ns);
    ring_lru_.pop_back();
  }
}

void H2ResolveCache::NoteRingVersionLocked(const NamespaceId& ns,
                                           VirtualNanos version) {
  VirtualNanos floor = RingFloorLocked(ns);
  if (version > floor) {
    ring_floors_[ns] = version;
    if (version < kRetired && version > max_noted_) max_noted_ = version;
    TrimFloorMaps();
  }
  auto it = ring_map_.find(ns);
  if (it == ring_map_.end()) return;
  if (it->second->ring.dir_version() >= version) return;  // still fresh
  ring_lru_.erase(it->second);
  ring_map_.erase(it);
  ++stats_.invalidations;
}

void H2ResolveCache::RaiseChildFloorLocked(const NamespaceId& ns,
                                           VirtualNanos version) {
  VirtualNanos floor = ChildFloorLocked(ns);
  if (version > floor) {
    child_floors_[ns] = version;
    if (version < kRetired && version > max_noted_) max_noted_ = version;
    TrimFloorMaps();
  }
}

void H2ResolveCache::DropChildrenLocked(const NamespaceId& ns) {
  // Child entries are keyed by (ns, name); walk the LRU and drop every
  // entry under ns. Capacity-bounded, and namespace-wide invalidations
  // only fire on remote-change events, so the scan cost is acceptable.
  bool dropped = false;
  for (auto it = child_lru_.begin(); it != child_lru_.end();) {
    if (it->parent == ns) {
      child_map_.erase(it->key);
      it = child_lru_.erase(it);
      dropped = true;
    } else {
      ++it;
    }
  }
  if (dropped) ++stats_.invalidations;
}

void H2ResolveCache::NoteRingVersion(const NamespaceId& ns,
                                     VirtualNanos version) {
  H2MutexLock lock(mu_);
  NoteRingVersionLocked(ns, version);
}

void H2ResolveCache::NoteVersion(const NamespaceId& ns, VirtualNanos version) {
  H2MutexLock lock(mu_);
  NoteRingVersionLocked(ns, version);
  RaiseChildFloorLocked(ns, version);
  DropChildrenLocked(ns);
}

void H2ResolveCache::Retire(const NamespaceId& ns) {
  H2MutexLock lock(mu_);
  NoteRingVersionLocked(ns, kRetired);
  RaiseChildFloorLocked(ns, kRetired);
  DropChildrenLocked(ns);
}

void H2ResolveCache::ClearLocked() {
  // Raising the global floor strictly above every floor snapshot ever
  // handed out kills all in-flight fills at once; per-namespace floors
  // become redundant.
  if (max_noted_ < kRetired) ++max_noted_;
  global_floor_ = max_noted_;
  child_floors_.clear();
  ring_floors_.clear();
  child_lru_.clear();
  child_map_.clear();
  ring_lru_.clear();
  ring_map_.clear();
  ++stats_.invalidations;
}

void H2ResolveCache::Clear() {
  H2MutexLock lock(mu_);
  ClearLocked();
}

void H2ResolveCache::OnTopologyEpoch(std::uint64_t epoch) {
  H2MutexLock lock(mu_);
  if (epoch <= topology_epoch_) return;  // duplicate / stale rumor
  topology_epoch_ = epoch;
  ++stats_.epoch_flushes;
  ClearLocked();
}

void H2ResolveCache::TrimFloorMaps() {
  // Keep floor bookkeeping bounded.  Forgetting per-namespace floors is
  // only safe once the global floor fences out every outstanding fill, so
  // it rises past the highest version ever noted: dropped floors can then
  // only cause spurious misses (a ring must re-prove freshness), never
  // false hits.  Already-admitted LRU entries stay: they were valid at
  // admit time and every later invalidation dropped its victims eagerly.
  const std::size_t limit =
      kFloorMapSlack * (child_capacity_ + ring_capacity_) + 16;
  if (child_floors_.size() > limit || ring_floors_.size() > limit) {
    if (max_noted_ < kRetired) ++max_noted_;
    global_floor_ = max_noted_;
    child_floors_.clear();
    ring_floors_.clear();
  }
}

}  // namespace h2
