#include "h2/account_fs.h"

#include "fs/path.h"

namespace h2 {

Status H2AccountFs::WriteFile(std::string_view path, FileBlob blob) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.WriteFile(root_, p, std::move(blob), meter);
}

Status H2AccountFs::WriteFiles(
    std::vector<std::pair<std::string, FileBlob>> files) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  std::vector<H2Middleware::BatchEntry> batch;
  batch.reserve(files.size());
  for (auto& [path, blob] : files) {
    H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
    batch.push_back(H2Middleware::BatchEntry{std::move(p), std::move(blob)});
  }
  return middleware_.WriteFiles(root_, std::move(batch), meter);
}

Result<FileBlob> H2AccountFs::ReadFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.ReadFile(root_, p, meter);
}

Result<FileInfo> H2AccountFs::Stat(std::string_view path) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.Stat(root_, p, meter);
}

Status H2AccountFs::RemoveFile(std::string_view path) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.RemoveFile(root_, p, meter);
}

Status H2AccountFs::Mkdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.Mkdir(root_, p, meter);
}

Status H2AccountFs::Rmdir(std::string_view path) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.Rmdir(root_, p, meter);
}

Status H2AccountFs::Move(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  return middleware_.Move(root_, f, t, meter);
}

Result<std::vector<DirEntry>> H2AccountFs::List(std::string_view path,
                                                ListDetail detail) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.List(root_, p, detail, meter);
}

Status H2AccountFs::Copy(std::string_view from, std::string_view to) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  return middleware_.Copy(root_, f, t, meter);
}

Result<H2Middleware::Page> H2AccountFs::ListPaged(
    std::string_view path, ListDetail detail, std::string_view start_after,
    std::size_t limit) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.ListPaged(root_, p, detail, start_after, limit, meter);
}

Result<FileInfo> H2AccountFs::StatRelative(const NamespaceId& ns,
                                           std::string_view name) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  return middleware_.StatRelative(ns, name, meter);
}

Result<NamespaceId> H2AccountFs::Namespace(std::string_view path) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.ResolvePath(root_, p, meter);
}

Result<VirtualNanos> H2AccountFs::DirVersion(std::string_view path) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.DirVersion(root_, p, meter);
}

Result<std::vector<DirEntry>> H2AccountFs::ListAt(std::string_view path,
                                                  VirtualNanos version,
                                                  ListDetail detail) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.ListAt(root_, p, version, detail, meter);
}

Result<FileInfo> H2AccountFs::StatAt(std::string_view path,
                                     VirtualNanos version) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string p, NormalizePath(path));
  return middleware_.StatAt(root_, p, version, meter);
}

Status H2AccountFs::SnapshotClone(std::string_view from,
                                  std::string_view to) {
  OpMeter& meter = BeginOp();
  meter.SetZone(middleware_.zone());
  H2_ASSIGN_OR_RETURN(std::string f, NormalizePath(from));
  H2_ASSIGN_OR_RETURN(std::string t, NormalizePath(to));
  return middleware_.SnapshotClone(root_, f, t, meter);
}

}  // namespace h2
