#include "h2/intent_log.h"

#include <cstdio>

#include "common/strings.h"

namespace h2 {
namespace {

/// Same clock-domain rule as the middleware: intent timestamps come from
/// the meter's bound shard clock when set, else the cloud's global clock.
SimClock& ClockFor(ObjectCloud& cloud, const OpMeter& meter) {
  SimClock* domain = meter.clock_domain();
  return domain != nullptr ? *domain : cloud.clock();
}

}  // namespace

std::string IntentLog::ChainKey() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "intent::Node%02u", node_);
  return buf;
}

std::string IntentLog::IntentKey(std::uint64_t id) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "intent::Node%02u.%llu", node_,
                static_cast<unsigned long long>(id));
  return buf;
}

Status IntentLog::LoadLocked(H2ReleasableMutexLock& lock,
                             OpMeter& meter) {
  if (loaded_) return Status::Ok();
  lock.Unlock();
  Result<ObjectValue> chain = cloud_.Get(ChainKey(), meter);
  std::uint64_t next = 1;
  std::set<std::uint64_t> open;
  if (chain.ok()) {
    H2_ASSIGN_OR_RETURN(KvRecord record, KvRecord::Parse(chain->payload));
    H2_ASSIGN_OR_RETURN(next, record.GetUint("next"));
    for (auto part : SplitSkipEmpty(record.Get("open"), ',')) {
      std::uint64_t id = 0;
      if (!ParseUint64(part, &id)) {
        return Status::Corruption("bad intent chain");
      }
      open.insert(id);
    }
  } else if (chain.code() != ErrorCode::kNotFound) {
    return chain.status();
  }
  lock.Lock();
  if (!loaded_) {
    next_id_ = next;
    open_ = std::move(open);
    loaded_ = true;
  }
  return Status::Ok();
}

Status IntentLog::PersistChain(OpMeter& meter) {
  KvRecord record;
  std::string open_list;
  {
    H2MutexLock lock(mu_);
    record.SetUint("next", next_id_);
    bool first = true;
    for (std::uint64_t id : open_) {
      if (!first) open_list.push_back(',');
      open_list += std::to_string(id);
      first = false;
    }
  }
  record.Set("open", open_list);
  ObjectValue value =
      ObjectValue::FromString(record.Serialize(), ClockFor(cloud_, meter).Tick());
  value.metadata["kind"] = "intent-chain";
  return cloud_.Put(ChainKey(), std::move(value), meter);
}

Result<std::uint64_t> IntentLog::Begin(const KvRecord& record,
                                       OpMeter& meter) {
  std::uint64_t id = 0;
  {
    H2ReleasableMutexLock lock(mu_);
    H2_RETURN_IF_ERROR(LoadLocked(lock, meter));
    id = next_id_++;
    open_.insert(id);
  }
  ObjectValue value =
      ObjectValue::FromString(record.Serialize(), ClockFor(cloud_, meter).Tick());
  value.metadata["kind"] = "intent";
  // The intent must be durable before the first mutation it covers.
  H2_RETURN_IF_ERROR(cloud_.Put(IntentKey(id), std::move(value), meter,
                                PutOptions{.durable = true}));
  H2_RETURN_IF_ERROR(PersistChain(meter));
  return id;
}

Status IntentLog::Commit(std::uint64_t id, OpMeter& meter) {
  (void)cloud_.Delete(IntentKey(id), meter);
  {
    H2MutexLock lock(mu_);
    open_.erase(id);
  }
  return PersistChain(meter);
}

Result<std::vector<std::pair<std::uint64_t, KvRecord>>> IntentLog::Open(
    OpMeter& meter) {
  std::set<std::uint64_t> ids;
  {
    H2ReleasableMutexLock lock(mu_);
    H2_RETURN_IF_ERROR(LoadLocked(lock, meter));
    ids = open_;
  }
  std::vector<std::pair<std::uint64_t, KvRecord>> out;
  for (std::uint64_t id : ids) {
    Result<ObjectValue> obj = cloud_.Get(IntentKey(id), meter);
    if (obj.code() == ErrorCode::kNotFound) {
      // Deleted but chain update lost: treat as committed.
      H2MutexLock lock(mu_);
      open_.erase(id);
      continue;
    }
    if (!obj.ok()) return obj.status();
    H2_ASSIGN_OR_RETURN(KvRecord record, KvRecord::Parse(obj->payload));
    out.emplace_back(id, std::move(record));
  }
  return out;
}

std::size_t IntentLog::pending() const {
  H2MutexLock lock(mu_);
  return open_.size();
}

}  // namespace h2
