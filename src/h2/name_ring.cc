#include "h2/name_ring.h"

#include <cstdio>

#include "codec/formatter.h"
#include "common/strings.h"

namespace h2 {
namespace {

// Serialized tuple lines: name|timestamp|kind|flag
//   kind: "F" file, "D" directory
//   flag: "" live, "X" deleted
// Version vector lines are prefixed with "#vv": #vv|node|patch_no
constexpr std::string_view kVvPrefix = "#vv";

std::string_view KindCode(EntryKind kind) {
  return kind == EntryKind::kDirectory ? "D" : "F";
}

// Total order on same-name tuples, so Merge is a semilattice join even
// when two replicas stamp conflicting updates at the same tick: larger
// timestamp wins, then a deletion beats a creation (safe side: the loser
// can be recreated, a resurrected ghost cannot be un-leaked), then a
// directory beats a file.  Equal-rank tuples keep the incumbent, which
// preserves idempotence.
bool Supersedes(const RingTuple& incoming, const RingTuple& incumbent) {
  if (incoming.timestamp != incumbent.timestamp) {
    return incoming.timestamp > incumbent.timestamp;
  }
  if (incoming.deleted != incumbent.deleted) return incoming.deleted;
  if (incoming.kind != incumbent.kind) {
    return incoming.kind == EntryKind::kDirectory;
  }
  return false;
}

}  // namespace

bool NameRing::Apply(RingTuple tuple) {
  auto it = tuples_.find(tuple.name);
  if (it == tuples_.end()) {
    tuples_.emplace(tuple.name, std::move(tuple));
    return true;
  }
  if (Supersedes(tuple, it->second)) {
    it->second = std::move(tuple);
    return true;
  }
  return false;
}

const RingTuple* NameRing::Find(std::string_view name) const {
  auto it = tuples_.find(name);
  return it == tuples_.end() ? nullptr : &it->second;
}

bool NameRing::HasLive(std::string_view name) const {
  const RingTuple* t = Find(name);
  return t != nullptr && !t->deleted;
}

std::size_t NameRing::Merge(const NameRing& patch) {
  std::size_t changed = 0;
  for (const auto& [name, tuple] : patch.tuples_) {
    if (Apply(tuple)) ++changed;
  }
  for (const auto& [node, patch_no] : patch.versions_) {
    auto [it, inserted] = versions_.try_emplace(node, patch_no);
    if (!inserted && patch_no > it->second) it->second = patch_no;
  }
  return changed;
}

std::size_t NameRing::Compact() {
  std::size_t removed = 0;
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (it->second.deleted) {
      it = tuples_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<RingTuple> NameRing::AllTuples() const {
  std::vector<RingTuple> out;
  out.reserve(tuples_.size());
  for (const auto& [name, tuple] : tuples_) out.push_back(tuple);
  return out;
}

std::size_t NameRing::PruneTombstones(VirtualNanos cutoff) {
  std::size_t removed = 0;
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (it->second.deleted && it->second.timestamp <= cutoff) {
      it = tuples_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<RingTuple> NameRing::LiveChildren() const {
  std::vector<RingTuple> out;
  out.reserve(tuples_.size());
  for (const auto& [name, tuple] : tuples_) {
    if (!tuple.deleted) out.push_back(tuple);
  }
  return out;
}

std::size_t NameRing::live_count() const {
  std::size_t n = 0;
  for (const auto& [name, tuple] : tuples_) {
    if (!tuple.deleted) ++n;
  }
  return n;
}

void NameRing::NoteMerged(std::uint32_t node, std::uint64_t patch_no) {
  auto [it, inserted] = versions_.try_emplace(node, patch_no);
  if (!inserted && patch_no > it->second) it->second = patch_no;
}

std::uint64_t NameRing::MergedUpTo(std::uint32_t node) const {
  auto it = versions_.find(node);
  return it == versions_.end() ? 0 : it->second;
}

std::string NameRing::Serialize() const {
  std::string out;
  char buf[32];
  for (const auto& [node, patch_no] : versions_) {
    std::snprintf(buf, sizeof(buf), "%u", node);
    std::string line(kVvPrefix);
    line += '|';
    line += buf;
    line += '|';
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(patch_no));
    line += buf;
    out += line;
    out.push_back('\n');
  }
  for (const auto& [name, tuple] : tuples_) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(tuple.timestamp));
    out += MakeTupleLine({name, buf, KindCode(tuple.kind),
                          tuple.deleted ? "X" : ""});
    out.push_back('\n');
  }
  return out;
}

Result<NameRing> NameRing::Parse(std::string_view data) {
  NameRing ring;
  for (auto line : Split(data, '\n')) {
    if (line.empty()) continue;
    H2_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        ParseTupleLine(line));
    if (!fields.empty() && fields[0] == kVvPrefix) {
      if (fields.size() != 3) {
        return Status::Corruption("bad version-vector line in NameRing");
      }
      std::uint64_t node = 0, patch_no = 0;
      if (!ParseUint64(fields[1], &node) ||
          !ParseUint64(fields[2], &patch_no) || node > 0xffffffffULL) {
        return Status::Corruption("bad version-vector values in NameRing");
      }
      ring.versions_[static_cast<std::uint32_t>(node)] = patch_no;
      continue;
    }
    if (fields.size() != 4) {
      return Status::Corruption("bad tuple line in NameRing");
    }
    RingTuple tuple;
    tuple.name = std::move(fields[0]);
    std::string_view ts = fields[1];
    bool negative = false;
    if (!ts.empty() && ts[0] == '-') {
      negative = true;
      ts.remove_prefix(1);
    }
    std::uint64_t magnitude = 0;
    if (!ParseUint64(ts, &magnitude)) {
      return Status::Corruption("bad timestamp in NameRing tuple");
    }
    tuple.timestamp = negative ? -static_cast<VirtualNanos>(magnitude)
                               : static_cast<VirtualNanos>(magnitude);
    if (fields[2] == "D") {
      tuple.kind = EntryKind::kDirectory;
    } else if (fields[2] == "F") {
      tuple.kind = EntryKind::kFile;
    } else {
      return Status::Corruption("bad kind in NameRing tuple");
    }
    if (fields[3] == "X") {
      tuple.deleted = true;
    } else if (!fields[3].empty()) {
      return Status::Corruption("bad flag in NameRing tuple");
    }
    ring.tuples_[tuple.name] = std::move(tuple);
  }
  return ring;
}

}  // namespace h2
