#include "h2/name_ring.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "codec/formatter.h"
#include "common/strings.h"

namespace h2 {
namespace {

// Serialized tuple lines: name|timestamp|kind|flag
//   kind: "F" file, "D" directory
//   flag: "" live, "X" deleted
// Metadata lines are prefixed:
//   #vv|node|patch_no       version vector entry
//   #dv|version             directory version
//   #hf|version             history floor
//   #pin|version|count      snapshot pin refcount
//   #h|name|ts|kind|flag    retained history tuple
constexpr std::string_view kVvPrefix = "#vv";
constexpr std::string_view kDvPrefix = "#dv";
constexpr std::string_view kFloorPrefix = "#hf";
constexpr std::string_view kPinPrefix = "#pin";
constexpr std::string_view kHistPrefix = "#h";

std::string_view KindCode(EntryKind kind) {
  return kind == EntryKind::kDirectory ? "D" : "F";
}

// Total order on same-name tuples, so Merge is a semilattice join even
// when two replicas stamp conflicting updates at the same tick: larger
// timestamp wins, then a deletion beats a creation (safe side: the loser
// can be recreated, a resurrected ghost cannot be un-leaked), then a
// directory beats a file.  Equal-rank tuples keep the incumbent, which
// preserves idempotence.
bool Supersedes(const RingTuple& incoming, const RingTuple& incumbent) {
  if (incoming.timestamp != incumbent.timestamp) {
    return incoming.timestamp > incumbent.timestamp;
  }
  if (incoming.deleted != incumbent.deleted) return incoming.deleted;
  if (incoming.kind != incumbent.kind) {
    return incoming.kind == EntryKind::kDirectory;
  }
  return false;
}

// Strict weak order matching the merge rank: a < b iff b supersedes a.
// For one name, equal rank implies equal tuple, so a rank-sorted vector
// with exact-duplicate suppression holds each historic tuple once.
bool RankLess(const RingTuple& a, const RingTuple& b) {
  return Supersedes(b, a);
}

bool ParseSignedNanos(std::string_view field, VirtualNanos* out) {
  bool negative = false;
  if (!field.empty() && field[0] == '-') {
    negative = true;
    field.remove_prefix(1);
  }
  std::uint64_t magnitude = 0;
  if (!ParseUint64(field, &magnitude)) return false;
  *out = negative ? -static_cast<VirtualNanos>(magnitude)
                  : static_cast<VirtualNanos>(magnitude);
  return true;
}

Status ParseTupleFields(const std::vector<std::string>& fields,
                        std::size_t offset, RingTuple* tuple) {
  tuple->name = fields[offset];
  if (!ParseSignedNanos(fields[offset + 1], &tuple->timestamp)) {
    return Status::Corruption("bad timestamp in NameRing tuple");
  }
  if (fields[offset + 2] == "D") {
    tuple->kind = EntryKind::kDirectory;
  } else if (fields[offset + 2] == "F") {
    tuple->kind = EntryKind::kFile;
  } else {
    return Status::Corruption("bad kind in NameRing tuple");
  }
  if (fields[offset + 3] == "X") {
    tuple->deleted = true;
  } else if (!fields[offset + 3].empty()) {
    return Status::Corruption("bad flag in NameRing tuple");
  } else {
    tuple->deleted = false;
  }
  return Status::Ok();
}

}  // namespace

void NameRing::RecordHistory(RingTuple tuple) {
  std::vector<RingTuple>& vec = history_[tuple.name];
  auto pos = std::lower_bound(vec.begin(), vec.end(), tuple, RankLess);
  if (pos != vec.end() && *pos == tuple) return;  // idempotent re-merge
  vec.insert(pos, std::move(tuple));
}

bool NameRing::Apply(RingTuple tuple) {
  if (tuple.timestamp > dir_version_) dir_version_ = tuple.timestamp;
  auto it = tuples_.find(tuple.name);
  if (it == tuples_.end()) {
    tuples_.emplace(tuple.name, std::move(tuple));
    return true;
  }
  if (Supersedes(tuple, it->second)) {
    RecordHistory(std::move(it->second));
    it->second = std::move(tuple);
    return true;
  }
  // A losing tuple is still part of the directory's history: recording it
  // here makes {current} ∪ {history} -- and every versioned read -- a set
  // union, independent of the order patches arrive in.
  if (!(tuple == it->second)) RecordHistory(std::move(tuple));
  return false;
}

const RingTuple* NameRing::Find(std::string_view name) const {
  auto it = tuples_.find(name);
  return it == tuples_.end() ? nullptr : &it->second;
}

bool NameRing::HasLive(std::string_view name) const {
  const RingTuple* t = Find(name);
  return t != nullptr && !t->deleted;
}

std::size_t NameRing::Merge(const NameRing& patch) {
  std::size_t changed = 0;
  for (const auto& [name, tuple] : patch.tuples_) {
    if (Apply(tuple)) ++changed;
  }
  for (const auto& [name, vec] : patch.history_) {
    for (const RingTuple& tuple : vec) RecordHistory(tuple);
  }
  for (const auto& [node, patch_no] : patch.versions_) {
    auto [it, inserted] = versions_.try_emplace(node, patch_no);
    if (!inserted && patch_no > it->second) it->second = patch_no;
  }
  if (patch.dir_version_ > dir_version_) dir_version_ = patch.dir_version_;
  if (patch.history_floor_ > history_floor_) {
    history_floor_ = patch.history_floor_;
  }
  // Re-normalize against the merged floor: a side that had already folded
  // its history must not have it re-imported by a side that had not, or
  // replicas would converge to different rings depending on fold timing.
  if (history_floor_ > 0) CompactHistory(history_floor_);
  return changed;
}

std::size_t NameRing::Compact() {
  // "All tombstones" still stops at the oldest pin: a tombstone newer than
  // a pinned version is part of that pinned view's history.
  return PruneTombstones(std::numeric_limits<VirtualNanos>::max());
}

std::vector<RingTuple> NameRing::AllTuples() const {
  std::vector<RingTuple> out;
  out.reserve(tuples_.size());
  for (const auto& [name, tuple] : tuples_) out.push_back(tuple);
  return out;
}

VirtualNanos NameRing::ClampToPins(VirtualNanos cutoff) const {
  if (pins_.empty()) return cutoff;
  return std::min(cutoff, pins_.begin()->first);
}

std::size_t NameRing::PruneTombstones(VirtualNanos cutoff) {
  cutoff = ClampToPins(cutoff);
  std::size_t removed = 0;
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (it->second.deleted && it->second.timestamp <= cutoff) {
      if (it->second.timestamp > history_floor_) {
        history_floor_ = it->second.timestamp;
      }
      history_.erase(it->first);
      it = tuples_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<RingTuple> NameRing::LiveChildren() const {
  std::vector<RingTuple> out;
  out.reserve(tuples_.size());
  for (const auto& [name, tuple] : tuples_) {
    if (!tuple.deleted) out.push_back(tuple);
  }
  return out;
}

std::size_t NameRing::live_count() const {
  std::size_t n = 0;
  for (const auto& [name, tuple] : tuples_) {
    if (!tuple.deleted) ++n;
  }
  return n;
}

void NameRing::BumpVersion(VirtualNanos version) {
  if (version > dir_version_) dir_version_ = version;
}

std::size_t NameRing::history_count() const {
  std::size_t n = 0;
  for (const auto& [name, vec] : history_) n += vec.size();
  return n;
}

Result<std::optional<RingTuple>> NameRing::FindAt(std::string_view name,
                                                  VirtualNanos version) const {
  if (version < history_floor_) {
    return Status::InvalidArgument(
        "version below the NameRing history floor (compacted away)");
  }
  std::optional<RingTuple> best;
  auto consider = [&](const RingTuple& t) {
    if (t.timestamp > version) return;
    if (!best.has_value() || Supersedes(t, *best)) best = t;
  };
  if (auto it = tuples_.find(name); it != tuples_.end()) consider(it->second);
  if (auto hit = history_.find(name); hit != history_.end()) {
    for (const RingTuple& t : hit->second) consider(t);
  }
  return best;
}

Result<std::vector<RingTuple>> NameRing::LiveChildrenAt(
    VirtualNanos version) const {
  if (version < history_floor_) {
    return Status::InvalidArgument(
        "version below the NameRing history floor (compacted away)");
  }
  std::vector<RingTuple> out;
  // Every historic name also has a current tuple (see the history_
  // invariant), so the current map enumerates every candidate name.
  for (const auto& [name, current] : tuples_) {
    std::optional<RingTuple> best;
    auto consider = [&](const RingTuple& t) {
      if (t.timestamp > version) return;
      if (!best.has_value() || Supersedes(t, *best)) best = t;
    };
    consider(current);
    if (auto hit = history_.find(name); hit != history_.end()) {
      for (const RingTuple& t : hit->second) consider(t);
    }
    if (best.has_value() && !best->deleted) out.push_back(*best);
  }
  return out;
}

void NameRing::Pin(VirtualNanos version) { ++pins_[version]; }

bool NameRing::Unpin(VirtualNanos version) {
  auto it = pins_.find(version);
  if (it == pins_.end()) return false;
  if (--it->second == 0) pins_.erase(it);
  return true;
}

std::uint64_t NameRing::pin_count() const {
  std::uint64_t n = 0;
  for (const auto& [version, count] : pins_) n += count;
  return n;
}

std::size_t NameRing::CompactHistory(VirtualNanos cutoff) {
  cutoff = ClampToPins(cutoff);
  std::size_t dropped = 0;
  for (auto it = history_.begin(); it != history_.end();) {
    std::vector<RingTuple>& vec = it->second;
    // Rank order makes timestamps non-decreasing, so the foldable tuples
    // (ts <= cutoff) form a prefix.
    std::size_t old_count = 0;
    while (old_count < vec.size() && vec[old_count].timestamp <= cutoff) {
      ++old_count;
    }
    if (old_count > 0) {
      // While the current tuple is newer than the cutoff, the highest
      // ranked old tuple is still visible exactly at the new floor: keep
      // it as the base.  Otherwise the current tuple covers the floor.
      auto cur = tuples_.find(it->first);
      bool base_needed =
          cur != tuples_.end() && cur->second.timestamp > cutoff;
      std::size_t erase_n = base_needed ? old_count - 1 : old_count;
      if (erase_n > 0) {
        vec.erase(vec.begin(),
                  vec.begin() + static_cast<std::ptrdiff_t>(erase_n));
        dropped += erase_n;
      }
    }
    if (vec.empty()) {
      it = history_.erase(it);
    } else {
      ++it;
    }
  }
  VirtualNanos new_floor = std::min(cutoff, dir_version_);
  if (new_floor > history_floor_) history_floor_ = new_floor;
  return dropped;
}

void NameRing::NoteMerged(std::uint32_t node, std::uint64_t patch_no) {
  auto [it, inserted] = versions_.try_emplace(node, patch_no);
  if (!inserted && patch_no > it->second) it->second = patch_no;
}

std::uint64_t NameRing::MergedUpTo(std::uint32_t node) const {
  auto it = versions_.find(node);
  return it == versions_.end() ? 0 : it->second;
}

std::string NameRing::Serialize() const {
  std::string out;
  char buf[32];
  if (dir_version_ != 0) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(dir_version_));
    out += kDvPrefix;
    out += '|';
    out += buf;
    out.push_back('\n');
  }
  if (history_floor_ != 0) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(history_floor_));
    out += kFloorPrefix;
    out += '|';
    out += buf;
    out.push_back('\n');
  }
  for (const auto& [version, count] : pins_) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(version));
    std::string line(kPinPrefix);
    line += '|';
    line += buf;
    line += '|';
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(count));
    line += buf;
    out += line;
    out.push_back('\n');
  }
  for (const auto& [node, patch_no] : versions_) {
    std::snprintf(buf, sizeof(buf), "%u", node);
    std::string line(kVvPrefix);
    line += '|';
    line += buf;
    line += '|';
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(patch_no));
    line += buf;
    out += line;
    out.push_back('\n');
  }
  for (const auto& [name, tuple] : tuples_) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(tuple.timestamp));
    out += MakeTupleLine({name, buf, KindCode(tuple.kind),
                          tuple.deleted ? "X" : ""});
    out.push_back('\n');
  }
  for (const auto& [name, vec] : history_) {
    for (const RingTuple& tuple : vec) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(tuple.timestamp));
      out += MakeTupleLine({std::string(kHistPrefix), name, buf,
                            KindCode(tuple.kind), tuple.deleted ? "X" : ""});
      out.push_back('\n');
    }
  }
  return out;
}

Result<NameRing> NameRing::Parse(std::string_view data) {
  NameRing ring;
  for (auto line : Split(data, '\n')) {
    if (line.empty()) continue;
    H2_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        ParseTupleLine(line));
    if (!fields.empty() && fields[0] == kVvPrefix) {
      if (fields.size() != 3) {
        return Status::Corruption("bad version-vector line in NameRing");
      }
      std::uint64_t node = 0, patch_no = 0;
      if (!ParseUint64(fields[1], &node) ||
          !ParseUint64(fields[2], &patch_no) || node > 0xffffffffULL) {
        return Status::Corruption("bad version-vector values in NameRing");
      }
      ring.versions_[static_cast<std::uint32_t>(node)] = patch_no;
      continue;
    }
    if (!fields.empty() &&
        (fields[0] == kDvPrefix || fields[0] == kFloorPrefix)) {
      if (fields.size() != 2) {
        return Status::Corruption("bad version line in NameRing");
      }
      VirtualNanos value = 0;
      if (!ParseSignedNanos(fields[1], &value)) {
        return Status::Corruption("bad version value in NameRing");
      }
      if (fields[0] == kDvPrefix) {
        if (value > ring.dir_version_) ring.dir_version_ = value;
      } else if (value > ring.history_floor_) {
        ring.history_floor_ = value;
      }
      continue;
    }
    if (!fields.empty() && fields[0] == kPinPrefix) {
      if (fields.size() != 3) {
        return Status::Corruption("bad pin line in NameRing");
      }
      VirtualNanos version = 0;
      std::uint64_t count = 0;
      if (!ParseSignedNanos(fields[1], &version) ||
          !ParseUint64(fields[2], &count) || count == 0) {
        return Status::Corruption("bad pin values in NameRing");
      }
      ring.pins_[version] += count;
      continue;
    }
    if (!fields.empty() && fields[0] == kHistPrefix) {
      if (fields.size() != 5) {
        return Status::Corruption("bad history line in NameRing");
      }
      RingTuple tuple;
      H2_RETURN_IF_ERROR(ParseTupleFields(fields, 1, &tuple));
      ring.RecordHistory(std::move(tuple));
      continue;
    }
    if (fields.size() != 4) {
      return Status::Corruption("bad tuple line in NameRing");
    }
    RingTuple tuple;
    H2_RETURN_IF_ERROR(ParseTupleFields(fields, 0, &tuple));
    if (tuple.timestamp > ring.dir_version_) {
      ring.dir_version_ = tuple.timestamp;
    }
    ring.tuples_[tuple.name] = std::move(tuple);
  }
  return ring;
}

}  // namespace h2
