#include "h2/web_api.h"

#include "codec/formatter.h"
#include "common/strings.h"

namespace h2 {
namespace {

void AttachCost(HttpResponse* response, const OpCost& cost) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", cost.elapsed_ms());
  response->headers["x-op-ms"] = buf;
  response->headers["x-op-primitives"] =
      std::to_string(cost.object_primitives());
}

std::string EncodeEntries(const std::vector<DirEntry>& entries,
                          ListDetail detail) {
  std::string out;
  for (const DirEntry& e : entries) {
    if (detail == ListDetail::kNamesOnly) {
      out += MakeTupleLine(
          {e.name, e.kind == EntryKind::kDirectory ? "D" : "F"});
    } else {
      out += MakeTupleLine(
          {e.name, e.kind == EntryKind::kDirectory ? "D" : "F",
           std::to_string(e.size), std::to_string(e.modified)});
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace

Result<NamespaceId> H2WebApi::RootFor(const std::string& user) {
  {
    H2MutexLock lock(mu_);
    auto it = roots_.find(user);
    if (it != roots_.end()) return it->second;
  }
  OpMeter meter;
  H2_ASSIGN_OR_RETURN(NamespaceId root,
                      cloud_.middleware(0).AccountRoot(user, meter));
  H2MutexLock lock(mu_);
  roots_[user] = root;
  return root;
}

HttpResponse H2WebApi::Handle(const HttpRequest& request) {
  Result<std::string> decoded = UrlDecode(request.Path());
  if (!decoded.ok()) {
    return HttpResponse::Text(400, "malformed target encoding");
  }
  const std::string& path = *decoded;

  // /v1/accounts/{user}
  static constexpr std::string_view kAccounts = "/v1/accounts/";
  if (StartsWith(path, kAccounts)) {
    const std::string user = path.substr(kAccounts.size());
    if (user.empty() || user.find('/') != std::string::npos) {
      return HttpResponse::Text(400, "bad account name");
    }
    return HandleAccounts(request, user);
  }

  // /v1/{user}/fs{path}
  static constexpr std::string_view kV1 = "/v1/";
  if (StartsWith(path, kV1)) {
    const std::size_t user_start = kV1.size();
    const std::size_t slash = path.find('/', user_start);
    if (slash != std::string::npos) {
      const std::string user = path.substr(user_start, slash - user_start);
      std::string_view rest = std::string_view(path).substr(slash);
      if (StartsWith(rest, "/fs/") || rest == "/fs") {
        std::string fs_path(rest.substr(3));
        if (fs_path.empty()) fs_path = "/";
        return HandleFs(request, user, fs_path);
      }
    }
  }
  return HttpResponse::Text(404, "no such route");
}

HttpResponse H2WebApi::HandleAccounts(const HttpRequest& request,
                                      const std::string& user) {
  OpMeter meter;
  if (request.method == "PUT") {
    const Status st = cloud_.middleware(0).CreateAccount(user, meter);
    HttpResponse response = HttpResponse::FromStatus(st, "created\n");
    if (st.ok()) response.status = 201;
    AttachCost(&response, meter.cost());
    return response;
  }
  if (request.method == "DELETE") {
    const Status st = cloud_.middleware(0).DeleteAccount(user, meter);
    {
      H2MutexLock lock(mu_);
      roots_.erase(user);
    }
    HttpResponse response = HttpResponse::FromStatus(st, "deleted\n");
    AttachCost(&response, meter.cost());
    return response;
  }
  return HttpResponse::Text(405, "use PUT or DELETE");
}

HttpResponse H2WebApi::HandleFs(const HttpRequest& request,
                                const std::string& user,
                                const std::string& path) {
  Result<NamespaceId> root = RootFor(user);
  if (!root.ok()) {
    return HttpResponse::FromStatus(root.status());
  }
  // A fresh session per request: sessions are single-threaded, requests
  // are not.
  H2AccountFs fs(cloud_.middleware(0), user, *root);

  auto finish = [&fs](Status st, std::string ok_body = "") {
    HttpResponse response = HttpResponse::FromStatus(st, std::move(ok_body));
    AttachCost(&response, fs.last_op());
    return response;
  };

  if (request.method == "GET") {
    const std::string list = request.Query("list");
    if (!list.empty()) {
      const ListDetail detail =
          list == "detail" ? ListDetail::kDetailed : ListDetail::kNamesOnly;
      const std::string limit_str = request.Query("limit");
      if (!limit_str.empty() || !request.Query("marker").empty()) {
        // Paged listing, Swift-style: ?list=names&marker=<name>&limit=N.
        std::uint64_t limit = 1000;
        if (!limit_str.empty() && !ParseUint64(limit_str, &limit)) {
          return HttpResponse::Text(400, "bad limit");
        }
        Result<std::string> marker = UrlDecode(request.Query("marker"));
        if (!marker.ok()) return HttpResponse::Text(400, "bad marker");
        auto page = fs.ListPaged(path, detail, *marker,
                                 static_cast<std::size_t>(limit));
        if (!page.ok()) return finish(page.status());
        HttpResponse response = HttpResponse::Text(
            200, EncodeEntries(page->entries, detail));
        if (page->truncated) {
          response.headers["x-next-marker"] = UrlEncode(page->next_marker);
        }
        AttachCost(&response, fs.last_op());
        return response;
      }
      auto entries = fs.List(path, detail);
      if (!entries.ok()) return finish(entries.status());
      return finish(Status::Ok(), EncodeEntries(*entries, detail));
    }
    if (!request.Query("stat").empty()) {
      auto info = fs.Stat(path);
      if (!info.ok()) return finish(info.status());
      KvRecord record;
      record.Set("kind", info->kind == EntryKind::kDirectory ? "dir"
                                                             : "file");
      record.SetUint("size", info->size);
      record.SetInt("created", info->created);
      record.SetInt("modified", info->modified);
      return finish(Status::Ok(), record.Serialize());
    }
    auto blob = fs.ReadFile(path);
    if (!blob.ok()) return finish(blob.status());
    HttpResponse response = HttpResponse::Text(200, std::move(blob->data));
    response.headers["x-logical-size"] = std::to_string(blob->logical_size);
    AttachCost(&response, fs.last_op());
    return response;
  }

  if (request.method == "PUT") {
    FileBlob blob = FileBlob::FromString(request.body);
    const std::string& declared = request.Header("x-logical-size");
    if (!declared.empty()) {
      std::uint64_t size = 0;
      if (!ParseUint64(declared, &size)) {
        return HttpResponse::Text(400, "bad x-logical-size");
      }
      blob.logical_size = size;
    }
    return finish(fs.WriteFile(path, std::move(blob)), "written\n");
  }

  if (request.method == "DELETE") {
    if (!request.Query("dir").empty()) {
      return finish(fs.Rmdir(path), "removed\n");
    }
    return finish(fs.RemoveFile(path), "removed\n");
  }

  if (request.method == "POST") {
    const std::string& op = request.Header("x-op");
    if (op == "mkdir") return finish(fs.Mkdir(path), "created\n");
    if (op == "move" || op == "copy") {
      Result<std::string> dest = UrlDecode(request.Header("x-dest"));
      if (!dest.ok() || dest->empty()) {
        return HttpResponse::Text(400, "missing or malformed x-dest");
      }
      if (op == "move") return finish(fs.Move(path, *dest), "moved\n");
      return finish(fs.Copy(path, *dest), "copied\n");
    }
    if (op == "rename") {
      Result<std::string> name = UrlDecode(request.Header("x-name"));
      if (!name.ok() || name->empty()) {
        return HttpResponse::Text(400, "missing or malformed x-name");
      }
      return finish(fs.Rename(path, *name), "renamed\n");
    }
    return HttpResponse::Text(400, "unknown x-op");
  }

  return HttpResponse::Text(405, "unsupported method");
}

Status H2WebApi::StartServer(std::uint16_t port) {
  if (server_ != nullptr) return Status::AlreadyExists("server running");
  server_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); });
  const Status st = server_->Start(port);
  if (!st.ok()) server_.reset();
  return st;
}

void H2WebApi::StopServer() {
  if (server_ != nullptr) {
    server_->Stop();
    server_.reset();
  }
}

}  // namespace h2
