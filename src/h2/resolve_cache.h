#ifndef H2_H2_RESOLVE_CACHE_H_
#define H2_H2_RESOLVE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "h2/name_ring.h"
#include "h2/records.h"
#include "hash/uuid.h"

namespace h2 {

// Versioned cache for the middleware's directory-resolution hot path.
//
// Two bounded LRUs:
//   * child map:  (parent namespace, child name) -> DirRecord, so
//     ResolvePath/Stat skip the per-component cloud GET for warm paths.
//   * ring map:   namespace -> merged NameRing snapshot, so List/readdir
//     skip re-fetching and re-merging an unchanged directory.
//
// Instead of TTLs, every namespace carries two revision counters drawn
// from one global monotonic counter:
//   * child_rev(ns) advances when the *membership* of ns may have changed
//     in a way the precise EraseChild/PutChild calls cannot capture
//     (remote rumor, gossip repair, recovery, lazy cleanup).
//   * ring_rev(ns) advances whenever the merged ring for ns may differ
//     (any local patch submit, merge, compaction, or remote change).
// Fills that straddle cloud I/O snapshot the revision first and are
// dropped if it moved, so a racing invalidation can never be overwritten
// by a stale read (no ABA: revisions never repeat, even across eviction
// of the revision entries themselves).
//
// Internally synchronized: every method takes the cache's own mutex, so
// each lookup, admit, and invalidation is one atomic critical section.
// The owning middleware's mutex is NOT a substitute -- gossip handlers
// and background mergers invalidate from other threads, and an
// externally-locked cache let a reader's revision check and its LRU
// admit interleave with a concurrent invalidation (admitting an entry
// the invalidation had already killed).  The revision-vector protocol
// above still carries the cross-I/O half of the race: snapshot the rev
// BEFORE the cloud read, and the matching Put atomically re-checks it
// under mu_.  Methods never call out while holding mu_ (leaf lock).
class H2ResolveCache {
 public:
  H2ResolveCache(std::size_t child_capacity, std::size_t ring_capacity);

  // -- revision snapshots (take BEFORE issuing the cloud read/write that
  //    produces the value handed to the matching Put) --
  std::uint64_t ChildRev(const NamespaceId& ns) const;
  std::uint64_t RingRev(const NamespaceId& ns) const;

  // -- child records --
  std::optional<DirRecord> GetChild(const NamespaceId& parent,
                                    const std::string& name);
  // Inserts only if child_rev(parent) still equals `rev_snapshot`.
  void PutChild(const NamespaceId& parent, const std::string& name,
                const DirRecord& record, std::uint64_t rev_snapshot);
  // Precisely drops one child entry and bumps child_rev(parent) so
  // in-flight fills for that parent are discarded too.
  void EraseChild(const NamespaceId& parent, const std::string& name);

  // -- merged ring snapshots --
  std::optional<NameRing> GetRing(const NamespaceId& ns);
  // Inserts only if ring_rev(ns) still equals `rev_snapshot`.
  void PutRing(const NamespaceId& ns, const NameRing& ring,
               std::uint64_t rev_snapshot);

  // A local patch/merge/compaction changed the merged ring of `ns` but
  // the child membership deltas were applied precisely by the caller.
  void InvalidateRing(const NamespaceId& ns);
  // Anything about `ns` may have changed (remote rumor, repair, cleanup):
  // drop the ring snapshot and all child entries under `ns`.
  void InvalidateNamespace(const NamespaceId& ns);

  void Clear();

  // Cluster membership changed (ring epoch bump learned over gossip or
  // locally).  Cached records may now route to retired replicas, so the
  // whole cache is flushed -- but only once per epoch: late or duplicate
  // rumors for an already-observed epoch are no-ops.
  void OnTopologyEpoch(std::uint64_t epoch);
  /// Highest membership epoch this cache has flushed for.
  std::uint64_t topology_epoch() const {
    std::lock_guard lock(mu_);
    return topology_epoch_;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t epoch_flushes = 0;  // whole-cache drops on membership
  };
  /// Coherent snapshot (by value: a reference would be read outside mu_).
  Stats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

  std::size_t child_entries() const {
    std::lock_guard lock(mu_);
    return child_map_.size();
  }
  std::size_t ring_entries() const {
    std::lock_guard lock(mu_);
    return ring_map_.size();
  }

 private:
  struct ChildEntry {
    NamespaceId parent;
    std::string key;  // ChildKey(parent, name)
    DirRecord record;
  };
  struct RingEntry {
    NamespaceId ns;
    NameRing ring;
  };
  using ChildList = std::list<ChildEntry>;
  using RingList = std::list<RingEntry>;

  // Internal helpers run under mu_ (held by the public entry points).
  void ClearLocked();
  std::uint64_t NextRev() { return ++rev_counter_; }
  std::uint64_t ChildRevLocked(const NamespaceId& ns) const;
  std::uint64_t RingRevLocked(const NamespaceId& ns) const;
  void InvalidateRingLocked(const NamespaceId& ns);
  void BumpChildRev(const NamespaceId& ns);
  void BumpRingRev(const NamespaceId& ns);
  void TrimRevMaps();

  std::size_t child_capacity_;
  std::size_t ring_capacity_;

  mutable std::mutex mu_;  // guards everything below; leaf lock

  ChildList child_lru_;  // front = most recent
  std::unordered_map<std::string, ChildList::iterator> child_map_;
  RingList ring_lru_;
  std::unordered_map<NamespaceId, RingList::iterator> ring_map_;

  // Revisions are minted from one global counter, and namespaces with no
  // entry read `rev_floor_` (raised whenever entries are forgotten), so a
  // forgotten revision can only cause spurious misses, never false hits.
  std::uint64_t rev_counter_ = 0;
  std::uint64_t rev_floor_ = 0;
  std::uint64_t topology_epoch_ = 0;  // highest membership epoch flushed
  std::unordered_map<NamespaceId, std::uint64_t> child_revs_;
  std::unordered_map<NamespaceId, std::uint64_t> ring_revs_;

  Stats stats_;
};

}  // namespace h2

#endif  // H2_H2_RESOLVE_CACHE_H_
