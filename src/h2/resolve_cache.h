#ifndef H2_H2_RESOLVE_CACHE_H_
#define H2_H2_RESOLVE_CACHE_H_

#include <cstdint>
#include <limits>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "h2/name_ring.h"
#include "h2/records.h"
#include "hash/uuid.h"

namespace h2 {

// Directory-version cache for the middleware's resolution hot path.
//
// Two bounded LRUs:
//   * child map:  (parent namespace, child name) -> DirRecord, so
//     ResolvePath/Stat skip the per-component cloud GET for warm paths.
//   * ring map:   namespace -> merged NameRing snapshot, so List/readdir
//     skip re-fetching and re-merging an unchanged directory.
//
// Invalidation rides the DirVersion that versioned NameRings already
// carry (DESIGN.md §13) instead of a side channel of revision counters:
//
//   * Ring entries are *self-validating*.  Every NameRing knows its own
//     dir_version, and the cache keeps a per-namespace floor -- the
//     highest version announced for that directory by a patch submit,
//     merge, compaction or gossip rumor (NoteRingVersion/NoteVersion).
//     PutRing admits a ring iff its dir_version has reached the floor, so
//     a fill racing an invalidation is rejected by the value itself; no
//     pre-read snapshot is needed on the ring path at all.
//   * Child records carry no intrinsic version, so that path keeps the
//     snapshot-before-GET shape with the floor as the fence: take
//     ChildFloor(parent) before the cloud read, and the matching PutChild
//     is dropped if the floor moved.  The child floor advances with the
//     announced directory version (NoteVersion) and by a minimal step on
//     precise single-child erases, so it is monotone in version units.
//
// Retire(ns) pins both floors at the maximum version for namespaces torn
// down by lazy cleanup (namespaces are minted once and never reused).
// Floor maps are bounded: on overflow everything is forgotten and a
// global floor rises to the highest version ever noted, which can only
// turn would-be hits into spurious misses, never admit stale data.
//
// Internally synchronized: every method takes the cache's own mutex, so
// each lookup, admit, and invalidation is one atomic critical section.
// The owning middleware's mutex is NOT a substitute -- gossip handlers
// and background mergers invalidate from other threads.  Methods never
// call out while holding mu_ (leaf lock).
class H2ResolveCache {
 public:
  /// Floor value used for retired (deleted) namespaces.
  static constexpr VirtualNanos kRetired =
      std::numeric_limits<VirtualNanos>::max();

  H2ResolveCache(std::size_t child_capacity, std::size_t ring_capacity);

  // -- version floors --------------------------------------------------------
  /// Child-path fence for `ns`.  Take BEFORE issuing the cloud read that
  /// produces the record handed to the matching PutChild.
  VirtualNanos ChildFloor(const NamespaceId& ns) const;
  /// Lowest dir_version a ring fill for `ns` may carry.
  VirtualNanos RingFloor(const NamespaceId& ns) const;

  /// The merged ring of `ns` has (or will have) dir_version >= `version`
  /// (local patch submit, merge, compaction, or a gossiped announce), but
  /// the child record objects under `ns` are untouched: raises the ring
  /// floor and drops a cached ring that is older than `version`.
  void NoteRingVersion(const NamespaceId& ns, VirtualNanos version);
  /// Anything under `ns` may have changed at `version` (remote rumor,
  /// gossip repair, recovery): NoteRingVersion plus child-floor raise and
  /// a drop of every cached child entry under `ns`.
  void NoteVersion(const NamespaceId& ns, VirtualNanos version);
  /// `ns` was deleted; namespaces are never reused, so both floors pin at
  /// kRetired and nothing under `ns` is ever admitted again.
  void Retire(const NamespaceId& ns);

  // -- child records ---------------------------------------------------------
  std::optional<DirRecord> GetChild(const NamespaceId& parent,
                                    const std::string& name);
  // Inserts only if ChildFloor(parent) still equals `floor_snapshot`.
  void PutChild(const NamespaceId& parent, const std::string& name,
                const DirRecord& record, VirtualNanos floor_snapshot);
  // Precisely drops one child entry; the child floor takes a minimal step
  // so in-flight fills for that parent are discarded too.
  void EraseChild(const NamespaceId& parent, const std::string& name);

  // -- merged ring snapshots -------------------------------------------------
  std::optional<NameRing> GetRing(const NamespaceId& ns);
  // Inserts only if `ring.dir_version()` has reached RingFloor(ns): the
  // version carried by the value is the admission check.
  void PutRing(const NamespaceId& ns, const NameRing& ring);

  void Clear();

  // Cluster membership changed (ring epoch bump learned over gossip or
  // locally).  Cached records may now route to retired replicas, so the
  // whole cache is flushed -- but only once per epoch: late or duplicate
  // rumors for an already-observed epoch are no-ops.
  void OnTopologyEpoch(std::uint64_t epoch);
  /// Highest membership epoch this cache has flushed for.
  std::uint64_t topology_epoch() const {
    std::lock_guard lock(mu_);
    return topology_epoch_;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t epoch_flushes = 0;  // whole-cache drops on membership
  };
  /// Coherent snapshot (by value: a reference would be read outside mu_).
  Stats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

  std::size_t child_entries() const {
    std::lock_guard lock(mu_);
    return child_map_.size();
  }
  std::size_t ring_entries() const {
    std::lock_guard lock(mu_);
    return ring_map_.size();
  }

 private:
  struct ChildEntry {
    NamespaceId parent;
    std::string key;  // ChildKey(parent, name)
    DirRecord record;
  };
  struct RingEntry {
    NamespaceId ns;
    NameRing ring;
  };
  using ChildList = std::list<ChildEntry>;
  using RingList = std::list<RingEntry>;

  // Internal helpers run under mu_ (held by the public entry points).
  void ClearLocked();
  VirtualNanos ChildFloorLocked(const NamespaceId& ns) const;
  VirtualNanos RingFloorLocked(const NamespaceId& ns) const;
  void NoteRingVersionLocked(const NamespaceId& ns, VirtualNanos version);
  void RaiseChildFloorLocked(const NamespaceId& ns, VirtualNanos version);
  void DropChildrenLocked(const NamespaceId& ns);
  void TrimFloorMaps();

  std::size_t child_capacity_;
  std::size_t ring_capacity_;

  mutable std::mutex mu_;  // guards everything below; leaf lock

  ChildList child_lru_;  // front = most recent
  std::unordered_map<std::string, ChildList::iterator> child_map_;
  RingList ring_lru_;
  std::unordered_map<NamespaceId, RingList::iterator> ring_map_;

  // Per-namespace version floors; namespaces with no entry read the
  // global floor.  The global floor rises to the highest version ever
  // noted whenever per-namespace entries are forgotten, so a forgotten
  // floor can only cause spurious misses, never false hits.
  VirtualNanos global_floor_ = 0;
  VirtualNanos max_noted_ = 0;  // highest version ever noted/fenced
  std::uint64_t topology_epoch_ = 0;  // highest membership epoch flushed
  std::unordered_map<NamespaceId, VirtualNanos> child_floors_;
  std::unordered_map<NamespaceId, VirtualNanos> ring_floors_;

  Stats stats_;
};

}  // namespace h2

#endif  // H2_H2_RESOLVE_CACHE_H_
