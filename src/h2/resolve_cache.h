#ifndef H2_H2_RESOLVE_CACHE_H_
#define H2_H2_RESOLVE_CACHE_H_

#include <cstdint>
#include <limits>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "h2/name_ring.h"
#include "h2/records.h"
#include "hash/uuid.h"

namespace h2 {

// Directory-version cache for the middleware's resolution hot path.
//
// Two bounded LRUs:
//   * child map:  (parent namespace, child name) -> DirRecord, so
//     ResolvePath/Stat skip the per-component cloud GET for warm paths.
//   * ring map:   namespace -> merged NameRing snapshot, so List/readdir
//     skip re-fetching and re-merging an unchanged directory.
//
// Invalidation rides the DirVersion that versioned NameRings already
// carry (DESIGN.md §13) instead of a side channel of revision counters:
//
//   * Ring entries are *self-validating*.  Every NameRing knows its own
//     dir_version, and the cache keeps a per-namespace floor -- the
//     highest version announced for that directory by a patch submit,
//     merge, compaction or gossip rumor (NoteRingVersion/NoteVersion).
//     PutRing admits a ring iff its dir_version has reached the floor, so
//     a fill racing an invalidation is rejected by the value itself; no
//     pre-read snapshot is needed on the ring path at all.
//   * Child records carry no intrinsic version, so that path keeps the
//     snapshot-before-GET shape with the floor as the fence: take
//     ChildFloor(parent) before the cloud read, and the matching PutChild
//     is dropped if the floor moved.  The child floor advances with the
//     announced directory version (NoteVersion) and by a minimal step on
//     precise single-child erases, so it is monotone in version units.
//
// Retire(ns) pins both floors at the maximum version for namespaces torn
// down by lazy cleanup (namespaces are minted once and never reused).
// Floor maps are bounded: on overflow everything is forgotten and a
// global floor rises to the highest version ever noted, which can only
// turn would-be hits into spurious misses, never admit stale data.
//
// Internally synchronized: every member below is GUARDED_BY(mu_) and
// every public method takes mu_ itself (the EXCLUDES annotations), so
// each lookup, admit, and invalidation is one atomic critical section.
// The owning middleware's mutex is NOT a substitute -- gossip handlers
// and background mergers invalidate from other threads.  mu_ is a leaf
// in tools/lock_hierarchy.txt: methods never call out while holding it.
class H2ResolveCache {
 public:
  /// Floor value used for retired (deleted) namespaces.
  static constexpr VirtualNanos kRetired =
      std::numeric_limits<VirtualNanos>::max();

  H2ResolveCache(std::size_t child_capacity, std::size_t ring_capacity);

  // -- version floors --------------------------------------------------------
  /// Child-path fence for `ns`.  Take BEFORE issuing the cloud read that
  /// produces the record handed to the matching PutChild.
  VirtualNanos ChildFloor(const NamespaceId& ns) const EXCLUDES(mu_);
  /// Lowest dir_version a ring fill for `ns` may carry.
  VirtualNanos RingFloor(const NamespaceId& ns) const EXCLUDES(mu_);

  /// The merged ring of `ns` has (or will have) dir_version >= `version`
  /// (local patch submit, merge, compaction, or a gossiped announce), but
  /// the child record objects under `ns` are untouched: raises the ring
  /// floor and drops a cached ring that is older than `version`.
  void NoteRingVersion(const NamespaceId& ns, VirtualNanos version)
      EXCLUDES(mu_);
  /// Anything under `ns` may have changed at `version` (remote rumor,
  /// gossip repair, recovery): NoteRingVersion plus child-floor raise and
  /// a drop of every cached child entry under `ns`.
  void NoteVersion(const NamespaceId& ns, VirtualNanos version)
      EXCLUDES(mu_);
  /// `ns` was deleted; namespaces are never reused, so both floors pin at
  /// kRetired and nothing under `ns` is ever admitted again.
  void Retire(const NamespaceId& ns) EXCLUDES(mu_);

  // -- child records ---------------------------------------------------------
  std::optional<DirRecord> GetChild(const NamespaceId& parent,
                                    const std::string& name) EXCLUDES(mu_);
  // Inserts only if ChildFloor(parent) still equals `floor_snapshot`.
  void PutChild(const NamespaceId& parent, const std::string& name,
                const DirRecord& record, VirtualNanos floor_snapshot)
      EXCLUDES(mu_);
  // Precisely drops one child entry; the child floor takes a minimal step
  // so in-flight fills for that parent are discarded too.
  void EraseChild(const NamespaceId& parent, const std::string& name)
      EXCLUDES(mu_);

  // -- merged ring snapshots -------------------------------------------------
  std::optional<NameRing> GetRing(const NamespaceId& ns) EXCLUDES(mu_);
  // Inserts only if `ring.dir_version()` has reached RingFloor(ns): the
  // version carried by the value is the admission check.
  void PutRing(const NamespaceId& ns, const NameRing& ring)
      EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

  // Cluster membership changed (ring epoch bump learned over gossip or
  // locally).  Cached records may now route to retired replicas, so the
  // whole cache is flushed -- but only once per epoch: late or duplicate
  // rumors for an already-observed epoch are no-ops.
  void OnTopologyEpoch(std::uint64_t epoch) EXCLUDES(mu_);
  /// Highest membership epoch this cache has flushed for.
  std::uint64_t topology_epoch() const {
    H2MutexLock lock(mu_);
    return topology_epoch_;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t epoch_flushes = 0;  // whole-cache drops on membership
  };
  /// Coherent snapshot (by value: a reference would be read outside mu_).
  Stats stats() const {
    H2MutexLock lock(mu_);
    return stats_;
  }

  std::size_t child_entries() const {
    H2MutexLock lock(mu_);
    return child_map_.size();
  }
  std::size_t ring_entries() const {
    H2MutexLock lock(mu_);
    return ring_map_.size();
  }

 private:
  struct ChildEntry {
    NamespaceId parent;
    std::string key;  // ChildKey(parent, name)
    DirRecord record;
  };
  struct RingEntry {
    NamespaceId ns;
    NameRing ring;
  };
  using ChildList = std::list<ChildEntry>;
  using RingList = std::list<RingEntry>;

  // Internal helpers run under mu_ (held by the public entry points).
  void ClearLocked() REQUIRES(mu_);
  VirtualNanos ChildFloorLocked(const NamespaceId& ns) const REQUIRES(mu_);
  VirtualNanos RingFloorLocked(const NamespaceId& ns) const REQUIRES(mu_);
  void NoteRingVersionLocked(const NamespaceId& ns, VirtualNanos version)
      REQUIRES(mu_);
  void RaiseChildFloorLocked(const NamespaceId& ns, VirtualNanos version)
      REQUIRES(mu_);
  void DropChildrenLocked(const NamespaceId& ns) REQUIRES(mu_);
  void TrimFloorMaps() REQUIRES(mu_);

  std::size_t child_capacity_;
  std::size_t ring_capacity_;

  mutable H2Mutex mu_;

  ChildList child_lru_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, ChildList::iterator> child_map_
      GUARDED_BY(mu_);
  RingList ring_lru_ GUARDED_BY(mu_);
  std::unordered_map<NamespaceId, RingList::iterator> ring_map_
      GUARDED_BY(mu_);

  // Per-namespace version floors; namespaces with no entry read the
  // global floor.  The global floor rises to the highest version ever
  // noted whenever per-namespace entries are forgotten, so a forgotten
  // floor can only cause spurious misses, never false hits.
  VirtualNanos global_floor_ GUARDED_BY(mu_) = 0;
  VirtualNanos max_noted_ GUARDED_BY(mu_) = 0;  // highest version noted
  std::uint64_t topology_epoch_ GUARDED_BY(mu_) = 0;  // highest epoch flushed
  std::unordered_map<NamespaceId, VirtualNanos> child_floors_
      GUARDED_BY(mu_);
  std::unordered_map<NamespaceId, VirtualNanos> ring_floors_
      GUARDED_BY(mu_);

  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace h2

#endif  // H2_H2_RESOLVE_CACHE_H_
