#include "h2/scrub.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/strings.h"
#include "h2/records.h"
#include "hash/uuid.h"

namespace h2 {
namespace {

/// Namespace prefix of an H2 key ("<ns>::..."), if it has one.
bool NamespaceOfKey(const std::string& key, NamespaceId* ns) {
  const std::size_t sep = key.find("::");
  if (sep == std::string::npos) return false;
  Result<NamespaceId> parsed = NamespaceId::Parse(key.substr(0, sep));
  if (!parsed.ok()) return false;
  *ns = *parsed;
  return true;
}

}  // namespace

ScrubReport ScrubOrphans(ObjectCloud& cloud) {
  ScrubReport report;
  OpMeter meter;

  // Pass 1: enumerate.  Collect account roots, the directory-record edges
  // (parent namespace -> child namespace), and every key per namespace.
  std::vector<NamespaceId> roots;
  std::unordered_map<NamespaceId, std::vector<NamespaceId>> edges;
  std::unordered_map<NamespaceId, std::vector<std::string>> keys_by_ns;

  cloud.Scan(
      [&](const std::string& key, const ObjectValue& value) {
        ++report.objects_scanned;
        if (StartsWith(key, "account::")) {
          Result<AccountRecord> account = AccountRecord::Parse(value.payload);
          if (account.ok()) roots.push_back(account->root_ns);
          return;
        }
        NamespaceId ns;
        if (!NamespaceOfKey(key, &ns)) return;  // not an H2 object
        keys_by_ns[ns].push_back(key);
        auto kind = value.metadata.find("kind");
        if (kind != value.metadata.end() && kind->second == "dir") {
          Result<DirRecord> record = DirRecord::Parse(value.payload);
          if (record.ok()) edges[ns].push_back(record->ns);
        }
      },
      meter);
  report.namespaces_total = keys_by_ns.size();

  // Pass 2: reachability from the account roots.
  std::unordered_set<NamespaceId> reachable;
  std::vector<NamespaceId> frontier = roots;
  while (!frontier.empty()) {
    const NamespaceId ns = frontier.back();
    frontier.pop_back();
    if (!reachable.insert(ns).second) continue;
    auto it = edges.find(ns);
    if (it == edges.end()) continue;
    for (const NamespaceId& child : it->second) frontier.push_back(child);
  }

  // Pass 3: reclaim everything belonging to unreachable namespaces.  Delete
  // in sorted namespace/key order: each delete ticks the clock, so hash-table
  // order would make scrub cost and tombstone timestamps nondeterministic.
  std::vector<NamespaceId> unreachable;
  // h2lint: ordered -- candidate collection, sorted below
  for (const auto& [ns, keys] : keys_by_ns) {
    if (!reachable.contains(ns)) unreachable.push_back(ns);
  }
  std::sort(unreachable.begin(), unreachable.end());
  for (const NamespaceId& ns : unreachable) {
    ++report.namespaces_unreachable;
    std::vector<std::string>& keys = keys_by_ns.at(ns);
    std::sort(keys.begin(), keys.end());
    for (const std::string& key : keys) {
      if (cloud.Delete(key, meter).ok()) ++report.objects_deleted;
    }
  }
  report.cost = meter.cost();
  return report;
}

}  // namespace h2
