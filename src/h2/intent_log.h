// Write-ahead intents for multi-object filesystem operations.
//
// A MOVE in H2 touches several objects (new directory record / file copy,
// old-key delete, two NameRing patches).  A middleware crash between the
// steps would otherwise leave the entry reachable under both names or
// under neither.  Before executing, the middleware journals an *intent*
// object -- durably, in the same cloud that holds everything else, so no
// separate reliable store is reintroduced -- and deletes it after the
// last step.  `Open()` returns the intents a crashed predecessor left
// behind; H2Middleware::RecoverIntents() re-drives them (each step is
// idempotent: object puts/deletes converge and patch merging is
// last-writer-wins).
//
// Keys: intents live at "intent::Node<k>.<seq>", with the set of open
// sequence numbers tracked in "intent::Node<k>" -- mirroring the patch
// chain design (§3.3.2).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "cluster/object_cloud.h"
#include "codec/formatter.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace h2 {

class IntentLog {
 public:
  IntentLog(ObjectCloud& cloud, std::uint32_t node)
      : cloud_(cloud), node_(node) {}

  /// Durably journals `record` before the operation runs; returns the
  /// intent id to pass to Commit().
  Result<std::uint64_t> Begin(const KvRecord& record, OpMeter& meter);

  /// Removes the intent after the operation's last step.
  Status Commit(std::uint64_t id, OpMeter& meter);

  /// Loads the intents left open by a crashed predecessor with this node
  /// id (reads the chain object from the cloud on first use).
  Result<std::vector<std::pair<std::uint64_t, KvRecord>>> Open(
      OpMeter& meter);

  /// Open-intent count currently known in memory (tests).
  std::size_t pending() const;

  std::string ChainKey() const;
  std::string IntentKey(std::uint64_t id) const;

 private:
  /// Hand-over-hand: drops `lock` around the chain GET and re-takes it
  /// before returning (mu_ is held on entry and on exit, but not across
  /// the cloud I/O).  The analysis cannot model a lock released through a
  /// passed-in guard, so the body is opted out; REQUIRES keeps call sites
  /// checked.
  Status LoadLocked(H2ReleasableMutexLock& lock, OpMeter& meter)
      REQUIRES(mu_) NO_THREAD_SAFETY_ANALYSIS;
  Status PersistChain(OpMeter& meter) EXCLUDES(mu_);

  ObjectCloud& cloud_;
  const std::uint32_t node_;

  mutable H2Mutex mu_;
  bool loaded_ GUARDED_BY(mu_) = false;
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::set<std::uint64_t> open_ GUARDED_BY(mu_);
};

}  // namespace h2
