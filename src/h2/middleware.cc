#include "h2/middleware.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "fs/path.h"
#include "h2/keys.h"

namespace h2 {

// ---------------------------------------------------------------------------
// The per-NameRing File Descriptor (§4.5).  Tracks this node's patch chain,
// the parsed-but-unmerged patches, and the node's local merged view of the
// ring, which is what the gossip step joins against to repair lost
// concurrent merges.
// ---------------------------------------------------------------------------
struct H2Middleware::Descriptor {
  PatchChain chain;
  bool chain_loaded = false;
  // Unmerged patches by patch number (the link-list of §3.3.2, step 1).
  std::map<std::uint64_t, NameRing> pending;
  // Local (possibly ahead-of-cloud) merged view.
  std::optional<NameRing> local;
  VirtualNanos local_version = 0;
};

namespace {

FileInfo InfoFromHead(const ObjectHead& head) {
  FileInfo info;
  auto it = head.metadata.find(std::string(kMetaKind));
  info.kind = (it != head.metadata.end() && it->second == kMetaKindDir)
                  ? EntryKind::kDirectory
                  : EntryKind::kFile;
  info.size = info.kind == EntryKind::kDirectory ? 0 : head.logical_size;
  info.created = head.created;
  info.modified = head.modified;
  return info;
}

ObjectValue MakeObject(std::string payload, std::string_view kind,
                       VirtualNanos now) {
  ObjectValue v = ObjectValue::FromString(std::move(payload), now);
  v.metadata[std::string(kMetaKind)] = std::string(kind);
  return v;
}

}  // namespace

H2Middleware::H2Middleware(ObjectCloud& cloud, std::uint32_t node_id,
                           H2Config config)
    : cloud_(cloud),
      node_(node_id),
      config_(config),
      minter_(node_id),
      resolve_cache_(config.resolve_cache_capacity,
                     config.ring_cache_capacity),
      intents_(cloud, node_id) {}

H2Middleware::~H2Middleware() = default;

// ---------------------------------------------------------------------------
// Accounts
// ---------------------------------------------------------------------------

SimClock& H2Middleware::ClockFor(const OpMeter& meter) const {
  SimClock* domain = meter.clock_domain();
  return domain != nullptr ? *domain : cloud_.clock();
}

Status H2Middleware::CreateAccount(std::string_view user, OpMeter& meter) {
  if (user.empty()) return Status::InvalidArgument("empty account name");
  const std::string key = AccountKey(user);
  if (cloud_.Exists(key, meter)) {
    return Status::AlreadyExists("account exists: " + std::string(user));
  }
  NamespaceId root;
  {
    std::lock_guard lock(mu_);
    root = minter_.Mint(ClockFor(meter).NowUnixMillis());
  }
  const VirtualNanos now = ClockFor(meter).Tick();
  // The root directory's (empty) NameRing goes first and the account
  // record last: the record is the commit point.  If the record PUT
  // fails, all that remains is an invisible orphan ring under a fresh
  // namespace, and the CREATE can simply be retried.
  H2_RETURN_IF_ERROR(
      cloud_.Put(NameRingKey(root), MakeObject("", "ring", now), meter));
  AccountRecord record{std::string(user), root, now};
  return cloud_.Put(key, MakeObject(record.Serialize(), "account", now),
                    meter);
}

Result<NamespaceId> H2Middleware::AccountRoot(std::string_view user,
                                              OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(ObjectValue obj, cloud_.Get(AccountKey(user), meter));
  H2_ASSIGN_OR_RETURN(AccountRecord record, AccountRecord::Parse(obj.payload));
  return record.root_ns;
}

Status H2Middleware::DeleteAccount(std::string_view user, OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(NamespaceId root, AccountRoot(user, meter));
  H2_RETURN_IF_ERROR(cloud_.Delete(AccountKey(user), meter));
  std::lock_guard lock(mu_);
  cleanup_queue_.push_back(root);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Lookup (§3.2)
// ---------------------------------------------------------------------------

Result<DirRecord> H2Middleware::LoadDirRecord(const NamespaceId& parent_ns,
                                              std::string_view name,
                                              OpMeter& meter) {
  std::uint64_t rev = 0;
  if (config_.resolve_cache) {
    std::lock_guard lock(mu_);
    if (auto cached =
            resolve_cache_.GetChild(parent_ns, std::string(name))) {
      return *cached;
    }
    rev = resolve_cache_.ChildRev(parent_ns);  // snapshot before the GET
  }
  H2_ASSIGN_OR_RETURN(ObjectValue obj,
                      cloud_.Get(ChildKey(parent_ns, name), meter));
  auto it = obj.metadata.find(std::string(kMetaKind));
  if (it == obj.metadata.end() || it->second != kMetaKindDir) {
    return Status::NotADirectory("not a directory: " + std::string(name));
  }
  H2_ASSIGN_OR_RETURN(DirRecord record, DirRecord::Parse(obj.payload));
  if (config_.resolve_cache) {
    std::lock_guard lock(mu_);
    resolve_cache_.PutChild(parent_ns, std::string(name), record, rev);
  }
  return record;
}

Result<NamespaceId> H2Middleware::ResolvePath(const NamespaceId& root,
                                              std::string_view path,
                                              OpMeter& meter) {
  NamespaceId current = root;
  for (auto component : PathComponents(path)) {
    Result<DirRecord> record = LoadDirRecord(current, component, meter);
    if (!record.ok()) return record.status();
    current = record->ns;
  }
  return current;
}

Result<NamespaceId> H2Middleware::ResolveParent(
    const NamespaceId& root, std::string_view normalized_path,
    OpMeter& meter) {
  return ResolvePath(root, ParentPath(normalized_path), meter);
}

Result<NameRing> H2Middleware::LoadNameRing(const NamespaceId& ns,
                                            OpMeter& meter) {
  std::uint64_t rev = 0;
  if (config_.resolve_cache) {
    std::lock_guard lock(mu_);
    if (auto cached = resolve_cache_.GetRing(ns)) return *cached;
    rev = resolve_cache_.RingRev(ns);  // snapshot before the GET
  }
  H2_ASSIGN_OR_RETURN(ObjectValue obj, cloud_.Get(NameRingKey(ns), meter));
  H2_ASSIGN_OR_RETURN(NameRing ring, NameRing::Parse(obj.payload));
  // Overlay this node's unmerged patches and its local merged view so the
  // middleware reads its own writes (free: in-memory joins).
  std::lock_guard lock(mu_);
  auto it = descriptors_.find(ns);
  if (it != descriptors_.end()) {
    const Descriptor& desc = *it->second;
    if (desc.local.has_value()) ring.Merge(*desc.local);
    for (const auto& [patch_no, patch] : desc.pending) ring.Merge(patch);
  }
  // Cached post-overlay: every event that changes the stored ring or the
  // overlay (patch submit, merge, compaction, rumor) bumps ring_rev.
  if (config_.resolve_cache) resolve_cache_.PutRing(ns, ring, rev);
  return ring;
}

Result<FileInfo> H2Middleware::StatRelative(const NamespaceId& ns,
                                            std::string_view name,
                                            OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(ObjectHead head, cloud_.Head(ChildKey(ns, name), meter));
  return InfoFromHead(head);
}

Result<FileInfo> H2Middleware::Stat(const NamespaceId& root,
                                    std::string_view path, OpMeter& meter) {
  if (path == "/") {
    FileInfo info;
    info.kind = EntryKind::kDirectory;
    return info;
  }
  H2_ASSIGN_OR_RETURN(NamespaceId parent, ResolveParent(root, path, meter));
  return StatRelative(parent, BaseName(path), meter);
}

// ---------------------------------------------------------------------------
// File content
// ---------------------------------------------------------------------------

Status H2Middleware::WriteFile(const NamespaceId& root, std::string_view path,
                               FileBlob blob, OpMeter& meter) {
  if (path == "/") return Status::IsADirectory("cannot write to /");
  H2_ASSIGN_OR_RETURN(NamespaceId parent, ResolveParent(root, path, meter));
  const std::string_view name = BaseName(path);
  const std::string key = ChildKey(parent, name);

  Result<ObjectHead> existing = cloud_.Head(key, meter);
  bool is_new = false;
  if (existing.ok()) {
    auto it = existing->metadata.find(std::string(kMetaKind));
    if (it != existing->metadata.end() && it->second == kMetaKindDir) {
      return Status::IsADirectory("is a directory: " + std::string(path));
    }
  } else if (existing.code() == ErrorCode::kNotFound) {
    is_new = true;
  } else {
    return existing.status();
  }

  // §3.3.3(b): while the content stream is in flight, merges on the parent
  // NameRing are blocked.
  {
    std::lock_guard lock(mu_);
    write_blocked_.insert(parent);
  }
  const VirtualNanos now = ClockFor(meter).Tick();
  ObjectValue value;
  value.payload = std::move(blob.data);
  value.logical_size = blob.logical_size;
  value.metadata[std::string(kMetaKind)] = std::string(kMetaKindFile);
  value.created = value.modified = now;
  Status put = cloud_.Put(key, std::move(value), meter);
  Status patch = Status::Ok();
  if (put.ok() && is_new) {
    patch = SubmitPatch(
        parent, RingTuple{std::string(name), now, EntryKind::kFile, false},
        meter);
  }
  {
    std::lock_guard lock(mu_);
    write_blocked_.erase(parent);
  }
  H2_RETURN_IF_ERROR(put);
  return patch;
}

Status H2Middleware::WriteFiles(const NamespaceId& root,
                                std::vector<BatchEntry> batch,
                                OpMeter& meter) {
  // Per-directory accumulation of the tuples to patch in.
  struct DirBatch {
    NamespaceId ns;
    std::vector<RingTuple> tuples;
  };
  std::map<std::string, DirBatch> by_parent;

  // Phase 1: resolve each distinct parent once, then probe every target
  // key's existence in one batch of HEADs.
  struct Pending {
    DirBatch* dir = nullptr;  // stable: std::map values don't move
    std::string key;
    std::string name;
  };
  std::vector<Pending> pending;
  pending.reserve(batch.size());
  std::vector<BatchOp> heads;
  heads.reserve(batch.size());
  for (const BatchEntry& entry : batch) {
    const std::string& path = entry.path;
    if (path == "/") return Status::IsADirectory("cannot write to /");
    const std::string parent_path = ParentPath(path);
    auto it = by_parent.find(parent_path);
    if (it == by_parent.end()) {
      H2_ASSIGN_OR_RETURN(NamespaceId parent,
                          ResolvePath(root, parent_path, meter));
      it = by_parent.emplace(parent_path, DirBatch{parent, {}}).first;
    }
    Pending p;
    p.dir = &it->second;
    p.name = std::string(BaseName(path));
    p.key = ChildKey(it->second.ns, p.name);
    heads.push_back(BatchOp::Head(p.key));
    pending.push_back(std::move(p));
  }
  const std::vector<BatchResult> existing =
      cloud_.ExecuteBatch(std::move(heads), meter);

  // Phase 2: validate positionally, then write every payload in one
  // batch of PUTs (timestamps minted in submission order).
  std::vector<BatchOp> puts;
  puts.reserve(batch.size());
  std::vector<bool> is_new(batch.size(), false);
  std::vector<VirtualNanos> stamped(batch.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchResult& head = existing[i];
    if (head.ok()) {
      auto kind = head.head->metadata.find(std::string(kMetaKind));
      if (kind != head.head->metadata.end() &&
          kind->second == kMetaKindDir) {
        return Status::IsADirectory("is a directory: " + batch[i].path);
      }
    } else if (head.status.code() == ErrorCode::kNotFound) {
      is_new[i] = true;
    } else {
      return head.status;
    }
    const VirtualNanos now = ClockFor(meter).Tick();
    stamped[i] = now;
    ObjectValue value;
    value.payload = std::move(batch[i].blob.data);
    value.logical_size = batch[i].blob.logical_size;
    value.metadata[std::string(kMetaKind)] = std::string(kMetaKindFile);
    value.created = value.modified = now;
    puts.push_back(BatchOp::Put(pending[i].key, std::move(value)));
  }
  const std::vector<BatchResult> written =
      cloud_.ExecuteBatch(std::move(puts), meter);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    H2_RETURN_IF_ERROR(written[i].status);
    if (is_new[i]) {
      pending[i].dir->tuples.push_back(RingTuple{
          std::move(pending[i].name), stamped[i], EntryKind::kFile, false});
    }
  }

  // One durable patch per touched directory.
  for (auto& [parent_path, dir_batch] : by_parent) {
    if (dir_batch.tuples.empty()) continue;
    H2_RETURN_IF_ERROR(
        SubmitPatchTuples(dir_batch.ns, std::move(dir_batch.tuples), meter));
  }
  return Status::Ok();
}

Result<FileBlob> H2Middleware::ReadFile(const NamespaceId& root,
                                        std::string_view path,
                                        OpMeter& meter) {
  if (path == "/") return Status::IsADirectory("cannot read /");
  H2_ASSIGN_OR_RETURN(NamespaceId parent, ResolveParent(root, path, meter));
  H2_ASSIGN_OR_RETURN(ObjectValue obj,
                      cloud_.Get(ChildKey(parent, BaseName(path)), meter));
  auto it = obj.metadata.find(std::string(kMetaKind));
  if (it != obj.metadata.end() && it->second == kMetaKindDir) {
    return Status::IsADirectory("is a directory: " + std::string(path));
  }
  return FileBlob{std::move(obj.payload), obj.logical_size};
}

Status H2Middleware::RemoveFile(const NamespaceId& root,
                                std::string_view path, OpMeter& meter) {
  if (path == "/") return Status::IsADirectory("cannot remove /");
  H2_ASSIGN_OR_RETURN(NamespaceId parent, ResolveParent(root, path, meter));
  const std::string_view name = BaseName(path);
  const std::string key = ChildKey(parent, name);

  H2_ASSIGN_OR_RETURN(ObjectHead head, cloud_.Head(key, meter));
  auto it = head.metadata.find(std::string(kMetaKind));
  if (it != head.metadata.end() && it->second == kMetaKindDir) {
    return Status::IsADirectory("is a directory: " + std::string(path));
  }
  H2_RETURN_IF_ERROR(cloud_.Delete(key, meter));
  // Fake deletion (§3.3.3a): the tuple gains a Deleted tag via a patch.
  return SubmitPatch(
      parent, RingTuple{std::string(name), ClockFor(meter).Tick(),
                        EntryKind::kFile, /*deleted=*/true},
      meter);
}

// ---------------------------------------------------------------------------
// Directories
// ---------------------------------------------------------------------------

Status H2Middleware::Mkdir(const NamespaceId& root, std::string_view path,
                           OpMeter& meter) {
  if (path == "/") return Status::AlreadyExists("/");
  H2_ASSIGN_OR_RETURN(NamespaceId parent, ResolveParent(root, path, meter));
  const std::string_view name = BaseName(path);
  const std::string key = ChildKey(parent, name);
  if (cloud_.Exists(key, meter)) {
    return Status::AlreadyExists("exists: " + std::string(path));
  }

  NamespaceId ns;
  std::uint64_t rev = 0;
  {
    std::lock_guard lock(mu_);
    ns = minter_.Mint(ClockFor(meter).NowUnixMillis());
    rev = resolve_cache_.ChildRev(parent);  // snapshot before the PUTs
  }
  const VirtualNanos now = ClockFor(meter).Tick();
  DirRecord record{ns, parent, std::string(name), now};
  H2_RETURN_IF_ERROR(
      cloud_.Put(key, MakeObject(record.Serialize(), kMetaKindDir, now),
                 meter));
  H2_RETURN_IF_ERROR(
      cloud_.Put(NameRingKey(ns), MakeObject("", "ring", now), meter));
  if (config_.resolve_cache) {
    std::lock_guard lock(mu_);
    resolve_cache_.PutChild(parent, std::string(name), record, rev);
  }
  return SubmitPatch(
      parent,
      RingTuple{std::string(name), now, EntryKind::kDirectory, false}, meter);
}

Status H2Middleware::Rmdir(const NamespaceId& root, std::string_view path,
                           OpMeter& meter) {
  if (path == "/") return Status::InvalidArgument("cannot remove /");
  H2_ASSIGN_OR_RETURN(NamespaceId parent, ResolveParent(root, path, meter));
  const std::string_view name = BaseName(path);
  H2_ASSIGN_OR_RETURN(DirRecord record, LoadDirRecord(parent, name, meter));

  H2_RETURN_IF_ERROR(cloud_.Delete(ChildKey(parent, name), meter));
  H2_RETURN_IF_ERROR(SubmitPatch(
      parent, RingTuple{std::string(name), ClockFor(meter).Tick(),
                        EntryKind::kDirectory, /*deleted=*/true},
      meter));
  // The n files and sub-directories beneath are unreachable now; their
  // objects are reclaimed lazily (O(1) foreground, Table 1).
  std::lock_guard lock(mu_);
  cleanup_queue_.push_back(record.ns);
  resolve_cache_.EraseChild(parent, std::string(name));
  resolve_cache_.InvalidateNamespace(record.ns);
  return Status::Ok();
}

Status H2Middleware::Move(const NamespaceId& root, std::string_view from,
                          std::string_view to, OpMeter& meter) {
  if (from == "/") return Status::InvalidArgument("cannot move /");
  if (to == "/") return Status::AlreadyExists("destination exists: /");
  if (from == to) return Status::Ok();
  if (IsWithin(to, from)) {
    return Status::InvalidArgument("cannot move a directory into itself");
  }
  H2_ASSIGN_OR_RETURN(NamespaceId from_parent,
                      ResolveParent(root, from, meter));
  const std::string_view from_name = BaseName(from);
  const std::string from_key = ChildKey(from_parent, from_name);
  // Source existence takes error precedence over destination conflicts.
  H2_ASSIGN_OR_RETURN(ObjectValue source, cloud_.Get(from_key, meter));
  H2_ASSIGN_OR_RETURN(NamespaceId to_parent, ResolveParent(root, to, meter));
  const std::string_view to_name = BaseName(to);
  const std::string to_key = ChildKey(to_parent, to_name);

  if (cloud_.Exists(to_key, meter)) {
    return Status::AlreadyExists("destination exists: " + std::string(to));
  }
  auto kind_it = source.metadata.find(std::string(kMetaKind));
  const bool is_dir =
      kind_it != source.metadata.end() && kind_it->second == kMetaKindDir;

  const VirtualNanos now = ClockFor(meter).Tick();
  const VirtualNanos insert_ts = ClockFor(meter).Tick();
  const EntryKind kind = is_dir ? EntryKind::kDirectory : EntryKind::kFile;

  // Journal the multi-object sequence so a crash mid-move can be
  // re-driven by RecoverIntents() (h2/intent_log.h).
  std::uint64_t intent_id = 0;
  if (config_.move_intent_log) {
    KvRecord intent;
    intent.Set("op", "move");
    intent.Set("kind", is_dir ? "dir" : "file");
    intent.Set("from_parent", from_parent.ToString());
    intent.Set("to_parent", to_parent.ToString());
    intent.Set("from_name", from_name);
    intent.Set("to_name", to_name);
    intent.SetInt("delete_ts", now);
    intent.SetInt("insert_ts", insert_ts);
    H2_ASSIGN_OR_RETURN(intent_id, intents_.Begin(intent, meter));
  }

  if (is_dir) {
    // Rewriting the directory record is the whole move: the subtree stays
    // keyed by the directory's own namespace.  This is H2's O(1) MOVE.
    H2_ASSIGN_OR_RETURN(DirRecord record, DirRecord::Parse(source.payload));
    record.parent_ns = to_parent;
    record.name = std::string(to_name);
    std::uint64_t rev = 0;
    {
      std::lock_guard lock(mu_);
      rev = resolve_cache_.ChildRev(to_parent);  // snapshot before the PUT
    }
    H2_RETURN_IF_ERROR(cloud_.Put(
        to_key, MakeObject(record.Serialize(), kMetaKindDir, now), meter));
    H2_RETURN_IF_ERROR(cloud_.Delete(from_key, meter));
    std::lock_guard lock(mu_);
    resolve_cache_.EraseChild(from_parent, std::string(from_name));
    if (config_.resolve_cache) {
      resolve_cache_.PutChild(to_parent, std::string(to_name), record, rev);
    }
  } else {
    H2_RETURN_IF_ERROR(cloud_.Copy(from_key, to_key, meter));
    H2_RETURN_IF_ERROR(cloud_.Delete(from_key, meter));
  }

  H2_RETURN_IF_ERROR(SubmitPatch(
      from_parent,
      RingTuple{std::string(from_name), now, kind, /*deleted=*/true}, meter));
  H2_RETURN_IF_ERROR(SubmitPatch(
      to_parent, RingTuple{std::string(to_name), insert_ts, kind, false},
      meter));
  if (config_.move_intent_log) {
    H2_RETURN_IF_ERROR(intents_.Commit(intent_id, meter));
  }
  return Status::Ok();
}

std::size_t H2Middleware::RecoverIntents() {
  OpMeter meter;
  meter.SetZone(zone_);
  std::size_t completed = 0;
  Result<std::vector<std::pair<std::uint64_t, KvRecord>>> open =
      intents_.Open(meter);
  if (!open.ok()) return 0;
  for (auto& [id, record] : *open) {
    if (record.Get("op") != "move") {
      (void)intents_.Commit(id, meter);
      continue;
    }
    auto from_parent = NamespaceId::Parse(record.Get("from_parent"));
    auto to_parent = NamespaceId::Parse(record.Get("to_parent"));
    auto delete_ts = record.GetInt("delete_ts");
    auto insert_ts = record.GetInt("insert_ts");
    if (!from_parent.ok() || !to_parent.ok() || !delete_ts.ok() ||
        !insert_ts.ok()) {
      (void)intents_.Commit(id, meter);
      continue;
    }
    const std::string from_name = record.Get("from_name");
    const std::string to_name = record.Get("to_name");
    const bool is_dir = record.Get("kind") == "dir";
    const std::string from_key = ChildKey(*from_parent, from_name);
    const std::string to_key = ChildKey(*to_parent, to_name);

    // Redo, idempotently: ensure the destination object exists, drop the
    // source object, re-submit both patches (last-writer-wins makes
    // duplicate tuples merge to the same ring state).
    if (!cloud_.Exists(to_key, meter)) {
      Result<ObjectValue> source = cloud_.Get(from_key, meter);
      if (source.ok()) {
        if (is_dir) {
          Result<DirRecord> dir = DirRecord::Parse(source->payload);
          if (dir.ok()) {
            dir->parent_ns = *to_parent;
            dir->name = to_name;
            (void)cloud_.Put(to_key,
                             MakeObject(dir->Serialize(), kMetaKindDir,
                                        ClockFor(meter).Tick()),
                             meter);
          }
        } else {
          (void)cloud_.Copy(from_key, to_key, meter);
        }
      }
    }
    (void)cloud_.Delete(from_key, meter);
    {
      // The redo may have rewritten either parent's child set behind any
      // cached record; drop both precisely.
      std::lock_guard lock(mu_);
      resolve_cache_.EraseChild(*from_parent, from_name);
      resolve_cache_.EraseChild(*to_parent, to_name);
    }
    const EntryKind kind =
        is_dir ? EntryKind::kDirectory : EntryKind::kFile;
    (void)SubmitPatch(*from_parent,
                      RingTuple{from_name, *delete_ts, kind, true}, meter);
    (void)SubmitPatch(*to_parent,
                      RingTuple{to_name, *insert_ts, kind, false}, meter);
    if (intents_.Commit(id, meter).ok()) ++completed;
  }
  std::lock_guard lock(mu_);
  maintenance_meter_.Merge(meter.cost());
  return completed;
}

Result<std::vector<DirEntry>> H2Middleware::List(const NamespaceId& root,
                                                 std::string_view path,
                                                 ListDetail detail,
                                                 OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(NamespaceId ns, ResolvePath(root, path, meter));
  H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(ns, meter));
  H2_RETURN_IF_ERROR(MaybeCompact(ns, ring, meter));

  std::vector<DirEntry> entries;
  const std::vector<RingTuple> children = ring.LiveChildren();
  entries.reserve(children.size());

  if (detail == ListDetail::kNamesOnly) {
    // O(1): one NameRing read regardless of child count.
    for (const RingTuple& t : children) {
      entries.push_back(DirEntry{t.name, t.kind, 0, 0});
    }
    return entries;
  }

  // Detailed LIST: the per-child metadata fetches go out as one batch on
  // the proxy's pipeline -- O(m) with a wave-priced constant (§2).
  std::vector<BatchOp> heads;
  heads.reserve(children.size());
  for (const RingTuple& t : children) {
    heads.push_back(BatchOp::Head(ChildKey(ns, t.name)));
  }
  const std::vector<BatchResult> results = cloud_.ExecuteBatch(
      std::move(heads), meter, BatchOptions{config_.list_batch_width});
  for (std::size_t i = 0; i < children.size(); ++i) {
    const RingTuple& t = children[i];
    const BatchResult& head = results[i];
    if (head.status.code() == ErrorCode::kNotFound) continue;  // mid-cleanup
    if (!head.ok()) return head.status;
    DirEntry entry;
    entry.name = t.name;
    entry.kind = t.kind;
    entry.size =
        t.kind == EntryKind::kDirectory ? 0 : head.head->logical_size;
    entry.modified = head.head->modified;
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<H2Middleware::Page> H2Middleware::ListPaged(
    const NamespaceId& root, std::string_view path, ListDetail detail,
    std::string_view start_after, std::size_t limit, OpMeter& meter) {
  if (limit == 0) return Status::InvalidArgument("limit must be positive");
  H2_ASSIGN_OR_RETURN(NamespaceId ns, ResolvePath(root, path, meter));
  H2_ASSIGN_OR_RETURN(NameRing ring, LoadNameRing(ns, meter));
  H2_RETURN_IF_ERROR(MaybeCompact(ns, ring, meter));

  Page page;
  const std::vector<RingTuple> children = ring.LiveChildren();
  // LiveChildren is alphabetical: find the window after the marker.
  auto it = children.begin();
  if (!start_after.empty()) {
    it = std::upper_bound(children.begin(), children.end(), start_after,
                          [](std::string_view marker, const RingTuple& t) {
                            return marker < t.name;
                          });
  }
  if (detail != ListDetail::kDetailed) {
    for (; it != children.end() && page.entries.size() < limit; ++it) {
      page.entries.push_back(DirEntry{it->name, it->kind, 0, 0});
    }
  } else {
    // Detailed metadata only for the page: batch a page's worth of HEADs
    // at a time; children deleted mid-cleanup (NotFound) don't consume
    // the limit, so top up with further batches until the page fills.
    while (it != children.end() && page.entries.size() < limit) {
      std::vector<BatchOp> heads;
      auto chunk_end = it;
      for (std::size_t n = page.entries.size();
           n < limit && chunk_end != children.end(); ++n, ++chunk_end) {
        heads.push_back(BatchOp::Head(ChildKey(ns, chunk_end->name)));
      }
      const std::vector<BatchResult> results = cloud_.ExecuteBatch(
          std::move(heads), meter, BatchOptions{config_.list_batch_width});
      for (const BatchResult& head : results) {
        const RingTuple& t = *it++;
        if (head.status.code() == ErrorCode::kNotFound) continue;
        if (!head.ok()) return head.status;
        DirEntry entry;
        entry.name = t.name;
        entry.kind = t.kind;
        entry.size =
            t.kind == EntryKind::kDirectory ? 0 : head.head->logical_size;
        entry.modified = head.head->modified;
        page.entries.push_back(std::move(entry));
        if (page.entries.size() == limit) break;
      }
    }
  }
  page.truncated = it != children.end();
  if (!page.entries.empty()) page.next_marker = page.entries.back().name;
  return page;
}

Status H2Middleware::CopyTree(const NamespaceId& src_ns,
                              const NamespaceId& dst_ns, OpMeter& meter) {
  H2_ASSIGN_OR_RETURN(NameRing src_ring, LoadNameRing(src_ns, meter));
  NameRing dst_ring;
  const std::vector<RingTuple> children = src_ring.LiveChildren();

  // Phase 1: per-file server-side COPYs, one batch for the whole level.
  std::vector<BatchOp> copies;
  std::vector<const RingTuple*> files;
  for (const RingTuple& child : children) {
    if (child.kind == EntryKind::kDirectory) continue;
    copies.push_back(BatchOp::Copy(ChildKey(src_ns, child.name),
                                   ChildKey(dst_ns, child.name)));
    files.push_back(&child);
  }
  const std::vector<BatchResult> copied =
      cloud_.ExecuteBatch(std::move(copies), meter);
  for (std::size_t i = 0; i < files.size(); ++i) {
    // A source file deleted mid-copy (NotFound) is simply skipped.
    if (copied[i].status.code() == ErrorCode::kNotFound) continue;
    H2_RETURN_IF_ERROR(copied[i].status);
    dst_ring.Apply(RingTuple{files[i]->name, ClockFor(meter).Tick(),
                             EntryKind::kFile, false});
  }

  // Phase 2: load each subdirectory's record, mint its destination
  // namespace, and write all destination dir records as one batch.
  struct SubdirCopy {
    const RingTuple* tuple = nullptr;
    NamespaceId src_child;
    NamespaceId dst_child;
    VirtualNanos now = 0;
  };
  std::vector<SubdirCopy> subdirs;
  std::vector<BatchOp> record_puts;
  for (const RingTuple& child : children) {
    if (child.kind != EntryKind::kDirectory) continue;
    Result<DirRecord> record = LoadDirRecord(src_ns, child.name, meter);
    if (record.code() == ErrorCode::kNotFound) continue;
    if (!record.ok()) return record.status();
    SubdirCopy sub;
    sub.tuple = &child;
    sub.src_child = record->ns;
    {
      std::lock_guard lock(mu_);
      sub.dst_child = minter_.Mint(ClockFor(meter).NowUnixMillis());
    }
    sub.now = ClockFor(meter).Tick();
    DirRecord dst_record{sub.dst_child, dst_ns, child.name, sub.now};
    record_puts.push_back(BatchOp::Put(
        ChildKey(dst_ns, child.name),
        MakeObject(dst_record.Serialize(), kMetaKindDir, sub.now)));
    subdirs.push_back(sub);
  }
  const std::vector<BatchResult> put_results =
      cloud_.ExecuteBatch(std::move(record_puts), meter);
  for (std::size_t i = 0; i < subdirs.size(); ++i) {
    H2_RETURN_IF_ERROR(put_results[i].status);
    dst_ring.Apply(RingTuple{subdirs[i].tuple->name, subdirs[i].now,
                             EntryKind::kDirectory, false});
  }

  // Phase 3: recurse into the copied subtrees.
  for (const SubdirCopy& sub : subdirs) {
    H2_RETURN_IF_ERROR(CopyTree(sub.src_child, sub.dst_child, meter));
  }

  const VirtualNanos now = ClockFor(meter).Tick();
  return cloud_.Put(NameRingKey(dst_ns),
                    MakeObject(dst_ring.Serialize(), "ring", now), meter);
}

Status H2Middleware::Copy(const NamespaceId& root, std::string_view from,
                          std::string_view to, OpMeter& meter) {
  if (from == "/") return Status::InvalidArgument("cannot copy /");
  if (to == "/") return Status::AlreadyExists("destination exists: /");
  if (from == to || IsWithin(to, from)) {
    return Status::InvalidArgument("cannot copy a directory into itself");
  }
  H2_ASSIGN_OR_RETURN(NamespaceId from_parent,
                      ResolveParent(root, from, meter));
  const std::string_view from_name = BaseName(from);
  const std::string from_key = ChildKey(from_parent, from_name);
  H2_ASSIGN_OR_RETURN(ObjectHead head, cloud_.Head(from_key, meter));
  H2_ASSIGN_OR_RETURN(NamespaceId to_parent, ResolveParent(root, to, meter));
  const std::string_view to_name = BaseName(to);
  const std::string to_key = ChildKey(to_parent, to_name);

  if (cloud_.Exists(to_key, meter)) {
    return Status::AlreadyExists("destination exists: " + std::string(to));
  }
  auto kind_it = head.metadata.find(std::string(kMetaKind));
  const bool is_dir =
      kind_it != head.metadata.end() && kind_it->second == kMetaKindDir;

  const VirtualNanos now = ClockFor(meter).Tick();
  if (!is_dir) {
    H2_RETURN_IF_ERROR(cloud_.Copy(from_key, to_key, meter));
    return SubmitPatch(
        to_parent,
        RingTuple{std::string(to_name), now, EntryKind::kFile, false}, meter);
  }

  // Directory copy must mint fresh namespaces for the whole subtree --
  // unlike MOVE, this is inherently O(n) (Table 1).  The subtree is
  // copied BEFORE the destination record is written: a crash mid-copy
  // then leaves only invisible orphan objects (fresh namespaces no path
  // reaches), never a half-populated visible directory.
  H2_ASSIGN_OR_RETURN(DirRecord src_record,
                      LoadDirRecord(from_parent, from_name, meter));
  NamespaceId dst_ns;
  {
    std::lock_guard lock(mu_);
    dst_ns = minter_.Mint(ClockFor(meter).NowUnixMillis());
  }
  H2_RETURN_IF_ERROR(CopyTree(src_record.ns, dst_ns, meter));
  DirRecord dst_record{dst_ns, to_parent, std::string(to_name), now};
  H2_RETURN_IF_ERROR(cloud_.Put(
      to_key, MakeObject(dst_record.Serialize(), kMetaKindDir, now), meter));
  return SubmitPatch(
      to_parent,
      RingTuple{std::string(to_name), now, EntryKind::kDirectory, false},
      meter);
}

// ---------------------------------------------------------------------------
// NameRing maintenance (§3.3)
// ---------------------------------------------------------------------------

H2Middleware::Descriptor& H2Middleware::DescriptorFor(const NamespaceId& ns) {
  auto it = descriptors_.find(ns);
  if (it == descriptors_.end()) {
    it = descriptors_.emplace(ns, std::make_unique<Descriptor>()).first;
  }
  return *it->second;
}

Status H2Middleware::SubmitPatch(const NamespaceId& ns, RingTuple tuple,
                                 OpMeter& meter) {
  std::vector<RingTuple> tuples;
  tuples.push_back(std::move(tuple));
  return SubmitPatchTuples(ns, std::move(tuples), meter);
}

Status H2Middleware::SubmitPatchTuples(const NamespaceId& ns,
                                       std::vector<RingTuple> tuples,
                                       OpMeter& meter) {
  // Phase 1 (§3.3.2): write the patch as a durable log object named
  // "<ns>::/NameRing/.Node<k>.Patch<i>" and advance the chain head.
  std::uint64_t patch_no = 0;
  {
    std::unique_lock lock(mu_);
    Descriptor& desc = DescriptorFor(ns);
    if (!desc.chain_loaded) {
      lock.unlock();
      Result<ObjectValue> chain_obj =
          cloud_.Get(PatchChainKey(ns, node_), meter);
      PatchChain recovered;
      if (chain_obj.ok()) {
        H2_ASSIGN_OR_RETURN(recovered, PatchChain::Parse(chain_obj->payload));
      } else if (chain_obj.code() != ErrorCode::kNotFound) {
        return chain_obj.status();
      }
      lock.lock();
      Descriptor& desc2 = DescriptorFor(ns);
      if (!desc2.chain_loaded) {
        desc2.chain = recovered;
        desc2.chain_loaded = true;
      }
    }
    Descriptor& ready = DescriptorFor(ns);
    patch_no = ready.chain.next_patch++;
  }

  NameRing patch;
  for (RingTuple& tuple : tuples) patch.Apply(std::move(tuple));
  const VirtualNanos now = ClockFor(meter).Tick();
  H2_RETURN_IF_ERROR(cloud_.Put(PatchKey(ns, node_, patch_no),
                                MakeObject(patch.Serialize(), "patch", now),
                                meter, PutOptions{.durable = true}));
  PatchChain chain_snapshot;
  {
    std::lock_guard lock(mu_);
    Descriptor& desc = DescriptorFor(ns);
    desc.pending.emplace(patch_no, std::move(patch));
    chain_snapshot = desc.chain;
    ++counters_.patches_submitted;
    // The overlaid view of ns changed; cached ring snapshots are stale.
    resolve_cache_.InvalidateRing(ns);
  }
  H2_RETURN_IF_ERROR(
      cloud_.Put(PatchChainKey(ns, node_),
                 MakeObject(chain_snapshot.Serialize(), "chain", now), meter));

  if (config_.synchronous_maintenance) {
    // Strawman mode (§3.3.1): the caller waits for the merge.
    std::unique_lock lock(mu_);
    MergeNamespaceLocked(ns, lock, meter);
  }
  return Status::Ok();
}

std::size_t H2Middleware::MergeNamespaceLocked(
    const NamespaceId& ns, std::unique_lock<std::mutex>& lock,
    OpMeter& meter) {
  assert(lock.owns_lock());
  if (write_blocked_.contains(ns)) return 0;  // §3.3.3(b)
  Descriptor& desc = DescriptorFor(ns);
  if (!desc.chain_loaded || desc.chain.pending() == 0) return 0;

  const std::uint64_t lo = desc.chain.merged_through + 1;
  const std::uint64_t hi = desc.chain.next_patch - 1;

  // Step 1: merge the patch link-list into one "big" patch, fetching any
  // patch this process does not hold in memory (recovery after restart).
  NameRing big;
  std::vector<std::uint64_t> have;
  for (std::uint64_t i = lo; i <= hi; ++i) {
    auto it = desc.pending.find(i);
    if (it != desc.pending.end()) {
      big.Merge(it->second);
      have.push_back(i);
    }
  }
  std::vector<std::uint64_t> missing;
  for (std::uint64_t i = lo; i <= hi; ++i) {
    if (!std::binary_search(have.begin(), have.end(), i)) missing.push_back(i);
  }
  std::optional<NameRing> local_copy = desc.local;

  lock.unlock();
  for (std::uint64_t i : missing) {
    Result<ObjectValue> obj = cloud_.Get(PatchKey(ns, node_, i), meter);
    if (!obj.ok()) continue;  // lost patch: tolerated, see header comment
    Result<NameRing> parsed = NameRing::Parse(obj->payload);
    if (parsed.ok()) big.Merge(*parsed);
  }

  // Step 2: read-merge-write the NameRing object.
  Result<ObjectValue> ring_obj = cloud_.Get(NameRingKey(ns), meter);
  bool ring_exists = ring_obj.ok();
  NameRing ring;
  if (ring_exists) {
    Result<NameRing> parsed = NameRing::Parse(ring_obj->payload);
    if (parsed.ok()) ring = std::move(parsed).value();
  }
  std::size_t merged_patches = 0;
  VirtualNanos version = 0;
  if (ring_exists) {
    ring.Merge(big);
    if (local_copy.has_value()) ring.Merge(*local_copy);
    ring.NoteMerged(node_, hi);
    version = ClockFor(meter).Tick();
    const Status put =
        cloud_.Put(NameRingKey(ns),
                   MakeObject(ring.Serialize(), "ring", version), meter);
    if (!put.ok()) {
      lock.lock();
      return 0;  // retry on the next merge pass
    }
    merged_patches = static_cast<std::size_t>(hi - lo + 1);
  }
  // The ring object being gone means the directory was removed; the
  // patches are obsolete either way.  Delete them and advance the chain.
  for (std::uint64_t i = lo; i <= hi; ++i) {
    (void)cloud_.Delete(PatchKey(ns, node_, i), meter);
  }

  lock.lock();
  Descriptor& after = DescriptorFor(ns);
  after.chain.merged_through = hi;
  for (std::uint64_t i = lo; i <= hi; ++i) after.pending.erase(i);
  PatchChain chain_snapshot = after.chain;
  if (ring_exists) {
    after.local = ring;
    after.local_version = version;
  }
  resolve_cache_.InvalidateRing(ns);
  counters_.patches_merged += merged_patches;
  ++counters_.merge_passes;

  lock.unlock();
  const VirtualNanos now = ClockFor(meter).Tick();
  (void)cloud_.Put(PatchChainKey(ns, node_),
                   MakeObject(chain_snapshot.Serialize(), "chain", now),
                   meter);
  if (ring_exists) Announce(ns, version);
  lock.lock();
  return merged_patches;
}

std::size_t H2Middleware::MergeNamespace(const NamespaceId& ns) {
  OpMeter local;
  local.SetZone(zone_);
  std::size_t merged = 0;
  {
    std::unique_lock lock(mu_);
    merged = MergeNamespaceLocked(ns, lock, local);
  }
  std::lock_guard lock(mu_);
  maintenance_meter_.Merge(local.cost());
  return merged;
}

std::size_t H2Middleware::MergePending() {
  std::vector<NamespaceId> targets;
  {
    std::lock_guard lock(mu_);
    targets.reserve(descriptors_.size());
    // h2lint: ordered -- candidate collection, sorted below
    for (const auto& [ns, desc] : descriptors_) {
      if (desc->chain_loaded && desc->chain.pending() > 0) {
        targets.push_back(ns);
      }
    }
  }
  // Merge in namespace order: each merge ticks the clock and stamps ring
  // versions, so hash-table order would make the merge schedule -- and
  // every timestamp downstream of it -- nondeterministic run-to-run.
  std::sort(targets.begin(), targets.end());
  std::size_t merged = 0;
  for (const NamespaceId& ns : targets) merged += MergeNamespace(ns);
  return merged;
}

std::size_t H2Middleware::RunLazyCleanup(std::size_t max_objects) {
  OpMeter local;
  local.SetZone(zone_);
  std::size_t deleted = 0;
  while (deleted < max_objects) {
    NamespaceId ns;
    {
      std::lock_guard lock(mu_);
      if (cleanup_queue_.empty()) break;
      ns = cleanup_queue_.front();
      cleanup_queue_.pop_front();
      // The directory is being reclaimed; nothing cached under it may
      // survive (its record entry died with the RMDIR/DELETE already).
      resolve_cache_.InvalidateNamespace(ns);
    }
    // Read the removed directory's NameRing to find its children, fetch
    // the subdirectory records in one batch (to seed the queue with their
    // namespaces), then delete everything under the namespace as a second
    // batch -- the whole level's teardown is two waves of fan-out.
    std::vector<BatchOp> deletes;
    Result<ObjectValue> ring_obj = cloud_.Get(NameRingKey(ns), local);
    if (ring_obj.ok()) {
      Result<NameRing> parsed = NameRing::Parse(ring_obj->payload);
      if (parsed.ok()) {
        const std::vector<RingTuple> children = parsed->LiveChildren();
        std::vector<BatchOp> record_gets;
        for (const RingTuple& child : children) {
          if (child.kind == EntryKind::kDirectory) {
            record_gets.push_back(BatchOp::Get(ChildKey(ns, child.name)));
          }
        }
        const std::vector<BatchResult> records =
            cloud_.ExecuteBatch(std::move(record_gets), local);
        for (const BatchResult& rec_obj : records) {
          if (!rec_obj.ok()) continue;
          Result<DirRecord> rec = DirRecord::Parse(rec_obj.value->payload);
          if (rec.ok()) {
            std::lock_guard lock(mu_);
            cleanup_queue_.push_back(rec->ns);
          }
        }
        for (const RingTuple& child : children) {
          deletes.push_back(BatchOp::Delete(ChildKey(ns, child.name)));
        }
      }
      deletes.push_back(BatchOp::Delete(NameRingKey(ns)));
    }
    deletes.push_back(BatchOp::Delete(PatchChainKey(ns, node_)));
    // Drop any of our own patch objects still parked under this namespace.
    std::vector<std::uint64_t> orphan_patches;
    {
      std::lock_guard lock(mu_);
      auto it = descriptors_.find(ns);
      if (it != descriptors_.end()) {
        for (const auto& [patch_no, patch] : it->second->pending) {
          orphan_patches.push_back(patch_no);
        }
        descriptors_.erase(it);
      }
    }
    for (std::uint64_t patch_no : orphan_patches) {
      deletes.push_back(BatchOp::Delete(PatchKey(ns, node_, patch_no)));
    }
    const std::vector<BatchResult> dropped =
        cloud_.ExecuteBatch(std::move(deletes), local);
    for (const BatchResult& r : dropped) {
      if (r.ok()) ++deleted;
    }
  }
  std::lock_guard lock(mu_);
  counters_.cleanup_objects_deleted += deleted;
  maintenance_meter_.Merge(local.cost());
  return deleted;
}


bool H2Middleware::MaintenanceIdleLocked() const {
  if (!cleanup_queue_.empty()) return false;
  // h2lint: ordered -- existence predicate, order insensitive
  for (const auto& [ns, desc] : descriptors_) {
    if (desc->chain_loaded && desc->chain.pending() > 0) return false;
  }
  return true;
}

bool H2Middleware::MaintenanceIdle() const {
  std::lock_guard lock(mu_);
  return MaintenanceIdleLocked();
}

// ---------------------------------------------------------------------------
// Gossip (§3.3.2, phase 2 step 2)
// ---------------------------------------------------------------------------

void H2Middleware::JoinGossip(GossipBus& bus) {
  gossip_ = &bus;
  gossip_member_ = bus.Join(
      [this](const Rumor& rumor) { return HandleRumor(rumor); });
}

void H2Middleware::Announce(const NamespaceId& ns, VirtualNanos version) {
  if (gossip_ == nullptr) return;
  gossip_->Publish(gossip_member_,
                   Rumor{ns.ToString(), node_, version});
}

bool H2Middleware::ObserveTopologyEpoch(std::uint64_t epoch) {
  {
    std::lock_guard lock(mu_);
    ++counters_.gossip_rumors_handled;
    if (epoch <= topology_epoch_) return false;  // old news: stop forwarding
    topology_epoch_ = epoch;
    ++counters_.topology_updates;
  }
  // Placement-derived cache state is stale the instant the ring moves:
  // flush outside mu_ (the cache is a leaf lock; never nest into it
  // while holding state the cache's other callers also take).
  resolve_cache_.OnTopologyEpoch(epoch);
  return true;
}

bool H2Middleware::HandleRumor(const Rumor& rumor) {
  // Membership epochs travel the same bus as NameRing rumors (the
  // middleware learns topology exactly like it learns patches); the
  // reserved topic dispatches before the namespace parse below.
  if (rumor.topic == kMembershipRumorTopic) {
    return ObserveTopologyEpoch(
        static_cast<std::uint64_t>(rumor.version));
  }
  Result<NamespaceId> parsed = NamespaceId::Parse(rumor.topic);
  if (!parsed.ok()) return false;
  const NamespaceId ns = *parsed;

  {
    std::lock_guard lock(mu_);
    ++counters_.gossip_rumors_handled;
    Descriptor& desc = DescriptorFor(ns);
    // Loop-back avoidance by timestamp comparison (§3.3.2): if the local
    // version already covers the rumor, abort forwarding.
    if (desc.local_version >= rumor.version) return false;
  }

  OpMeter local_meter;
  local_meter.SetZone(zone_);
  Result<ObjectValue> ring_obj = cloud_.Get(NameRingKey(ns), local_meter);
  bool fresh = false;
  bool need_repair = false;
  NameRing repaired;
  VirtualNanos repair_version = 0;
  if (ring_obj.ok()) {
    Result<NameRing> cloud_ring = NameRing::Parse(ring_obj->payload);
    if (cloud_ring.ok()) {
      std::lock_guard lock(mu_);
      Descriptor& desc = DescriptorFor(ns);
      NameRing merged = *cloud_ring;
      if (desc.local.has_value()) {
        // Age out tombstones from the local copy the same way compaction
        // does, so a legitimately compacted deletion is not "repaired"
        // back into the ring forever.
        NameRing aged = *desc.local;
        aged.PruneTombstones(ClockFor(local_meter).Now() -
                             config_.tombstone_gc_age);
        merged.Merge(aged);
      }
      fresh = !desc.local.has_value() || !(merged == *desc.local);
      if (!(merged == *cloud_ring)) {
        // The stored ring is missing updates we hold locally: a concurrent
        // read-merge-write clobbered them.  Write the join back.
        need_repair = true;
        repaired = merged;
        repair_version = ClockFor(local_meter).Tick();
        ++counters_.gossip_repairs;
      }
      desc.local = std::move(merged);
      desc.local_version = std::max(
          {desc.local_version, rumor.version, repair_version});
      // A remote middleware changed this directory: anything cached about
      // it -- ring snapshot and child records alike -- may be stale.
      resolve_cache_.InvalidateNamespace(ns);
    }
  } else {
    // Ring gone (directory removed elsewhere): remember the version so the
    // rumor stops here.
    std::lock_guard lock(mu_);
    Descriptor& desc = DescriptorFor(ns);
    desc.local_version = std::max(desc.local_version, rumor.version);
    resolve_cache_.InvalidateNamespace(ns);
  }

  if (need_repair) {
    (void)cloud_.Put(NameRingKey(ns),
                     MakeObject(repaired.Serialize(), "ring", repair_version),
                     local_meter);
    Announce(ns, repair_version);
  }
  std::lock_guard lock(mu_);
  maintenance_meter_.Merge(local_meter.cost());
  return fresh;
}

// ---------------------------------------------------------------------------
// Compaction & caches
// ---------------------------------------------------------------------------

Status H2Middleware::MaybeCompact(const NamespaceId& ns, NameRing& ring,
                                  OpMeter& meter) {
  if (!config_.compact_on_use || ring.tombstone_count() == 0) {
    return Status::Ok();
  }
  NameRing pruned = ring;
  const std::size_t removed = pruned.PruneTombstones(
      ClockFor(meter).Now() - config_.tombstone_gc_age);
  if (removed == 0) return Status::Ok();
  const VirtualNanos now = ClockFor(meter).Tick();
  H2_RETURN_IF_ERROR(cloud_.Put(NameRingKey(ns),
                                MakeObject(pruned.Serialize(), "ring", now),
                                meter));
  ring = pruned;
  std::lock_guard lock(mu_);
  Descriptor& desc = DescriptorFor(ns);
  desc.local = std::move(pruned);
  desc.local_version = now;
  resolve_cache_.InvalidateRing(ns);
  counters_.tombstones_compacted += removed;
  return Status::Ok();
}

OpCost H2Middleware::maintenance_cost() const {
  std::lock_guard lock(mu_);
  return maintenance_meter_.cost();
}

H2Counters H2Middleware::CountersLocked() const {
  H2Counters out = counters_;
  const H2ResolveCache::Stats cache = resolve_cache_.stats();
  out.resolve_cache_hits = cache.hits;
  out.resolve_cache_misses = cache.misses;
  out.resolve_cache_invalidations = cache.invalidations;
  return out;
}

H2Counters H2Middleware::counters() const {
  std::lock_guard lock(mu_);
  return CountersLocked();
}

H2Middleware::StatsSnapshot H2Middleware::Snapshot() const {
  std::lock_guard lock(mu_);
  StatsSnapshot snap;
  snap.counters = CountersLocked();
  snap.maintenance = maintenance_meter_.cost();
  snap.idle = MaintenanceIdleLocked();
  return snap;
}

}  // namespace h2
